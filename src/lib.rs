//! # Palladium — a DPU-enabled multi-tenant serverless cloud over zero-copy
//! # multi-node RDMA fabrics (reproduction)
//!
//! This crate is the facade over the Palladium reproduction workspace. It
//! re-exports every sub-crate under one namespace so that examples, tests and
//! downstream users can depend on a single crate:
//!
//! * [`simnet`] — deterministic discrete-event simulation kernel (virtual
//!   clock, event queue, FIFO servers, statistics, fault injection).
//! * [`membuf`] — the unified shared-memory pool substrate: hugepage regions,
//!   pool-based buffer allocation, move-only ownership tokens, per-tenant
//!   isolation and DOCA-style cross-processor mmap export.
//! * [`rdma`] — simulated RDMA verbs and Reliable Connected transport with
//!   acknowledgements, go-back-N retransmission, RNR flow control, an RNIC
//!   model (QP context cache, MTT) and a switched fabric with fault injection.
//! * [`ipc`] — intra-node and cross-processor channels: eBPF `SK_MSG` +
//!   sockmap descriptor passing, DOCA Comch-E/Comch-P, and a kernel TCP
//!   channel baseline.
//! * [`dpu`] — the DPU SoC substrate: wimpy ARM cores, the (slow) SoC DMA
//!   engine, DOCA mmap import/export and the Comch server endpoint.
//! * [`tcpstack`] — kernel and F-Stack TCP/IP cost models plus a real
//!   HTTP/1.1 parser/serializer used by the ingress gateway.
//! * [`core`] — Palladium proper: the DPU network engine (DNE), DWRR
//!   multi-tenancy, the RC connection pool with shadow QPs, the unified I/O
//!   library, the function runtime and the HTTP/TCP→RDMA ingress gateway,
//!   and the simulation drivers that compose all of the above.
//! * [`baselines`] — SPRIGHT, NightCore and FUYAO rebuilt over the same
//!   substrates, plus the one-sided RDMA primitive variants (OWDL, OWRC) and
//!   the on-path / FCFS DNE ablations.
//! * [`workloads`] — the Online Boutique function graph, a wrk-like
//!   closed-loop load generator and tenant surge schedules.
//!
//! ## Quickstart
//!
//! ```
//! use palladium::core::driver::chain::ChainSim;
//! use palladium::core::system::SystemKind;
//! use palladium::workloads::boutique::{self, ChainKind};
//!
//! // Run 'Home Query' on the Palladium (DNE) data plane with 20 closed-loop
//! // clients and report RPS / mean latency.
//! let cfg = boutique::config(SystemKind::PalladiumDne, ChainKind::HomeQuery)
//!     .clients(20)
//!     .warmup_ms(40)
//!     .duration_ms(120);
//! let report = ChainSim::new(cfg).run();
//! assert!(report.rps > 0.0);
//! assert_eq!(report.software_copy_bytes, 0); // zero-copy data plane
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-versus-measured record of every figure and table.

// The simulation's memory-safety story is that only the shard mailbox ring
// (simnet) and the bench counting allocator contain `unsafe` at all; this
// crate is compiler-certified to stay out of that set (simlint's
// safety-comments rule covers the two that cannot be).
#![forbid(unsafe_code)]

pub use palladium_baselines as baselines;
pub use palladium_core as core;
pub use palladium_dpu as dpu;
pub use palladium_ipc as ipc;
pub use palladium_membuf as membuf;
pub use palladium_rdma as rdma;
pub use palladium_simnet as simnet;
pub use palladium_tcpstack as tcpstack;
pub use palladium_workloads as workloads;
