//! Overload-regime pins for the sharded Fig 16 cluster.
//!
//! PR 10 makes overload a *survivable, measured* regime: open-loop
//! arrivals (so offered load decouples from completions), admission
//! control with deadline-aware shedding, per-request retry budgets, a
//! per-pair circuit breaker, and costed autoscaler scale-out. This suite
//! pins three things:
//!
//! 1. **Invariance** — every overload scenario (steady Poisson below and
//!    past saturation, the flash-crowd scale-out, both metastable
//!    controls) is byte-identical at 1/2/4/8 shards under both execution
//!    modes, via a golden snapshot like the chaos suite's.
//! 2. **Degradation shape** — past saturation the cluster sheds honestly
//!    (every drop path attributed) while goodput stays near its peak
//!    instead of collapsing.
//! 3. **The metastable contrast** — under a transient rack crash at
//!    saturation, the budgeted configuration recovers goodput and the
//!    legacy unbounded-retry configuration does not.
//!
//! To regenerate after an *intentional* change:
//! `GOLDEN_REGEN=1 cargo test -q --test overload_cluster` and commit the
//! updated snapshot together with the change that explains it.
#![recursion_limit = "512"]

use palladium_core::driver::cluster_sharded::{
    ClusterShardedConfig, ClusterShardedReport, ClusterShardedSim,
};
use palladium_simnet::Execution;
use palladium_workloads::openloop::{flash_autoscale, metastable, poisson_overload};

/// Hex-exact rendering of the overload view of a run (no
/// shortest-repr float ambiguity).
fn trace(name: &str, r: &ClusterShardedReport) -> String {
    let o = &r.overload;
    let c = &r.chaos;
    format!(
        "overload/{name}: offered={} admitted={} goodput={} late={} recovery={} \
         retries={} exhausted={} shed_qp={} shed_pool={} shed_admission={} \
         shed_deadline={} shed_breaker={} breaker_opens={} breaker_closes={} \
         scale_ups={} scale_downs={} rejoin_bills={} lease_hits={} ramp_p99={} \
         p50={} p99={} p999={} completed={} events={} messages={} \
         suspected={} reroutes={} rejoins={}\n",
        o.offered,
        o.admitted,
        o.goodput,
        o.late,
        o.recovery_goodput,
        o.retries,
        o.retry_exhausted,
        c.shed_qp,
        c.shed_pool,
        c.shed_admission,
        c.shed_deadline,
        c.shed_breaker,
        o.breaker_opens,
        o.breaker_closes,
        o.scale_ups,
        o.scale_downs,
        o.rejoin_bills,
        o.lease_hits,
        o.ramp_p99.as_nanos(),
        r.p50.as_nanos(),
        r.p99.as_nanos(),
        r.p999.as_nanos(),
        r.chain.load.completed,
        r.events,
        r.messages,
        c.suspected,
        c.reroutes,
        c.rejoins,
    )
}

fn scenarios() -> Vec<(&'static str, ClusterShardedConfig)> {
    vec![
        ("poisson_60k", poisson_overload(60_000.0)),
        ("poisson_140k", poisson_overload(140_000.0)),
        ("flash_autoscale", flash_autoscale()),
        ("metastable_budgeted", metastable(true)),
        ("metastable_unbounded", metastable(false)),
    ]
}

#[test]
fn overload_scenarios_reproduce_the_snapshot_at_every_shard_count() {
    let mut serial = String::new();
    let mut sims = Vec::new();
    for (name, cfg) in scenarios() {
        let sim = ClusterShardedSim::new(cfg);
        let r = sim.run(1, Execution::Sequential);
        assert!(r.overload.goodput > 0, "{name}: overload must not kill the cluster");
        serial.push_str(&trace(name, &r));
        sims.push((name, sim));
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/overload_cluster_golden.txt");
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &serial).unwrap();
    } else {
        let want = std::fs::read_to_string(path)
            .expect("golden snapshot missing — run with GOLDEN_REGEN=1 to create it");
        assert_eq!(serial, want, "--shards 1 diverged from the golden snapshot");
    }

    for (name, sim) in &sims {
        let one = trace(name, &sim.run(1, Execution::Sequential));
        for shards in [2usize, 4, 8] {
            for execution in [Execution::Sequential, Execution::Threads] {
                let got = trace(name, &sim.run(shards, execution));
                assert_eq!(
                    got, one,
                    "{name}: {shards} shards / {execution:?} diverged from the serial bytes"
                );
            }
        }
    }
}

/// Past saturation the admission machinery sheds honestly — queue
/// overflow, stale-queue eviction and deadline-infeasible drops are all
/// attributed, retry budgets exhaust visibly — and goodput stays near
/// the peak instead of collapsing (the no-congestion-collapse claim the
/// `slo_smoke --load-sweep` gate pins on the full grid).
#[test]
fn saturation_sheds_honestly_without_collapsing_goodput() {
    let near = ClusterShardedSim::new(poisson_overload(100_000.0)).run(1, Execution::Sequential);
    let over = ClusterShardedSim::new(poisson_overload(200_000.0)).run(1, Execution::Sequential);
    let o = &over.overload;
    assert!(o.offered > near.overload.offered, "open loop: offered load is not throttled");
    assert!(o.offered > o.admitted, "past saturation some arrivals must be refused");
    assert!(
        over.chaos.shed_admission > 0 && over.chaos.shed_deadline > 0,
        "both admission shed paths must fire and be attributed: {:?}",
        over.chaos
    );
    assert!(o.retries > 0, "shed requests must ride the backoff machinery");
    assert!(
        o.retry_exhausted > 0,
        "budget exhaustion is an honest, counted client-visible failure"
    );
    assert!(
        2 * o.goodput >= near.overload.goodput,
        "goodput at 2x saturation must stay >= half the near-knee goodput \
         ({} vs {})",
        o.goodput,
        near.overload.goodput
    );
}

/// Satellite regression for the once-silent shed at the ingress pool:
/// with the pool sized to leave only a couple of TX buffers beyond the
/// receive-queue priming (`INITIAL_RQ`), exhaustion must fire and be
/// *attributed* (`shed_pool`), while the cluster keeps serving.
#[test]
fn pool_exhaustion_is_attributed_not_silent() {
    let r = ClusterShardedSim::new(poisson_overload(140_000.0).pool_bufs(514))
        .run(1, Execution::Sequential);
    assert!(
        r.chaos.shed_pool > 0,
        "a 2-spare-buffer pool must exhaust under overload: {:?}",
        r.chaos
    );
    assert!(r.overload.goodput > 0, "pool sheds must not kill the cluster");
    let healthy = ClusterShardedSim::new(poisson_overload(140_000.0)).run(1, Execution::Sequential);
    assert_eq!(healthy.chaos.shed_pool, 0, "the default pool never exhausts");
}

/// The flash crowd over a half-active cluster must trigger costed
/// scale-out: the autoscaler activates the spare pairs, the first
/// activation claims the pre-leased warm worker at a fraction of the
/// bill, later ones pay the full rejoin cost, and the surge-window p99
/// is recorded. After the decay the scaler releases capacity again.
#[test]
fn flash_crowd_pays_costed_scale_out() {
    let r = ClusterShardedSim::new(flash_autoscale()).run(1, Execution::Sequential);
    let o = &r.overload;
    assert!(o.scale_ups >= 1, "the surge must activate spare pairs: {o:?}");
    assert!(o.lease_hits >= 1, "the first activation claims the warm lease: {o:?}");
    assert!(o.rejoin_bills >= 1, "further activations pay the full bill: {o:?}");
    assert!(o.scale_downs >= 1, "the decay must release capacity: {o:?}");
    assert!(!o.ramp_p99.is_zero(), "the surge-window tail must be measured: {o:?}");
    assert!(o.goodput > 0, "the cluster serves through the ramp: {o:?}");
}

/// The headline robustness contrast. A transient rack crash at
/// saturation: the budgeted configuration sheds the stale backlog and
/// *recovers* — within-deadline completions resume in the last quarter
/// of the run — while the legacy unbounded-retry configuration keeps
/// serving a queue whose delay exceeds every deadline: completions
/// continue (late), goodput does not. Same fault, same offered load.
#[test]
fn budgets_recover_from_the_transient_crash_unbounded_retries_do_not() {
    let good = ClusterShardedSim::new(metastable(true)).run(1, Execution::Sequential);
    let bad = ClusterShardedSim::new(metastable(false)).run(1, Execution::Sequential);
    let (g, b) = (&good.overload, &bad.overload);
    assert_eq!(g.offered, b.offered, "identical offered load by construction");
    assert!(
        g.recovery_goodput > 0,
        "budgeted: goodput must recover after the fault clears: {g:?}"
    );
    assert_eq!(
        b.recovery_goodput, 0,
        "unbounded: the backlog outlives the fault — the metastable signature: {b:?}"
    );
    assert!(
        g.goodput > b.goodput,
        "budgets must beat the retry storm on goodput ({} vs {})",
        g.goodput,
        b.goodput
    );
    assert!(
        b.late > b.goodput,
        "unbounded keeps serving, but mostly worthless (late) work: {b:?}"
    );
    assert!(g.retry_exhausted > 0, "budget exhaustion is visible, not hidden: {g:?}");
    assert_eq!(b.retry_exhausted, 0, "the unbounded config never gives up: {b:?}");
    assert!(g.breaker_opens > 0, "pair loss must trip the breaker: {g:?}");
    assert_eq!(b.breaker_opens, 0, "the legacy config has no breaker: {b:?}");
}

/// The breaker composes with deadlines: while it sheds at the source the
/// drops are attributed to `shed_breaker`/`shed_deadline`, never lost.
#[test]
fn every_drop_path_is_attributed() {
    let r = ClusterShardedSim::new(metastable(true)).run(1, Execution::Sequential);
    let c = &r.chaos;
    let o = &r.overload;
    let dropped = c.shed_qp
        + c.shed_pool
        + c.shed_admission
        + c.shed_deadline
        + c.shed_breaker
        + c.inflight_lost;
    assert!(dropped > 0, "the scenario must exercise the drop paths: {c:?}");
    // Conservation: every in-window completion is classified exactly once
    // — as goodput (within deadline) or as late. A gap here means a drop
    // path went back to being silent.
    assert_eq!(
        o.goodput + o.late,
        r.chain.load.completed,
        "every completion must be classified as goodput or late: {o:?}"
    );
}

/// Deterministic replay: the same sim object runs the same scenario to
/// the same bytes twice (no hidden state leaks between runs).
#[test]
fn overload_runs_are_replayable() {
    let sim = ClusterShardedSim::new(metastable(true));
    let a = trace("replay", &sim.run(2, Execution::Sequential));
    let b = trace("replay", &sim.run(2, Execution::Sequential));
    assert_eq!(a, b, "re-running the same sim must reproduce the bytes");
}
