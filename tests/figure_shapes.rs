//! The headline comparative claims of every figure, asserted end-to-end at
//! reduced scale (EXPERIMENTS.md records the full-scale numbers).

use palladium::baselines::{EchoConfig, EchoSim, PathMode, Primitive};
use palladium::core::driver::chain::ChainSim;
use palladium::core::driver::channel::{ChannelSim, ChannelSimConfig};
use palladium::core::driver::ingress_sweep::{IngressSim, IngressSimConfig};
use palladium::core::system::{IngressKind, SystemKind};
use palladium::ipc::ChannelKind;
use palladium::simnet::Nanos;
use palladium::workloads::boutique::{self, ChainKind};

#[test]
fn fig09_shape_comch_e_is_the_practical_choice() {
    let run = |kind, fns| {
        let mut cfg = ChannelSimConfig::new(kind, fns);
        cfg.duration = Nanos::from_millis(30);
        cfg.warmup = Nanos::from_millis(5);
        ChannelSim::new(cfg).run()
    };
    // Low concurrency: P < E < TCP on latency.
    let p1 = run(ChannelKind::ComchP, 1);
    let e1 = run(ChannelKind::ComchE, 1);
    let t1 = run(ChannelKind::Tcp, 1);
    assert!(p1.mean_latency < e1.mean_latency && e1.mean_latency < t1.mean_latency);
    // High concurrency: E sustains, P collapses below E.
    let p60 = run(ChannelKind::ComchP, 60);
    let e60 = run(ChannelKind::ComchE, 60);
    assert!(e60.rps > p60.rps, "Comch-E {} > Comch-P {}", e60.rps, p60.rps);
}

#[test]
fn fig11_shape_offpath_wins_under_load() {
    let mut cfg = EchoConfig::new(1024).connections(40);
    cfg.duration = Nanos::from_millis(25);
    cfg.warmup = Nanos::from_millis(5);
    let off = EchoSim::new(cfg).run_path_mode(PathMode::OffPath);
    let on = EchoSim::new(cfg).run_path_mode(PathMode::OnPath);
    assert!(off.rps > on.rps * 1.1);
}

#[test]
fn fig12_shape_two_sided_fastest() {
    let mut cfg = EchoConfig::new(4096);
    cfg.duration = Nanos::from_millis(25);
    cfg.warmup = Nanos::from_millis(5);
    let sim = EchoSim::new(cfg);
    let ts = sim.run_primitive(Primitive::TwoSided).mean_latency;
    let ob = sim.run_primitive(Primitive::OwrcBest).mean_latency;
    let ow = sim.run_primitive(Primitive::OwrcWorst).mean_latency;
    let od = sim.run_primitive(Primitive::Owdl).mean_latency;
    assert!(ts < ob && ob < ow && ow < od, "{ts} {ob} {ow} {od}");
}

#[test]
fn fig13_shape_early_conversion_wins() {
    let run = |kind| {
        let mut cfg = IngressSimConfig::fig13(kind, 60);
        cfg.duration = Nanos::from_millis(120);
        cfg.warmup = Nanos::from_millis(30);
        IngressSim::new(cfg).sweep()
    };
    let p = run(IngressKind::Palladium);
    let f = run(IngressKind::FStackDeferred);
    let k = run(IngressKind::KernelDeferred);
    assert!(p.rps > f.rps * 2.0, "paper: 3.2x");
    assert!(p.rps > k.rps * 5.0, "paper: 11.4x");
}

#[test]
fn fig16_shape_system_ordering() {
    let run = |system| {
        ChainSim::new(
            boutique::config(system, ChainKind::ProductQuery)
                .clients(40)
                .warmup_ms(30)
                .duration_ms(120),
        )
        .run()
    };
    let dne = run(SystemKind::PalladiumDne);
    let cne = run(SystemKind::PalladiumCne);
    let spright = run(SystemKind::Spright);
    let nightcore = run(SystemKind::NightCore);
    assert!(dne.rps >= cne.rps * 0.95, "DNE ≥ CNE at 40 clients");
    assert!(cne.rps > spright.rps, "both Palladium variants beat SPRIGHT");
    assert!(
        dne.rps / nightcore.rps > 3.0,
        "paper: 5.1-20.9x over NightCore; got {:.1}x",
        dne.rps / nightcore.rps
    );
}
