//! The multi-tenant security model end-to-end: file-prefix memory
//! isolation, mmap grant enforcement at both importers, and the Comch
//! misbehaving-tenant disconnect.

use palladium::dpu::ImportTable;
use palladium::ipc::{ChannelKind, ComchServer};
use palladium::membuf::{
    create_from_export, FnId, Grant, MmapExporter, PoolId, Region, ShmAgent, TenantDirectory,
    TenantError, TenantId,
};
use palladium::rdma::MrTable;

#[test]
fn file_prefix_isolation_blocks_cross_tenant_attach() {
    let mut dir = TenantDirectory::new();
    ShmAgent::create_pool(&mut dir, TenantId(1), "tenant_1", 16, 4096).unwrap();
    ShmAgent::create_pool(&mut dir, TenantId(2), "tenant_2", 16, 4096).unwrap();
    dir.register_function(FnId(10), TenantId(1));
    dir.register_function(FnId(20), TenantId(2));

    assert!(dir.attach(FnId(10), "tenant_1").is_ok());
    assert!(matches!(
        dir.attach(FnId(10), "tenant_2"),
        Err(TenantError::IsolationViolation { .. })
    ));
    assert!(dir.attach(FnId(20), "tenant_2").is_ok());
}

#[test]
fn no_grant_no_access_for_rnic_and_dpu() {
    let mut exporter = MmapExporter::new(PoolId(1), TenantId(1), Region::hugepages(4 << 20));

    // Without any export: the RNIC cannot register, the DPU cannot import.
    let pci_only = exporter.export_pci();
    let mut mrs = MrTable::new();
    assert!(mrs.register(&pci_only).is_err(), "PCI grant is not an RDMA grant");
    let mut imports = ImportTable::new();
    let rdma_only = exporter.export_rdma();
    assert!(imports.import(&rdma_only).is_err(), "RDMA grant is not a PCI grant");

    // With the right grants both succeed.
    assert!(mrs.register(&rdma_only).is_ok());
    assert!(imports.import(&pci_only).is_ok());

    // Tenant scoping rejects foreign tenants.
    assert!(create_from_export(&rdma_only, Grant::Rdma, Some(TenantId(9))).is_err());
}

#[test]
fn comch_disconnect_cuts_misbehaving_tenant() {
    let mut comch = ComchServer::new(ChannelKind::ComchE);
    comch.connect(FnId(1), TenantId(1));
    comch.connect(FnId(2), TenantId(2));
    assert_eq!(comch.disconnect_tenant(TenantId(1)), 1);
    // Tenant 1 can no longer reach the DNE; tenant 2 is untouched.
    let desc = palladium::membuf::BufDesc {
        tenant: TenantId(1),
        pool: PoolId(0),
        buf_idx: 0,
        len: 16,
        src_fn: FnId(1),
        dst_fn: FnId(0),
    };
    assert!(comch.host_send(FnId(1), desc).is_err());
    let desc2 = palladium::membuf::BufDesc {
        tenant: TenantId(2),
        src_fn: FnId(2),
        ..desc
    };
    assert!(comch.host_send(FnId(2), desc2).is_ok());
}
