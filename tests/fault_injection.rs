//! Property-based fault injection on the RC fabric: any drop/corrupt rate
//! below the retry budget still yields exactly-once, in-order delivery.

use bytes::Bytes;
use palladium::membuf::{MmapExporter, NodeId, PoolId, Region, TenantId};
use palladium::rdma::{
    CqeKind, RdmaConfig, RdmaEvent, RdmaNet, RqEntry, WorkRequest, WrId,
};
use palladium::simnet::{FaultPlan, Sim};
use proptest::prelude::*;

fn run_lossy(drop: f64, corrupt: f64, n: u64, seed: u64) -> Vec<u64> {
    let mut net = RdmaNet::new(RdmaConfig::default(), 2, seed);
    for node in [NodeId(0), NodeId(1)] {
        let mut e =
            MmapExporter::new(PoolId(node.raw()), TenantId(1), Region::hugepages(8 << 20));
        net.register_mr(node, &e.export_rdma()).unwrap();
    }
    let (qa, _) = net.connect_immediate(NodeId(0), NodeId(1), TenantId(1));
    net.set_fault(FaultPlan {
        drop_chance: drop,
        corrupt_chance: corrupt,
        ..FaultPlan::NONE
    });
    for i in 0..n + 32 {
        net.post_recv(
            NodeId(1),
            TenantId(1),
            RqEntry { wr_id: WrId(i), pool: PoolId(1), capacity: 4096 },
        )
        .unwrap();
    }
    let mut sim: Sim<RdmaEvent> = Sim::new();
    for i in 0..n {
        let step = net
            .post_send(
                sim.now(),
                NodeId(0),
                qa,
                WorkRequest::send(WrId(1_000 + i), Bytes::from(vec![(i % 256) as u8; 256]), i),
            )
            .unwrap();
        for t in step.events {
            sim.schedule(t.after, t.value);
        }
    }
    let mut received = Vec::new();
    while let Some((now, ev)) = sim.next() {
        let step = net.handle(now, ev);
        for t in step.events {
            sim.schedule(t.after, t.value);
        }
        for cqe in net.poll_cq(NodeId(1), 64) {
            if cqe.kind == CqeKind::Recv {
                // Payload integrity: first byte encodes the message index.
                assert_eq!(cqe.data[0] as u64, cqe.imm % 256);
                received.push(cqe.imm);
            }
        }
        assert!(sim.events_fired() < 3_000_000, "runaway recovery");
    }
    received
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn rc_is_exactly_once_in_order_under_faults(
        drop in 0.0f64..0.3,
        corrupt in 0.0f64..0.15,
        n in 8u64..48,
        seed in any::<u64>(),
    ) {
        let received = run_lossy(drop, corrupt, n, seed);
        let expect: Vec<u64> = (0..n).collect();
        prop_assert_eq!(received, expect);
    }
}
