//! Golden-trace determinism tests for the DES kernel.
//!
//! Every driver runs with a fixed seed and its report is compared
//! byte-for-byte against the checked-in snapshot in
//! `tests/golden/simcore_golden.txt`, captured *before* the timer-wheel /
//! dense-table kernel swap. Any change to event ordering, RNG consumption
//! or table iteration anywhere in the stack shows up here as a diff — the
//! kernel optimizations are provably behavior-preserving.
//!
//! To regenerate after an *intentional* simulation change:
//! `GOLDEN_REGEN=1 cargo test -q --test golden_traces` and commit the
//! updated snapshot together with the change that explains it.

use palladium_core::driver::chain::{
    AppSpec, ChainSim, ChainSimConfig, ChainSpec, FnSpec, HopSpec,
};
use palladium_core::driver::fairness::{FairnessSim, FairnessSimConfig};
use palladium_core::driver::ingress_sweep::{IngressSim, IngressSimConfig};
use palladium_core::dwrr::SchedPolicy;
use palladium_core::system::{IngressKind, SystemKind};
use palladium_membuf::FnId;
use palladium_simnet::{LoadReport, Nanos};

/// Hex-exact rendering of an `f64` (no shortest-repr ambiguity).
fn f(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn load_line(tag: &str, r: &LoadReport) -> String {
    format!(
        "{tag}: rps={} mean={} p99={} completed={}",
        f(r.rps),
        r.mean_latency.as_nanos(),
        r.p99_latency.as_nanos(),
        r.completed
    )
}

/// The same 4-function / 5-hop app the chain driver's unit tests use.
fn golden_app() -> AppSpec {
    let us = Nanos::from_micros;
    AppSpec {
        functions: vec![
            FnSpec { id: FnId(1), name: "A", node: 0, exec: us(15) },
            FnSpec { id: FnId(2), name: "B", node: 1, exec: us(10) },
            FnSpec { id: FnId(3), name: "C", node: 1, exec: us(10) },
            FnSpec { id: FnId(4), name: "D", node: 0, exec: us(12) },
        ],
        chains: vec![ChainSpec {
            name: "golden-chain",
            entry: FnId(1),
            hops: vec![
                HopSpec { from: FnId(1), to: FnId(2), bytes: 512 },
                HopSpec { from: FnId(2), to: FnId(3), bytes: 1024 },
                HopSpec { from: FnId(3), to: FnId(2), bytes: 256 },
                HopSpec { from: FnId(2), to: FnId(4), bytes: 512 },
                HopSpec { from: FnId(4), to: FnId(1), bytes: 256 },
            ],
            req_bytes: 256,
            resp_bytes: 512,
        }],
    }
}

fn golden_trace() -> String {
    let mut out = String::new();

    // Chain driver, every inter-node data plane.
    for sys in [
        SystemKind::PalladiumDne,
        SystemKind::PalladiumCne,
        SystemKind::Spright,
        SystemKind::FuyaoF,
        SystemKind::NightCore,
    ] {
        let r = ChainSim::new(
            ChainSimConfig::new(sys, golden_app(), 0)
                .clients(12)
                .warmup_ms(30)
                .duration_ms(90),
        )
        .run();
        out.push_str(&load_line(&format!("chain/{sys:?}"), &r.load));
        out.push_str(&format!(
            " sw_bytes={} sw_ops={} dma_bytes={} cpu={} dpu={}\n",
            r.software_copy_bytes,
            r.software_copy_ops,
            r.rnic_dma_bytes,
            f(r.cpu_util_pct),
            f(r.dpu_util_pct)
        ));
    }

    // Ingress sweep, all three designs.
    for kind in [
        IngressKind::Palladium,
        IngressKind::FStackDeferred,
        IngressKind::KernelDeferred,
    ] {
        let r = IngressSim::new(IngressSimConfig::fig13(kind, 24)).sweep();
        out.push_str(&load_line(&format!("ingress/{kind:?}"), &r));
        out.push('\n');
    }

    // Fairness driver, both scheduling policies at a small time scale.
    for policy in [SchedPolicy::Dwrr, SchedPolicy::Fcfs] {
        let r = FairnessSim::new(FairnessSimConfig::paper(policy, 0.02)).run();
        out.push_str(&format!("fairness/{policy:?}: totals="));
        for (t, n) in &r.totals {
            out.push_str(&format!("{}:{} ", t.raw(), n));
        }
        out.push_str("series=");
        for (t, s) in &r.series {
            let sum: f64 = s.iter().map(|&(_, rps)| rps).sum();
            out.push_str(&format!("{}:{}@{} ", t.raw(), f(sum), s.len()));
        }
        out.push('\n');
    }

    out
}

#[test]
fn reports_match_checked_in_snapshot() {
    let got = golden_trace();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/simcore_golden.txt");
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &got).unwrap();
        return;
    }
    let want = std::fs::read_to_string(path).expect(
        "golden snapshot missing — run with GOLDEN_REGEN=1 to create it",
    );
    assert_eq!(
        got, want,
        "simulation output diverged from the golden snapshot"
    );
}

#[test]
fn heap_backend_reproduces_the_same_snapshot() {
    // The legacy binary-heap queue must produce the *same* bytes as the
    // timer wheel: the backend is an optimization, never a semantics
    // change. (The kind override is thread-local, so this does not affect
    // concurrently running tests.)
    palladium_simnet::set_queue_kind(palladium_simnet::QueueKind::BinaryHeap);
    let got = golden_trace();
    palladium_simnet::set_queue_kind(palladium_simnet::QueueKind::TimerWheel);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/simcore_golden.txt");
    if std::env::var("GOLDEN_REGEN").is_ok() {
        return; // snapshot written by the wheel-backend test
    }
    let want = std::fs::read_to_string(path).expect("golden snapshot present");
    assert_eq!(got, want, "heap backend diverged from the golden snapshot");
}
