//! Chaos-scenario pins for the sharded Fig 16 cluster.
//!
//! The fault-free golden (`cluster_sharded.rs`) proves the healthy data
//! plane is shard-count-invariant. This suite proves the same for the
//! *unhealthy* one: scripted crash/flap/straggler scenarios — verdicts
//! drawn from per-node fault streams, partitions applied as
//! deterministic down-windows, failover driven by the heartbeat plane —
//! must produce byte-identical reports at 1/2/4/8 shards under both
//! execution modes. A diff here means fault verdicts leaked onto a
//! shard-dependent RNG, the down table diverged between fabric
//! instances, or the health plane observed shard-dependent timing.
//!
//! To regenerate after an *intentional* change:
//! `GOLDEN_REGEN=1 cargo test -q --test chaos_cluster` and commit the
//! updated snapshot together with the change that explains it.
#![recursion_limit = "512"]

use proptest::prelude::*;

use palladium_core::driver::cluster_sharded::{
    ClusterShardedConfig, ClusterShardedReport, ClusterShardedSim,
};
use palladium_core::system::SystemKind;
use palladium_simnet::{Execution, FaultPlan, Nanos, ScenarioScript};
use palladium_workloads::boutique::{sharded_config, ChainKind};

const PAIRS: usize = 4;

fn base_cfg() -> ClusterShardedConfig {
    sharded_config(SystemKind::PalladiumDne, ChainKind::HomeQuery, PAIRS)
        .clients(8 * PAIRS)
        .warmup_ms(1)
        .duration_ms(4)
}

/// Crash pair 1's first worker mid-run; the health plane must suspect
/// it, abandon the in-flight requests, and re-route to survivors until
/// heartbeats resume.
fn crash_failover() -> ScenarioScript {
    ScenarioScript::new().crash(2, Nanos::from_micros(1_500), Nanos::from_millis(3))
}

/// Flap two workers' links with stochastic drop windows: go-back-N
/// absorbs the losses (rto/fault_drops count them), no failover fires.
fn link_flap() -> ScenarioScript {
    ScenarioScript::new()
        .flap(5, 0.05, Nanos::from_millis(1), Nanos::from_micros(2_500))
        .flap(1, 0.02, Nanos::from_micros(1_800), Nanos::from_micros(3_200))
}

/// One worker computes 8× slower for 2 ms: no losses, but the latency
/// tail must move.
fn straggler() -> ScenarioScript {
    ScenarioScript::new().straggle(6, 8.0, Nanos::from_millis(1), Nanos::from_millis(3))
}

/// A correlated fault: pair 1's rack (both workers, nodes 2 and 3) goes
/// down as one domain op. Both workers must be suspected, both must pay
/// the costed rejoin after the window, and the time-to-recovery
/// histogram must land in the report.
fn rack_crash_rejoin() -> ScenarioScript {
    ScenarioScript::new()
        .domain("rack1", &[2, 3])
        .crash_domain("rack1", Nanos::from_micros(1_500), Nanos::from_millis(3))
}

/// A gray partial partition on the directed link 4 → 5 (pair 2's
/// intra-pair chain traffic): 5% drop plus up to 200 µs inflation per
/// frame — structurally invisible to the heartbeat plane, since
/// heartbeats travel worker → ingress and never cross this link. Pure
/// heartbeat detection sees nothing; the differential EWMA (pair 2's
/// chain ping-pongs 4 ↔ 5, so its end-to-end latency inflates well past
/// `enter ×` the healthy pairs') must demote the pair.
fn gray_partition() -> ScenarioScript {
    ScenarioScript::new().gray_link(
        4,
        5,
        0.05,
        Nanos::from_micros(200),
        Nanos::from_millis(1),
        Nanos::from_micros(4_500),
    )
}

/// Hex-exact rendering (no shortest-repr float ambiguity), the
/// fault-free trace extended with histogram tails and chaos accounting.
fn trace(name: &str, r: &ClusterShardedReport) -> String {
    let c = &r.chaos;
    format!(
        "chaos/{name}: rps={:016x} mean={} p50={} p99={} p999={} completed={} \
         sw_bytes={} dma_bytes={} events={} messages={} \
         fault_drops={} crash_drops={} corrupt={} rto={} suspected={} \
         recovered={} inflight_lost={} reroutes={} shed_qp={} shed_pool={} \
         shed_admission={} shed_deadline={} shed_breaker={} \
         rejoins={} rejoins_aborted={} ttr_p50={} ttr_p99={} \
         gray_demoted={} gray_restored={} gray_reroutes={}\n",
        r.chain.load.rps.to_bits(),
        r.chain.load.mean_latency.as_nanos(),
        r.p50.as_nanos(),
        r.p99.as_nanos(),
        r.p999.as_nanos(),
        r.chain.load.completed,
        r.chain.software_copy_bytes,
        r.chain.rnic_dma_bytes,
        r.events,
        r.messages,
        c.fault_drops,
        c.crash_drops,
        c.corrupt,
        c.rto,
        c.suspected,
        c.recovered,
        c.inflight_lost,
        c.reroutes,
        c.shed_qp,
        c.shed_pool,
        c.shed_admission,
        c.shed_deadline,
        c.shed_breaker,
        c.rejoins,
        c.rejoins_aborted,
        c.ttr_p50.as_nanos(),
        c.ttr_p99.as_nanos(),
        c.gray_demoted,
        c.gray_restored,
        c.gray_reroutes
    )
}

fn scenarios() -> Vec<(&'static str, ScenarioScript)> {
    vec![
        ("crash_failover", crash_failover()),
        ("link_flap", link_flap()),
        ("straggler", straggler()),
        ("rack_crash_rejoin", rack_crash_rejoin()),
        ("gray_partition", gray_partition()),
    ]
}

#[test]
fn chaos_scenarios_reproduce_the_snapshot_at_every_shard_count() {
    let mut serial = String::new();
    let mut sims = Vec::new();
    for (name, script) in scenarios() {
        let sim = ClusterShardedSim::new(base_cfg().chaos(script));
        let r = sim.run(1, Execution::Sequential);
        assert!(r.chain.load.completed > 0, "{name}: cluster must survive the scenario");
        serial.push_str(&trace(name, &r));
        sims.push((name, sim));
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/chaos_cluster_golden.txt");
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &serial).unwrap();
    } else {
        let want = std::fs::read_to_string(path)
            .expect("golden snapshot missing — run with GOLDEN_REGEN=1 to create it");
        assert_eq!(serial, want, "--shards 1 diverged from the golden snapshot");
    }

    for (name, sim) in &sims {
        let one = trace(name, &sim.run(1, Execution::Sequential));
        for shards in [2usize, 4, 8] {
            for execution in [Execution::Sequential, Execution::Threads] {
                let got = trace(name, &sim.run(shards, execution));
                assert_eq!(
                    got, one,
                    "{name}: {shards} shards / {execution:?} diverged from the serial bytes"
                );
            }
        }
    }
}

#[test]
fn crash_triggers_detection_failover_and_recovery() {
    let r = ClusterShardedSim::new(base_cfg().chaos(crash_failover())).run(1, Execution::Sequential);
    let c = &r.chaos;
    assert!(c.crash_drops > 0, "the partition must eat frames: {c:?}");
    assert!(c.suspected > 0, "missed heartbeats must raise suspicion: {c:?}");
    assert!(c.inflight_lost > 0, "suspicion must abandon in-flight requests: {c:?}");
    assert!(c.reroutes > 0, "issues during the outage must re-route: {c:?}");
    assert!(c.recovered > 0, "heartbeats resume after the window: {c:?}");
    assert_eq!(c.fault_drops, 0, "a pure partition draws no stochastic verdicts");
}

#[test]
fn flap_drops_are_absorbed_by_the_transport() {
    let faulty = ClusterShardedSim::new(base_cfg().chaos(link_flap())).run(1, Execution::Sequential);
    let c = &faulty.chaos;
    assert!(c.fault_drops > 0, "flap windows must drop frames: {c:?}");
    assert!(c.rto > 0, "dropped frames must cost retransmission timeouts: {c:?}");
    assert_eq!(c.crash_drops, 0, "no partitions in this scenario");
    assert!(
        faulty.chain.load.completed > 0,
        "go-back-N must still complete requests through the flaps"
    );
}

#[test]
fn straggler_moves_the_latency_tail() {
    let healthy = ClusterShardedSim::new(base_cfg()).run(1, Execution::Sequential);
    let slow = ClusterShardedSim::new(base_cfg().chaos(straggler())).run(1, Execution::Sequential);
    assert_eq!(slow.chaos.fault_drops + slow.chaos.crash_drops, 0, "stragglers lose nothing");
    assert!(
        slow.p99 > healthy.p99,
        "an 8× straggler must stretch p99 ({} vs {})",
        slow.p99.as_nanos(),
        healthy.p99.as_nanos()
    );
    assert!(
        slow.chain.load.completed > 0,
        "the cluster keeps completing through the straggle window"
    );
}

/// A rack-scoped crash takes out both workers of pair 1 at once, and
/// recovery is *costed*: the pair re-enters routing only after paying
/// QP re-establishment + MR re-registration + pool re-sync, so the
/// time-to-recovery histogram must be non-zero and both rejoins must
/// complete within the run.
#[test]
fn rack_crash_pays_a_costed_rejoin() {
    let r = ClusterShardedSim::new(base_cfg().chaos(rack_crash_rejoin()))
        .run(1, Execution::Sequential);
    let c = &r.chaos;
    assert!(c.suspected >= 2, "both rack members must be suspected: {c:?}");
    assert!(c.recovered >= 2, "heartbeats resume after the window: {c:?}");
    assert_eq!(c.rejoins, 2, "both workers must complete the costed rejoin: {c:?}");
    assert_eq!(c.rejoins_aborted, 0, "a single clean outage aborts nothing: {c:?}");
    assert!(!c.ttr_p50.is_zero(), "recovery must take measurable time: {c:?}");
    assert!(c.ttr_p99 >= c.ttr_p50, "histogram tails are ordered: {c:?}");
    // Detection alone takes heartbeat_k periods; the paid rejoin makes
    // TTR strictly larger than the ~774 µs default control-plane cost.
    assert!(
        c.ttr_p50 > Nanos::from_micros(700),
        "TTR must include the control-plane cost: {c:?}"
    );
    assert!(r.chain.load.completed > 0, "survivors keep serving");
}

/// Doubling the configured control-plane costs must move the measured
/// time-to-recovery: TTR is an output of the cost model, not a constant.
#[test]
fn time_to_recovery_scales_with_rejoin_costs() {
    use palladium_core::connpool::RejoinCosts;
    let cfg = || base_cfg().duration_ms(7).chaos(rack_crash_rejoin());
    let base = ClusterShardedSim::new(cfg()).run(1, Execution::Sequential);
    let pricey = ClusterShardedSim::new(cfg().rejoin(RejoinCosts {
        qp_setup: Nanos::from_micros(100),
        mr_register: Nanos::from_micros(200),
        resync_ns_per_kib: 64,
    }))
    .run(1, Execution::Sequential);
    assert_eq!(base.chaos.rejoins, 2, "{:?}", base.chaos);
    assert_eq!(pricey.chaos.rejoins, 2, "{:?}", pricey.chaos);
    assert!(
        pricey.chaos.ttr_p50 > base.chaos.ttr_p50,
        "4× control-plane costs must raise TTR ({} vs {})",
        pricey.chaos.ttr_p50.as_nanos(),
        base.chaos.ttr_p50.as_nanos()
    );
}

/// The gray link drops/delays pair 2's chain traffic but never touches
/// heartbeats (they travel worker → ingress, not 4 → 5): pure heartbeat
/// detection must stay silent while the differential EWMA demotes the
/// pair and deflects its traffic.
#[test]
fn gray_partition_is_caught_by_ewma_not_heartbeats() {
    let r = ClusterShardedSim::new(base_cfg().chaos(gray_partition()))
        .run(1, Execution::Sequential);
    let c = &r.chaos;
    assert_eq!(c.suspected, 0, "gray faults sit below the heartbeat threshold: {c:?}");
    assert_eq!(c.reroutes, 0, "no crash failover without suspicion: {c:?}");
    assert!(c.fault_drops > 0, "the gray link must actually drop frames: {c:?}");
    assert!(c.gray_demoted > 0, "the EWMA comparison must demote pair 2: {c:?}");
    assert!(
        c.gray_reroutes > 0,
        "probation must deflect the pair's traffic: {c:?}"
    );
    assert!(r.chain.load.completed > 0, "the cluster keeps serving through it");
}

/// Repeated outage cycles on one worker, the second crash landing
/// mid-rejoin: the stale rejoin completion must be voided (epoch
/// machinery), counted as aborted, and the final recovery must still
/// complete cleanly.
#[test]
fn crash_mid_rejoin_aborts_and_recovers() {
    let script = ScenarioScript::new()
        .crash(2, Nanos::from_millis(1), Nanos::from_millis(2))
        .crash(2, Nanos::from_micros(2_200), Nanos::from_micros(3_500));
    let r = ClusterShardedSim::new(base_cfg().chaos(script)).run(1, Execution::Sequential);
    let c = &r.chaos;
    assert_eq!(c.suspected, 2, "each outage is one suspicion: {c:?}");
    assert_eq!(c.recovered, 2, "heartbeats resume after each window: {c:?}");
    assert_eq!(c.rejoins_aborted, 1, "the mid-rejoin crash voids one rejoin: {c:?}");
    assert_eq!(c.rejoins, 1, "only the final recovery completes: {c:?}");
    assert!(!c.ttr_p50.is_zero(), "{c:?}");
}

/// Satellite regression: the per-node fault streams make stochastic
/// drop *counters* — not just aggregate shapes — identical at 1 and 4
/// shards. Before the rework the verdict RNG advanced per-net, so
/// re-sharding reshuffled every coin flip.
#[test]
fn drop_counters_are_shard_count_invariant() {
    let sim = ClusterShardedSim::new(base_cfg().chaos(link_flap()));
    let one = sim.run(1, Execution::Sequential);
    let four = sim.run(4, Execution::Sequential);
    assert!(one.chaos.fault_drops > 0, "scenario must exercise the fault path");
    assert_eq!(
        one.chaos, four.chaos,
        "fault/health counters diverged between 1 and 4 shards"
    );
}

/// A scripted fault storm, proptest-shaped: random crash windows, flap
/// probabilities and straggle factors over a smaller (2-pair) cluster
/// must stay byte-identical between 1 and 4 shards. Drives scenario
/// shapes no hand-written pin would think of.
fn storm_strategy() -> impl Strategy<Value = ScenarioScript> {
    let crash = (0usize..4, 200_000u64..1_200_000, 200_000u64..1_500_000).prop_map(
        |(node, from, len)| {
            ScenarioScript::new().crash(node, Nanos(from), Nanos(from + len))
        },
    );
    let flap = (0usize..4, 0.01f64..0.2, 100_000u64..1_000_000, 200_000u64..1_500_000)
        .prop_map(|(node, p, from, len)| {
            ScenarioScript::new().flap(node, p, Nanos(from), Nanos(from + len))
        });
    let corrupt = (0usize..4, 0.005f64..0.05).prop_map(|(node, p)| {
        ScenarioScript::new().storm(node, FaultPlan::corrupting(p))
    });
    let straggle = (0usize..5, 2.0f64..12.0, 100_000u64..1_000_000, 200_000u64..1_500_000)
        .prop_map(|(node, f, from, len)| {
            ScenarioScript::new().straggle(node, f, Nanos(from), Nanos(from + len))
        });
    let gray = (0usize..5, 1usize..5, 0.01f64..0.1, 0u64..20_000, 100_000u64..1_000_000, 200_000u64..1_500_000)
        .prop_map(|(src, off, p, delay, from, len)| {
            let dst = (src + off) % 5;
            ScenarioScript::new().gray_link(src, dst, p, Nanos(delay), Nanos(from), Nanos(from + len))
        });
    proptest::collection::vec(prop_oneof![crash, flap, corrupt, straggle, gray], 1..4).prop_map(
        |parts| {
            let mut script = ScenarioScript::new();
            for part in parts {
                for op in part.ops() {
                    script = script.op(*op);
                }
            }
            script
        },
    )
}

fn check_storm(script: ScenarioScript) -> Result<(), TestCaseError> {
    let cfg = sharded_config(SystemKind::PalladiumDne, ChainKind::HomeQuery, 2)
        .clients(8)
        .warmup_ms(0)
        .duration_ms(2)
        .chaos(script);
    let sim = ClusterShardedSim::new(cfg);
    let one = trace("storm", &sim.run(1, Execution::Sequential));
    for (shards, execution) in [(4usize, Execution::Sequential), (4, Execution::Threads)] {
        let got = trace("storm", &sim.run(shards, execution));
        prop_assert_eq!(
            &got,
            &one,
            "storm diverged at {} shards / {:?}",
            shards,
            execution
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fault_storms_are_shard_count_invariant(script in storm_strategy()) {
        check_storm(script)?;
    }
}

/// Satellite: a domain-scoped crash compiles to *exactly* the member
/// nodes' down tables — byte-identical to the equivalent per-node ops,
/// member order preserved — and touches no other node.
fn check_domain_compile(
    members: Vec<usize>,
    from: Nanos,
    until: Nanos,
) -> Result<(), TestCaseError> {
    let domain = ScenarioScript::new()
        .domain("d", &members)
        .crash_domain("d", from, until)
        .compile(9);
    let mut manual = ScenarioScript::new();
    for &m in &members {
        manual = manual.crash(m, from, until);
    }
    prop_assert_eq!(&domain, &manual.compile(9), "domain != per-node ops");
    for n in 0..9 {
        let hit = domain.down[n] == vec![(from, until)];
        let miss = domain.down[n].is_empty();
        prop_assert!(
            if members.contains(&n) { hit } else { miss },
            "node {}'s down table is wrong: {:?}",
            n,
            domain.down[n]
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn domain_crash_compiles_to_member_down_tables(
        raw in proptest::collection::vec(0usize..8, 1..6),
        from in 0u64..2_000_000,
        len in 1u64..2_000_000,
    ) {
        // Deduplicate (the domain builder rejects duplicate members)
        // while preserving first-occurrence order.
        let mut members = Vec::new();
        for m in raw {
            if !members.contains(&m) {
                members.push(m);
            }
        }
        check_domain_compile(members, Nanos(from), Nanos(from + len))?;
    }
}
