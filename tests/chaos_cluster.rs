//! Chaos-scenario pins for the sharded Fig 16 cluster.
//!
//! The fault-free golden (`cluster_sharded.rs`) proves the healthy data
//! plane is shard-count-invariant. This suite proves the same for the
//! *unhealthy* one: scripted crash/flap/straggler scenarios — verdicts
//! drawn from per-node fault streams, partitions applied as
//! deterministic down-windows, failover driven by the heartbeat plane —
//! must produce byte-identical reports at 1/2/4/8 shards under both
//! execution modes. A diff here means fault verdicts leaked onto a
//! shard-dependent RNG, the down table diverged between fabric
//! instances, or the health plane observed shard-dependent timing.
//!
//! To regenerate after an *intentional* change:
//! `GOLDEN_REGEN=1 cargo test -q --test chaos_cluster` and commit the
//! updated snapshot together with the change that explains it.
#![recursion_limit = "512"]

use proptest::prelude::*;

use palladium_core::driver::cluster_sharded::{
    ClusterShardedConfig, ClusterShardedReport, ClusterShardedSim,
};
use palladium_core::system::SystemKind;
use palladium_simnet::{Execution, FaultPlan, Nanos, ScenarioScript};
use palladium_workloads::boutique::{sharded_config, ChainKind};

const PAIRS: usize = 4;

fn base_cfg() -> ClusterShardedConfig {
    sharded_config(SystemKind::PalladiumDne, ChainKind::HomeQuery, PAIRS)
        .clients(8 * PAIRS)
        .warmup_ms(1)
        .duration_ms(4)
}

/// Crash pair 1's first worker mid-run; the health plane must suspect
/// it, abandon the in-flight requests, and re-route to survivors until
/// heartbeats resume.
fn crash_failover() -> ScenarioScript {
    ScenarioScript::new().crash(2, Nanos::from_micros(1_500), Nanos::from_millis(3))
}

/// Flap two workers' links with stochastic drop windows: go-back-N
/// absorbs the losses (rto/fault_drops count them), no failover fires.
fn link_flap() -> ScenarioScript {
    ScenarioScript::new()
        .flap(5, 0.05, Nanos::from_millis(1), Nanos::from_micros(2_500))
        .flap(1, 0.02, Nanos::from_micros(1_800), Nanos::from_micros(3_200))
}

/// One worker computes 8× slower for 2 ms: no losses, but the latency
/// tail must move.
fn straggler() -> ScenarioScript {
    ScenarioScript::new().straggle(6, 8.0, Nanos::from_millis(1), Nanos::from_millis(3))
}

/// Hex-exact rendering (no shortest-repr float ambiguity), the
/// fault-free trace extended with histogram tails and chaos accounting.
fn trace(name: &str, r: &ClusterShardedReport) -> String {
    let c = &r.chaos;
    format!(
        "chaos/{name}: rps={:016x} mean={} p50={} p99={} p999={} completed={} \
         sw_bytes={} dma_bytes={} events={} messages={} \
         fault_drops={} crash_drops={} corrupt={} rto={} suspected={} \
         recovered={} inflight_lost={} reroutes={} shed={}\n",
        r.chain.load.rps.to_bits(),
        r.chain.load.mean_latency.as_nanos(),
        r.p50.as_nanos(),
        r.p99.as_nanos(),
        r.p999.as_nanos(),
        r.chain.load.completed,
        r.chain.software_copy_bytes,
        r.chain.rnic_dma_bytes,
        r.events,
        r.messages,
        c.fault_drops,
        c.crash_drops,
        c.corrupt,
        c.rto,
        c.suspected,
        c.recovered,
        c.inflight_lost,
        c.reroutes,
        c.shed
    )
}

fn scenarios() -> Vec<(&'static str, ScenarioScript)> {
    vec![
        ("crash_failover", crash_failover()),
        ("link_flap", link_flap()),
        ("straggler", straggler()),
    ]
}

#[test]
fn chaos_scenarios_reproduce_the_snapshot_at_every_shard_count() {
    let mut serial = String::new();
    let mut sims = Vec::new();
    for (name, script) in scenarios() {
        let sim = ClusterShardedSim::new(base_cfg().chaos(script));
        let r = sim.run(1, Execution::Sequential);
        assert!(r.chain.load.completed > 0, "{name}: cluster must survive the scenario");
        serial.push_str(&trace(name, &r));
        sims.push((name, sim));
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/chaos_cluster_golden.txt");
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &serial).unwrap();
    } else {
        let want = std::fs::read_to_string(path)
            .expect("golden snapshot missing — run with GOLDEN_REGEN=1 to create it");
        assert_eq!(serial, want, "--shards 1 diverged from the golden snapshot");
    }

    for (name, sim) in &sims {
        let one = trace(name, &sim.run(1, Execution::Sequential));
        for shards in [2usize, 4, 8] {
            for execution in [Execution::Sequential, Execution::Threads] {
                let got = trace(name, &sim.run(shards, execution));
                assert_eq!(
                    got, one,
                    "{name}: {shards} shards / {execution:?} diverged from the serial bytes"
                );
            }
        }
    }
}

#[test]
fn crash_triggers_detection_failover_and_recovery() {
    let r = ClusterShardedSim::new(base_cfg().chaos(crash_failover())).run(1, Execution::Sequential);
    let c = &r.chaos;
    assert!(c.crash_drops > 0, "the partition must eat frames: {c:?}");
    assert!(c.suspected > 0, "missed heartbeats must raise suspicion: {c:?}");
    assert!(c.inflight_lost > 0, "suspicion must abandon in-flight requests: {c:?}");
    assert!(c.reroutes > 0, "issues during the outage must re-route: {c:?}");
    assert!(c.recovered > 0, "heartbeats resume after the window: {c:?}");
    assert_eq!(c.fault_drops, 0, "a pure partition draws no stochastic verdicts");
}

#[test]
fn flap_drops_are_absorbed_by_the_transport() {
    let faulty = ClusterShardedSim::new(base_cfg().chaos(link_flap())).run(1, Execution::Sequential);
    let c = &faulty.chaos;
    assert!(c.fault_drops > 0, "flap windows must drop frames: {c:?}");
    assert!(c.rto > 0, "dropped frames must cost retransmission timeouts: {c:?}");
    assert_eq!(c.crash_drops, 0, "no partitions in this scenario");
    assert!(
        faulty.chain.load.completed > 0,
        "go-back-N must still complete requests through the flaps"
    );
}

#[test]
fn straggler_moves_the_latency_tail() {
    let healthy = ClusterShardedSim::new(base_cfg()).run(1, Execution::Sequential);
    let slow = ClusterShardedSim::new(base_cfg().chaos(straggler())).run(1, Execution::Sequential);
    assert_eq!(slow.chaos.fault_drops + slow.chaos.crash_drops, 0, "stragglers lose nothing");
    assert!(
        slow.p99 > healthy.p99,
        "an 8× straggler must stretch p99 ({} vs {})",
        slow.p99.as_nanos(),
        healthy.p99.as_nanos()
    );
    assert!(
        slow.chain.load.completed > 0,
        "the cluster keeps completing through the straggle window"
    );
}

/// Satellite regression: the per-node fault streams make stochastic
/// drop *counters* — not just aggregate shapes — identical at 1 and 4
/// shards. Before the rework the verdict RNG advanced per-net, so
/// re-sharding reshuffled every coin flip.
#[test]
fn drop_counters_are_shard_count_invariant() {
    let sim = ClusterShardedSim::new(base_cfg().chaos(link_flap()));
    let one = sim.run(1, Execution::Sequential);
    let four = sim.run(4, Execution::Sequential);
    assert!(one.chaos.fault_drops > 0, "scenario must exercise the fault path");
    assert_eq!(
        one.chaos, four.chaos,
        "fault/health counters diverged between 1 and 4 shards"
    );
}

/// A scripted fault storm, proptest-shaped: random crash windows, flap
/// probabilities and straggle factors over a smaller (2-pair) cluster
/// must stay byte-identical between 1 and 4 shards. Drives scenario
/// shapes no hand-written pin would think of.
fn storm_strategy() -> impl Strategy<Value = ScenarioScript> {
    let crash = (0usize..4, 200_000u64..1_200_000, 200_000u64..1_500_000).prop_map(
        |(node, from, len)| {
            ScenarioScript::new().crash(node, Nanos(from), Nanos(from + len))
        },
    );
    let flap = (0usize..4, 0.01f64..0.2, 100_000u64..1_000_000, 200_000u64..1_500_000)
        .prop_map(|(node, p, from, len)| {
            ScenarioScript::new().flap(node, p, Nanos(from), Nanos(from + len))
        });
    let corrupt = (0usize..4, 0.005f64..0.05).prop_map(|(node, p)| {
        ScenarioScript::new().storm(node, FaultPlan::corrupting(p))
    });
    let straggle = (0usize..5, 2.0f64..12.0, 100_000u64..1_000_000, 200_000u64..1_500_000)
        .prop_map(|(node, f, from, len)| {
            ScenarioScript::new().straggle(node, f, Nanos(from), Nanos(from + len))
        });
    proptest::collection::vec(prop_oneof![crash, flap, corrupt, straggle], 1..4).prop_map(
        |parts| {
            let mut script = ScenarioScript::new();
            for part in parts {
                for op in part.ops() {
                    script = script.op(*op);
                }
            }
            script
        },
    )
}

fn check_storm(script: ScenarioScript) -> Result<(), TestCaseError> {
    let cfg = sharded_config(SystemKind::PalladiumDne, ChainKind::HomeQuery, 2)
        .clients(8)
        .warmup_ms(0)
        .duration_ms(2)
        .chaos(script);
    let sim = ClusterShardedSim::new(cfg);
    let one = trace("storm", &sim.run(1, Execution::Sequential));
    for (shards, execution) in [(4usize, Execution::Sequential), (4, Execution::Threads)] {
        let got = trace("storm", &sim.run(shards, execution));
        prop_assert_eq!(
            &got,
            &one,
            "storm diverged at {} shards / {:?}",
            shards,
            execution
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fault_storms_are_shard_count_invariant(script in storm_strategy()) {
        check_storm(script)?;
    }
}
