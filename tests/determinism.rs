//! Reproducibility: identical configurations produce byte-identical
//! results across all drivers (the DES determinism guarantee).

use palladium::baselines::{EchoConfig, EchoSim, Primitive};
use palladium::core::driver::chain::ChainSim;
use palladium::core::system::SystemKind;
use palladium::workloads::boutique::{self, ChainKind};

#[test]
fn chain_sim_is_deterministic_across_systems() {
    for system in [SystemKind::PalladiumDne, SystemKind::FuyaoF, SystemKind::Spright] {
        let run = || {
            ChainSim::new(
                boutique::config(system, ChainKind::HomeQuery)
                    .clients(12)
                    .warmup_ms(20)
                    .duration_ms(60),
            )
            .run()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.load.completed, b.load.completed, "{}", system.label());
        assert_eq!(a.mean_latency, b.mean_latency);
        assert_eq!(a.software_copy_bytes, b.software_copy_bytes);
    }
}

#[test]
fn echo_sim_is_deterministic() {
    let cfg = EchoConfig::new(2048).connections(8);
    let a = EchoSim::new(cfg).run_primitive(Primitive::Owdl);
    let b = EchoSim::new(cfg).run_primitive(Primitive::Owdl);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.mean_latency, b.mean_latency);
}
