//! End-to-end integration: a request traverses ingress → RDMA fabric →
//! DNE → function chain → back, and the zero-copy invariant holds on the
//! worker data plane — while every baseline pays real software copies.

use palladium::core::driver::chain::ChainSim;
use palladium::core::system::SystemKind;
use palladium::workloads::boutique::{self, ChainKind};

fn run(system: SystemKind, chain: ChainKind, clients: usize) -> palladium::core::driver::chain::ChainReport {
    ChainSim::new(
        boutique::config(system, chain)
            .clients(clients)
            .warmup_ms(30)
            .duration_ms(120),
    )
    .run()
}

#[test]
fn palladium_dne_is_zero_copy_on_every_chain() {
    for chain in ChainKind::ALL {
        let r = run(SystemKind::PalladiumDne, chain, 20);
        assert!(r.load.completed > 100, "{}: {}", chain.label(), r.load.completed);
        assert_eq!(
            r.software_copy_bytes,
            0,
            "{} must move zero bytes in software on workers",
            chain.label()
        );
        assert!(r.rnic_dma_bytes > 0, "payloads moved by RNIC DMA");
    }
}

#[test]
fn palladium_cne_is_zero_copy_too() {
    let r = run(SystemKind::PalladiumCne, ChainKind::ViewCart, 20);
    assert!(r.load.completed > 100);
    assert_eq!(r.software_copy_bytes, 0);
}

#[test]
fn every_baseline_pays_software_copies() {
    for system in [
        SystemKind::Spright,
        SystemKind::FuyaoF,
        SystemKind::FuyaoK,
        SystemKind::NightCore,
    ] {
        let r = run(system, ChainKind::HomeQuery, 20);
        assert!(r.load.completed > 20, "{}: {}", system.label(), r.load.completed);
        assert!(
            r.software_copy_bytes > 0,
            "{} is not a zero-copy design",
            system.label()
        );
    }
}

#[test]
fn dpu_utilization_matches_paper_accounting() {
    // Palladium DNE: two busy-polled DPU cores -> ≈200% DPU, no worker CPU
    // for the engines; CNE: the inverse.
    let dne = run(SystemKind::PalladiumDne, ChainKind::HomeQuery, 20);
    assert!(dne.dpu_util_pct >= 200.0);
    let cne = run(SystemKind::PalladiumCne, ChainKind::HomeQuery, 20);
    assert_eq!(cne.dpu_util_pct, 0.0);
    assert!(cne.cpu_util_pct > 0.0);
    // FUYAO pins polling cores on both workers.
    let fuyao = run(SystemKind::FuyaoF, ChainKind::HomeQuery, 20);
    assert!(fuyao.cpu_util_pct >= 200.0, "pollers pin cores: {}", fuyao.cpu_util_pct);
}
