//! Golden-trace pin for the sharded Fig 16 cluster.
//!
//! Counterpart of `sharded_chain.rs`, one level up the fidelity ladder:
//! not the synthetic multi-node traffic pattern but the full Palladium
//! data plane — pools, RC state machines, DNE scheduling, the ingress
//! gateway — replicated over four worker pairs and partitioned across
//! shards with one `RdmaNet` instance each. One snapshot serves every
//! shard count and execution mode because the sharded cluster driver is
//! deterministic in the strong sense (see
//! `palladium_core::driver::cluster_sharded`): a diff here means either
//! the kernel's ordering contract, the per-shard fabric egress, or the
//! canonical wiring order broke.
//!
//! To regenerate after an *intentional* change:
//! `GOLDEN_REGEN=1 cargo test -q --test cluster_sharded` and commit the
//! updated snapshot together with the change that explains it.

use palladium_core::driver::cluster_sharded::{ClusterShardedReport, ClusterShardedSim};
use palladium_core::system::SystemKind;
use palladium_simnet::Execution;
use palladium_workloads::boutique::{sharded_config, ChainKind};

const PAIRS: usize = 4;

fn golden_cfg() -> palladium_core::driver::cluster_sharded::ClusterShardedConfig {
    sharded_config(SystemKind::PalladiumDne, ChainKind::HomeQuery, PAIRS)
        .clients(8 * PAIRS)
        .warmup_ms(1)
        .duration_ms(4)
}

/// Hex-exact rendering (no shortest-repr float ambiguity), mirroring
/// `golden_traces.rs`.
fn trace(r: &ClusterShardedReport) -> String {
    format!(
        "cluster_sharded/4p: rps={:016x} mean={} p99={} completed={} \
         sw_bytes={} dma_bytes={} dpu={:016x} events={} messages={}\n",
        r.chain.load.rps.to_bits(),
        r.chain.load.mean_latency.as_nanos(),
        r.chain.load.p99_latency.as_nanos(),
        r.chain.load.completed,
        r.chain.software_copy_bytes,
        r.chain.rnic_dma_bytes,
        r.chain.dpu_util_pct.to_bits(),
        r.events,
        r.messages
    )
}

#[test]
fn every_shard_count_reproduces_the_snapshot() {
    let sim = ClusterShardedSim::new(golden_cfg());
    let serial_report = sim.run(1, Execution::Sequential);
    assert!(
        serial_report.chain.load.completed > 0,
        "the golden configuration must complete requests"
    );
    let serial = trace(&serial_report);

    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/cluster_sharded_golden.txt"
    );
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &serial).unwrap();
    } else {
        let want = std::fs::read_to_string(path)
            .expect("golden snapshot missing — run with GOLDEN_REGEN=1 to create it");
        assert_eq!(serial, want, "--shards 1 diverged from the golden snapshot");
    }

    for shards in [2usize, 4, 8] {
        for execution in [Execution::Sequential, Execution::Threads] {
            let got = trace(&sim.run(shards, execution));
            assert_eq!(
                got, serial,
                "{shards} shards / {execution:?} diverged from the serial bytes"
            );
        }
    }
}

#[test]
fn striding_rides_the_same_grid() {
    // Batching k windows per barrier is exactly running one k·L-wide
    // window (the kernel's grid-equivalence contract), so a run on the
    // default width at stride 1 and a run on half the width at stride 2
    // share the same effective barrier spacing — and must produce the
    // same bytes with the same barrier count. Halving the width *without*
    // striding doubles the barriers but still cannot change results.
    let base = golden_cfg();
    // 326 × 2 = 652: both configurations run the *same* effective grid
    // (and both stay at or under the ~653 ns frame lookahead).
    let plain = ClusterShardedSim::new(base.clone().window_ns(652)).run(4, Execution::Sequential);
    let strided =
        ClusterShardedSim::new(base.clone().window_ns(326).stride(2)).run(4, Execution::Sequential);
    assert_eq!(trace(&strided), trace(&plain), "striding changed results");
    assert_eq!(
        strided.windows, plain.windows,
        "equal effective widths must run equal barrier counts"
    );

    // `windows` counts barriers: at fixed width, stride 2 halves them —
    // this is the knob's entire point. The narrow grid merges on
    // different boundaries, so only the physical results (not the
    // frames-in-flight tail counter) are compared.
    let narrow = ClusterShardedSim::new(base.window_ns(326)).run(4, Execution::Sequential);
    assert!(
        narrow.windows > strided.windows + strided.windows / 2,
        "without striding, half-width runs ~2× the barriers ({} vs {})",
        narrow.windows,
        strided.windows
    );
    let results = |r: &ClusterShardedReport| {
        let t = trace(r);
        t.split(" messages=").next().unwrap().to_string()
    };
    assert_eq!(results(&narrow), results(&plain), "narrower windows changed results");
}

#[test]
fn mailboxes_report_their_high_water_marks() {
    // Satellite instrumentation: every cross-shard channel of a parallel
    // run exposes spill counts and auto-sized high-water marks.
    let sim = ClusterShardedSim::new(golden_cfg());
    let r = sim.run(4, Execution::Threads);
    assert_eq!(r.channels.len(), 4 * 4, "one stats row per shard pair");
    assert!(r.messages > 0, "the cluster exchanges cross-shard frames");
    assert!(
        r.channels.iter().any(|c| c.high_water > 0),
        "some channel carried traffic"
    );
    for c in &r.channels {
        assert!(c.capacity.is_power_of_two(), "auto-sizing keeps pow2 rings");
    }
}
