//! Golden-trace pin for the sharded multi-node chain workload.
//!
//! Counterpart of `golden_traces.rs` (which pins the serial drivers —
//! untouched by the sharding work): the multi-node driver's report is
//! compared byte-for-byte against a checked-in snapshot at **every** shard
//! count and execution mode. One snapshot serves all of them because the
//! sharded runner is deterministic in the strong sense (see
//! `palladium_simnet::shard`): `--shards 1` and every parallel run must
//! reproduce the identical bytes, so a future change that breaks either
//! the kernel's ordering contract or the shard merge shows up here as a
//! diff.
//!
//! To regenerate after an *intentional* workload change:
//! `GOLDEN_REGEN=1 cargo test -q --test sharded_chain` and commit the
//! updated snapshot together with the change that explains it.

use palladium_core::driver::multinode::{MultiNodeConfig, MultiNodeReport, MultiNodeSim};
use palladium_simnet::{Execution, Nanos};

fn golden_cfg() -> MultiNodeConfig {
    let mut cfg = MultiNodeConfig::scaled(16);
    cfg.clients_per_node = 4;
    cfg.warmup = Nanos::from_millis(2);
    cfg.duration = Nanos::from_millis(8);
    cfg
}

/// Hex-exact rendering (no shortest-repr float ambiguity), mirroring
/// `golden_traces.rs`.
fn trace(r: &MultiNodeReport) -> String {
    format!(
        "multinode/16n4c: rps={:016x} mean={} p99={} completed={} events={} messages={}\n",
        r.load.rps.to_bits(),
        r.load.mean_latency.as_nanos(),
        r.load.p99_latency.as_nanos(),
        r.load.completed,
        r.events,
        r.messages
    )
}

#[test]
fn every_shard_count_reproduces_the_snapshot() {
    let sim = MultiNodeSim::new(golden_cfg());
    let serial = trace(&sim.run(1, Execution::Sequential));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/multinode_golden.txt");
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::create_dir_all(std::path::Path::new(path).parent().unwrap()).unwrap();
        std::fs::write(path, &serial).unwrap();
    } else {
        let want = std::fs::read_to_string(path)
            .expect("golden snapshot missing — run with GOLDEN_REGEN=1 to create it");
        assert_eq!(serial, want, "--shards 1 diverged from the golden snapshot");
    }

    for shards in [2usize, 4] {
        for execution in [Execution::Sequential, Execution::Threads] {
            let got = trace(&sim.run(shards, execution));
            assert_eq!(
                got, serial,
                "{shards} shards / {execution:?} diverged from the serial bytes"
            );
        }
    }
}

#[test]
fn heap_backend_reproduces_the_same_sharded_bytes() {
    // Like the serial golden suite: the queue backend is an optimization,
    // never a semantics change — also under the sharded runner, which
    // constructs every shard's queue from the caller thread's selection.
    let sim = MultiNodeSim::new(golden_cfg());
    palladium_simnet::set_queue_kind(palladium_simnet::QueueKind::BinaryHeap);
    let heap = trace(&sim.run(2, Execution::Sequential));
    palladium_simnet::set_queue_kind(palladium_simnet::QueueKind::Adaptive);
    let adaptive = trace(&sim.run(2, Execution::Sequential));
    assert_eq!(heap, adaptive, "backends diverged under sharding");
}
