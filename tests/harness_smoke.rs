//! Smoke tests: every driver in the workspace runs a short window through
//! the shared `palladium_simnet::Harness` trampoline and produces a
//! well-formed report.
//!
//! The invariants asserted here are the [`LoadReport`] contract the
//! drivers share: work completed (`completed > 0`, `rps > 0`), latency
//! statistics are coherent (`p99 >= mean > 0`), and the rate is consistent
//! with the completion count over the measurement window.

use palladium::baselines::{EchoConfig, EchoSim, PathMode, Primitive};
use palladium::core::driver::chain::{ChainSim, ChainSimConfig};
use palladium::core::driver::channel::{ChannelSim, ChannelSimConfig};
use palladium::core::driver::fairness::{FairnessSim, FairnessSimConfig};
use palladium::core::driver::ingress_sweep::{IngressSim, IngressSimConfig};
use palladium::core::driver::LoadReport;
use palladium::core::dwrr::SchedPolicy;
use palladium::core::system::{IngressKind, SystemKind};
use palladium::ipc::ChannelKind;
use palladium::simnet::Nanos;
use palladium::workloads::{boutique, ChainKind};

/// The shared report contract.
fn assert_load_report(name: &str, r: &LoadReport, duration: Nanos) {
    assert!(r.completed > 0, "{name}: no requests completed");
    assert!(r.rps > 0.0, "{name}: rps must be positive");
    assert!(
        r.mean_latency > Nanos::ZERO,
        "{name}: mean latency must be positive"
    );
    assert!(
        r.p99_latency >= r.mean_latency,
        "{name}: p99 {} < mean {}",
        r.p99_latency,
        r.mean_latency
    );
    // rps is defined as completed / duration.
    let expect = r.completed as f64 / duration.as_secs_f64();
    assert!(
        (r.rps - expect).abs() < 1e-6 * expect.max(1.0),
        "{name}: rps {} inconsistent with completed {} over {duration}",
        r.rps,
        r.completed
    );
}

#[test]
fn channel_driver_smoke() {
    for kind in [ChannelKind::ComchE, ChannelKind::ComchP, ChannelKind::Tcp] {
        let mut cfg = ChannelSimConfig::new(kind, 8);
        cfg.duration = Nanos::from_millis(10);
        cfg.warmup = Nanos::from_millis(2);
        let r = ChannelSim::new(cfg).run();
        assert_load_report(&format!("channel/{kind:?}"), &r, cfg.duration);
    }
}

#[test]
fn ingress_sweep_driver_smoke() {
    for kind in [
        IngressKind::Palladium,
        IngressKind::FStackDeferred,
        IngressKind::KernelDeferred,
    ] {
        let mut cfg = IngressSimConfig::fig13(kind, 8);
        cfg.duration = Nanos::from_millis(20);
        cfg.warmup = Nanos::from_millis(5);
        let r = IngressSim::new(cfg).sweep();
        assert_load_report(&format!("ingress/{kind:?}"), &r, cfg.duration);
    }
}

#[test]
fn fairness_driver_smoke() {
    // Fairness reports per-tenant series rather than a LoadReport; assert
    // its own invariants: every tenant completes work and the series
    // carries positive rates.
    let report = FairnessSim::new(FairnessSimConfig::paper(SchedPolicy::Dwrr, 0.005)).run();
    assert_eq!(report.series.len(), 3);
    assert_eq!(report.totals.len(), 3);
    for (tenant, total) in &report.totals {
        assert!(*total > 0, "tenant {tenant:?} completed nothing");
    }
    for (tenant, series) in &report.series {
        assert!(
            series.iter().any(|&(_, rps)| rps > 0.0),
            "tenant {tenant:?} has an all-zero series"
        );
    }
}

#[test]
fn chain_driver_smoke() {
    for system in [SystemKind::PalladiumDne, SystemKind::Spright] {
        let cfg = boutique::config(system, ChainKind::HomeQuery)
            .clients(8)
            .warmup_ms(10)
            .duration_ms(40);
        let duration = cfg.duration;
        let r = ChainSim::new(cfg).run();
        assert_load_report(&format!("chain/{system:?}"), &r.load, duration);
        assert_eq!(r.rps, r.load.rps, "chain aliases must agree");
    }
}

#[test]
fn baselines_echo_driver_smoke() {
    let cfg = EchoConfig {
        duration: Nanos::from_millis(10),
        warmup: Nanos::from_millis(2),
        ..EchoConfig::new(1024)
    };
    let sim = EchoSim::new(cfg);
    for prim in Primitive::ALL {
        let r = sim.run_primitive(prim);
        assert_load_report(&format!("echo/{}", prim.label()), &r, cfg.duration);
    }
    for mode in [PathMode::OffPath, PathMode::OnPath] {
        let r = sim.run_path_mode(mode);
        assert_load_report(&format!("echo/{mode:?}"), &r, cfg.duration);
    }
}

#[test]
fn chain_sim_config_smoke() {
    // The ChainSimConfig builder used above is re-exported through the
    // facade; keep its surface stable.
    let cfg = ChainSimConfig::new(
        SystemKind::PalladiumDne,
        boutique::app(),
        0,
    );
    assert!(cfg.clients > 0);
}
