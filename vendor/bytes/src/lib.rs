//! Offline vendored subset of the `bytes` crate.
//!
//! The workspace builds in a hermetic environment with no crates.io access,
//! so this crate re-implements exactly the slice of the `bytes` 1.x API the
//! workspace uses: cheaply-clonable immutable [`Bytes`], growable
//! [`BytesMut`], and the [`Buf`]/[`BufMut`] cursor traits (big-endian
//! integer accessors, matching the upstream defaults).
//!
//! Semantics intentionally mirror upstream where observable: `Bytes` clones
//! share the backing allocation, `split_to`/`split_off` are O(1) on `Bytes`
//! and O(n) on `BytesMut` (upstream is O(1); callers here never rely on
//! that), and all multi-byte accessors are big-endian.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

/// A cheaply clonable, contiguous, immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    // u32 offsets keep the handle at 24 bytes — `Bytes` rides inside the
    // simulator's event enums, so its size is on the DES hot path. Buffers
    // larger than 4 GiB are rejected at construction.
    start: u32,
    end: u32,
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Bytes {
    /// An empty buffer. Allocation-free: every empty `Bytes` shares one
    /// static backing `Arc` (empty buffers are constructed per completion
    /// on simulation hot paths; upstream `bytes` is likewise alloc-free
    /// here).
    pub fn new() -> Self {
        static EMPTY: std::sync::OnceLock<Arc<[u8]>> = std::sync::OnceLock::new();
        Bytes {
            data: Arc::clone(EMPTY.get_or_init(|| Arc::from(&[][..]))),
            start: 0,
            end: 0,
        }
    }

    /// A buffer borrowing a `'static` slice (copied here; upstream borrows).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from(s.to_vec())
    }

    /// A buffer of `len` zero bytes with `prefix` written at the start.
    ///
    /// Builds the shared allocation directly (`Arc::new_zeroed_slice`), so
    /// unlike `Bytes::from(vec![0; len])` there is no intermediate vector
    /// and no full-length copy — simulators fabricate payloads like this on
    /// their hot paths. (This is an extension over upstream `bytes`.)
    pub fn zeroed_with_prefix(len: usize, prefix: &[u8]) -> Bytes {
        assert!(prefix.len() <= len, "prefix longer than the buffer");
        assert!(len <= u32::MAX as usize, "Bytes buffers are capped at 4 GiB");
        let zeroed = Arc::<[u8]>::new_zeroed_slice(len);
        // SAFETY: zeroed `MaybeUninit<u8>` is a valid initialized `u8`.
        let mut data: Arc<[u8]> = unsafe { zeroed.assume_init() };
        Arc::get_mut(&mut data).expect("freshly allocated")[..prefix.len()]
            .copy_from_slice(prefix);
        Bytes {
            data,
            start: 0,
            end: len as u32,
        }
    }

    /// Copy `src` into a new buffer.
    pub fn copy_from_slice(src: &[u8]) -> Self {
        Bytes::from(src.to_vec())
    }

    /// Mutable access to the viewed bytes, only when this handle is the
    /// *sole* owner of the backing allocation (no clones or slices
    /// alive). Returns `None` otherwise — shared contents stay immutable,
    /// preserving the `Bytes` contract. (An extension over upstream,
    /// mirroring `Arc::get_mut`: the simulators use it to recycle payload
    /// allocations once every traveling handle has dropped.)
    pub fn unique_mut(&mut self) -> Option<&mut [u8]> {
        let (start, end) = (self.start as usize, self.end as usize);
        Arc::get_mut(&mut self.data).map(|d| &mut d[start..end])
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start as usize..self.end as usize]
    }

    /// A sub-range view sharing the same backing allocation.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo as u32,
            end: self.start + hi as u32,
        }
    }

    /// Split off the bytes after `at`, leaving `[0, at)` in `self`.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len());
        let tail = Bytes {
            data: Arc::clone(&self.data),
            start: self.start + at as u32,
            end: self.end,
        };
        self.end = self.start + at as u32;
        tail
    }

    /// Split off the first `at` bytes and return them.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len());
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at as u32,
        };
        self.start += at as u32;
        head
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        assert!(len <= u32::MAX as usize, "Bytes buffers are capped at 4 GiB");
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end: len as u32,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::from(s.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::from(s.as_bytes().to_vec())
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

/// A growable, uniquely owned byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append a slice.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Split off and return the first `at` bytes.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len());
        let tail = self.buf.split_off(at);
        let head = std::mem::replace(&mut self.buf, tail);
        BytesMut { buf: head }
    }

    /// Split off and return the bytes after `at`.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len());
        BytesMut {
            buf: self.buf.split_off(at),
        }
    }

    /// Remove all contents.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Shorten to `len` bytes.
    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Reserve space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { buf: s.to_vec() }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({:?})", Bytes::copy_from_slice(&self.buf))
    }
}

/// Read cursor over a byte source. Multi-byte reads are big-endian, like
/// upstream `bytes`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// The current readable slice.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// True when any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len());
        self.start += cnt as u32;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.buf
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len());
        self.buf.drain(..cnt);
    }
}

/// Write cursor. Multi-byte writes are big-endian, like upstream `bytes`.
pub trait BufMut {
    /// Append a slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for &mut [u8] {
    fn put_slice(&mut self, src: &[u8]) {
        assert!(self.len() >= src.len(), "buffer overflow");
        let (head, tail) = std::mem::take(self).split_at_mut(src.len());
        head.copy_from_slice(src);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_share_and_slice() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let c = b.clone();
        assert_eq!(b, c);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let mut m = b.clone();
        let head = m.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&m[..], &[3, 4, 5]);
    }

    #[test]
    fn unique_mut_requires_sole_ownership() {
        let mut b = Bytes::from(vec![0u8; 8]);
        let c = b.clone();
        assert!(b.unique_mut().is_none(), "clone alive: no mutable access");
        drop(c);
        b.unique_mut().expect("sole owner")[..2].copy_from_slice(&[7, 9]);
        assert_eq!(&b[..4], &[7, 9, 0, 0]);
        // A live slice view also blocks mutation.
        let s = b.slice(2..5);
        assert!(b.unique_mut().is_none());
        drop(s);
        assert!(b.unique_mut().is_some());
    }

    #[test]
    fn big_endian_round_trip() {
        let mut out = BytesMut::new();
        out.put_u16(0xBEEF);
        out.put_u32(0xDEAD_BEEF);
        out.put_u8(7);
        let frozen = out.freeze();
        let mut r = &frozen[..];
        assert_eq!(r.get_u16(), 0xBEEF);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_bufmut_advances() {
        let mut backing = [0u8; 8];
        let mut cursor = &mut backing[..];
        cursor.put_u32(1);
        cursor.put_u32(2);
        assert!(cursor.is_empty());
        assert_eq!(backing, [0, 0, 0, 1, 0, 0, 0, 2]);
    }

    #[test]
    fn bytesmut_split_and_freeze() {
        let mut m = BytesMut::from(&b"HEADbody"[..]);
        let head = m.split_to(4);
        assert_eq!(&head[..], b"HEAD");
        assert_eq!(&m[..], b"body");
        let rest = m.freeze();
        assert_eq!(rest, Bytes::from_static(b"body"));
    }
}
