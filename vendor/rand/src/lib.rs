//! Offline vendored subset of the `rand` crate.
//!
//! Provides a deterministic [`rngs::SmallRng`] (xoshiro256**, seeded via
//! SplitMix64 like upstream's `seed_from_u64`) behind the [`Rng`] /
//! [`SeedableRng`] trait surface the workspace uses: `gen::<u64>()`,
//! `gen::<f64>()` and `gen_range(lo..hi)` over unsigned integer ranges.
//! The stream is *not* bit-compatible with upstream `rand`, but every
//! consumer in this workspace only requires determinism for a fixed seed,
//! which this guarantees.

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Values samplable uniformly from the full domain (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable with `rng.gen_range(lo..hi)`.
pub trait SampleRange: Sized {
    /// Uniform draw from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                // Lemire-style rejection-free reduction is overkill here;
                // widening multiply keeps the bias below 2^-64.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                range.start + hi as $t
            }
        }
    )*};
}

impl_sample_range_uint!(u16, u32, u64, usize);

impl SampleRange for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        range.start + f64::sample(rng) * (range.end - range.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Draw a value of `T` from its full domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draw uniformly from `[lo, hi)`.
    fn gen_range<T: SampleRange>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let f = r.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut seen = [false; 8];
        for _ in 0..10_000 {
            seen[r.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
