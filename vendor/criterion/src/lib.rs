//! Offline vendored subset of the `criterion` crate.
//!
//! Provides the `criterion_group!` / `criterion_main!` / [`Criterion`] /
//! `Bencher::iter` surface so `cargo bench` runs without crates.io access.
//! Measurement is a simple mean-of-N wall-clock loop (no statistical
//! analysis, no warm-up modelling, no HTML reports); it exists so the
//! bench binaries compile, run, and print comparable per-iteration times.

use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a value (best-effort).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Ignored (accepted for upstream config compatibility).
    pub fn measurement_time(self, _: Duration) -> Self {
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let n = b.samples.len().max(1);
        let total: Duration = b.samples.iter().sum();
        let mean = total / n as u32;
        let best = b.samples.iter().min().copied().unwrap_or_default();
        println!(
            "bench {:<40} mean {:>12?}  best {:>12?}  ({} samples)",
            id.as_ref(),
            mean,
            best,
            n
        );
        self
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine` `sample_size` times, recording each run.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Group benchmark functions under a name, upstream-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Emit the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_noop(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = bench_noop
    }

    #[test]
    fn group_runs() {
        benches();
    }

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default().sample_size(5);
        c.bench_function("spin", |b| b.iter(|| black_box(42u64).wrapping_mul(3)));
    }
}
