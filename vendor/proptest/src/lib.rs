//! Offline vendored subset of the `proptest` crate.
//!
//! Implements the property-testing surface this workspace uses — the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`, [`prop_oneof!`],
//! `any::<T>()`, `collection::vec` and the `prop_assert*` macros — over a
//! deterministic seeded generator. Unlike upstream there is **no input
//! shrinking**: a failing case reports the generated inputs (via the
//! panic message) but does not minimize them. Every run uses a fixed seed
//! derived from the test name, so failures reproduce exactly.

use std::fmt;
use std::ops::Range;

pub use rand::rngs::SmallRng as TestRng;
use rand::{Rng, RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Error produced by a failing `prop_assert*`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Result type threaded through property bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + <f64 as rand::Standard>::sample(rng) * (self.end - self.start)
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty strategy range");
        let span = (self.end as i64 - self.start as i64) as u64;
        let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
        (self.start as i64 + hi as i64) as i32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6),
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7),
);

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw from the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<u64>() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::Range;

    /// Vectors of `element` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A strategy for `Vec<S::Value>` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.len.start..self.len.end);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Combinator strategies (used by the macros).
pub mod strategy {
    use super::{BoxedStrategy, Strategy, TestRng};
    use rand::Rng;

    /// Weighted choice among strategies of a common value type.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Build from `(weight, strategy)` arms.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "union needs positive total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0u64..self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights exhausted")
        }
    }

    /// Box a strategy (helper for `prop_oneof!`, keeps inference simple).
    pub fn boxed<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
        Box::new(s)
    }
}

/// Derive a stable 64-bit seed from the test name so failures reproduce.
pub fn seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Run `cases` generated inputs of `strategy` through `body`.
pub fn run_property<S: Strategy>(
    name: &str,
    config: &ProptestConfig,
    strategy: &S,
    mut body: impl FnMut(S::Value) -> TestCaseResult,
) where
    S::Value: fmt::Debug,
{
    let mut rng = TestRng::seed_from_u64(seed_for(name));
    for case in 0..config.cases {
        let input = strategy.generate(&mut rng);
        let shown = format!("{input:?}");
        if let Err(e) = body(input) {
            panic!(
                "property '{name}' failed at case {case}/{}: {e}\n  input: {shown}",
                config.cases
            );
        }
    }
}

/// The `proptest!` macro: one or more `#[test]` properties whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr); $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                $crate::run_property(
                    stringify!($name),
                    &config,
                    &strategy,
                    |($($arg,)+)| -> $crate::TestCaseResult {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()); $($rest)*);
    };
}

/// Weighted one-of strategy choice.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Fallible assertion inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Fallible equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{:?}` != `{:?}`", a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err($crate::TestCaseError(
                format!("{}: `{:?}` != `{:?}`", format!($($fmt)*), a, b),
            ));
        }
    }};
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::Union;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_respects_weights_roughly() {
        use crate::{Strategy, TestRng};
        use rand::SeedableRng;
        let u = prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let mut rng = TestRng::seed_from_u64(1);
        let ones = (0..1000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!(ones > 800, "{ones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 10u32..20, y in 0usize..5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(any::<u8>(), 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
        }

        #[test]
        fn map_applies(v in (0u16..4).prop_map(|x| x * 2)) {
            prop_assert!(v % 2 == 0 && v < 8);
        }
    }

    proptest! {
        #[test]
        fn default_config_works(x in any::<u64>()) {
            prop_assert_eq!(x, x);
        }
    }
}
