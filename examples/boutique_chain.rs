//! Run every Online Boutique chain across all six data planes — a compact
//! version of the paper's Fig 16 — and print the comparison matrix.
//!
//! ```sh
//! cargo run --release --example boutique_chain
//! ```

use palladium::core::driver::chain::ChainSim;
use palladium::core::system::SystemKind;
use palladium::workloads::boutique::{self, ChainKind};

fn main() {
    let clients = 40;
    println!("Online Boutique @ {clients} closed-loop clients (RPS | mean ms | sw-copy KB)\n");
    println!(
        "{:<16} {:>22} {:>22} {:>22}",
        "system",
        ChainKind::HomeQuery.label(),
        ChainKind::ViewCart.label(),
        ChainKind::ProductQuery.label()
    );
    for system in SystemKind::ALL {
        let mut cells = Vec::new();
        for chain in ChainKind::ALL {
            let cfg = boutique::config(system, chain)
                .clients(clients)
                .warmup_ms(50)
                .duration_ms(200);
            let r = ChainSim::new(cfg).run();
            cells.push(format!(
                "{:>7.0} {:>6.2} {:>5.0}",
                r.rps,
                r.mean_latency.as_millis_f64(),
                r.software_copy_bytes as f64 / 1e3 / r.load.completed.max(1) as f64
                    * r.load.completed as f64
                    / 1e0
                    / 1e3
            ));
        }
        println!(
            "{:<16} {:>22} {:>22} {:>22}",
            system.label(),
            cells[0],
            cells[1],
            cells[2]
        );
    }
    println!("\nExpected shape (paper Fig 16): Palladium (DNE) first, CNE second,");
    println!("FUYAO-F/SPRIGHT mid-pack, NightCore last by a wide margin.");
}
