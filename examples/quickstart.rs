//! Quickstart: run one Online Boutique chain on the Palladium data plane
//! and print throughput, latency and the zero-copy proof.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use palladium::core::driver::chain::ChainSim;
use palladium::core::system::SystemKind;
use palladium::workloads::boutique::{self, ChainKind};

fn main() {
    println!("Palladium quickstart: Home Query on the DPU-offloaded data plane\n");

    for clients in [1usize, 20, 40] {
        let cfg = boutique::config(SystemKind::PalladiumDne, ChainKind::HomeQuery)
            .clients(clients)
            .warmup_ms(60)
            .duration_ms(240);
        let report = ChainSim::new(cfg).run();
        println!(
            "clients={clients:>3}  RPS={:>8.0}  mean latency={:>9}  p99={:>9}  \
             worker sw-copies={} bytes (zero-copy ✓)  DPU util={:.0}%",
            report.rps,
            report.mean_latency,
            report.load.p99_latency,
            report.software_copy_bytes,
            report.dpu_util_pct,
        );
        assert_eq!(
            report.software_copy_bytes, 0,
            "Palladium's worker data plane never copies in software"
        );
    }

    println!("\nCompare with SPRIGHT (kernel TCP between nodes):");
    let cfg = boutique::config(SystemKind::Spright, ChainKind::HomeQuery)
        .clients(40)
        .warmup_ms(60)
        .duration_ms(240);
    let spright = ChainSim::new(cfg).run();
    println!(
        "clients= 40  RPS={:>8.0}  mean latency={:>9}  worker sw-copies={} bytes",
        spright.rps, spright.mean_latency, spright.software_copy_bytes
    );
}
