//! Reproduce the Fig 15 fairness experiment interactively: three tenants
//! with weights 6:1:2 share one DNE; compare FCFS against DWRR.
//!
//! ```sh
//! cargo run --release --example multi_tenant_fairness
//! ```

use palladium::core::driver::fairness::{FairnessSim, FairnessSimConfig};
use palladium::core::dwrr::SchedPolicy;

fn main() {
    // The paper's 4-minute schedule compressed 20x (12 virtual seconds).
    let scale = 0.05;
    for policy in [SchedPolicy::Fcfs, SchedPolicy::Dwrr] {
        let report = FairnessSim::new(FairnessSimConfig::paper(policy, scale)).run();
        println!("\n=== {policy:?} DNE ===");
        println!("{:>8} {:>12} {:>12} {:>12}", "t (s)", "T1 (w=6)", "T2 (w=1)", "T3 (w=2)");
        let n = report.series[0].1.len();
        for i in 0..n {
            let (end, _) = report.series[0].1[i];
            let row: Vec<String> = report
                .series
                .iter()
                .map(|(_, s)| format!("{:>9.1}K", s[i].1 / 1e3))
                .collect();
            println!(
                "{:>8.1} {:>12} {:>12} {:>12}",
                end.as_secs_f64() / scale,
                row[0],
                row[1],
                row[2]
            );
        }
        let totals: Vec<String> = report
            .totals
            .iter()
            .map(|(t, n)| format!("T{}: {}", t.raw(), n))
            .collect();
        println!("totals: {}", totals.join("  "));
    }
    println!("\nExpected (paper Fig 15): FCFS lets the bursty tenants starve T1;");
    println!("DWRR holds the 6:1:2 split whenever all three contend.");
}
