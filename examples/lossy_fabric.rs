//! Fault-injection demo: run the Palladium cluster over a lossy, corrupting
//! RDMA fabric and show that the RC transport still delivers every request
//! exactly once (smoltcp-style fault injection, DESIGN.md §8).
//!
//! ```sh
//! cargo run --release --example lossy_fabric
//! ```

use bytes::Bytes;
use palladium::membuf::{MmapExporter, NodeId, PoolId, Region, TenantId};
use palladium::rdma::{
    CqeKind, RdmaConfig, RdmaEvent, RdmaNet, RqEntry, WorkRequest, WrId,
};
use palladium::simnet::{FaultPlan, Nanos, Sim};

fn main() {
    for (drop, corrupt) in [(0.0, 0.0), (0.1, 0.05), (0.25, 0.1)] {
        let mut net = RdmaNet::new(RdmaConfig::default(), 2, 7);
        for node in [NodeId(0), NodeId(1)] {
            let mut e = MmapExporter::new(
                PoolId(node.raw()),
                TenantId(1),
                Region::hugepages(16 << 20),
            );
            net.register_mr(node, &e.export_rdma()).unwrap();
        }
        let (qa, _) = net.connect_immediate(NodeId(0), NodeId(1), TenantId(1));
        net.set_fault(FaultPlan {
            drop_chance: drop,
            corrupt_chance: corrupt,
            ..FaultPlan::NONE
        });
        let n = 500u64;
        for i in 0..n + 64 {
            net.post_recv(
                NodeId(1),
                TenantId(1),
                RqEntry { wr_id: WrId(i), pool: PoolId(1), capacity: 8192 },
            )
            .unwrap();
        }
        let mut sim: Sim<RdmaEvent> = Sim::new();
        for i in 0..n {
            let step = net
                .post_send(
                    sim.now(),
                    NodeId(0),
                    qa,
                    WorkRequest::send(WrId(10_000 + i), Bytes::from(vec![7u8; 1024]), i),
                )
                .unwrap();
            for t in step.events {
                sim.schedule(t.after, t.value);
            }
        }
        let mut received = Vec::new();
        let mut finish = Nanos::ZERO;
        while let Some((now, ev)) = sim.next() {
            let step = net.handle(now, ev);
            for t in step.events {
                sim.schedule(t.after, t.value);
            }
            for cqe in net.poll_cq(NodeId(1), 64) {
                if cqe.kind == CqeKind::Recv {
                    received.push(cqe.imm);
                    finish = now;
                }
            }
        }
        let in_order = received.windows(2).all(|w| w[0] < w[1]);
        println!(
            "drop={:>4.1}%  corrupt={:>4.1}%  delivered {}/{} in-order={} \
             drops={} crc_drops={} retransmit_rounds={} finish={}",
            drop * 100.0,
            corrupt * 100.0,
            received.len(),
            n,
            in_order,
            net.counters.get("drop"),
            net.counters.get("crc_drop"),
            net.counters.get("nak_rewind") + net.counters.get("rto"),
            finish,
        );
        assert_eq!(received.len() as u64, n);
        assert!(in_order);
    }
    println!("\nExactly-once, in-order delivery under every fault plan ✓");
}
