//! Fault-injection demo, two levels of the ladder:
//!
//! 1. **Transport**: run a raw RC queue pair over a lossy, corrupting
//!    RDMA fabric and show that go-back-N still delivers every message
//!    exactly once, in order (smoltcp-style fault injection, DESIGN.md §8).
//! 2. **Cluster**: script a chaos scenario — two flapping links plus a
//!    straggling worker — against the full sharded Fig 16 cluster and
//!    read the tail off the streaming latency histogram. Same run, any
//!    shard count: chaos scenarios are byte-identical at 1/2/4/8 shards
//!    (pinned by `tests/chaos_cluster.rs`).
//!
//! ```sh
//! cargo run --release --example lossy_fabric
//! ```

use bytes::Bytes;
use palladium::core::driver::cluster_sharded::ClusterShardedSim;
use palladium::core::system::SystemKind;
use palladium::membuf::{MmapExporter, NodeId, PoolId, Region, TenantId};
use palladium::rdma::{
    CqeKind, RdmaConfig, RdmaEvent, RdmaNet, RqEntry, WorkRequest, WrId,
};
use palladium::simnet::{Execution, FaultPlan, Nanos, ScenarioScript, Sim};
use palladium::workloads::boutique::{sharded_config, ChainKind};

fn main() {
    for (drop, corrupt) in [(0.0, 0.0), (0.1, 0.05), (0.25, 0.1)] {
        // Exactly-once is a property of a QP that keeps retrying: at 25%
        // drop + 10% corruption the stock budget (7 retries) can lose a
        // long-enough RTO streak and error the QP, so give the demo the
        // same undying budget the chaos driver uses during outages.
        let rdma_cfg = RdmaConfig {
            retry_limit: 100_000,
            rnr_retry_limit: 100_000,
            ..RdmaConfig::default()
        };
        let mut net = RdmaNet::new(rdma_cfg, 2, 7);
        for node in [NodeId(0), NodeId(1)] {
            let mut e = MmapExporter::new(
                PoolId(node.raw()),
                TenantId(1),
                Region::hugepages(16 << 20),
            );
            net.register_mr(node, &e.export_rdma()).unwrap();
        }
        let (qa, _) = net.connect_immediate(NodeId(0), NodeId(1), TenantId(1));
        net.set_fault(FaultPlan {
            drop_chance: drop,
            corrupt_chance: corrupt,
            ..FaultPlan::NONE
        });
        let n = 500u64;
        for i in 0..n + 64 {
            net.post_recv(
                NodeId(1),
                TenantId(1),
                RqEntry { wr_id: WrId(i), pool: PoolId(1), capacity: 8192 },
            )
            .unwrap();
        }
        let mut sim: Sim<RdmaEvent> = Sim::new();
        for i in 0..n {
            let step = net
                .post_send(
                    sim.now(),
                    NodeId(0),
                    qa,
                    WorkRequest::send(WrId(10_000 + i), Bytes::from(vec![7u8; 1024]), i),
                )
                .unwrap();
            for t in step.events {
                sim.schedule(t.after, t.value);
            }
        }
        let mut received = Vec::new();
        let mut finish = Nanos::ZERO;
        while let Some((now, ev)) = sim.next() {
            let step = net.handle(now, ev);
            for t in step.events {
                sim.schedule(t.after, t.value);
            }
            for cqe in net.poll_cq(NodeId(1), 64) {
                if cqe.kind == CqeKind::Recv {
                    received.push(cqe.imm);
                    finish = now;
                }
            }
        }
        let in_order = received.windows(2).all(|w| w[0] < w[1]);
        println!(
            "drop={:>4.1}%  corrupt={:>4.1}%  delivered {}/{} in-order={} \
             drops={} crc_drops={} retransmit_rounds={} finish={}",
            drop * 100.0,
            corrupt * 100.0,
            received.len(),
            n,
            in_order,
            net.counters.get("drop"),
            net.counters.get("crc_drop"),
            net.counters.get("nak_rewind") + net.counters.get("rto"),
            finish,
        );
        assert_eq!(received.len() as u64, n);
        assert!(in_order);
    }
    println!("\nExactly-once, in-order delivery under every fault plan ✓");

    // ── Part 2: a scripted chaos scenario on the sharded cluster ─────────
    //
    // Two worker links flap with stochastic drop windows while another
    // worker computes 8× slower; the RC transport absorbs the losses and
    // the report's histogram shows what the faults cost the tail.
    let pairs = 4;
    let base = sharded_config(SystemKind::PalladiumDne, ChainKind::HomeQuery, pairs)
        .clients(8 * pairs)
        .warmup_ms(1)
        .duration_ms(4);
    let script = ScenarioScript::new()
        .flap(5, 0.05, Nanos::from_millis(1), Nanos::from_micros(2_500))
        .flap(1, 0.02, Nanos::from_micros(1_800), Nanos::from_micros(3_200))
        .straggle(6, 8.0, Nanos::from_millis(1), Nanos::from_millis(3));

    println!("\nChaos on the sharded Fig 16 cluster ({pairs} worker pairs, 2 shards):");
    let healthy = ClusterShardedSim::new(base.clone()).run(2, Execution::Sequential);
    let faulty = ClusterShardedSim::new(base.chaos(script)).run(2, Execution::Sequential);
    for (name, r) in [("fault-free", &healthy), ("flap+straggle", &faulty)] {
        println!(
            "  {name:>13}: p50={:>7} ns  p99={:>8} ns  p99.9={:>8} ns  completed={:>4}  \
             drops={} rto={}",
            r.p50.as_nanos(),
            r.p99.as_nanos(),
            r.p999.as_nanos(),
            r.chain.load.completed,
            r.chaos.fault_drops,
            r.chaos.rto,
        );
    }
    assert!(faulty.chain.load.completed > 0);
    assert!(faulty.chaos.fault_drops > 0);
    assert!(faulty.p99 >= healthy.p99);
    println!("\nScripted chaos absorbed; the tail tells the story ✓");
}
