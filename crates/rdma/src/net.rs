//! `RdmaNet` — the fabric orchestrator tying QPs, RNICs and links together.
//!
//! `RdmaNet` is a *sub-simulator*: drivers call [`RdmaNet::post_send`] /
//! [`RdmaNet::handle`] and receive a [`Step`] containing (a) timed
//! [`RdmaEvent`]s the driver must re-inject into its own event loop and (b)
//! [`RdmaOutput`]s describing externally visible effects (completions ready,
//! one-sided writes landed, connections established). This keeps the RDMA
//! protocol fully testable on its own: the unit tests below run entire
//! lossy-fabric exchanges by trampolining events through a bare
//! [`palladium_simnet::Sim`].
//!
//! Reliability model (RC, message granularity): go-back-N with cumulative
//! ACKs, NAK-on-gap, RNR NAK + retry for SENDs without receive buffers, and
//! an RTO guarding ACK loss. Corrupted frames are dropped by the receiver's
//! CRC check and recovered the same way. READ responses are modelled as
//! reliable (documented deviation — no Palladium experiment exercises READ).

use bytes::Bytes;

use palladium_membuf::{MmapExport, NodeId, TenantId};
use palladium_simnet::{
    Counters, FaultPlan, FaultTimeline, Nanos, SimRng, Slab, Timed, Verdict,
};

use crate::config::RdmaConfig;
use crate::fabric::{Packet, PacketKind};
use crate::mr::MrKey;
use crate::qp::{Inflight, RxDecision};
use crate::rnic::{Rnic, RnicError, RqEntry};
use crate::verbs::{Cqe, CqeKind, CqeStatus, OpKind, Qpn, RemoteAddr, WorkRequest, WrId};

/// Events `RdmaNet` schedules for itself; drivers wrap them in their own
/// event enum and hand them back via [`RdmaNet::handle`].
#[derive(Clone, Debug)]
pub enum RdmaEvent {
    /// Try to transmit pending SQ entries on a QP.
    TxKick {
        /// Node owning the QP.
        node: NodeId,
        /// The QP.
        qpn: Qpn,
    },
    /// A frame reaches the destination NIC (pre fault-injection).
    Arrive {
        /// The frame, carried by value: driver event queues store their
        /// payloads in a slab arena (`palladium_simnet::arena`), so a
        /// wide event variant costs nothing in queue-entry moves and the
        /// per-frame box the seed recycled here is gone entirely.
        pkt: Packet,
    },
    /// The destination NIC finished receive processing of a frame.
    RxDone {
        /// The frame (same value the `Arrive` carried).
        pkt: Packet,
    },
    /// Retransmission-timeout check.
    RtoCheck {
        /// Node owning the QP.
        node: NodeId,
        /// The QP.
        qpn: Qpn,
        /// Epoch the timer was armed under (stale timers are ignored).
        epoch: u64,
    },
    /// End of an RNR backoff; transmission resumes.
    RnrResume {
        /// Node owning the QP.
        node: NodeId,
        /// The QP.
        qpn: Qpn,
    },
    /// Connection handshake finished.
    ConnectDone {
        /// First endpoint node.
        a: NodeId,
        /// First endpoint QP.
        qa: Qpn,
        /// Second endpoint node.
        b: NodeId,
        /// Second endpoint QP.
        qb: Qpn,
    },
}

/// Externally visible effects of a step.
#[derive(Clone, Debug)]
pub enum RdmaOutput {
    /// `node`'s shared CQ went non-empty and its doorbell was armed: drain
    /// it (e.g. [`RdmaNet::drain_cq_into`]). At most one `CqReady` is
    /// raised per node until the consumer drains the CQ empty (which
    /// re-arms the doorbell), so the handler must retire the *whole*
    /// backlog, not a fixed-size window.
    CqReady {
        /// Node whose CQ has entries.
        node: NodeId,
    },
    /// A one-sided WRITE landed in `node`'s memory (receiver CPU oblivious —
    /// no CQE; delivered to the driver so it can apply the DMA to the pool).
    WriteDelivered {
        /// Target node.
        node: NodeId,
        /// Target buffer address.
        addr: RemoteAddr,
        /// The written bytes.
        data: Bytes,
        /// Sender immediate data.
        imm: u64,
        /// Tenant owning the target QP.
        tenant: TenantId,
    },
    /// A one-sided READ wants `len` bytes from `addr` on `node`; the driver
    /// must answer via [`RdmaNet::complete_read`].
    ReadRequested {
        /// Responder node.
        node: NodeId,
        /// Source address.
        addr: RemoteAddr,
        /// Bytes requested.
        len: u32,
        /// Handle to pass to `complete_read`.
        handle: u64,
    },
    /// A connection pair became ready to send.
    Connected {
        /// First endpoint node.
        a: NodeId,
        /// First endpoint QP.
        qa: Qpn,
        /// Second endpoint node.
        b: NodeId,
        /// Second endpoint QP.
        qb: Qpn,
        /// Tenant owning the connection.
        tenant: TenantId,
    },
    /// A QP exhausted its retries and moved to `Error`.
    QpError {
        /// Node owning the QP.
        node: NodeId,
        /// The QP.
        qpn: Qpn,
    },
    /// The receiver NAK'd a SEND for lack of buffers — the DNE core thread
    /// should replenish the tenant's RQ (§3.5.2).
    RnrSeen {
        /// Node that ran out of receive buffers.
        node: NodeId,
        /// Tenant whose RQ is empty.
        tenant: TenantId,
    },
    /// A liveness probe survived the fabric and reached `node` — feed it
    /// to the driver's health monitor.
    HeartbeatSeen {
        /// Node that heard the probe.
        node: NodeId,
        /// Node the probe came from.
        from: NodeId,
        /// The probe's sequence number.
        seq: u64,
    },
}

/// The result of poking the sub-simulator.
#[derive(Debug, Default)]
pub struct Step {
    /// Events to re-inject (relative delays).
    pub events: Vec<Timed<RdmaEvent>>,
    /// Externally visible effects.
    pub outputs: Vec<RdmaOutput>,
    /// Frames leaving this fabric instance, populated only in sharded
    /// egress mode ([`RdmaNet::set_sharded_egress`]): each entry is a
    /// fully timed in-flight frame (`after` = egress service +
    /// propagation) that the driver must route to the destination node's
    /// fabric — across shards via the mailbox, or locally by lifting it
    /// back into [`RdmaEvent::Arrive`]. Every delay is ≥
    /// [`RdmaConfig::frame_lookahead`].
    pub egress: Vec<Timed<Packet>>,
}

impl Step {
    fn push_event(&mut self, after: Nanos, ev: RdmaEvent) {
        self.events.push(Timed::new(after, ev));
    }

    /// Merge another step into this one.
    pub fn merge(&mut self, other: Step) {
        self.events.extend(other.events);
        self.outputs.extend(other.outputs);
        self.egress.extend(other.egress);
    }

    /// Empty the lists, keeping their capacity — drivers reuse one `Step`
    /// across [`RdmaNet::handle_into`] calls so steady-state stepping
    /// allocates nothing.
    pub fn clear(&mut self) {
        self.events.clear();
        self.outputs.clear();
        self.egress.clear();
    }
}

struct ReadCtx {
    requester: NodeId,
    requester_qpn: Qpn,
    responder: NodeId,
    responder_qpn: Qpn,
    wr_id: WrId,
    orig_psn: u64,
}

/// The simulated multi-node RDMA fabric.
///
/// Usually one instance spans every node (`new`). A sharded driver
/// instead builds one instance per shard over that shard's node block
/// (`with_span`) with sharded egress mode on: frames then leave through
/// [`Step::egress`] instead of being scheduled as local [`RdmaEvent::Arrive`]
/// events, and the driver routes them — through the deterministic
/// mailboxes for remote shards, or straight back into the local instance.
/// All QP/CQ/RTO machinery is per-node already, so a span instance is a
/// full fabric for its nodes; the *only* cross-instance coupling is the
/// frame stream.
pub struct RdmaNet {
    cfg: RdmaConfig,
    /// First global node id this instance owns (`rnics[i]` serves node
    /// `base + i`). 0 for a whole-fabric instance.
    base: usize,
    rnics: Vec<Rnic>,
    /// Sharded egress mode: `transmit` emits *every* inter-node frame via
    /// [`Step::egress`] (same-span destinations included — routing all
    /// frames uniformly is what makes sharded runs shard-count-invariant).
    sharded_egress: bool,
    /// Fabric-wide fault plan — the fallback when a node has no
    /// [`FaultTimeline`] of its own (`set_fault` back-compat).
    fault: FaultPlan,
    /// Per-owned-node fault timelines (indexed `node - base`); an empty
    /// timeline falls back to the net-level `fault` plan.
    node_faults: Vec<FaultTimeline>,
    /// Directed-link fault timelines (indexed `dst - base`, entries keyed
    /// by global *source* id): gray faults pinned to one `src → dst`
    /// direction. A non-none link plan overrides the port/net plan for
    /// that frame only; verdicts still draw from the destination node's
    /// stream, so link faults stay shard-count invariant.
    link_faults: Vec<Vec<(u16, FaultTimeline)>>,
    /// Per-owned-node fault RNG streams, keyed by **global** node id via
    /// [`SimRng::stream`]: the verdict sequence a destination node draws
    /// is identical no matter how the fabric is sharded, which is what
    /// makes faulty runs shard-count invariant (a net-level RNG would
    /// interleave verdicts differently per shard layout).
    fault_rngs: Vec<SimRng>,
    /// Network-partition windows per **global** node id (covering the
    /// whole fabric, not just this span — a frame's *source* may live on
    /// another shard). Frames whose source or destination is inside a
    /// window are dropped at the destination port with no RNG draw.
    down: Vec<Vec<(Nanos, Nanos)>>,
    /// Fabric-wide protocol counters: `drop`, `corrupt`, `crc_drop`,
    /// `nak_rewind`, `rnr_nak`, `rto`, `delivered`, `acks`.
    pub counters: Counters,
    /// Outstanding one-sided READs, keyed by generation-checked slab
    /// handles (handles are handed to the driver and come back via
    /// [`RdmaNet::complete_read`]; slots recycle, generations catch stale
    /// handles).
    reads: Slab<ReadCtx>,
    /// Scratch for cumulative-ACK retirement (one use per ACK frame).
    ack_scratch: Vec<Inflight>,
    /// Scratch for a transmit window's frames (one use per TX kick).
    frame_scratch: Vec<PacketKind>,
}

impl RdmaNet {
    /// A fabric of `n_nodes` RNICs with the given config and RNG seed.
    pub fn new(cfg: RdmaConfig, n_nodes: usize, seed: u64) -> Self {
        Self::with_span(cfg, 0..n_nodes, seed)
    }

    /// A fabric instance owning only the nodes in `span` (a shard's node
    /// block). Node ids stay *global*: `rnic(NodeId(n))` expects
    /// `span.start <= n < span.end`. `new` is `with_span(cfg, 0..n, seed)`.
    pub fn with_span(cfg: RdmaConfig, span: std::ops::Range<usize>, seed: u64) -> Self {
        RdmaNet {
            cfg,
            base: span.start,
            fault_rngs: span.clone().map(|i| SimRng::stream(seed, i as u64)).collect(),
            node_faults: span.clone().map(|_| FaultTimeline::new()).collect(),
            link_faults: span.clone().map(|_| Vec::new()).collect(),
            rnics: span.map(|i| Rnic::new(NodeId(i as u16))).collect(),
            sharded_egress: false,
            fault: FaultPlan::NONE,
            down: Vec::new(),
            counters: Counters::new(),
            reads: Slab::new(),
            ack_scratch: Vec::new(),
            frame_scratch: Vec::new(),
        }
    }

    /// Toggle sharded egress mode (see [`Step::egress`]). Off, frames are
    /// self-scheduled as [`RdmaEvent::Arrive`]; on, the driver owns frame
    /// routing for *all* destinations.
    pub fn set_sharded_egress(&mut self, on: bool) {
        self.sharded_egress = on;
    }

    /// Install a fabric-wide fault plan (fallback for nodes without a
    /// dedicated timeline — see [`RdmaNet::set_node_fault`]).
    pub fn set_fault(&mut self, plan: FaultPlan) {
        self.fault = plan;
    }

    /// Install a fault timeline on one node's ingress port (`node` is
    /// global and must lie in this instance's span). Overrides the
    /// net-level plan for that node; an empty timeline restores the
    /// fallback.
    pub fn set_node_fault(&mut self, node: NodeId, timeline: FaultTimeline) {
        let idx = node.raw() as usize - self.base;
        self.node_faults[idx] = timeline;
    }

    /// Install a fault timeline on the directed link `src → dst` (`dst`
    /// must lie in this instance's span; `src` is any global node). While
    /// the timeline has an active plan it overrides the port/net plan for
    /// frames on that link only — the reverse direction and every other
    /// source are untouched, which is what makes a gray fault asymmetric.
    pub fn set_link_fault(&mut self, src: NodeId, dst: NodeId, timeline: FaultTimeline) {
        let idx = dst.raw() as usize - self.base;
        let entries = &mut self.link_faults[idx];
        match entries.iter_mut().find(|(s, _)| *s == src.raw()) {
            Some((_, tl)) => *tl = timeline,
            None => entries.push((src.raw(), timeline)),
        }
    }

    /// Install the fabric-wide network-partition table: per **global**
    /// node, windows `[from, until)` during which every frame with that
    /// node as source or destination is dropped at the destination port
    /// (deterministically — no RNG draw). Every shard instance must hold
    /// the *full* table, since arriving frames may originate anywhere.
    pub fn set_down_windows(&mut self, down: Vec<Vec<(Nanos, Nanos)>>) {
        self.down = down;
    }

    #[inline]
    fn node_down(&self, node: NodeId, now: Nanos) -> bool {
        self.down
            .get(node.raw() as usize)
            .is_some_and(|w| w.iter().any(|&(f, u)| now >= f && now < u))
    }

    /// Substrate configuration.
    pub fn config(&self) -> &RdmaConfig {
        &self.cfg
    }

    /// Borrow a node's RNIC (`node` is global; it must lie in this
    /// instance's span).
    pub fn rnic(&self, node: NodeId) -> &Rnic {
        &self.rnics[node.raw() as usize - self.base]
    }

    /// Mutably borrow a node's RNIC.
    pub fn rnic_mut(&mut self, node: NodeId) -> &mut Rnic {
        &mut self.rnics[node.raw() as usize - self.base]
    }

    /// Register a memory region on `node` from a DOCA mmap export.
    pub fn register_mr(&mut self, node: NodeId, export: &MmapExport) -> Result<MrKey, RnicError> {
        self.rnic_mut(node).register_mr(export)
    }

    /// Establish an RC connection between `a` and `b` for `tenant`. Returns
    /// the two QPNs plus a [`Step`] whose `ConnectDone` fires after the
    /// realistic multi-millisecond handshake (§3.3).
    pub fn connect(&mut self, a: NodeId, b: NodeId, tenant: TenantId) -> (Qpn, Qpn, Step) {
        let (qa, qb) = self.create_pair(a, b, tenant);
        let mut step = Step::default();
        step.push_event(self.cfg.connect_latency, RdmaEvent::ConnectDone { a, qa, b, qb });
        (qa, qb, step)
    }

    /// Create a pre-warmed connection in RTS immediately (tests; and the
    /// connection pool's startup warm-up).
    pub fn connect_immediate(&mut self, a: NodeId, b: NodeId, tenant: TenantId) -> (Qpn, Qpn) {
        let (qa, qb) = self.create_pair(a, b, tenant);
        self.rnic_mut(a).qp_mut(qa).expect("fresh qp").set_ready();
        self.rnic_mut(b).qp_mut(qb).expect("fresh qp").set_ready();
        (qa, qb)
    }

    fn create_pair(&mut self, a: NodeId, b: NodeId, tenant: TenantId) -> (Qpn, Qpn) {
        let qa = self.rnic_mut(a).create_qp(tenant, b, Qpn(0));
        let qb = self.rnic_mut(b).create_qp(tenant, a, qa);
        self.rnic_mut(a).set_peer(qa, qb);
        (qa, qb)
    }

    /// [`RdmaNet::connect_immediate`] for endpoints living in two
    /// *different* per-shard fabric instances (sharded cluster wiring):
    /// identical create/peer/ready sequence, so the per-RNIC QPN
    /// allocation — and with it every report byte — matches what a single
    /// whole-fabric instance would have produced, as long as the caller
    /// wires connections in one canonical global order at every shard
    /// count.
    pub fn connect_pair_immediate(
        net_a: &mut RdmaNet,
        a: NodeId,
        net_b: &mut RdmaNet,
        b: NodeId,
        tenant: TenantId,
    ) -> (Qpn, Qpn) {
        let qa = net_a.rnic_mut(a).create_qp(tenant, b, Qpn(0));
        let qb = net_b.rnic_mut(b).create_qp(tenant, a, qa);
        net_a.rnic_mut(a).set_peer(qa, qb);
        net_a.rnic_mut(a).qp_mut(qa).expect("fresh qp").set_ready();
        net_b.rnic_mut(b).qp_mut(qb).expect("fresh qp").set_ready();
        (qa, qb)
    }

    /// Post a send-side work request (SEND/WRITE/READ). The returned step
    /// carries the doorbell-delayed `TxKick`.
    pub fn post_send(
        &mut self,
        now: Nanos,
        node: NodeId,
        qpn: Qpn,
        wr: WorkRequest,
    ) -> Result<Step, RnicError> {
        let mut step = Step::default();
        self.post_send_into(now, node, qpn, wr, &mut step)?;
        Ok(step)
    }

    /// [`RdmaNet::post_send`] appending into a caller-owned [`Step`]:
    /// drivers posting on their hot path reuse one `Step` so each post
    /// costs no allocation (a fresh `Step`'s event vector is one heap
    /// allocation per post otherwise).
    pub fn post_send_into(
        &mut self,
        _now: Nanos,
        node: NodeId,
        qpn: Qpn,
        wr: WorkRequest,
        step: &mut Step,
    ) -> Result<(), RnicError> {
        let qp = self.rnic_mut(node).qp_mut(qpn)?;
        qp.post(wr).map_err(|_| RnicError::NoSuchQp)?;
        step.push_event(self.cfg.doorbell, RdmaEvent::TxKick { node, qpn });
        Ok(())
    }

    /// Post a receive buffer to `node`'s shared RQ for `tenant`.
    pub fn post_recv(&mut self, node: NodeId, tenant: TenantId, entry: RqEntry) -> Result<(), RnicError> {
        self.rnic_mut(node).post_recv(tenant, entry)
    }

    /// Poll up to `max` completions from `node`'s shared CQ.
    pub fn poll_cq(&mut self, node: NodeId, max: usize) -> Vec<Cqe> {
        self.rnic_mut(node).poll_cq(max)
    }

    /// Drain the entire CQ backlog of `node` into `out` (appending),
    /// re-arming the CQ doorbell. This is the batched consumer API: the
    /// fabric raises at most one [`RdmaOutput::CqReady`] per node between
    /// drains, so the handler for that one wakeup retires the whole
    /// window.
    pub fn drain_cq_into(&mut self, node: NodeId, out: &mut Vec<Cqe>) {
        self.rnic_mut(node).drain_cq_into(out)
    }

    /// Completions waiting on `node`.
    pub fn cq_depth(&self, node: NodeId) -> usize {
        self.rnic(node).cq_depth()
    }

    /// Answer a `ReadRequested` output with the fetched bytes.
    pub fn complete_read(&mut self, now: Nanos, handle: u64, data: Bytes) -> Step {
        let mut step = Step::default();
        let Some(ctx) = self.reads.remove(handle) else {
            return step;
        };
        let pkt = Packet {
            src: ctx.responder,
            dst: ctx.requester,
            src_qpn: ctx.responder_qpn,
            dst_qpn: ctx.requester_qpn,
            kind: PacketKind::ReadResp {
                wr_id: ctx.wr_id,
                orig_psn: ctx.orig_psn,
                data,
            },
            corrupted: false,
        };
        self.transmit(now, pkt, &mut step);
        step
    }

    /// Emit a liveness probe from `from` (which must lie in this
    /// instance's span) to `to`. Probes ride outside any QP — no PSN, no
    /// ACK — and are subject to fault injection like data frames, so a
    /// flapping link produces honest missed-heartbeat false positives.
    pub fn send_heartbeat_into(
        &mut self,
        now: Nanos,
        from: NodeId,
        to: NodeId,
        seq: u64,
        step: &mut Step,
    ) {
        let pkt = Packet {
            src: from,
            dst: to,
            src_qpn: Qpn(0),
            dst_qpn: Qpn(0),
            kind: PacketKind::Heartbeat { seq },
            corrupted: false,
        };
        self.transmit(now, pkt, step);
    }

    /// Queue a frame on the source node's egress port and schedule its
    /// arrival at the destination.
    fn transmit(&mut self, now: Nanos, pkt: Packet, step: &mut Step) {
        let bytes = pkt.wire_bytes(self.cfg.header_bytes, self.cfg.ack_bytes);
        let wire = palladium_simnet::wire_time(bytes, self.cfg.link_gbps);
        let service = if pkt.is_control() {
            // Control frames bypass most of the TX pipeline.
            Nanos::from_nanos(150) + wire
        } else {
            let penalty = self.rnic(pkt.src).cache_penalty(&self.cfg);
            self.cfg.tx_pipeline + wire + penalty
        };
        let egress = &mut self.rnic_mut(pkt.src).egress;
        let done = egress.submit(now, service);
        egress.complete();
        let prop = self.cfg.propagation;
        let after = done - now + prop;
        debug_assert!(
            after >= self.cfg.frame_lookahead(),
            "frame delay {after} under the frame lookahead {}",
            self.cfg.frame_lookahead()
        );
        if self.sharded_egress {
            // The driver routes the frame (mailbox or local re-injection);
            // handing over same-span frames too keeps the event schedule
            // identical at every shard count.
            step.egress.push(Timed::new(after, pkt));
        } else {
            step.push_event(after, RdmaEvent::Arrive { pkt });
        }
    }

    /// Emit a control frame from `from` back to `to`.
    #[allow(clippy::too_many_arguments)]
    fn send_control(
        &mut self,
        now: Nanos,
        from: NodeId,
        from_qpn: Qpn,
        to: NodeId,
        to_qpn: Qpn,
        kind: PacketKind,
        step: &mut Step,
    ) {
        let pkt = Packet {
            src: from,
            dst: to,
            src_qpn: from_qpn,
            dst_qpn: to_qpn,
            kind,
            corrupted: false,
        };
        self.transmit(now, pkt, step);
    }

    /// Arm the retransmission timer for a QP. A timer already in flight is
    /// left alone: when it fires it re-evaluates against the oldest
    /// inflight transmission and reschedules itself, so one outstanding
    /// timer event per QP suffices (re-arming per transmission, as the
    /// seed did, only manufactures stale no-op events).
    fn arm_rto(&mut self, node: NodeId, qpn: Qpn, step: &mut Step) {
        let rto = self.cfg.rto;
        let Ok(qp) = self.rnic_mut(node).qp_mut(qpn) else {
            return;
        };
        if qp.inflight_depth() == 0 || qp.rto_pending {
            return;
        }
        qp.rto_epoch += 1;
        qp.rto_pending = true;
        let epoch = qp.rto_epoch;
        step.push_event(rto, RdmaEvent::RtoCheck { node, qpn, epoch });
    }

    /// Drain the QP's transmit window onto the wire. Each launch (first
    /// transmission or go-back-N resend) builds its frame via
    /// [`Inflight::frame`], which clones only the payload `Bytes` handle —
    /// the `WorkRequest` itself stays in the inflight queue uncloned.
    fn tx_kick(&mut self, now: Nanos, node: NodeId, qpn: Qpn, step: &mut Step) {
        let window = self.cfg.send_window;
        let mut launched = false;
        // Borrow the QP once, collect the window's frames, then transmit
        // (transmitting needs the egress server, i.e. `&mut self`).
        let mut frames = std::mem::take(&mut self.frame_scratch);
        let (peer_node, peer_qpn) = {
            let Ok(qp) = self.rnic_mut(node).qp_mut(qpn) else {
                self.frame_scratch = frames;
                return;
            };
            let peer = (qp.peer_node, qp.peer_qpn);
            while let Some(m) = qp.next_transmit(now, window) {
                frames.push(m.frame());
            }
            peer
        };
        for kind in frames.drain(..) {
            launched = true;
            let pkt = Packet {
                src: node,
                dst: peer_node,
                src_qpn: qpn,
                dst_qpn: peer_qpn,
                kind,
                corrupted: false,
            };
            self.transmit(now, pkt, step);
        }
        self.frame_scratch = frames;
        if launched {
            self.arm_rto(node, qpn, step);
        }
    }

    /// Apply a cumulative acknowledgement: retire every inflight message
    /// with `psn <= upto`, generating success completions (READs complete on
    /// data arrival instead). Resets the retry budget on progress.
    fn retire_acked(&mut self, node: NodeId, qpn: Qpn, upto: u64, step: &mut Step) {
        self.counters.inc("ack_rx");
        let mut retired = std::mem::take(&mut self.ack_scratch);
        retired.clear();
        let (tenant, peer) = {
            let Ok(qp) = self.rnic_mut(node).qp_mut(qpn) else {
                self.ack_scratch = retired;
                return;
            };
            qp.on_ack_into(upto, &mut retired);
            if qp.inflight_depth() == 0 {
                qp.rto_epoch += 1; // disarm timers
            }
            (qp.tenant, qp.peer_node)
        };
        self.counters.add("ack_retired", retired.len() as u64);
        let mut notify = false;
        for msg in retired.drain(..) {
            // READ completes on data arrival, not on request-ack.
            if msg.wr.op == OpKind::Read {
                continue;
            }
            let cqe = Cqe {
                wr_id: msg.wr.wr_id,
                kind: CqeKind::SendDone(msg.wr.op),
                status: CqeStatus::Success,
                qpn,
                tenant,
                peer,
                data: Bytes::new(),
                imm: msg.wr.imm,
            };
            notify |= self.rnic_mut(node).push_cqe(cqe);
        }
        if notify {
            step.outputs.push(RdmaOutput::CqReady { node });
        }
        self.ack_scratch = retired;
    }

    /// Fail a QP terminally: flush all queued work with error completions.
    fn fail_qp(&mut self, node: NodeId, qpn: Qpn, status: CqeStatus, step: &mut Step) {
        let (drained, tenant, peer) = {
            let Ok(qp) = self.rnic_mut(node).qp_mut(qpn) else {
                return;
            };
            qp.set_error();
            (qp.drain(), qp.tenant, qp.peer_node)
        };
        let mut notify = false;
        for wr in drained {
            let cqe = Cqe {
                wr_id: wr.wr_id,
                kind: CqeKind::SendDone(wr.op),
                status,
                qpn,
                tenant,
                peer,
                data: Bytes::new(),
                imm: wr.imm,
            };
            notify |= self.rnic_mut(node).push_cqe(cqe);
        }
        if notify {
            step.outputs.push(RdmaOutput::CqReady { node });
        }
        step.outputs.push(RdmaOutput::QpError { node, qpn });
    }

    /// Advance the sub-simulator by one event.
    pub fn handle(&mut self, now: Nanos, ev: RdmaEvent) -> Step {
        let mut step = Step::default();
        self.handle_into(now, ev, &mut step);
        step
    }

    /// [`RdmaNet::handle`] appending into a caller-owned [`Step`]: drivers
    /// keep one `Step` (cleared between events) so the fabric's per-event
    /// processing performs no allocation in steady state.
    pub fn handle_into(&mut self, now: Nanos, ev: RdmaEvent, step: &mut Step) {
        match ev {
            RdmaEvent::TxKick { node, qpn } => {
                self.tx_kick(now, node, qpn, step);
            }
            RdmaEvent::Arrive { mut pkt } => {
                // Fault injection at the destination port. READ responses
                // are exempt (modelled reliable; see module docs).
                let exempt = matches!(pkt.kind, PacketKind::ReadResp { .. });
                // Partition windows first: a crashed endpoint drops the
                // frame deterministically, without touching any RNG
                // stream (so a crash scenario perturbs no other node's
                // verdict sequence).
                if !exempt && (self.node_down(pkt.src, now) || self.node_down(pkt.dst, now)) {
                    self.counters.inc("crash_drop");
                    return;
                }
                // Stochastic faults draw from the *destination node's*
                // stream, keyed by global node id — never from a
                // net-level RNG — so verdicts are identical at every
                // shard count.
                let idx = pkt.dst.raw() as usize - self.base;
                let mut plan = if self.node_faults[idx].is_none() {
                    self.fault
                } else {
                    self.node_faults[idx].plan_at(now)
                };
                // A directed-link timeline (gray fault on src → dst)
                // overrides the port plan while active. Selection is
                // deterministic by (src, dst, now); the verdict still
                // draws from dst's stream below.
                if let Some((_, tl)) =
                    self.link_faults[idx].iter().find(|(s, _)| *s == pkt.src.raw())
                {
                    let lp = tl.plan_at(now);
                    if !lp.is_none() {
                        plan = lp;
                    }
                }
                if !exempt {
                    match plan.judge(now, &mut self.fault_rngs[idx]) {
                        Verdict::Drop => {
                            self.counters.inc("drop");
                            return;
                        }
                        Verdict::Corrupt => {
                            self.counters.inc("corrupt");
                            pkt.corrupted = true;
                        }
                        Verdict::Pass => {}
                    }
                }
                let extra = plan.extra_delay(now, &mut self.fault_rngs[idx]);
                let service = if pkt.is_control() {
                    Nanos::from_nanos(150)
                } else {
                    let payload = match &pkt.kind {
                        PacketKind::Data { op: OpKind::Read, .. } => 0,
                        PacketKind::Data { payload, .. } => payload.len() as u64,
                        PacketKind::ReadResp { data, .. } => data.len() as u64,
                        _ => 0,
                    };
                    self.cfg.rx_pipeline + self.cfg.per_byte.cost(payload)
                };
                let rx = &mut self.rnic_mut(pkt.dst).rx_engine;
                let done = rx.submit(now + extra, service);
                rx.complete();
                step.push_event(done - now, RdmaEvent::RxDone { pkt });
            }
            RdmaEvent::RxDone { pkt } => {
                if pkt.corrupted {
                    self.counters.inc("crc_drop");
                    return;
                }
                self.rx_done(now, pkt, step);
            }
            RdmaEvent::RtoCheck { node, qpn, epoch } => {
                let (stale, expired) = {
                    let Ok(qp) = self.rnic_mut(node).qp_mut(qpn) else {
                        return;
                    };
                    qp.rto_pending = false;
                    let stale = qp.rto_epoch != epoch || qp.inflight_depth() == 0;
                    let expired = qp
                        .oldest_inflight_at()
                        .map(|t| t + self.cfg.rto <= now)
                        .unwrap_or(false);
                    (stale, expired)
                };
                if stale {
                    // The timer may be stale only because retirement bumped
                    // the epoch while newer transmissions were already
                    // inflight (`arm_rto` skips re-arming while a check is
                    // pending) — restore coverage before retiring this
                    // event. `arm_rto` is a no-op when nothing is inflight.
                    self.arm_rto(node, qpn, step);
                    return;
                }
                if expired {
                    self.counters.inc("rto");
                    let over_limit = {
                        let qp = self.rnic_mut(node).qp_mut(qpn).expect("checked above");
                        qp.rewind();
                        qp.retries += 1;
                        qp.retries > self.cfg.retry_limit
                    };
                    if over_limit {
                        self.fail_qp(node, qpn, CqeStatus::RetryExceeded, step);
                    } else {
                        self.tx_kick(now, node, qpn, step);
                    }
                } else {
                    // Not yet expired: re-check when the oldest would expire.
                    let rto = self.cfg.rto;
                    let (next_at, epoch) = {
                        let qp = self.rnic_mut(node).qp_mut(qpn).expect("checked above");
                        qp.rto_pending = true;
                        (
                            qp.oldest_inflight_at().expect("inflight nonempty") + rto,
                            qp.rto_epoch,
                        )
                    };
                    step.push_event(next_at - now, RdmaEvent::RtoCheck { node, qpn, epoch });
                }
            }
            RdmaEvent::RnrResume { node, qpn } => {
                if let Ok(qp) = self.rnic_mut(node).qp_mut(qpn) {
                    qp.rnr_paused = false;
                }
                self.tx_kick(now, node, qpn, step);
            }
            RdmaEvent::ConnectDone { a, qa, b, qb } => {
                let tenant = {
                    let qp = self.rnic_mut(a).qp_mut(qa).expect("connect qp");
                    qp.set_ready();
                    qp.tenant
                };
                self.rnic_mut(b).qp_mut(qb).expect("connect qp").set_ready();
                step.outputs.push(RdmaOutput::Connected { a, qa, b, qb, tenant });
                // Work may have been posted while connecting.
                step.push_event(Nanos::ZERO, RdmaEvent::TxKick { node: a, qpn: qa });
                step.push_event(Nanos::ZERO, RdmaEvent::TxKick { node: b, qpn: qb });
            }
        }
    }

    fn rx_done(&mut self, now: Nanos, pkt: Packet, step: &mut Step) {
        // Destructure the frame by value (the payload handle moves into
        // the CQE / output it feeds — no per-frame clone).
        let Packet {
            src,
            dst,
            src_qpn,
            dst_qpn,
            kind,
            ..
        } = pkt;
        match kind {
            PacketKind::Data {
                psn,
                wr_id,
                op,
                payload,
                remote,
                read_len,
                imm,
            } => {
                let (decision, tenant) = {
                    let rnic = self.rnic_mut(dst);
                    let tenant = match rnic.qp(dst_qpn) {
                        Ok(qp) => qp.tenant,
                        Err(_) => return,
                    };
                    let rq_avail = rnic.rq_available(tenant);
                    let qp = rnic.qp_mut(dst_qpn).expect("checked above");
                    (qp.classify_rx(psn, op, rq_avail), tenant)
                };
                match decision {
                    RxDecision::Deliver => {
                        self.counters.inc("delivered");
                        match op {
                            OpKind::Send => {
                                let entry = self
                                    .rnic_mut(dst)
                                    .take_rq(tenant)
                                    .expect("classify_rx guaranteed a buffer");
                                let cqe = Cqe {
                                    wr_id: entry.wr_id,
                                    kind: CqeKind::Recv,
                                    status: CqeStatus::Success,
                                    qpn: dst_qpn,
                                    tenant,
                                    peer: src,
                                    data: payload,
                                    imm,
                                };
                                if self.rnic_mut(dst).push_cqe(cqe) {
                                    step.outputs.push(RdmaOutput::CqReady { node: dst });
                                }
                            }
                            OpKind::Write => {
                                step.outputs.push(RdmaOutput::WriteDelivered {
                                    node: dst,
                                    addr: remote.expect("write carries remote addr"),
                                    data: payload,
                                    imm,
                                    tenant,
                                });
                            }
                            OpKind::Read => {
                                let handle = self.reads.insert(ReadCtx {
                                    requester: src,
                                    requester_qpn: src_qpn,
                                    responder: dst,
                                    responder_qpn: dst_qpn,
                                    wr_id,
                                    orig_psn: psn,
                                });
                                step.outputs.push(RdmaOutput::ReadRequested {
                                    node: dst,
                                    addr: remote.expect("read carries remote addr"),
                                    len: read_len,
                                    handle,
                                });
                            }
                        }
                        self.counters.inc("acks");
                        self.send_control(
                            now,
                            dst,
                            dst_qpn,
                            src,
                            src_qpn,
                            PacketKind::Ack { upto: psn },
                            step,
                        );
                    }
                    RxDecision::DuplicateAck => {
                        let upto = self
                            .rnic(dst)
                            .qp(dst_qpn)
                            .ok()
                            .and_then(|q| q.last_delivered_psn())
                            .unwrap_or(0);
                        self.counters.inc("dup_ack");
                        self.send_control(
                            now,
                            dst,
                            dst_qpn,
                            src,
                            src_qpn,
                            PacketKind::Ack { upto },
                            step,
                        );
                    }
                    RxDecision::OutOfOrderSilent => {
                        self.counters.inc("ooo_silent");
                    }
                    RxDecision::ReceiverNotReadySilent => {
                        self.counters.inc("rnr_silent");
                    }
                    RxDecision::OutOfOrderNak { expected } => {
                        self.counters.inc("ooo_nak");
                        self.send_control(
                            now,
                            dst,
                            dst_qpn,
                            src,
                            src_qpn,
                            PacketKind::Nak { expected },
                            step,
                        );
                    }
                    RxDecision::ReceiverNotReady => {
                        self.counters.inc("rnr_nak");
                        step.outputs.push(RdmaOutput::RnrSeen { node: dst, tenant });
                        self.send_control(
                            now,
                            dst,
                            dst_qpn,
                            src,
                            src_qpn,
                            PacketKind::RnrNak { psn },
                            step,
                        );
                    }
                }
            }
            PacketKind::Heartbeat { seq } => {
                // No QP involved: surface the probe to the driver's
                // health monitor and stop.
                step.outputs.push(RdmaOutput::HeartbeatSeen { node: dst, from: src, seq });
            }
            PacketKind::Ack { upto } => {
                let node = dst;
                let qpn = dst_qpn;
                self.retire_acked(node, qpn, upto, step);
                // Window may have opened.
                self.tx_kick(now, node, qpn, step);
            }
            PacketKind::Nak { expected } => {
                let node = dst;
                let qpn = dst_qpn;
                // A NAK for `expected` is an implicit cumulative ACK of
                // everything before it: the receiver delivered the prefix.
                if let Some(upto) = expected.checked_sub(1) {
                    self.retire_acked(node, qpn, upto, step);
                }
                let over_limit = {
                    let Ok(qp) = self.rnic_mut(node).qp_mut(qpn) else {
                        return;
                    };
                    // A go-back-N round produces one NAK per out-of-order
                    // arrival; all but the first are redundant once we have
                    // rewound to (or before) the expected PSN.
                    if qp.next_psn() <= expected {
                        return;
                    }
                    qp.rewind();
                    qp.retries += 1;
                    qp.retries > self.cfg.retry_limit
                };
                self.counters.inc("nak_rewind");
                if over_limit {
                    self.fail_qp(node, qpn, CqeStatus::RetryExceeded, step);
                } else {
                    self.tx_kick(now, node, qpn, step);
                }
            }
            PacketKind::RnrNak { psn } => {
                let node = dst;
                let qpn = dst_qpn;
                // Everything before the RNR'd SEND was delivered.
                if let Some(upto) = psn.checked_sub(1) {
                    self.retire_acked(node, qpn, upto, step);
                }
                let over_limit = {
                    let Ok(qp) = self.rnic_mut(node).qp_mut(qpn) else {
                        return;
                    };
                    // Already backing off: further RNR NAKs from the same
                    // window are redundant.
                    if qp.rnr_paused || qp.next_psn() <= psn {
                        return;
                    }
                    qp.rewind();
                    qp.rnr_retries += 1;
                    qp.rnr_paused = true;
                    qp.rnr_retries > self.cfg.rnr_retry_limit
                };
                self.counters.inc("rnr_backoff");
                if over_limit {
                    self.fail_qp(node, qpn, CqeStatus::RnrRetryExceeded, step);
                } else {
                    step.push_event(self.cfg.rnr_retry_delay, RdmaEvent::RnrResume { node, qpn });
                }
            }
            PacketKind::ReadResp { wr_id, orig_psn: _, data } => {
                let node = dst;
                let (tenant, peer) = {
                    let Ok(qp) = self.rnic(node).qp(dst_qpn) else {
                        return;
                    };
                    (qp.tenant, qp.peer_node)
                };
                let cqe = Cqe {
                    wr_id,
                    kind: CqeKind::ReadData,
                    status: CqeStatus::Success,
                    qpn: dst_qpn,
                    tenant,
                    peer,
                    data,
                    imm: 0,
                };
                if self.rnic_mut(node).push_cqe(cqe) {
                    step.outputs.push(RdmaOutput::CqReady { node });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verbs::QpState;
    use palladium_membuf::{MmapExporter, PoolId, Region};
    use palladium_simnet::Sim;

    /// Drive the sub-simulator to quiescence, collecting outputs.
    fn run(net: &mut RdmaNet, sim: &mut Sim<RdmaEvent>, seed: Vec<Timed<RdmaEvent>>) -> Vec<RdmaOutput> {
        let mut outputs = Vec::new();
        for t in seed {
            sim.schedule(t.after, t.value);
        }
        while let Some((now, ev)) = sim.next() {
            let step = net.handle(now, ev);
            for t in step.events {
                sim.schedule(t.after, t.value);
            }
            outputs.extend(step.outputs);
            assert!(sim.events_fired() < 1_000_000, "runaway simulation");
        }
        outputs
    }

    fn two_node_net() -> (RdmaNet, Qpn, Qpn) {
        let mut net = RdmaNet::new(RdmaConfig::default(), 2, 42);
        for node in [NodeId(0), NodeId(1)] {
            let mut e = MmapExporter::new(PoolId(node.raw()), TenantId(1), Region::hugepages(4 << 20));
            net.register_mr(node, &e.export_rdma()).unwrap();
        }
        let (qa, qb) = net.connect_immediate(NodeId(0), NodeId(1), TenantId(1));
        (net, qa, qb)
    }

    fn post_rq(net: &mut RdmaNet, node: NodeId, n: u64) {
        for i in 0..n {
            net.post_recv(
                node,
                TenantId(1),
                RqEntry {
                    wr_id: WrId(1000 + i),
                    pool: PoolId(node.raw()),
                    capacity: 8192,
                },
            )
            .unwrap();
        }
    }

    #[test]
    fn two_sided_send_delivers_in_order() {
        let (mut net, qa, _qb) = two_node_net();
        post_rq(&mut net, NodeId(1), 4);
        let mut sim = Sim::new();
        let mut seed = Vec::new();
        for i in 0..4u64 {
            let wr = WorkRequest::send(WrId(i), Bytes::from(vec![i as u8; 64]), i);
            let step = net.post_send(sim.now(), NodeId(0), qa, wr).unwrap();
            seed.extend(step.events);
        }
        let _ = run(&mut net, &mut sim, seed);
        // Receiver got all 4 in order with payloads intact.
        let cqes = net.poll_cq(NodeId(1), 16);
        let recvs: Vec<&Cqe> = cqes.iter().filter(|c| c.kind == CqeKind::Recv).collect();
        assert_eq!(recvs.len(), 4);
        for (i, c) in recvs.iter().enumerate() {
            assert_eq!(c.imm, i as u64);
            assert_eq!(c.data.len(), 64);
            assert_eq!(c.data[0], i as u8);
            assert_eq!(c.wr_id, WrId(1000 + i as u64)); // RQ consumed FIFO
        }
        // Sender got 4 send completions.
        let send_cqes = net.poll_cq(NodeId(0), 16);
        assert_eq!(send_cqes.len(), 4);
        assert!(send_cqes.iter().all(|c| c.status == CqeStatus::Success));
    }

    #[test]
    fn one_way_latency_matches_calibration() {
        let (mut net, qa, _) = two_node_net();
        post_rq(&mut net, NodeId(1), 1);
        let mut sim = Sim::new();
        let wr = WorkRequest::send(WrId(1), Bytes::from(vec![0u8; 64]), 0);
        let step = net.post_send(sim.now(), NodeId(0), qa, wr).unwrap();
        let mut delivered_at = None;
        let mut seed = step.events;
        for t in seed.drain(..) {
            sim.schedule(t.after, t.value);
        }
        while let Some((now, ev)) = sim.next() {
            let step = net.handle(now, ev);
            for t in step.events {
                sim.schedule(t.after, t.value);
            }
            for o in step.outputs {
                if matches!(o, RdmaOutput::CqReady { node } if node == NodeId(1)) {
                    delivered_at.get_or_insert(now);
                }
            }
        }
        let t = delivered_at.expect("message delivered");
        // Calibration target: one-way 64 B ≈ 3.1-3.3 µs (DESIGN.md §6).
        assert!(
            t >= Nanos::from_nanos(2_900) && t <= Nanos::from_nanos(3_600),
            "one-way latency {t}"
        );
    }

    #[test]
    fn rnr_nak_then_recovery() {
        let (mut net, qa, _) = two_node_net();
        // No RQ buffer posted: first attempt RNR-NAKs.
        let mut sim = Sim::new();
        let wr = WorkRequest::send(WrId(7), Bytes::from_static(b"payload"), 9);
        let step = net.post_send(sim.now(), NodeId(0), qa, wr).unwrap();
        let mut rnr_seen = false;
        let mut seed = step.events;
        for t in seed.drain(..) {
            sim.schedule(t.after, t.value);
        }
        let mut replenished = false;
        while let Some((now, ev)) = sim.next() {
            let step = net.handle(now, ev);
            for t in step.events {
                sim.schedule(t.after, t.value);
            }
            for o in step.outputs {
                if let RdmaOutput::RnrSeen { node, tenant } = o {
                    rnr_seen = true;
                    // The DNE core thread replenishes the RQ (§3.5.2).
                    if !replenished {
                        replenished = true;
                        net.post_recv(
                            node,
                            tenant,
                            RqEntry {
                                wr_id: WrId(2000),
                                pool: PoolId(node.raw()),
                                capacity: 8192,
                            },
                        )
                        .unwrap();
                    }
                }
            }
        }
        assert!(rnr_seen, "RNR NAK must have been generated");
        let cqes = net.poll_cq(NodeId(1), 4);
        assert_eq!(cqes.len(), 1, "message delivered after retry");
        assert_eq!(cqes[0].imm, 9);
        assert!(net.counters.get("rnr_nak") >= 1);
    }

    #[test]
    fn one_sided_write_skips_receiver_queue() {
        let (mut net, qa, _) = two_node_net();
        // Note: no RQ buffers posted anywhere.
        let mut sim = Sim::new();
        let wr = WorkRequest::write(
            WrId(3),
            Bytes::from(vec![0xAB; 256]),
            RemoteAddr {
                pool: PoolId(1),
                buf_idx: 5,
            },
            0,
        );
        let step = net.post_send(sim.now(), NodeId(0), qa, wr).unwrap();
        let outputs = run(&mut net, &mut sim, step.events);
        let delivered = outputs.iter().any(|o| {
            matches!(o, RdmaOutput::WriteDelivered { node, addr, data, .. }
                if *node == NodeId(1) && addr.buf_idx == 5 && data.len() == 256)
        });
        assert!(delivered, "write must land without receiver involvement");
        // Sender still completes.
        let cqes = net.poll_cq(NodeId(0), 4);
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].kind, CqeKind::SendDone(OpKind::Write));
    }

    #[test]
    fn one_sided_read_roundtrip() {
        let (mut net, qa, _) = two_node_net();
        let mut sim = Sim::new();
        let wr = WorkRequest::read(
            WrId(4),
            RemoteAddr {
                pool: PoolId(1),
                buf_idx: 2,
            },
            128,
        );
        let step = net.post_send(sim.now(), NodeId(0), qa, wr).unwrap();
        for t in step.events {
            sim.schedule(t.after, t.value);
        }
        let mut got_data = false;
        while let Some((now, ev)) = sim.next() {
            let step = net.handle(now, ev);
            for t in step.events {
                sim.schedule(t.after, t.value);
            }
            for o in step.outputs {
                match o {
                    RdmaOutput::ReadRequested { len, handle, .. } => {
                        assert_eq!(len, 128);
                        let reply = net.complete_read(now, handle, Bytes::from(vec![0xCD; 128]));
                        for t in reply.events {
                            sim.schedule(t.after, t.value);
                        }
                    }
                    RdmaOutput::CqReady { node: NodeId(0) } => {
                        for c in net.poll_cq(NodeId(0), 4) {
                            if c.kind == CqeKind::ReadData {
                                assert_eq!(c.data.len(), 128);
                                assert_eq!(c.data[0], 0xCD);
                                got_data = true;
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        assert!(got_data, "read data must arrive");
    }

    #[test]
    fn connection_handshake_takes_tens_of_ms() {
        let mut net = RdmaNet::new(RdmaConfig::default(), 2, 1);
        let (qa, _qb, step) = net.connect(NodeId(0), NodeId(1), TenantId(1));
        assert_eq!(
            net.rnic(NodeId(0)).qp(qa).unwrap().state,
            QpState::Reset
        );
        let mut sim = Sim::new();
        let outputs = run(&mut net, &mut sim, step.events);
        assert!(outputs
            .iter()
            .any(|o| matches!(o, RdmaOutput::Connected { .. })));
        assert_eq!(net.rnic(NodeId(0)).qp(qa).unwrap().state, QpState::Rts);
        assert!(sim.now() >= Nanos::from_millis(19), "handshake cost ~20ms");
    }

    #[test]
    fn lossy_fabric_still_delivers_exactly_once_in_order() {
        let (mut net, qa, _) = two_node_net();
        net.set_fault(FaultPlan::dropping(0.2));
        post_rq(&mut net, NodeId(1), 64);
        let mut sim = Sim::new();
        let mut seed = Vec::new();
        let n = 32u64;
        for i in 0..n {
            let wr = WorkRequest::send(WrId(i), Bytes::from(vec![(i % 251) as u8; 512]), i);
            let step = net.post_send(sim.now(), NodeId(0), qa, wr).unwrap();
            seed.extend(step.events);
        }
        let _ = run(&mut net, &mut sim, seed);
        let cqes = net.poll_cq(NodeId(1), 1024);
        let imms: Vec<u64> = cqes
            .iter()
            .filter(|c| c.kind == CqeKind::Recv)
            .map(|c| c.imm)
            .collect();
        let expect: Vec<u64> = (0..n).collect();
        assert_eq!(imms, expect, "exactly-once, in-order despite 20% drops");
        assert!(net.counters.get("drop") > 0, "faults actually fired");
    }

    #[test]
    fn corruption_is_dropped_and_recovered() {
        let (mut net, qa, _) = two_node_net();
        net.set_fault(FaultPlan::corrupting(0.2));
        post_rq(&mut net, NodeId(1), 32);
        let mut sim = Sim::new();
        let mut seed = Vec::new();
        for i in 0..16u64 {
            let wr = WorkRequest::send(WrId(i), Bytes::from(vec![1u8; 128]), i);
            let step = net.post_send(sim.now(), NodeId(0), qa, wr).unwrap();
            seed.extend(step.events);
        }
        let _ = run(&mut net, &mut sim, seed);
        let imms: Vec<u64> = net
            .poll_cq(NodeId(1), 64)
            .iter()
            .filter(|c| c.kind == CqeKind::Recv)
            .map(|c| c.imm)
            .collect();
        assert_eq!(imms, (0..16).collect::<Vec<_>>());
        assert!(net.counters.get("crc_drop") > 0);
    }

    /// A directed link fault is asymmetric: blackholing `0 → 1` eats
    /// every frame on that direction (data 0→1, ACKs 0→1) while the
    /// reverse path `1 → 0` never draws a verdict. Payloads from node 1
    /// therefore still land on node 0, even as node 1's sender bleeds
    /// RTOs waiting for ACKs that the gray link swallows.
    #[test]
    fn link_fault_is_direction_scoped() {
        let (mut net, _qa, qb) = two_node_net();
        net.set_link_fault(
            NodeId(0),
            NodeId(1),
            FaultTimeline::from_plan(FaultPlan::dropping(1.0)),
        );
        post_rq(&mut net, NodeId(0), 4);
        post_rq(&mut net, NodeId(1), 4);
        let mut sim = Sim::new();
        let wr = WorkRequest::send(WrId(1), Bytes::from(vec![7u8; 64]), 9);
        let step = net.post_send(sim.now(), NodeId(1), qb, wr).unwrap();
        let _ = run(&mut net, &mut sim, step.events);
        // The clean direction delivered exactly once despite dedup'd
        // retransmissions...
        let recvs: Vec<u64> = net
            .poll_cq(NodeId(0), 16)
            .iter()
            .filter(|c| c.kind == CqeKind::Recv)
            .map(|c| c.imm)
            .collect();
        assert_eq!(recvs, vec![9], "payload crosses the healthy direction");
        // ...while the gray direction ate the ACKs until retry
        // exhaustion: drops and RTOs are all charged to 0 → 1.
        assert!(net.counters.get("drop") > 0, "ACKs on the gray link must drop");
        assert!(net.counters.get("rto") > 0, "missing ACKs must cost RTOs");
        assert_eq!(net.counters.get("crash_drop"), 0, "no partitions involved");
    }

    #[test]
    fn window_pipelines_messages() {
        // With a window of W, W messages should overlap on the wire: the
        // last delivery must land far earlier than W * one-message latency.
        let (mut net, qa, _) = two_node_net();
        post_rq(&mut net, NodeId(1), 16);
        let mut sim = Sim::new();
        for i in 0..16u64 {
            let wr = WorkRequest::send(WrId(i), Bytes::from(vec![0u8; 64]), i);
            let step = net.post_send(sim.now(), NodeId(0), qa, wr).unwrap();
            for t in step.events {
                sim.schedule(t.after, t.value);
            }
        }
        let mut last_delivery = Nanos::ZERO;
        let mut delivered = 0;
        while let Some((now, ev)) = sim.next() {
            let step = net.handle(now, ev);
            for t in step.events {
                sim.schedule(t.after, t.value);
            }
            for o in step.outputs {
                if matches!(o, RdmaOutput::CqReady { node } if node == NodeId(1)) {
                    delivered += net.poll_cq(NodeId(1), 64).len();
                    last_delivery = now;
                }
            }
        }
        assert_eq!(delivered, 16);
        let single = net.config().one_way(64);
        assert!(
            last_delivery < single * 8,
            "16 pipelined messages delivered by {last_delivery}, single is {single}"
        );
    }

    #[test]
    fn rto_recovers_after_stale_timer_with_new_inflight() {
        // Regression: with a single outstanding RTO timer per QP, a timer
        // left pending across a full inflight drain goes stale; when it
        // fires it must re-arm if newer transmissions are inflight,
        // otherwise a tail loss on those is never retransmitted.
        let (mut net, qa, _) = two_node_net();
        post_rq(&mut net, NodeId(1), 4);
        let mut sim = Sim::new();
        let step = net
            .post_send(sim.now(), NodeId(0), qa, WorkRequest::send(WrId(1), Bytes::from_static(b"a"), 1))
            .unwrap();
        for t in step.events {
            sim.schedule(t.after, t.value);
        }
        // Run until WR1 hits the wire and its ACK retires it — the armed
        // RtoCheck stays queued.
        let mut seen_inflight = false;
        loop {
            let depth = net.rnic(NodeId(0)).qp(qa).unwrap().inflight_depth();
            seen_inflight |= depth > 0;
            if seen_inflight && depth == 0 {
                break;
            }
            let (now, ev) = sim.next().expect("ack in flight");
            let s = net.handle(now, ev);
            for t in s.events {
                sim.schedule(t.after, t.value);
            }
        }
        // WR2: arm_rto is skipped (a timer is pending), then its only data
        // frame is lost in flight (simulated tail loss).
        let step = net
            .post_send(sim.now(), NodeId(0), qa, WorkRequest::send(WrId(2), Bytes::from_static(b"b"), 2))
            .unwrap();
        for t in step.events {
            sim.schedule(t.after, t.value);
        }
        let mut dropped = false;
        while let Some((now, ev)) = sim.next() {
            if !dropped {
                if let RdmaEvent::Arrive { pkt } = &ev {
                    if matches!(pkt.kind, PacketKind::Data { .. }) {
                        dropped = true;
                        continue; // frame lost on the wire
                    }
                }
            }
            let s = net.handle(now, ev);
            for t in s.events {
                sim.schedule(t.after, t.value);
            }
            assert!(sim.events_fired() < 100_000, "runaway simulation");
        }
        let recvs: Vec<u64> = net
            .poll_cq(NodeId(1), 16)
            .iter()
            .filter(|c| c.kind == CqeKind::Recv)
            .map(|c| c.imm)
            .collect();
        assert_eq!(recvs, vec![1, 2], "tail loss must be recovered by RTO");
        assert!(net.counters.get("rto") >= 1, "recovery must come from the RTO path");
    }

    #[test]
    fn sharded_egress_reproduces_the_serial_timeline() {
        // Reference: whole-fabric instance, one 64 B SEND, record when the
        // receiver's CQ goes ready.
        let (mut net, qa, _) = two_node_net();
        post_rq(&mut net, NodeId(1), 1);
        let mut sim = Sim::new();
        let wr = WorkRequest::send(WrId(1), Bytes::from(vec![5u8; 64]), 77);
        let step = net.post_send(sim.now(), NodeId(0), qa, wr).unwrap();
        let mut serial_at = None;
        for t in step.events {
            sim.schedule(t.after, t.value);
        }
        while let Some((now, ev)) = sim.next() {
            let s = net.handle(now, ev);
            for t in s.events {
                sim.schedule(t.after, t.value);
            }
            assert!(s.egress.is_empty(), "egress list stays empty off-mode");
            if s.outputs.iter().any(|o| matches!(o, RdmaOutput::CqReady { node } if *node == NodeId(1))) {
                serial_at.get_or_insert(now);
            }
        }
        let serial_at = serial_at.expect("delivered");

        // Split fabric: one single-node span instance per node, sharded
        // egress on, frames routed by the test. Same wiring order ⇒ same
        // QPNs; same config + fault-free ⇒ the identical timeline.
        let cfg = RdmaConfig::default();
        let mut nets = [
            RdmaNet::with_span(cfg, 0..1, 42),
            RdmaNet::with_span(cfg, 1..2, 43),
        ];
        for (i, net) in nets.iter_mut().enumerate() {
            net.set_sharded_egress(true);
            let mut e =
                MmapExporter::new(PoolId(i as u16), TenantId(1), Region::hugepages(4 << 20));
            net.register_mr(NodeId(i as u16), &e.export_rdma()).unwrap();
        }
        let (a_half, b_half) = nets.split_at_mut(1);
        let (sqa, _sqb) = RdmaNet::connect_pair_immediate(
            &mut a_half[0],
            NodeId(0),
            &mut b_half[0],
            NodeId(1),
            TenantId(1),
        );
        assert_eq!(sqa, qa, "split wiring must reproduce the QPN sequence");
        nets[1]
            .post_recv(
                NodeId(1),
                TenantId(1),
                RqEntry { wr_id: WrId(1000), pool: PoolId(1), capacity: 8192 },
            )
            .unwrap();
        let mut sim: Sim<(usize, RdmaEvent)> = Sim::new();
        let wr = WorkRequest::send(WrId(1), Bytes::from(vec![5u8; 64]), 77);
        let step = nets[0].post_send(sim.now(), NodeId(0), sqa, wr).unwrap();
        for t in step.events {
            sim.schedule(t.after, (0, t.value));
        }
        let mut split_at = None;
        while let Some((now, (owner, ev))) = sim.next() {
            let s = nets[owner].handle(now, ev);
            for t in s.events {
                sim.schedule(t.after, (owner, t.value));
            }
            for t in s.egress {
                // The driver owns routing: every frame, local or not,
                // arrives at the destination node's instance.
                assert!(t.after >= cfg.frame_lookahead(), "frame under lookahead");
                let dst = t.value.dst.raw() as usize;
                sim.schedule(t.after, (dst, RdmaEvent::Arrive { pkt: t.value }));
            }
            if s.outputs.iter().any(|o| matches!(o, RdmaOutput::CqReady { node } if *node == NodeId(1))) {
                split_at.get_or_insert(now);
            }
        }
        assert_eq!(split_at, Some(serial_at), "split fabric changed the timeline");
        let cqes = nets[1].poll_cq(NodeId(1), 4);
        assert_eq!(cqes.len(), 1);
        assert_eq!(cqes[0].imm, 77);
    }

    #[test]
    fn post_to_unconnected_qp_fails() {
        let mut net = RdmaNet::new(RdmaConfig::default(), 2, 1);
        let (qa, _qb, _step) = net.connect(NodeId(0), NodeId(1), TenantId(1));
        let wr = WorkRequest::send(WrId(1), Bytes::new(), 0);
        assert!(net.post_send(Nanos::ZERO, NodeId(0), qa, wr).is_err());
    }
}
