//! The RNIC device model: QP table, per-tenant shared receive queues, the
//! shared completion queue, registered memory and the TX/RX engines.
//!
//! Palladium-relevant modelling choices (§3.3, §3.5.2):
//! * **One shared RQ per tenant.** All of a tenant's RC QPs consume receive
//!   buffers from a single queue posted exclusively from that tenant's
//!   private pool — the RNIC therefore always lands data in the right pool.
//! * **One shared CQ per node.** Completions from every QP funnel into one
//!   queue the DNE polls in its run-to-completion loop, guarded by an
//!   event-channel-style doorbell: one notification per burst, re-armed
//!   when the consumer drains the queue empty (§3.2's batched completion
//!   retirement).
//! * **QP context cache.** Only a bounded number of *active* QPs fit on-die;
//!   beyond that every operation pays a thrash penalty — the reason the DNE
//!   caps active QPs via shadow-QP management.

use std::collections::VecDeque;

use palladium_membuf::{MmapExport, NodeId, PoolId, TenantId};
use palladium_simnet::{Counters, FifoServer, IdTable, Nanos};

use crate::config::RdmaConfig;
use crate::mr::{MrError, MrKey, MrTable};
use crate::qp::RcQp;
use crate::verbs::{Cqe, Qpn, WrId};

/// A posted receive buffer: the RNIC only needs the id (the DNE's RBR table
/// maps it back to the actual buffer token) and its capacity.
#[derive(Clone, Copy, Debug)]
pub struct RqEntry {
    /// Poster-chosen id, echoed in the receive completion.
    pub wr_id: WrId,
    /// Pool the buffer belongs to (must be MR-registered).
    pub pool: PoolId,
    /// Buffer capacity in bytes.
    pub capacity: u32,
}

/// Errors from RNIC operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RnicError {
    /// Unknown QP number.
    NoSuchQp,
    /// Posting a receive buffer from an unregistered pool.
    UnregisteredPool,
    /// Memory registration failed.
    Mr(MrError),
}

/// One node's RNIC.
#[derive(Debug)]
pub struct Rnic {
    node: NodeId,
    /// QP table, indexed densely by `qpn - 1` (QPNs are allocated
    /// sequentially from 1 and never destroyed — `Qpn(0)` is the
    /// "unpaired" placeholder and always misses).
    qps: Vec<RcQp>,
    /// Shared receive queue per tenant (§3.3), indexed by the dense
    /// tenant id.
    rqs: IdTable<VecDeque<RqEntry>>,
    /// Shared completion queue (single per node).
    cq: VecDeque<Cqe>,
    /// CQ event-channel doorbell: armed ⇔ the next pushed CQE should
    /// raise a `CqReady` notification. Disarmed by that push, re-armed
    /// when the consumer drains the CQ empty — so a burst of completions
    /// costs one notification per node per wakeup instead of one per
    /// push-site, exactly like a verbs completion channel.
    cq_armed: bool,
    mrs: MrTable,
    /// Egress port: serializes outbound frames at line rate.
    pub egress: FifoServer,
    /// RX engine: per-frame receive processing + DMA.
    pub rx_engine: FifoServer,
    /// Device counters (rnr_naks, retransmits, crc_drops ...).
    pub counters: Counters,
}

impl Rnic {
    /// A fresh RNIC for `node`.
    pub fn new(node: NodeId) -> Self {
        Rnic {
            node,
            qps: Vec::new(),
            rqs: IdTable::new(),
            cq: VecDeque::new(),
            cq_armed: true,
            mrs: MrTable::new(),
            egress: FifoServer::new(format!("rnic{}-egress", node.raw())),
            rx_engine: FifoServer::new(format!("rnic{}-rx", node.raw())),
            counters: Counters::new(),
        }
    }

    /// Node this RNIC belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Register a memory region from a DOCA mmap export.
    pub fn register_mr(&mut self, export: &MmapExport) -> Result<MrKey, RnicError> {
        self.mrs.register(export).map_err(RnicError::Mr)
    }

    /// Registered-memory table (read access for checks).
    pub fn mrs(&self) -> &MrTable {
        &self.mrs
    }

    /// Create a QP half; the peer fields are fixed at creation (RC is
    /// point-to-point).
    pub fn create_qp(&mut self, tenant: TenantId, peer_node: NodeId, peer_qpn: Qpn) -> Qpn {
        let qpn = Qpn(self.qps.len() as u32 + 1);
        self.qps.push(RcQp::new(qpn, tenant, peer_node, peer_qpn));
        qpn
    }

    #[inline]
    fn qp_index(qpn: Qpn) -> Result<usize, RnicError> {
        (qpn.0 as usize).checked_sub(1).ok_or(RnicError::NoSuchQp)
    }

    /// Fix up the peer QPN after both halves exist (pair creation helper).
    pub fn set_peer(&mut self, qpn: Qpn, peer_qpn: Qpn) {
        if let Ok(qp) = self.qp_mut(qpn) {
            qp.peer_qpn = peer_qpn;
        }
    }

    /// Borrow a QP.
    #[inline]
    pub fn qp(&self, qpn: Qpn) -> Result<&RcQp, RnicError> {
        self.qps
            .get(Self::qp_index(qpn)?)
            .ok_or(RnicError::NoSuchQp)
    }

    /// Mutably borrow a QP.
    #[inline]
    pub fn qp_mut(&mut self, qpn: Qpn) -> Result<&mut RcQp, RnicError> {
        self.qps
            .get_mut(Self::qp_index(qpn)?)
            .ok_or(RnicError::NoSuchQp)
    }

    /// Post a receive buffer to the tenant's shared RQ. The pool must be
    /// registered — this is where "the RNIC delivers incoming data into the
    /// correct pool" is enforced.
    pub fn post_recv(&mut self, tenant: TenantId, entry: RqEntry) -> Result<(), RnicError> {
        if !self.mrs.covers(entry.pool) {
            return Err(RnicError::UnregisteredPool);
        }
        self.rqs
            .get_or_insert_with(tenant.raw() as usize, VecDeque::new)
            .push_back(entry);
        Ok(())
    }

    /// Depth of a tenant's shared RQ.
    pub fn rq_depth(&self, tenant: TenantId) -> usize {
        self.rqs
            .get(tenant.raw() as usize)
            .map(|q| q.len())
            .unwrap_or(0)
    }

    /// Consume the head receive buffer for `tenant`.
    pub fn take_rq(&mut self, tenant: TenantId) -> Option<RqEntry> {
        self.rqs
            .get_mut(tenant.raw() as usize)
            .and_then(|q| q.pop_front())
    }

    /// Peek whether a receive buffer is available for `tenant`.
    pub fn rq_available(&self, tenant: TenantId) -> bool {
        self.rq_depth(tenant) > 0
    }

    /// Push a completion onto the shared CQ. Returns `true` when the
    /// doorbell was armed — the caller must then surface one `CqReady`
    /// notification (and the doorbell disarms until the CQ drains).
    #[must_use = "an armed push must surface a CqReady notification"]
    pub fn push_cqe(&mut self, cqe: Cqe) -> bool {
        self.cq.push_back(cqe);
        std::mem::take(&mut self.cq_armed)
    }

    /// Poll up to `max` completions (the DNE RX stage).
    pub fn poll_cq(&mut self, max: usize) -> Vec<Cqe> {
        let mut out = Vec::new();
        self.poll_cq_into(max, &mut out);
        out
    }

    /// [`Rnic::poll_cq`] into a caller-owned buffer (appends), so pollers
    /// on the hot path can reuse one scratch allocation. Re-arms the CQ
    /// doorbell only when the poll leaves the CQ empty — a consumer using
    /// a bounded window must keep polling until empty (or use
    /// [`Rnic::drain_cq_into`]) or it will not be notified again.
    pub fn poll_cq_into(&mut self, max: usize, out: &mut Vec<Cqe>) {
        let n = max.min(self.cq.len());
        out.extend(self.cq.drain(..n));
        if self.cq.is_empty() {
            self.cq_armed = true;
        }
    }

    /// Drain the *entire* CQ backlog into `out` (appending): the
    /// windowed-drain consumer API — one `CqReady` wakeup surfaces
    /// everything the CQ accumulated.
    ///
    /// The doorbell re-arms only once the CQ is observed empty, the same
    /// contract as [`Rnic::poll_cq_into`] — never unconditionally. An
    /// unconditional re-arm combined with any bounded drain would strand
    /// the leftover CQEs: armed-while-non-empty means the backlog only
    /// surfaces if a *new* completion happens to arrive and ring the
    /// doorbell for it.
    pub fn drain_cq_into(&mut self, out: &mut Vec<Cqe>) {
        out.extend(self.cq.drain(..));
        if self.cq.is_empty() {
            self.cq_armed = true;
        }
    }

    /// Drain up to `max` CQEs into `out` (appending), returning how many
    /// were moved. Like [`Rnic::poll_cq_into`] the doorbell re-arms only
    /// when the drain leaves the CQ empty — a partial window keeps the
    /// consumer responsible for the remainder (keep draining until this
    /// returns less than `max`, or the leftover CQEs stay parked until
    /// the next completion arrives).
    pub fn drain_cq_window_into(&mut self, max: usize, out: &mut Vec<Cqe>) -> usize {
        let n = max.min(self.cq.len());
        out.extend(self.cq.drain(..n));
        if self.cq.is_empty() {
            self.cq_armed = true;
        }
        n
    }

    /// Completions waiting.
    pub fn cq_depth(&self) -> usize {
        self.cq.len()
    }

    /// Number of QPs in the shadow-QP "active" state (holding work).
    pub fn active_qps(&self) -> u32 {
        self.qps.iter().filter(|q| q.is_active()).count() as u32
    }

    /// Per-operation penalty from QP-context-cache and MTT-cache pressure.
    pub fn cache_penalty(&self, cfg: &RdmaConfig) -> Nanos {
        let mut p = Nanos::ZERO;
        if self.active_qps() > cfg.qp_cache_capacity {
            p += cfg.qp_cache_miss_penalty;
        }
        if self.mrs.total_mtt_entries() > cfg.mtt_cache_entries {
            p += cfg.mtt_miss_penalty;
        }
        p
    }

    /// All QPNs (diagnostics; ascending by construction).
    pub fn qpns(&self) -> Vec<Qpn> {
        self.qps.iter().map(|q| q.qpn).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palladium_membuf::{MmapExporter, Region};

    fn registered_rnic() -> Rnic {
        let mut r = Rnic::new(NodeId(0));
        let mut e = MmapExporter::new(PoolId(1), TenantId(1), Region::hugepages(4 << 20));
        r.register_mr(&e.export_rdma()).unwrap();
        r
    }

    #[test]
    fn post_recv_requires_registration() {
        let mut r = Rnic::new(NodeId(0));
        let entry = RqEntry {
            wr_id: WrId(1),
            pool: PoolId(1),
            capacity: 4096,
        };
        assert_eq!(
            r.post_recv(TenantId(1), entry),
            Err(RnicError::UnregisteredPool)
        );
        let mut r = registered_rnic();
        assert!(r.post_recv(TenantId(1), entry).is_ok());
        assert_eq!(r.rq_depth(TenantId(1)), 1);
    }

    #[test]
    fn shared_rq_is_per_tenant_fifo() {
        let mut r = registered_rnic();
        for i in 0..3 {
            r.post_recv(
                TenantId(1),
                RqEntry {
                    wr_id: WrId(i),
                    pool: PoolId(1),
                    capacity: 64,
                },
            )
            .unwrap();
        }
        assert!(r.rq_available(TenantId(1)));
        assert!(!r.rq_available(TenantId(2)));
        assert_eq!(r.take_rq(TenantId(1)).unwrap().wr_id, WrId(0));
        assert_eq!(r.take_rq(TenantId(1)).unwrap().wr_id, WrId(1));
        assert_eq!(r.rq_depth(TenantId(1)), 1);
    }

    #[test]
    fn qp_creation_and_peering() {
        let mut a = Rnic::new(NodeId(0));
        let mut b = Rnic::new(NodeId(1));
        let qa = a.create_qp(TenantId(1), NodeId(1), Qpn(0));
        let qb = b.create_qp(TenantId(1), NodeId(0), qa);
        a.set_peer(qa, qb);
        assert_eq!(a.qp(qa).unwrap().peer_qpn, qb);
        assert_eq!(b.qp(qb).unwrap().peer_node, NodeId(0));
        assert!(a.qp(Qpn(99)).is_err());
    }

    fn cqe(i: u64) -> Cqe {
        Cqe {
            wr_id: WrId(i),
            kind: crate::verbs::CqeKind::Recv,
            status: crate::verbs::CqeStatus::Success,
            qpn: Qpn(1),
            tenant: TenantId(1),
            peer: NodeId(1),
            data: bytes::Bytes::new(),
            imm: 0,
        }
    }

    #[test]
    fn shared_cq_drains_in_order() {
        let mut r = registered_rnic();
        for i in 0..5u64 {
            let _ = r.push_cqe(cqe(i));
        }
        let first = r.poll_cq(3);
        assert_eq!(first.len(), 3);
        assert_eq!(first[0].wr_id, WrId(0));
        assert_eq!(r.cq_depth(), 2);
        assert_eq!(r.poll_cq(10).len(), 2);
    }

    #[test]
    fn cq_doorbell_coalesces_notifications() {
        let mut r = registered_rnic();
        // First push of a burst notifies; the rest of the burst does not.
        assert!(r.push_cqe(cqe(0)), "armed doorbell fires");
        assert!(!r.push_cqe(cqe(1)), "disarmed until drained");
        assert!(!r.push_cqe(cqe(2)));
        // A partial poll leaves the CQ non-empty: still disarmed — the
        // consumer owns the backlog until it drains to empty.
        assert_eq!(r.poll_cq(2).len(), 2);
        assert!(!r.push_cqe(cqe(3)), "non-empty CQ keeps doorbell down");
        // Full drain re-arms.
        let mut out = Vec::new();
        r.drain_cq_into(&mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(r.cq_depth(), 0);
        assert!(r.push_cqe(cqe(4)), "drained CQ re-armed the doorbell");
        // poll_cq_into to empty also re-arms.
        out.clear();
        r.poll_cq_into(16, &mut out);
        assert_eq!(out.len(), 1);
        assert!(r.push_cqe(cqe(5)));
    }

    #[test]
    fn windowed_drain_rearms_only_on_empty() {
        let mut r = registered_rnic();
        for i in 0..5u64 {
            let _ = r.push_cqe(cqe(i));
        }
        let mut out = Vec::new();
        // A partial window leaves backlog: the doorbell must stay down
        // (an armed doorbell over a non-empty CQ would strand the
        // leftovers until an unrelated new push).
        assert_eq!(r.drain_cq_window_into(3, &mut out), 3);
        assert_eq!(r.cq_depth(), 2);
        assert!(
            !r.push_cqe(cqe(5)),
            "doorbell must stay down while backlog remains"
        );
        // Draining the remainder empties the CQ and re-arms.
        assert_eq!(r.drain_cq_window_into(16, &mut out), 3);
        assert_eq!(r.cq_depth(), 0);
        assert_eq!(out.len(), 6);
        assert!(r.push_cqe(cqe(6)), "empty drain re-armed the doorbell");
    }

    #[test]
    fn cache_penalty_kicks_in_over_capacity() {
        let mut r = registered_rnic();
        let cfg = RdmaConfig {
            qp_cache_capacity: 1,
            ..Default::default()
        };
        let q1 = r.create_qp(TenantId(1), NodeId(1), Qpn(1));
        let q2 = r.create_qp(TenantId(1), NodeId(1), Qpn(2));
        assert_eq!(r.cache_penalty(&cfg), Nanos::ZERO);
        // Activate both QPs.
        for q in [q1, q2] {
            let qp = r.qp_mut(q).unwrap();
            qp.set_ready();
            qp.post(crate::verbs::WorkRequest::send(
                WrId(1),
                bytes::Bytes::from_static(b"x"),
                0,
            ))
            .unwrap();
        }
        assert_eq!(r.active_qps(), 2);
        assert_eq!(r.cache_penalty(&cfg), cfg.qp_cache_miss_penalty);
    }

    #[test]
    fn mtt_pressure_charges_penalty() {
        let mut r = Rnic::new(NodeId(0));
        // Register a 4 KB-page region big enough to blow the MTT cache.
        let mut e = MmapExporter::new(
            PoolId(1),
            TenantId(1),
            Region::small_pages(512 * 1024 * 1024), // 128K entries
        );
        r.register_mr(&e.export_rdma()).unwrap();
        let cfg = RdmaConfig::default();
        assert!(r.mrs().total_mtt_entries() > cfg.mtt_cache_entries);
        assert_eq!(r.cache_penalty(&cfg), cfg.mtt_miss_penalty);
    }
}
