//! Wire-level packet vocabulary for the simulated fabric.
//!
//! The fabric itself (serialization, propagation, fault injection) is
//! orchestrated by [`crate::net::RdmaNet`]; this module defines what travels
//! on it.

use bytes::Bytes;

use palladium_membuf::NodeId;

use crate::verbs::{OpKind, Qpn, RemoteAddr, WrId};

/// A frame in flight between two RNICs.
#[derive(Clone, Debug)]
pub struct Packet {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Originating QP on `src`.
    pub src_qpn: Qpn,
    /// Target QP on `dst`.
    pub dst_qpn: Qpn,
    /// Payload.
    pub kind: PacketKind,
    /// Set by the fault injector; the receiving RNIC's CRC check drops the
    /// frame and lets the go-back-N machinery recover.
    pub corrupted: bool,
}

/// Frame contents.
///
/// `Data` frames carry the work-request fields flattened, with the payload
/// as a refcounted [`Bytes`] handle: building a frame (including every
/// go-back-N retransmission) bumps one refcount instead of cloning a
/// `WorkRequest`, and receivers destructure the fields they need without
/// re-materializing one.
#[derive(Clone, Debug)]
pub enum PacketKind {
    /// A data-bearing message (SEND / WRITE / READ request) with its PSN.
    Data {
        /// Sequence number within the connection.
        psn: u64,
        /// Poster-chosen id (echoed in completions; READ responses carry
        /// it back).
        wr_id: WrId,
        /// Operation kind.
        op: OpKind,
        /// Payload handle for SEND/WRITE (empty for READ requests).
        payload: Bytes,
        /// Remote address for one-sided operations.
        remote: Option<RemoteAddr>,
        /// Bytes to fetch for READ.
        read_len: u32,
        /// Application immediate data.
        imm: u64,
    },
    /// Cumulative acknowledgement of every PSN `<= upto`.
    Ack {
        /// Highest acknowledged PSN.
        upto: u64,
    },
    /// Out-of-sequence NAK: "I still expect `expected`".
    Nak {
        /// PSN the receiver expects next.
        expected: u64,
    },
    /// Receiver-not-ready NAK for a SEND that found no RQ buffer.
    RnrNak {
        /// PSN of the rejected SEND.
        psn: u64,
    },
    /// A liveness probe: unreliable, unacknowledged, outside any QP's PSN
    /// space. Subject to fault injection like any data frame, so link
    /// flaps produce honest missed-heartbeat false positives.
    Heartbeat {
        /// Sender-local monotonically increasing probe number.
        seq: u64,
    },
    /// Response to a one-sided READ. Modelled as reliable (no Palladium
    /// experiment exercises READ; see `net` module docs).
    ReadResp {
        /// WR id of the originating READ.
        wr_id: WrId,
        /// PSN of the originating READ request.
        orig_psn: u64,
        /// The fetched bytes.
        data: Bytes,
    },
}

impl Packet {
    /// Wire size of this frame in bytes, given the per-message header size.
    pub fn wire_bytes(&self, header_bytes: u64, ack_bytes: u64) -> u64 {
        match &self.kind {
            PacketKind::Data { op, payload, .. } => {
                // The request itself is header-only for READ.
                let body = match op {
                    OpKind::Read => 0,
                    OpKind::Send | OpKind::Write => payload.len() as u64,
                };
                header_bytes + body
            }
            PacketKind::Ack { .. }
            | PacketKind::Nak { .. }
            | PacketKind::RnrNak { .. }
            | PacketKind::Heartbeat { .. } => ack_bytes,
            PacketKind::ReadResp { data, .. } => header_bytes + data.len() as u64,
        }
    }

    /// True for control frames (ACK family) that skip receive-queue logic.
    pub fn is_control(&self) -> bool {
        matches!(
            self.kind,
            PacketKind::Ack { .. }
                | PacketKind::Nak { .. }
                | PacketKind::RnrNak { .. }
                | PacketKind::Heartbeat { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes() {
        let data = Packet {
            src: NodeId(0),
            dst: NodeId(1),
            src_qpn: Qpn(1),
            dst_qpn: Qpn(2),
            kind: PacketKind::Data {
                psn: 0,
                wr_id: WrId(1),
                op: OpKind::Send,
                payload: Bytes::from(vec![0u8; 4096]),
                remote: None,
                read_len: 0,
                imm: 0,
            },
            corrupted: false,
        };
        assert_eq!(data.wire_bytes(40, 64), 4136);
        assert!(!data.is_control());

        let ack = Packet {
            kind: PacketKind::Ack { upto: 5 },
            ..data.clone()
        };
        assert_eq!(ack.wire_bytes(40, 64), 64);
        assert!(ack.is_control());

        let rr = Packet {
            kind: PacketKind::ReadResp {
                wr_id: WrId(1),
                orig_psn: 3,
                data: Bytes::from(vec![0u8; 100]),
            },
            ..data
        };
        assert_eq!(rr.wire_bytes(40, 64), 140);
        assert!(!rr.is_control());
    }
}
