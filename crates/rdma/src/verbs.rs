//! IB verbs vocabulary: queue pairs, work requests, completions.
//!
//! This mirrors the subset of the verbs API Palladium's DNE uses (§3.2,
//! §3.5.2): Reliable Connected QPs, two-sided SEND/RECV, one-sided
//! WRITE/READ, shared receive queues (one RQ per tenant, §3.3) and a single
//! shared completion queue per node.

use bytes::Bytes;

use palladium_membuf::{NodeId, PoolId, TenantId};

/// Queue pair number, unique per node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Qpn(pub u32);

/// Work-request identifier chosen by the poster; echoed in the completion.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WrId(pub u64);

/// RDMA operation kind.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OpKind {
    /// Two-sided send (consumes a receiver RQ buffer).
    Send,
    /// One-sided write (receiver CPU oblivious).
    Write,
    /// One-sided read (data flows responder → requester).
    Read,
}

/// A remote buffer address for one-sided operations: Palladium addresses
/// buffers as (pool, index) within a registered memory region rather than
/// raw virtual addresses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RemoteAddr {
    /// Target pool on the remote node.
    pub pool: PoolId,
    /// Buffer index within the pool.
    pub buf_idx: u32,
}

/// A send-side work request.
#[derive(Clone, Debug)]
pub struct WorkRequest {
    /// Poster-chosen id, echoed in the completion.
    pub wr_id: WrId,
    /// Operation kind.
    pub op: OpKind,
    /// Payload carried by SEND/WRITE (snapshot of the pinned buffer; for
    /// READ this is empty and `read_len` governs the response size).
    pub payload: Bytes,
    /// Remote address for one-sided operations; ignored for SEND.
    pub remote: Option<RemoteAddr>,
    /// Number of bytes to fetch for READ.
    pub read_len: u32,
    /// Application immediate data (Palladium carries the 16-byte descriptor
    /// metadata here for SENDs so the receiver can route).
    pub imm: u64,
}

impl WorkRequest {
    /// A two-sided send of `payload`.
    pub fn send(wr_id: WrId, payload: Bytes, imm: u64) -> Self {
        WorkRequest {
            wr_id,
            op: OpKind::Send,
            payload,
            remote: None,
            read_len: 0,
            imm,
        }
    }

    /// A one-sided write of `payload` into `remote`.
    pub fn write(wr_id: WrId, payload: Bytes, remote: RemoteAddr, imm: u64) -> Self {
        WorkRequest {
            wr_id,
            op: OpKind::Write,
            payload,
            remote: Some(remote),
            read_len: 0,
            imm,
        }
    }

    /// A one-sided read of `len` bytes from `remote`.
    pub fn read(wr_id: WrId, remote: RemoteAddr, len: u32) -> Self {
        WorkRequest {
            wr_id,
            op: OpKind::Read,
            payload: Bytes::new(),
            remote: Some(remote),
            read_len: len,
            imm: 0,
        }
    }

    /// Bytes this WR puts on the wire (payload for SEND/WRITE; the request
    /// itself is header-only for READ).
    pub fn wire_payload_len(&self) -> u64 {
        match self.op {
            OpKind::Send | OpKind::Write => self.payload.len() as u64,
            OpKind::Read => 0,
        }
    }
}

/// Completion status.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CqeStatus {
    /// Operation completed successfully.
    Success,
    /// Retries exhausted (peer dead or fabric partitioned).
    RetryExceeded,
    /// Receiver had no RQ buffer after all RNR retries.
    RnrRetryExceeded,
}

/// Which side of the operation a completion reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CqeKind {
    /// A posted send/write/read finished (sender side).
    SendDone(OpKind),
    /// A two-sided receive consumed an RQ buffer (receiver side).
    Recv,
    /// Data fetched by a READ arrived (requester side).
    ReadData,
}

/// A completion queue entry.
#[derive(Clone, Debug)]
pub struct Cqe {
    /// Id of the WR this completion retires. For `Recv` this is the RQ
    /// entry's id (the DNE maps it back through the RBR table, §3.5.2).
    pub wr_id: WrId,
    /// Completion kind.
    pub kind: CqeKind,
    /// Status.
    pub status: CqeStatus,
    /// QP the operation ran on.
    pub qpn: Qpn,
    /// Tenant owning the QP.
    pub tenant: TenantId,
    /// Peer node.
    pub peer: NodeId,
    /// Payload bytes for `Recv`/`ReadData` completions — the reproduction
    /// hands the DMA'd bytes to the driver, which applies them to the posted
    /// buffer via `dma_write` (metered as RNIC DMA, not a software copy).
    pub data: Bytes,
    /// Immediate data from the sender (descriptor metadata for SENDs).
    pub imm: u64,
}

/// QP connection state, per the RC state machine (RESET → INIT → RTR → RTS).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QpState {
    /// Freshly created.
    Reset,
    /// Initialized, not yet connected.
    Init,
    /// Ready to receive.
    Rtr,
    /// Ready to send (fully connected).
    Rts,
    /// Broken.
    Error,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wr_constructors_set_kinds() {
        let s = WorkRequest::send(WrId(1), Bytes::from_static(b"abc"), 7);
        assert_eq!(s.op, OpKind::Send);
        assert_eq!(s.wire_payload_len(), 3);
        assert_eq!(s.imm, 7);

        let w = WorkRequest::write(
            WrId(2),
            Bytes::from_static(b"abcd"),
            RemoteAddr {
                pool: PoolId(1),
                buf_idx: 9,
            },
            0,
        );
        assert_eq!(w.op, OpKind::Write);
        assert_eq!(w.remote.unwrap().buf_idx, 9);
        assert_eq!(w.wire_payload_len(), 4);

        let r = WorkRequest::read(
            WrId(3),
            RemoteAddr {
                pool: PoolId(1),
                buf_idx: 0,
            },
            4096,
        );
        assert_eq!(r.op, OpKind::Read);
        assert_eq!(r.read_len, 4096);
        assert_eq!(r.wire_payload_len(), 0, "read request is header-only");
    }
}
