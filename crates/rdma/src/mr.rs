//! Memory region registration.
//!
//! The DNE registers the (host-resident) unified pool with the RNIC after
//! importing it via DOCA mmap (§3.4.2, step 3). Registration requires an
//! RDMA grant — a pool that was never exported with
//! `doca_mmap_export_rdma()` cannot be registered, which is the security
//! boundary keeping untrusted functions away from the fabric.

use palladium_membuf::{create_from_export, Grant, ImportError, MmapExport, PoolId, TenantId};

/// Key naming a registered memory region on one RNIC.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct MrKey(pub u32);

/// A registered memory region.
#[derive(Clone, Copy, Debug)]
pub struct MemoryRegion {
    /// Registration key.
    pub key: MrKey,
    /// Pool the region backs.
    pub pool: PoolId,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Translation entries this region occupies in the RNIC MTT.
    pub mtt_entries: u64,
}

/// Registration failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MrError {
    /// Export descriptor did not carry an RDMA grant.
    NoRdmaGrant(ImportError),
    /// Pool already registered on this RNIC.
    AlreadyRegistered,
}

/// The per-RNIC table of registered regions.
#[derive(Debug, Default)]
pub struct MrTable {
    regions: Vec<MemoryRegion>,
    next_key: u32,
}

impl MrTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a pool from its mmap export descriptor. Validates the RDMA
    /// grant exactly like `doca_mmap_create_from_export` would.
    pub fn register(&mut self, export: &MmapExport) -> Result<MrKey, MrError> {
        let validated =
            create_from_export(export, Grant::Rdma, None).map_err(MrError::NoRdmaGrant)?;
        if self.regions.iter().any(|r| r.pool == validated.pool) {
            return Err(MrError::AlreadyRegistered);
        }
        let key = MrKey(self.next_key);
        self.next_key += 1;
        self.regions.push(MemoryRegion {
            key,
            pool: validated.pool,
            tenant: validated.tenant,
            mtt_entries: validated.region.mtt_entries(),
        });
        Ok(key)
    }

    /// Is `pool` registered (i.e. may the RNIC DMA into it)?
    pub fn covers(&self, pool: PoolId) -> bool {
        self.regions.iter().any(|r| r.pool == pool)
    }

    /// Region registered for `pool`.
    pub fn region_for(&self, pool: PoolId) -> Option<&MemoryRegion> {
        self.regions.iter().find(|r| r.pool == pool)
    }

    /// Total MTT entries across registrations — compared against the RNIC
    /// translation cache to charge miss penalties.
    pub fn total_mtt_entries(&self) -> u64 {
        self.regions.iter().map(|r| r.mtt_entries).sum()
    }

    /// Deregister a pool (tenant teardown).
    pub fn deregister(&mut self, pool: PoolId) -> bool {
        let before = self.regions.len();
        self.regions.retain(|r| r.pool != pool);
        self.regions.len() != before
    }

    /// Number of registered regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palladium_membuf::{MmapExporter, Region};

    fn exporter() -> MmapExporter {
        MmapExporter::new(PoolId(3), TenantId(2), Region::hugepages(8 * 1024 * 1024))
    }

    #[test]
    fn register_requires_rdma_grant() {
        let mut table = MrTable::new();
        let mut e = exporter();
        let pci_only = e.export_pci();
        assert!(matches!(
            table.register(&pci_only),
            Err(MrError::NoRdmaGrant(_))
        ));
        let rdma = e.export_rdma();
        let key = table.register(&rdma).unwrap();
        assert!(table.covers(PoolId(3)));
        assert_eq!(table.region_for(PoolId(3)).unwrap().key, key);
    }

    #[test]
    fn double_registration_rejected() {
        let mut table = MrTable::new();
        let mut e = exporter();
        let rdma = e.export_rdma();
        table.register(&rdma).unwrap();
        assert_eq!(table.register(&rdma), Err(MrError::AlreadyRegistered));
    }

    #[test]
    fn mtt_entries_accumulate() {
        let mut table = MrTable::new();
        let mut e1 = MmapExporter::new(PoolId(1), TenantId(1), Region::hugepages(4 << 20));
        let mut e2 = MmapExporter::new(PoolId(2), TenantId(2), Region::hugepages(8 << 20));
        table.register(&e1.export_rdma()).unwrap();
        table.register(&e2.export_rdma()).unwrap();
        assert_eq!(table.total_mtt_entries(), 2 + 4);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn deregister_removes_coverage() {
        let mut table = MrTable::new();
        let mut e = exporter();
        table.register(&e.export_rdma()).unwrap();
        assert!(table.deregister(PoolId(3)));
        assert!(!table.covers(PoolId(3)));
        assert!(!table.deregister(PoolId(3)));
        assert!(table.is_empty());
    }
}
