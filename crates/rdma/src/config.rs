//! Timing and protocol configuration for the simulated RDMA substrate.
//!
//! Every constant is calibrated against a number the paper reports (see
//! DESIGN.md §6). Changing these shifts absolute results but not the
//! *shapes* the reproduction asserts (who wins, by what factor).

use palladium_simnet::{ByteCost, Nanos};

/// RDMA substrate configuration.
#[derive(Clone, Copy, Debug)]
pub struct RdmaConfig {
    /// Fabric line rate. Testbed: 200 Gbps switches (§4).
    pub link_gbps: f64,
    /// One-way propagation through NIC serdes + switch + cable.
    pub propagation: Nanos,
    /// Per-message RNIC TX pipeline cost (WQE fetch, doorbell processing,
    /// DMA read setup).
    pub tx_pipeline: Nanos,
    /// Per-message RNIC RX pipeline cost (packet steering, DMA write setup,
    /// CQE generation).
    pub rx_pipeline: Nanos,
    /// Extra per-byte cost (PCIe DMA + memory) applied on each traversal
    /// direction, as a precomputed fixed-point Q32.32 ns/byte multiplier
    /// (charged on every received data frame — integer math only on that
    /// path). Calibrated so a 4 KB two-sided echo lands at ≈11.6 µs vs
    /// ≈8.4 µs for 64 B (§4.1.2).
    pub per_byte: ByteCost,
    /// Cost from posting a WR to the NIC observing it (doorbell + WQE DMA).
    pub doorbell: Nanos,
    /// Per-message RoCE header bytes on the wire.
    pub header_bytes: u64,
    /// ACK/NAK frame size on the wire.
    pub ack_bytes: u64,
    /// Per-QP send window (max unacked messages in flight).
    pub send_window: u32,
    /// Retransmission timeout for the oldest unacked message.
    pub rto: Nanos,
    /// Delay before a sender retries after an RNR NAK (receiver not ready).
    pub rnr_retry_delay: Nanos,
    /// Max RNR retries before the QP errors out.
    pub rnr_retry_limit: u32,
    /// Max (timeout or NAK-triggered) retransmissions of one message.
    pub retry_limit: u32,
    /// QP contexts the RNIC cache holds before thrashing (§3.3 motivates
    /// capping active QPs to avoid exactly this).
    pub qp_cache_capacity: u32,
    /// Extra per-op penalty once active QPs exceed the cache.
    pub qp_cache_miss_penalty: Nanos,
    /// MTT entries the RNIC translation cache holds; hugepages keep real
    /// deployments far below this (§3.4).
    pub mtt_cache_entries: u64,
    /// Extra per-op penalty when registered MTT entries exceed the cache.
    pub mtt_miss_penalty: Nanos,
    /// RC connection establishment latency — "tens of milliseconds" (§3.3).
    pub connect_latency: Nanos,
}

impl Default for RdmaConfig {
    fn default() -> Self {
        RdmaConfig {
            link_gbps: 200.0,
            propagation: Nanos::from_nanos(500),
            tx_pipeline: Nanos::from_nanos(800),
            rx_pipeline: Nanos::from_nanos(900),
            per_byte: ByteCost::per_byte_ns(0.35),
            doorbell: Nanos::from_nanos(900),
            header_bytes: 40,
            ack_bytes: 64,
            send_window: 16,
            rto: Nanos::from_micros(500),
            rnr_retry_delay: Nanos::from_micros(100),
            rnr_retry_limit: 7,
            retry_limit: 7,
            qp_cache_capacity: 256,
            qp_cache_miss_penalty: Nanos::from_nanos(600),
            mtt_cache_entries: 64 * 1024,
            mtt_miss_penalty: Nanos::from_nanos(250),
            connect_latency: Nanos::from_millis(20),
        }
    }
}

impl RdmaConfig {
    /// One-way message latency for `bytes` of payload, excluding queueing
    /// and cache penalties: doorbell + TX pipeline + serialization +
    /// propagation + RX pipeline + per-byte DMA cost.
    pub fn one_way(&self, bytes: u64) -> Nanos {
        let wire = palladium_simnet::wire_time(bytes + self.header_bytes, self.link_gbps);
        self.doorbell + self.tx_pipeline + wire + self.propagation + self.rx_pipeline
            + self.per_byte.cost(bytes)
    }

    /// The fabric's conservative **lookahead** bound: the minimum delay
    /// between posting a work request on one node and the earliest
    /// instant any other node can observe an effect. This is the
    /// size-independent part of [`RdmaConfig::one_way`] — doorbell + TX
    /// pipeline + propagation + RX pipeline; serialization and per-byte
    /// DMA only add to it. The sharded simulation runner
    /// (`palladium_simnet::shard`) sizes its window barriers to this
    /// bound, so it must lower-bound *every* cross-node delay the fabric
    /// can produce (pinned by `lookahead_lower_bounds_one_way`).
    pub fn lookahead(&self) -> Nanos {
        self.doorbell + self.tx_pipeline + self.propagation + self.rx_pipeline
    }

    /// The *frame-level* conservative lookahead: the minimum delay between
    /// a frame entering the fabric on one node ([`RdmaNet::transmit`]) and
    /// its arrival at any other node. Tighter than [`RdmaConfig::lookahead`]
    /// because control frames (ACK/NAK) bypass the doorbell and TX/RX
    /// pipelines: their egress service floor is the 150 ns control cost
    /// plus ACK-frame serialization, followed by propagation. A sharded
    /// run that ships raw fabric frames between shards (the sharded
    /// cluster driver) must size its windows to *this* bound, not the
    /// WR-level one (pinned by `frame_lookahead_lower_bounds_transmit`).
    ///
    /// [`RdmaNet::transmit`]: crate::net::RdmaNet
    pub fn frame_lookahead(&self) -> Nanos {
        Nanos::from_nanos(150)
            + palladium_simnet::wire_time(self.ack_bytes, self.link_gbps)
            + self.propagation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_way_calibration_small() {
        let c = RdmaConfig::default();
        // 64 B one-way should be ≈3.1-3.3 µs so that the two-sided echo RTT
        // (plus ~1 µs engine per side) lands near the paper's 8.4 µs.
        let t = c.one_way(64);
        assert!(
            t >= Nanos::from_nanos(3_000) && t <= Nanos::from_nanos(3_400),
            "one-way 64B = {t}"
        );
    }

    #[test]
    fn one_way_calibration_4k() {
        let c = RdmaConfig::default();
        // 4 KB adds ≈1.6 µs over 64 B (paper: 11.6 µs vs 8.4 µs RTT).
        let delta = c.one_way(4096) - c.one_way(64);
        assert!(
            delta >= Nanos::from_nanos(1_300) && delta <= Nanos::from_nanos(1_900),
            "4K-64B delta = {delta}"
        );
    }

    #[test]
    fn lookahead_lower_bounds_one_way() {
        let c = RdmaConfig::default();
        assert!(!c.lookahead().is_zero(), "zero lookahead forbids sharding");
        for bytes in [0u64, 1, 64, 4096, 1 << 20] {
            assert!(
                c.lookahead() <= c.one_way(bytes),
                "lookahead {} must lower-bound one_way({bytes}) = {}",
                c.lookahead(),
                c.one_way(bytes)
            );
        }
    }

    #[test]
    fn frame_lookahead_lower_bounds_transmit() {
        // `RdmaNet::transmit` charges, per frame, at least:
        //   control: 150 ns + wire(ack_bytes)            + propagation
        //   data:    tx_pipeline + wire(header_bytes+)   + propagation
        // The frame lookahead is the control floor and must lower-bound
        // both (data frames: tx_pipeline(800) alone exceeds the ~652 ns
        // control floor at the default calibration).
        let c = RdmaConfig::default();
        let wire = |b| palladium_simnet::wire_time(b, c.link_gbps);
        let control_floor = Nanos::from_nanos(150) + wire(c.ack_bytes) + c.propagation;
        let data_floor = c.tx_pipeline + wire(c.header_bytes) + c.propagation;
        assert_eq!(c.frame_lookahead(), control_floor);
        assert!(c.frame_lookahead() <= data_floor, "data frames are never faster");
        assert!(c.frame_lookahead() <= c.lookahead(), "frame bound is the tighter one");
        assert!(!c.frame_lookahead().is_zero(), "zero lookahead forbids sharding");
    }

    #[test]
    fn defaults_are_sane() {
        let c = RdmaConfig::default();
        assert!(c.send_window >= 1);
        assert!(c.rto > c.one_way(8192) * 2, "RTO must exceed an RTT");
        assert_eq!(c.link_gbps, 200.0);
        assert!(c.connect_latency >= Nanos::from_millis(10), "tens of ms");
    }
}
