//! The Reliable Connected queue pair state machine.
//!
//! Pure protocol logic — no scheduling. `RdmaNet` (in [`crate::net`]) calls
//! these methods and turns their return values into timed events. Keeping
//! the state machine passive makes it directly unit- and property-testable:
//! the tests below drive it through loss, reordering and RNR without any
//! simulator.
//!
//! Protocol summary (message granularity, go-back-N):
//! * Sender assigns consecutive PSNs; at most `window` messages unacked.
//! * Receiver delivers only `expected_psn`; ahead-of-sequence traffic
//!   triggers a NAK carrying the expected PSN, duplicates re-ACK.
//! * ACKs are cumulative. NAK/RTO rewinds retransmission to the oldest
//!   unacked message.
//! * A SEND arriving to an empty receive queue triggers an RNR NAK; the
//!   sender retries after `rnr_retry_delay` (§2.1's receiver-obliviousness
//!   discussion is precisely about never hitting this in steady state: the
//!   DNE's core thread keeps the RQ replenished, §3.5.2).

use std::collections::VecDeque;

use palladium_membuf::{NodeId, TenantId};
use palladium_simnet::Nanos;

use crate::fabric::PacketKind;
use crate::verbs::{OpKind, QpState, Qpn, WorkRequest};

/// A transmitted-but-unacked message.
#[derive(Clone, Debug)]
pub struct Inflight {
    /// Sequence number.
    pub psn: u64,
    /// The work request (retransmission needs the payload).
    pub wr: WorkRequest,
    /// Last transmission time (for RTO).
    pub sent_at: Nanos,
}

impl Inflight {
    /// Build the wire frame for this message. Go-back-N retransmits the
    /// same message many times under loss; this clones only the refcounted
    /// payload handle — never the payload bytes, never the whole
    /// [`WorkRequest`].
    pub fn frame(&self) -> PacketKind {
        PacketKind::Data {
            psn: self.psn,
            wr_id: self.wr.wr_id,
            op: self.wr.op,
            payload: self.wr.payload.clone(),
            remote: self.wr.remote,
            read_len: self.wr.read_len,
            imm: self.wr.imm,
        }
    }
}

/// What the receiver side decided about an arriving data message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RxDecision {
    /// In sequence: deliver, advance, ACK cumulatively.
    Deliver,
    /// Duplicate (already delivered): discard but re-ACK.
    DuplicateAck,
    /// A gap: discard and NAK with the expected PSN.
    OutOfOrderNak {
        /// PSN the receiver still expects.
        expected: u64,
    },
    /// A gap already NAK'd: discard silently (RoCE NAKs once per gap —
    /// without this suppression, every out-of-order arrival in the window
    /// would trigger a rewind at the sender, a NAK storm that burns the
    /// retry budget without making progress).
    OutOfOrderSilent,
    /// SEND with no receive buffer available: RNR NAK this PSN.
    ReceiverNotReady,
    /// RNR already signalled for this PSN: discard silently.
    ReceiverNotReadySilent,
}

/// One endpoint of an RC connection.
#[derive(Debug)]
pub struct RcQp {
    /// This QP's number.
    pub qpn: Qpn,
    /// Owning tenant.
    pub tenant: TenantId,
    /// Connection state.
    pub state: QpState,
    /// Remote node.
    pub peer_node: NodeId,
    /// Remote QP number.
    pub peer_qpn: Qpn,

    // ---- sender state ----
    sq: VecDeque<WorkRequest>,
    inflight: VecDeque<Inflight>,
    next_psn: u64,
    /// Number of RNR retries burned on the head message.
    pub rnr_retries: u32,
    /// Number of NAK/RTO retries burned on the head message.
    pub retries: u32,
    /// Monotonic epoch to invalidate stale RTO timers.
    pub rto_epoch: u64,
    /// An RTO check is already scheduled for this QP. At most one timer
    /// event is outstanding per QP — re-arms while one is pending would
    /// only produce stale no-op events (the seed scheduled one per
    /// `tx_kick`, which dominated far-future queue traffic).
    pub rto_pending: bool,
    /// Sender is in an RNR backoff (transmission paused).
    pub rnr_paused: bool,

    // ---- receiver state ----
    expected_psn: u64,
    /// Expected PSN we already NAK'd (suppress duplicate NAKs for one gap).
    nak_sent_for: Option<u64>,
    /// PSN we already RNR-NAK'd (suppress duplicate RNR NAKs).
    rnr_sent_for: Option<u64>,
}

impl RcQp {
    /// A QP in `Reset`; `connect`/`set_ready` moves it to `Rts`.
    pub fn new(qpn: Qpn, tenant: TenantId, peer_node: NodeId, peer_qpn: Qpn) -> Self {
        RcQp {
            qpn,
            tenant,
            state: QpState::Reset,
            peer_node,
            peer_qpn,
            sq: VecDeque::new(),
            inflight: VecDeque::new(),
            next_psn: 0,
            rnr_retries: 0,
            retries: 0,
            rto_epoch: 0,
            rto_pending: false,
            rnr_paused: false,
            expected_psn: 0,
            nak_sent_for: None,
            rnr_sent_for: None,
        }
    }

    /// Transition to ready-to-send (both sides connected).
    pub fn set_ready(&mut self) {
        self.state = QpState::Rts;
    }

    /// Mark broken; pending work is drained by the caller.
    pub fn set_error(&mut self) {
        self.state = QpState::Error;
    }

    /// Messages queued but not yet transmitted.
    pub fn sq_depth(&self) -> usize {
        self.sq.len()
    }

    /// Messages transmitted and unacked.
    pub fn inflight_depth(&self) -> usize {
        self.inflight.len()
    }

    /// Total outstanding work (the DNE's "least congested" connection metric
    /// and the shadow-QP active/inactive criterion, §3.3: a QP is active when
    /// it has WRs queued).
    pub fn outstanding(&self) -> usize {
        self.sq.len() + self.inflight.len()
    }

    /// Is the QP active in the shadow-QP sense (consuming RNIC resources)?
    pub fn is_active(&self) -> bool {
        self.outstanding() > 0
    }

    /// Enqueue a work request for transmission. Fails unless in `Rts`.
    pub fn post(&mut self, wr: WorkRequest) -> Result<(), QpState> {
        if self.state != QpState::Rts {
            return Err(self.state);
        }
        self.sq.push_back(wr);
        Ok(())
    }

    /// Pull the next message to put on the wire, if the window allows.
    /// Assigns its PSN and moves it to the inflight queue.
    pub fn next_transmit(&mut self, now: Nanos, window: u32) -> Option<&Inflight> {
        if self.state != QpState::Rts || self.rnr_paused {
            return None;
        }
        if self.inflight.len() >= window as usize {
            return None;
        }
        let wr = self.sq.pop_front()?;
        let psn = self.next_psn;
        self.next_psn += 1;
        self.inflight.push_back(Inflight {
            psn,
            wr,
            sent_at: now,
        });
        self.inflight.back()
    }

    /// Cumulative ACK: retire every inflight message with `psn <= upto`.
    /// Returns the retired messages (for completion generation) in order.
    pub fn on_ack(&mut self, upto: u64) -> Vec<Inflight> {
        let mut retired = Vec::new();
        self.on_ack_into(upto, &mut retired);
        retired
    }

    /// [`RcQp::on_ack`] appending into a caller-owned buffer, so the ACK
    /// hot path (one call per received ACK frame) can reuse one scratch
    /// allocation for the whole simulation.
    pub fn on_ack_into(&mut self, upto: u64, retired: &mut Vec<Inflight>) {
        let before = retired.len();
        while let Some(front) = self.inflight.front() {
            if front.psn <= upto {
                retired.push(self.inflight.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
        if retired.len() > before {
            self.retries = 0;
            self.rnr_retries = 0;
        }
    }

    /// PSN the next fresh transmission would use. A NAK for `expected >=
    /// next_psn` is redundant (we already rewound there) — real RNICs ignore
    /// those instead of burning retry budget on a NAK storm.
    pub fn next_psn(&self) -> u64 {
        self.next_psn
    }

    /// NAK / timeout: rewind everything inflight back onto the send queue
    /// (front, in PSN order) and roll `next_psn` back. Returns how many
    /// messages will be retransmitted.
    pub fn rewind(&mut self) -> usize {
        let n = self.inflight.len();
        while let Some(msg) = self.inflight.pop_back() {
            self.next_psn = msg.psn;
            self.sq.push_front(msg.wr);
        }
        n
    }

    /// Oldest unacked transmission time (RTO reference), if any.
    pub fn oldest_inflight_at(&self) -> Option<Nanos> {
        self.inflight.front().map(|m| m.sent_at)
    }

    /// Receiver: classify an arriving data message. `rq_available` tells
    /// whether a receive buffer exists (only consulted for SENDs).
    pub fn classify_rx(&mut self, psn: u64, op: OpKind, rq_available: bool) -> RxDecision {
        if psn < self.expected_psn {
            return RxDecision::DuplicateAck;
        }
        if psn > self.expected_psn {
            if self.nak_sent_for == Some(self.expected_psn) {
                return RxDecision::OutOfOrderSilent;
            }
            self.nak_sent_for = Some(self.expected_psn);
            return RxDecision::OutOfOrderNak {
                expected: self.expected_psn,
            };
        }
        if matches!(op, OpKind::Send) && !rq_available {
            if self.rnr_sent_for == Some(psn) {
                return RxDecision::ReceiverNotReadySilent;
            }
            self.rnr_sent_for = Some(psn);
            return RxDecision::ReceiverNotReady;
        }
        self.expected_psn += 1;
        // Progress clears the one-NAK-per-gap suppression.
        self.nak_sent_for = None;
        self.rnr_sent_for = None;
        RxDecision::Deliver
    }

    /// Highest delivered PSN (for cumulative ACK generation); `None` until
    /// something was delivered.
    pub fn last_delivered_psn(&self) -> Option<u64> {
        self.expected_psn.checked_sub(1)
    }

    /// Drain all queued and inflight work (QP teardown on fatal error).
    pub fn drain(&mut self) -> Vec<WorkRequest> {
        let mut out: Vec<WorkRequest> = self.inflight.drain(..).map(|m| m.wr).collect();
        out.extend(self.sq.drain(..));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    use crate::verbs::WrId;

    fn qp() -> RcQp {
        let mut q = RcQp::new(Qpn(1), TenantId(1), NodeId(2), Qpn(9));
        q.set_ready();
        q
    }

    fn send_wr(id: u64) -> WorkRequest {
        WorkRequest::send(WrId(id), Bytes::from_static(b"x"), 0)
    }

    #[test]
    fn post_requires_rts() {
        let mut q = RcQp::new(Qpn(1), TenantId(1), NodeId(2), Qpn(9));
        assert_eq!(q.post(send_wr(1)), Err(QpState::Reset));
        q.set_ready();
        assert!(q.post(send_wr(1)).is_ok());
    }

    #[test]
    fn window_limits_inflight() {
        let mut q = qp();
        for i in 0..5 {
            q.post(send_wr(i)).unwrap();
        }
        let mut sent = 0;
        while q.next_transmit(Nanos(0), 3).is_some() {
            sent += 1;
        }
        assert_eq!(sent, 3);
        assert_eq!(q.inflight_depth(), 3);
        assert_eq!(q.sq_depth(), 2);
        // Ack one, window opens for one more.
        let retired = q.on_ack(0);
        assert_eq!(retired.len(), 1);
        assert!(q.next_transmit(Nanos(1), 3).is_some());
        assert!(q.next_transmit(Nanos(1), 3).is_none());
    }

    #[test]
    fn psns_are_consecutive() {
        let mut q = qp();
        for i in 0..4 {
            q.post(send_wr(i)).unwrap();
        }
        let psns: Vec<u64> = std::iter::from_fn(|| q.next_transmit(Nanos(0), 16).map(|m| m.psn))
            .collect();
        assert_eq!(psns, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cumulative_ack_retires_prefix() {
        let mut q = qp();
        for i in 0..4 {
            q.post(send_wr(i)).unwrap();
            q.next_transmit(Nanos(0), 16);
        }
        let retired = q.on_ack(2);
        assert_eq!(retired.len(), 3);
        assert_eq!(retired[0].wr.wr_id, WrId(0));
        assert_eq!(retired[2].wr.wr_id, WrId(2));
        assert_eq!(q.inflight_depth(), 1);
        // Stale ack is a no-op.
        assert!(q.on_ack(1).is_empty());
    }

    #[test]
    fn rewind_preserves_order_and_psns() {
        let mut q = qp();
        for i in 0..3 {
            q.post(send_wr(i)).unwrap();
            q.next_transmit(Nanos(0), 16);
        }
        assert_eq!(q.rewind(), 3);
        assert_eq!(q.inflight_depth(), 0);
        assert_eq!(q.sq_depth(), 3);
        // Retransmission reissues the same PSNs in the same order.
        let m = q.next_transmit(Nanos(5), 16).unwrap();
        assert_eq!((m.psn, m.wr.wr_id), (0, WrId(0)));
        let m = q.next_transmit(Nanos(5), 16).unwrap();
        assert_eq!((m.psn, m.wr.wr_id), (1, WrId(1)));
    }

    #[test]
    fn receiver_inorder_delivery() {
        let mut q = qp();
        assert_eq!(q.classify_rx(0, OpKind::Send, true), RxDecision::Deliver);
        assert_eq!(q.classify_rx(1, OpKind::Send, true), RxDecision::Deliver);
        assert_eq!(q.last_delivered_psn(), Some(1));
    }

    #[test]
    fn receiver_detects_gap_and_duplicate() {
        let mut q = qp();
        assert_eq!(q.classify_rx(0, OpKind::Write, true), RxDecision::Deliver);
        // Gap: 2 arrives while 1 expected.
        assert_eq!(
            q.classify_rx(2, OpKind::Write, true),
            RxDecision::OutOfOrderNak { expected: 1 }
        );
        // Duplicate of 0.
        assert_eq!(q.classify_rx(0, OpKind::Write, true), RxDecision::DuplicateAck);
        // Still expecting 1.
        assert_eq!(q.classify_rx(1, OpKind::Write, true), RxDecision::Deliver);
    }

    #[test]
    fn rnr_only_applies_to_sends() {
        let mut q = qp();
        assert_eq!(
            q.classify_rx(0, OpKind::Send, false),
            RxDecision::ReceiverNotReady
        );
        // PSN not consumed: the retransmitted SEND delivers later.
        assert_eq!(q.classify_rx(0, OpKind::Send, true), RxDecision::Deliver);
        // One-sided writes don't need RQ buffers.
        assert_eq!(q.classify_rx(1, OpKind::Write, false), RxDecision::Deliver);
    }

    #[test]
    fn active_tracking_for_shadow_qps() {
        let mut q = qp();
        assert!(!q.is_active());
        q.post(send_wr(1)).unwrap();
        assert!(q.is_active());
        q.next_transmit(Nanos(0), 16);
        assert!(q.is_active());
        q.on_ack(0);
        assert!(!q.is_active());
    }

    #[test]
    fn drain_returns_everything() {
        let mut q = qp();
        for i in 0..4 {
            q.post(send_wr(i)).unwrap();
        }
        q.next_transmit(Nanos(0), 2);
        q.next_transmit(Nanos(0), 2);
        let drained = q.drain();
        assert_eq!(drained.len(), 4);
        // Inflight first (psn order), then queued.
        assert_eq!(drained[0].wr_id, WrId(0));
        assert_eq!(drained[3].wr_id, WrId(3));
        assert_eq!(q.outstanding(), 0);
    }

    #[test]
    fn rnr_pause_stops_transmission() {
        let mut q = qp();
        q.post(send_wr(1)).unwrap();
        q.rnr_paused = true;
        assert!(q.next_transmit(Nanos(0), 16).is_none());
        q.rnr_paused = false;
        assert!(q.next_transmit(Nanos(0), 16).is_some());
    }
}
