//! # palladium-rdma — the simulated RDMA substrate
//!
//! A from-scratch, protocol-faithful stand-in for the ConnectX-6 RNIC +
//! 200 Gbps fabric the Palladium paper evaluates on (the hardware gate this
//! reproduction substitutes per DESIGN.md §1):
//!
//! * [`verbs`] — the IB-verbs vocabulary: QPs, work requests, completions.
//! * [`qp`] — the Reliable Connected state machine: PSNs, cumulative ACKs,
//!   go-back-N retransmission, RNR NAK/retry, shadow-QP activity tracking.
//! * [`rnic`] — the device model: per-tenant shared RQs, the node-wide
//!   shared CQ, MR registration gated on DOCA RDMA grants, QP-context-cache
//!   and MTT-cache pressure penalties.
//! * [`fabric`] — wire frames.
//! * [`net`] — [`net::RdmaNet`], the sub-simulator drivers embed; see its
//!   module docs for the event-trampoline pattern.
//! * [`config`] — every timing constant, calibrated against numbers the
//!   paper itself reports (DESIGN.md §6).
//!
//! What the substitution preserves: the *protocol-level* properties
//! Palladium's design arguments rest on — two-sided SENDs consume
//! receiver-posted buffers (no receiver-obliviousness), one-sided WRITEs
//! land without receiver involvement (hence the data-race problem of §2.1),
//! RC delivers exactly-once in-order under loss, connection setup costs tens
//! of milliseconds (hence the connection pool), and active QPs beyond the
//! device cache thrash (hence shadow QPs and the active-QP cap).

// The simulation's memory-safety story is that only the shard mailbox ring
// (simnet) and the bench counting allocator contain `unsafe` at all; this
// crate is compiler-certified to stay out of that set (simlint's
// safety-comments rule covers the two that cannot be).
#![forbid(unsafe_code)]

pub mod config;
pub mod fabric;
pub mod mr;
pub mod net;
pub mod qp;
pub mod rnic;
pub mod verbs;

pub use config::RdmaConfig;
pub use fabric::{Packet, PacketKind};
pub use mr::{MemoryRegion, MrError, MrKey, MrTable};
pub use net::{RdmaEvent, RdmaNet, RdmaOutput, Step};
pub use qp::{Inflight, RcQp, RxDecision};
pub use rnic::{Rnic, RnicError, RqEntry};
pub use verbs::{Cqe, CqeKind, CqeStatus, OpKind, QpState, Qpn, RemoteAddr, WorkRequest, WrId};
