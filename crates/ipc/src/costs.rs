//! IPC cost models — the per-operation prices drivers charge to cores.
//!
//! All values are calibrated so the reproduction lands on the paper's
//! comparative results (Fig 9: Comch-P ≈ 8× faster than TCP at low
//! concurrency but collapsing past its knee; Comch-E 2.7–3.8× faster than
//! TCP with stable scaling; §4.3: SK_MSG's interrupt-driven receive
//! throttling the CPU-resident CNE at high concurrency).

use palladium_simnet::Nanos;

/// Costs of the eBPF `SK_MSG` + sockmap descriptor hand-off (§3.5.3).
#[derive(Clone, Copy, Debug)]
pub struct SkMsgCosts {
    /// Sender-side `send()` syscall + SK_MSG program execution.
    pub send_cpu: Nanos,
    /// In-kernel redirect latency (socket-to-socket, protocol stack
    /// bypassed).
    pub transit: Nanos,
    /// Receiver-side wakeup: softirq + epoll wake + `recv()`. This is the
    /// *interrupt-driven* cost that piles onto the CNE's core at high rate
    /// (§4.3's receive-livelock citation \[68\]).
    pub recv_cpu: Nanos,
}

impl Default for SkMsgCosts {
    fn default() -> Self {
        SkMsgCosts {
            send_cpu: Nanos::from_nanos(600),
            transit: Nanos::from_nanos(500),
            recv_cpu: Nanos::from_nanos(1_200),
        }
    }
}

impl SkMsgCosts {
    /// One-way descriptor latency, excluding queueing.
    pub fn one_way(&self) -> Nanos {
        self.send_cpu + self.transit + self.recv_cpu
    }
}

/// The cross-processor channel flavour between host functions and the DNE
/// (§3.5.4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChannelKind {
    /// DOCA Comch event-driven variant: epoll-based send/receive, no pinned
    /// cores — what Palladium ships with.
    ComchE,
    /// DOCA Comch producer/consumer-ring variant with busy polling: lowest
    /// latency, but pins one host core per function and its DNE-side
    /// "Progress Engine" degrades with endpoint count (non-blocking
    /// `epoll_wait` per iteration over every endpoint).
    ComchP,
    /// Kernel TCP loopback over the PCIe netdev — the baseline.
    Tcp,
}

/// Cost model of one cross-processor channel flavour.
#[derive(Clone, Copy, Debug)]
pub struct ChannelCosts {
    /// Host-side CPU cost to send one 16 B descriptor.
    pub host_send_cpu: Nanos,
    /// Host-side CPU cost to receive one descriptor (wakeup included).
    pub host_recv_cpu: Nanos,
    /// PCIe transit latency per descriptor.
    pub transit: Nanos,
    /// DPU-side base cost per descriptor (send or receive), on the wimpy
    /// core. Already expressed in DPU-core time (no further scaling).
    pub dne_cpu_base: Nanos,
    /// Additional DPU-side cost *per registered endpoint* paid on every
    /// operation — the Comch-P Progress-Engine pathology (§3.5.4): its
    /// "busy" polling runs a non-blocking `epoll_wait` across all endpoints.
    pub dne_cpu_per_endpoint: Nanos,
    /// Does the host side burn a dedicated core per function (busy poll)?
    pub pins_host_core: bool,
}

impl ChannelCosts {
    /// The calibrated cost table.
    pub fn for_kind(kind: ChannelKind) -> ChannelCosts {
        match kind {
            // Event-driven: epoll wake on the host (~1.3 µs), event-queue
            // handling through DOCA's progress engine on the wimpy core.
            // Unloaded RTT ≈ 8 µs; single-core DNE echo capacity ≈ 227 K/s.
            ChannelKind::ComchE => ChannelCosts {
                host_send_cpu: Nanos::from_nanos(500),
                host_recv_cpu: Nanos::from_nanos(1_300),
                transit: Nanos::from_nanos(900),
                dne_cpu_base: Nanos::from_nanos(2_200),
                dne_cpu_per_endpoint: Nanos::ZERO,
                pins_host_core: false,
            },
            // Busy-polled ring: near-zero host receive latency, but the DNE
            // pays per-endpoint epoll cost per op and each function pins a
            // host core. Unloaded RTT ≈ 3.6 µs (>8x under TCP, §3.5.4);
            // echo capacity ≈ 0.5 M/s at 1 endpoint, collapsing past ~6.
            ChannelKind::ComchP => ChannelCosts {
                host_send_cpu: Nanos::from_nanos(200),
                host_recv_cpu: Nanos::from_nanos(100),
                transit: Nanos::from_nanos(700),
                dne_cpu_base: Nanos::from_nanos(500),
                dne_cpu_per_endpoint: Nanos::from_nanos(450),
                pins_host_core: true,
            },
            // Kernel TCP: full protocol stack both sides; brutal on the
            // wimpy DPU core (§2.1 Challenge#2). Unloaded RTT ≈ 31 µs.
            ChannelKind::Tcp => ChannelCosts {
                host_send_cpu: Nanos::from_nanos(3_500),
                host_recv_cpu: Nanos::from_nanos(4_500),
                transit: Nanos::from_nanos(1_500),
                dne_cpu_base: Nanos::from_nanos(10_000),
                dne_cpu_per_endpoint: Nanos::ZERO,
                pins_host_core: false,
            },
        }
    }

    /// DNE-side per-descriptor CPU cost with `endpoints` functions attached.
    pub fn dne_cpu(&self, endpoints: usize) -> Nanos {
        // simlint: allow(saturating-cost-casts) — usize→u64 widening of an endpoint count; lossless on every supported platform
        self.dne_cpu_base + self.dne_cpu_per_endpoint * endpoints as u64
    }

    /// Idealized unloaded round-trip latency (host → DNE → host) with
    /// `endpoints` attached, for calibration checks.
    pub fn unloaded_rtt(&self, endpoints: usize) -> Nanos {
        self.host_send_cpu
            + self.transit
            + self.dne_cpu(endpoints)   // DNE receives
            + self.dne_cpu(endpoints)   // DNE replies
            + self.transit
            + self.host_recv_cpu
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comch_p_is_fastest_unloaded() {
        let e = ChannelCosts::for_kind(ChannelKind::ComchE).unloaded_rtt(1);
        let p = ChannelCosts::for_kind(ChannelKind::ComchP).unloaded_rtt(1);
        let t = ChannelCosts::for_kind(ChannelKind::Tcp).unloaded_rtt(1);
        assert!(p < e, "Comch-P must beat Comch-E unloaded: {p} vs {e}");
        assert!(e < t, "Comch-E must beat TCP: {e} vs {t}");
        // Paper: Comch-P cuts latency by >8x versus TCP (§3.5.4).
        assert!(
            t.as_nanos() as f64 / p.as_nanos() as f64 > 8.0,
            "Comch-P vs TCP ratio: {t} / {p}"
        );
    }

    #[test]
    fn comch_e_vs_tcp_ratio_in_paper_band() {
        // Paper: Comch-E outperforms TCP by 2.7x–3.8x.
        let e = ChannelCosts::for_kind(ChannelKind::ComchE).unloaded_rtt(1);
        let t = ChannelCosts::for_kind(ChannelKind::Tcp).unloaded_rtt(1);
        let ratio = t.as_nanos() as f64 / e.as_nanos() as f64;
        assert!(
            (2.7..=6.0).contains(&ratio),
            "Comch-E vs TCP unloaded ratio {ratio:.2}"
        );
    }

    #[test]
    fn comch_p_degrades_with_endpoints() {
        let costs = ChannelCosts::for_kind(ChannelKind::ComchP);
        // Past the knee the per-endpoint epoll cost dominates: with dozens
        // of functions, per-op DNE cost multiplies.
        assert!(costs.dne_cpu(100) > costs.dne_cpu(1) * 10);
        // Comch-E is endpoint-count independent.
        let e = ChannelCosts::for_kind(ChannelKind::ComchE);
        assert_eq!(e.dne_cpu(100), e.dne_cpu(1));
    }

    #[test]
    fn only_comch_p_pins_cores() {
        assert!(ChannelCosts::for_kind(ChannelKind::ComchP).pins_host_core);
        assert!(!ChannelCosts::for_kind(ChannelKind::ComchE).pins_host_core);
        assert!(!ChannelCosts::for_kind(ChannelKind::Tcp).pins_host_core);
    }

    #[test]
    fn skmsg_one_way_is_microseconds() {
        let c = SkMsgCosts::default();
        assert!(c.one_way() >= Nanos::from_micros(2));
        assert!(c.one_way() <= Nanos::from_micros(4));
    }
}
