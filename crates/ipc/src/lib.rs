//! # palladium-ipc — intra-node and cross-processor IPC substrate
//!
//! The descriptor-passing channels of Palladium's data plane:
//!
//! * [`sockmap`] — eBPF `BPF_MAP_TYPE_SOCKMAP` + the `SK_MSG` fast path
//!   used between co-located functions (§3.5.3, Fig 8): descriptors hop
//!   socket-to-socket, bypassing the kernel protocol stack.
//! * [`comch`] — the DOCA Communication Channel between host functions and
//!   the DNE (§3.5.4): one server on the DPU, one client endpoint per
//!   function, with the misbehaving-tenant disconnect hook.
//! * [`costs`] — calibrated per-operation prices for SK_MSG, Comch-E,
//!   Comch-P and the kernel-TCP baseline; the Fig 9 curves (and the Fig 16
//!   DNE-vs-CNE crossover) are these costs run through queueing.

// The simulation's memory-safety story is that only the shard mailbox ring
// (simnet) and the bench counting allocator contain `unsafe` at all; this
// crate is compiler-certified to stay out of that set (simlint's
// safety-comments rule covers the two that cannot be).
#![forbid(unsafe_code)]

pub mod comch;
pub mod costs;
pub mod sockmap;

pub use comch::{ComchError, ComchServer};
pub use costs::{ChannelCosts, ChannelKind, SkMsgCosts};
pub use sockmap::{SockFd, Sockmap, SockmapError};
