//! The eBPF sockmap — `BPF_MAP_TYPE_SOCKMAP` — and the `SK_MSG` fast path.
//!
//! Palladium's intra-node data plane (§3.5.3, Fig 8) hands 16-byte buffer
//! descriptors between co-located functions through eBPF `SK_MSG`: the
//! source function's `send()` triggers the SK_MSG program, which looks up
//! the destination function's socket in the sockmap and redirects the
//! descriptor directly to it — bypassing the kernel protocol stack entirely.
//!
//! The reproduction keeps the exact structure: a sockmap keyed by function
//! id holding socket file descriptors, a verdict program that routes
//! descriptors, and delivery queues per socket. Timing costs live in
//! [`crate::costs`]; drivers charge them to the right cores.

// simlint: allow(no-unordered-iteration) — lookup-only maps below; never iterated
use std::collections::HashMap;

use palladium_membuf::{BufDesc, FnId};

/// A socket file descriptor (node-local).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SockFd(pub u32);

/// Errors from sockmap operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SockmapError {
    /// No socket registered for the destination function.
    NoRoute(FnId),
    /// The fd is not in the map (stale entry / torn-down function).
    StaleFd(SockFd),
}

/// The sockmap plus per-socket delivery queues — one instance per node.
#[derive(Debug, Default)]
pub struct Sockmap {
    /// `BPF_MAP_TYPE_SOCKMAP`: function id → socket fd.
    // simlint: allow(no-unordered-iteration) — keyed get/insert/remove only; never iterated
    map: HashMap<FnId, SockFd>,
    /// Kernel-side socket receive queues (descriptors, in order).
    // simlint: allow(no-unordered-iteration) — keyed per-fd delivery only; never iterated
    queues: HashMap<SockFd, Vec<BufDesc>>,
    next_fd: u32,
    /// Messages redirected so far.
    pub redirects: u64,
}

impl Sockmap {
    /// An empty sockmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a function's socket (done at function deployment by the
    /// runtime, mirroring `bpf_map_update_elem`).
    pub fn register(&mut self, f: FnId) -> SockFd {
        let fd = SockFd(self.next_fd);
        self.next_fd += 1;
        self.map.insert(f, fd);
        self.queues.insert(fd, Vec::new());
        fd
    }

    /// Remove a function (teardown).
    pub fn unregister(&mut self, f: FnId) {
        if let Some(fd) = self.map.remove(&f) {
            self.queues.remove(&fd);
        }
    }

    /// The SK_MSG verdict program: route `desc` to its destination
    /// function's socket queue. Returns the destination fd on success.
    pub fn sk_msg_redirect(&mut self, desc: BufDesc) -> Result<SockFd, SockmapError> {
        let fd = *self
            .map
            .get(&desc.dst_fn)
            .ok_or(SockmapError::NoRoute(desc.dst_fn))?;
        let queue = self.queues.get_mut(&fd).ok_or(SockmapError::StaleFd(fd))?;
        queue.push(desc);
        self.redirects += 1;
        Ok(fd)
    }

    /// Drain up to `max` descriptors from a function's socket (its
    /// `recv()` / epoll-readiness path).
    pub fn recv(&mut self, f: FnId, max: usize) -> Vec<BufDesc> {
        let Some(fd) = self.map.get(&f) else {
            return Vec::new();
        };
        let Some(q) = self.queues.get_mut(fd) else {
            return Vec::new();
        };
        let n = max.min(q.len());
        q.drain(..n).collect()
    }

    /// Descriptors waiting on a function's socket.
    pub fn pending(&self, f: FnId) -> usize {
        self.map
            .get(&f)
            .and_then(|fd| self.queues.get(fd))
            .map(|q| q.len())
            .unwrap_or(0)
    }

    /// Is the function registered?
    pub fn contains(&self, f: FnId) -> bool {
        self.map.contains_key(&f)
    }

    /// Number of registered sockets.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no sockets are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palladium_membuf::{PoolId, TenantId};

    fn desc(src: u16, dst: u16) -> BufDesc {
        BufDesc {
            tenant: TenantId(1),
            pool: PoolId(1),
            buf_idx: 7,
            len: 64,
            src_fn: FnId(src),
            dst_fn: FnId(dst),
        }
    }

    #[test]
    fn redirect_routes_to_destination() {
        let mut sm = Sockmap::new();
        sm.register(FnId(1));
        let fd2 = sm.register(FnId(2));
        let got = sm.sk_msg_redirect(desc(1, 2)).unwrap();
        assert_eq!(got, fd2);
        assert_eq!(sm.pending(FnId(2)), 1);
        assert_eq!(sm.pending(FnId(1)), 0);
        let received = sm.recv(FnId(2), 16);
        assert_eq!(received.len(), 1);
        assert_eq!(received[0].buf_idx, 7);
        assert_eq!(sm.redirects, 1);
    }

    #[test]
    fn unknown_destination_is_no_route() {
        let mut sm = Sockmap::new();
        sm.register(FnId(1));
        assert_eq!(
            sm.sk_msg_redirect(desc(1, 9)),
            Err(SockmapError::NoRoute(FnId(9)))
        );
    }

    #[test]
    fn unregister_removes_route_and_queue() {
        let mut sm = Sockmap::new();
        sm.register(FnId(1));
        sm.register(FnId(2));
        sm.sk_msg_redirect(desc(1, 2)).unwrap();
        sm.unregister(FnId(2));
        assert!(!sm.contains(FnId(2)));
        assert_eq!(sm.pending(FnId(2)), 0);
        assert!(sm.sk_msg_redirect(desc(1, 2)).is_err());
        assert_eq!(sm.len(), 1);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut sm = Sockmap::new();
        sm.register(FnId(1));
        sm.register(FnId(2));
        for i in 0..5 {
            let mut d = desc(1, 2);
            d.buf_idx = i;
            sm.sk_msg_redirect(d).unwrap();
        }
        let got = sm.recv(FnId(2), 3);
        assert_eq!(got.iter().map(|d| d.buf_idx).collect::<Vec<_>>(), [0, 1, 2]);
        let rest = sm.recv(FnId(2), 16);
        assert_eq!(rest.iter().map(|d| d.buf_idx).collect::<Vec<_>>(), [3, 4]);
    }

    #[test]
    fn recv_on_unknown_function_is_empty() {
        let mut sm = Sockmap::new();
        assert!(sm.recv(FnId(3), 4).is_empty());
        assert!(sm.is_empty());
    }
}
