//! The DOCA Communication Channel (Comch) — descriptor transport between
//! host functions and the DNE on the DPU (§3.5.4).
//!
//! The DNE runs a single Comch *server*; every host function connects as a
//! *client* endpoint. Descriptors flow both ways in FIFO order per
//! endpoint. The server can disconnect a misbehaving tenant's endpoints —
//! the enforcement hook the paper highlights over raw intra-node RDMA
//! ("Comch allows the DNE to disconnect misbehaving tenants").
//!
//! Timing lives in [`crate::costs::ChannelCosts`]; this module is the real
//! state: endpoint registry, queues, connection lifecycle.

use std::collections::BTreeMap;

use palladium_membuf::{BufDesc, FnId, TenantId};

use crate::costs::{ChannelCosts, ChannelKind};

/// Errors from Comch operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ComchError {
    /// Function has no connected endpoint.
    NotConnected(FnId),
    /// Endpoint was administratively disconnected.
    Disconnected(FnId),
}

#[derive(Debug)]
struct Endpoint {
    tenant: TenantId,
    /// Descriptors queued toward the host function.
    to_host: Vec<BufDesc>,
    /// Descriptors queued toward the DNE.
    to_dne: Vec<BufDesc>,
    connected: bool,
}

/// The Comch server instance owned by one DNE.
#[derive(Debug)]
pub struct ComchServer {
    kind: ChannelKind,
    costs: ChannelCosts,
    /// Ordered by fn id: the server iterates endpoints (tenant
    /// disconnect, the DNE busy-poll sweep), so the registry must walk in
    /// a deterministic order — the seed's HashMap forced `dne_sweep` to
    /// collect-and-sort every call to stay reproducible.
    endpoints: BTreeMap<FnId, Endpoint>,
    /// Total descriptors that crossed the channel (both directions).
    pub transferred: u64,
}

impl ComchServer {
    /// A server speaking the given channel flavour.
    pub fn new(kind: ChannelKind) -> Self {
        ComchServer {
            kind,
            costs: ChannelCosts::for_kind(kind),
            endpoints: BTreeMap::new(),
            transferred: 0,
        }
    }

    /// Channel flavour.
    pub fn kind(&self) -> ChannelKind {
        self.kind
    }

    /// The cost model for this flavour.
    pub fn costs(&self) -> &ChannelCosts {
        &self.costs
    }

    /// Connect a function endpoint (done at function startup).
    pub fn connect(&mut self, f: FnId, tenant: TenantId) {
        self.endpoints.insert(
            f,
            Endpoint {
                tenant,
                to_host: Vec::new(),
                to_dne: Vec::new(),
                connected: true,
            },
        );
    }

    /// Administratively disconnect every endpoint of `tenant` (the
    /// misbehaving-tenant hook). Returns how many endpoints were cut.
    pub fn disconnect_tenant(&mut self, tenant: TenantId) -> usize {
        let mut n = 0;
        for ep in self.endpoints.values_mut() {
            if ep.tenant == tenant && ep.connected {
                ep.connected = false;
                ep.to_host.clear();
                ep.to_dne.clear();
                n += 1;
            }
        }
        n
    }

    /// Number of connected endpoints — the Comch-P progress engine iterates
    /// over all of them per op, which is exactly its scaling pathology.
    pub fn connected_endpoints(&self) -> usize {
        self.endpoints.values().filter(|e| e.connected).count()
    }

    fn endpoint_mut(&mut self, f: FnId) -> Result<&mut Endpoint, ComchError> {
        let ep = self
            .endpoints
            .get_mut(&f)
            .ok_or(ComchError::NotConnected(f))?;
        if !ep.connected {
            return Err(ComchError::Disconnected(f));
        }
        Ok(ep)
    }

    /// Host function `f` sends a descriptor toward the DNE.
    pub fn host_send(&mut self, f: FnId, desc: BufDesc) -> Result<(), ComchError> {
        let ep = self.endpoint_mut(f)?;
        ep.to_dne.push(desc);
        self.transferred += 1;
        Ok(())
    }

    /// The DNE sends a descriptor toward host function `f`.
    pub fn dne_send(&mut self, f: FnId, desc: BufDesc) -> Result<(), ComchError> {
        let ep = self.endpoint_mut(f)?;
        ep.to_host.push(desc);
        self.transferred += 1;
        Ok(())
    }

    /// The DNE's event loop drains descriptors from one endpoint.
    pub fn dne_recv(&mut self, f: FnId, max: usize) -> Vec<BufDesc> {
        match self.endpoint_mut(f) {
            Ok(ep) => {
                let n = max.min(ep.to_dne.len());
                ep.to_dne.drain(..n).collect()
            }
            Err(_) => Vec::new(),
        }
    }

    /// The DNE's event loop sweep: drain every endpoint round-robin (the
    /// busy-poll over "all monitored function endpoints", §3.5.4). Returns
    /// `(fn, desc)` pairs in deterministic fn-id order.
    pub fn dne_sweep(&mut self) -> Vec<(FnId, BufDesc)> {
        // BTreeMap iteration is already ascending fn-id order — the
        // deterministic sweep order falls out of the container.
        let fns: Vec<FnId> = self
            .endpoints
            .iter()
            .filter(|(_, e)| e.connected && !e.to_dne.is_empty())
            .map(|(f, _)| *f)
            .collect();
        let mut out = Vec::new();
        for f in fns {
            let ep = self.endpoints.get_mut(&f).expect("listed above");
            for d in ep.to_dne.drain(..) {
                out.push((f, d));
            }
        }
        out
    }

    /// Host function `f` receives descriptors (epoll-ready path).
    pub fn host_recv(&mut self, f: FnId, max: usize) -> Vec<BufDesc> {
        match self.endpoint_mut(f) {
            Ok(ep) => {
                let n = max.min(ep.to_host.len());
                ep.to_host.drain(..n).collect()
            }
            Err(_) => Vec::new(),
        }
    }

    /// Descriptors waiting toward host `f`.
    pub fn pending_to_host(&self, f: FnId) -> usize {
        self.endpoints.get(&f).map(|e| e.to_host.len()).unwrap_or(0)
    }

    /// Descriptors waiting toward the DNE from `f`.
    pub fn pending_to_dne(&self, f: FnId) -> usize {
        self.endpoints.get(&f).map(|e| e.to_dne.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palladium_membuf::PoolId;

    fn desc(src: u16, dst: u16, idx: u32) -> BufDesc {
        BufDesc {
            tenant: TenantId(1),
            pool: PoolId(1),
            buf_idx: idx,
            len: 16,
            src_fn: FnId(src),
            dst_fn: FnId(dst),
        }
    }

    #[test]
    fn bidirectional_fifo() {
        let mut ch = ComchServer::new(ChannelKind::ComchE);
        ch.connect(FnId(1), TenantId(1));
        ch.host_send(FnId(1), desc(1, 0, 10)).unwrap();
        ch.host_send(FnId(1), desc(1, 0, 11)).unwrap();
        let got = ch.dne_recv(FnId(1), 8);
        assert_eq!(got.iter().map(|d| d.buf_idx).collect::<Vec<_>>(), [10, 11]);
        ch.dne_send(FnId(1), desc(0, 1, 20)).unwrap();
        assert_eq!(ch.pending_to_host(FnId(1)), 1);
        let back = ch.host_recv(FnId(1), 8);
        assert_eq!(back[0].buf_idx, 20);
        assert_eq!(ch.transferred, 3);
    }

    #[test]
    fn unconnected_function_rejected() {
        let mut ch = ComchServer::new(ChannelKind::ComchE);
        assert_eq!(
            ch.host_send(FnId(9), desc(9, 0, 1)),
            Err(ComchError::NotConnected(FnId(9)))
        );
    }

    #[test]
    fn tenant_disconnect_cuts_endpoints() {
        let mut ch = ComchServer::new(ChannelKind::ComchE);
        ch.connect(FnId(1), TenantId(1));
        ch.connect(FnId(2), TenantId(1));
        ch.connect(FnId(3), TenantId(2));
        ch.host_send(FnId(1), desc(1, 0, 1)).unwrap();
        assert_eq!(ch.disconnect_tenant(TenantId(1)), 2);
        assert_eq!(ch.connected_endpoints(), 1);
        // Queued traffic of the cut tenant is discarded, sends rejected.
        assert_eq!(ch.pending_to_dne(FnId(1)), 0);
        assert_eq!(
            ch.host_send(FnId(1), desc(1, 0, 2)),
            Err(ComchError::Disconnected(FnId(1)))
        );
        // Other tenants unaffected.
        assert!(ch.host_send(FnId(3), desc(3, 0, 3)).is_ok());
    }

    #[test]
    fn sweep_drains_all_endpoints_deterministically() {
        let mut ch = ComchServer::new(ChannelKind::ComchP);
        for f in [3u16, 1, 2] {
            ch.connect(FnId(f), TenantId(1));
            ch.host_send(FnId(f), desc(f, 0, f as u32)).unwrap();
        }
        let swept = ch.dne_sweep();
        let order: Vec<u16> = swept.iter().map(|(f, _)| f.raw()).collect();
        assert_eq!(order, [1, 2, 3], "fn-id order, deterministic");
        assert!(ch.dne_sweep().is_empty());
    }

    #[test]
    fn costs_match_kind() {
        let ch = ComchServer::new(ChannelKind::ComchP);
        assert!(ch.costs().pins_host_core);
        assert_eq!(ch.kind(), ChannelKind::ComchP);
    }
}
