//! Property-based tests for the unified pool's core invariants:
//!
//! 1. The pool never double-allocates a live buffer.
//! 2. Allocations + frees conserve capacity exactly (no leaks, no phantom
//!    buffers).
//! 3. Token hand-off (into_transit/redeem) is exactly-once for arbitrary
//!    operation interleavings.
//! 4. Descriptor encoding round-trips for arbitrary field values.

use std::collections::HashSet;

use proptest::prelude::*;

use palladium_membuf::{
    BufDesc, BufToken, CopyMeter, FnId, Owner, PoolError, PoolId, TenantId, UnifiedPool,
};

/// A randomly generated pool operation.
#[derive(Clone, Debug)]
enum Op {
    Alloc,
    /// Free the i-th live token (modulo live count).
    Free(usize),
    /// Hand off the i-th live token and immediately redeem it.
    Handoff(usize),
    /// Hand off the i-th live token and try to redeem it twice.
    DoubleRedeem(usize),
    /// Write then read back a payload of the given length through the i-th
    /// live token.
    WriteRead(usize, u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Alloc),
        2 => (0usize..64).prop_map(Op::Free),
        2 => (0usize..64).prop_map(Op::Handoff),
        1 => (0usize..64).prop_map(Op::DoubleRedeem),
        2 => ((0usize..64), (0u16..512)).prop_map(|(i, n)| Op::WriteRead(i, n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pool_conserves_buffers_and_enforces_single_ownership(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        n_bufs in 1u32..16,
    ) {
        let buf_size = 512u32;
        let mut pool = UnifiedPool::new(PoolId(1), TenantId(1), n_bufs, buf_size);
        let mut meter = CopyMeter::new();
        let mut live: Vec<BufToken> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc => {
                    match pool.alloc(Owner::Function(FnId(1))) {
                        Ok(tok) => live.push(tok),
                        Err(PoolError::Exhausted) => {
                            prop_assert_eq!(live.len() as u32, n_bufs);
                        }
                        Err(e) => prop_assert!(false, "unexpected alloc error {:?}", e),
                    }
                }
                Op::Free(i) => {
                    if !live.is_empty() {
                        let tok = live.remove(i % live.len());
                        pool.free(tok).expect("freeing a live token must succeed");
                    }
                }
                Op::Handoff(i) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        let tok = live.remove(idx);
                        let desc = pool
                            .into_transit(tok, FnId(1), FnId(2))
                            .expect("handoff of live token");
                        let tok2 = pool
                            .redeem(&desc, Owner::Function(FnId(2)))
                            .expect("redeem of in-transit descriptor");
                        live.push(tok2);
                    }
                }
                Op::DoubleRedeem(i) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        let tok = live.remove(idx);
                        let desc = pool.into_transit(tok, FnId(1), FnId(2)).unwrap();
                        let tok2 = pool.redeem(&desc, Owner::Function(FnId(2))).unwrap();
                        // Second redeem of the same descriptor must fail.
                        let second = pool.redeem(&desc, Owner::Function(FnId(3)));
                        let rejected = matches!(second, Err(PoolError::BadOwner { .. }));
                        prop_assert!(rejected, "double redeem must be rejected");
                        live.push(tok2);
                    }
                }
                Op::WriteRead(i, n) => {
                    if !live.is_empty() {
                        let idx = i % live.len();
                        let payload: Vec<u8> = (0..n).map(|b| (b % 251) as u8).collect();
                        let tok = &live[idx];
                        if (n as u32) <= buf_size {
                            pool.write(tok, &payload, &mut meter).unwrap();
                            prop_assert_eq!(pool.read(tok).unwrap(), &payload[..]);
                        } else {
                            prop_assert_eq!(
                                pool.write(tok, &payload, &mut meter),
                                Err(PoolError::TooLarge)
                            );
                        }
                    }
                }
            }

            // Invariant: conservation.
            prop_assert_eq!(pool.in_use() as usize, live.len());
            prop_assert_eq!(
                pool.available() as usize + live.len(),
                n_bufs as usize
            );
            // Invariant: no two live tokens share a buffer index.
            let idxs: HashSet<u32> = live.iter().map(|t| t.idx()).collect();
            prop_assert_eq!(idxs.len(), live.len());
        }

        // Drain: everything frees cleanly and the pool refills completely.
        for tok in live.drain(..) {
            pool.free(tok).unwrap();
        }
        prop_assert_eq!(pool.available(), n_bufs);
        prop_assert_eq!(pool.stats().allocs, pool.stats().frees);
    }

    #[test]
    fn descriptor_roundtrip(
        tenant in any::<u16>(),
        pool in any::<u16>(),
        buf_idx in any::<u32>(),
        len in any::<u32>(),
        src in any::<u16>(),
        dst in any::<u16>(),
    ) {
        let d = BufDesc {
            tenant: TenantId(tenant),
            pool: PoolId(pool),
            buf_idx,
            len,
            src_fn: FnId(src),
            dst_fn: FnId(dst),
        };
        prop_assert_eq!(BufDesc::decode(&d.encode()), Some(d));
    }

    #[test]
    fn payload_integrity_through_handoff_chains(
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        hops in 1usize..8,
    ) {
        // A payload written once survives any number of ownership hand-offs
        // without any further copies (the zero-copy chain invariant).
        let mut pool = UnifiedPool::new(PoolId(1), TenantId(1), 2, 512);
        let mut meter = CopyMeter::new();
        let tok = pool.alloc(Owner::Function(FnId(0))).unwrap();
        pool.write(&tok, &payload, &mut meter).unwrap();
        let mut tok = tok;
        for hop in 0..hops {
            let desc = pool
                .into_transit(tok, FnId(hop as u16), FnId(hop as u16 + 1))
                .unwrap();
            tok = pool
                .redeem(&desc, Owner::Function(FnId(hop as u16 + 1)))
                .unwrap();
        }
        prop_assert_eq!(pool.read(&tok).unwrap(), &payload[..]);
        prop_assert_eq!(meter.sw_ops, 1, "only the initial produce copies");
        pool.free(tok).unwrap();
    }
}
