//! Cross-processor shared memory — the DOCA `mmap` analogue.
//!
//! Palladium makes the host-resident unified pool visible to the DPU and to
//! the integrated RNIC through NVIDIA DOCA's mmap export mechanism (§3.4.2):
//! the host-side shared-memory agent calls `doca_mmap_export_pci()` (grants
//! the ARM cores access) and `doca_mmap_export_rdma()` (grants the RNIC
//! access), ships the resulting export descriptor over Comch, and the DNE
//! re-creates the mapping with `doca_mmap_create_from_export()`.
//!
//! The reproduction keeps the same three-step protocol and enforces the same
//! security property: *no grant, no access*. The DPU crate refuses to import
//! a pool without a PCI grant and the RNIC refuses to register memory
//! without an RDMA grant — tests assert both.

use crate::hugepage::Region;
use crate::ids::{PoolId, TenantId};

/// Which device class an export grants access to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Grant {
    /// DPU ARM cores over PCIe (`doca_mmap_export_pci`).
    Pci,
    /// The integrated RNIC (`doca_mmap_export_rdma`).
    Rdma,
}

/// An export descriptor: the opaque blob DOCA would hand back, carrying
/// enough metadata for the remote side to re-create the mapping.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MmapExport {
    /// The exported pool.
    pub pool: PoolId,
    /// Owning tenant (isolation tag).
    pub tenant: TenantId,
    /// Backing region geometry (used for MTT sizing at MR registration).
    pub region: Region,
    /// What this export grants.
    pub grant: Grant,
}

/// Host-side bookkeeping of what has been exported for one pool.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExportState {
    pci: bool,
    rdma: bool,
}

/// The host side of the mmap protocol, owned by the per-tenant shared-memory
/// agent.
#[derive(Debug)]
pub struct MmapExporter {
    pool: PoolId,
    tenant: TenantId,
    region: Region,
    state: ExportState,
}

impl MmapExporter {
    /// An exporter for a pool backed by `region`.
    pub fn new(pool: PoolId, tenant: TenantId, region: Region) -> Self {
        MmapExporter {
            pool,
            tenant,
            region,
            state: ExportState::default(),
        }
    }

    /// `doca_mmap_export_pci()` — grant the DPU ARM cores access.
    pub fn export_pci(&mut self) -> MmapExport {
        self.state.pci = true;
        MmapExport {
            pool: self.pool,
            tenant: self.tenant,
            region: self.region,
            grant: Grant::Pci,
        }
    }

    /// `doca_mmap_export_rdma()` — grant the RNIC access.
    pub fn export_rdma(&mut self) -> MmapExport {
        self.state.rdma = true;
        MmapExport {
            pool: self.pool,
            tenant: self.tenant,
            region: self.region,
            grant: Grant::Rdma,
        }
    }

    /// Has a PCI export been issued?
    pub fn pci_exported(&self) -> bool {
        self.state.pci
    }

    /// Has an RDMA export been issued?
    pub fn rdma_exported(&self) -> bool {
        self.state.rdma
    }

    /// Revoke all exports (tenant teardown). Remote mappings created from
    /// earlier descriptors must be dropped by the control plane — the DPU
    /// import table validates against a revocation epoch in `palladium-dpu`.
    pub fn revoke(&mut self) {
        self.state = ExportState::default();
    }
}

/// Error returned when importing an export descriptor fails validation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ImportError {
    /// The export grants the wrong device class.
    WrongGrant {
        /// Grant class required by the importer.
        needed: Grant,
        /// Grant class carried by the descriptor.
        got: Grant,
    },
    /// The importer belongs to a different tenant than the export.
    TenantMismatch,
}

/// `doca_mmap_create_from_export()` — validate an export descriptor for an
/// importer of the given device class and tenant scope. Returns the export
/// on success so the importer can record the mapping.
pub fn create_from_export(
    export: &MmapExport,
    needed: Grant,
    tenant_scope: Option<TenantId>,
) -> Result<MmapExport, ImportError> {
    if export.grant != needed {
        return Err(ImportError::WrongGrant {
            needed,
            got: export.grant,
        });
    }
    if let Some(t) = tenant_scope {
        if t != export.tenant {
            return Err(ImportError::TenantMismatch);
        }
    }
    Ok(*export)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exporter() -> MmapExporter {
        MmapExporter::new(PoolId(1), TenantId(1), Region::hugepages(4 * 1024 * 1024))
    }

    #[test]
    fn export_records_state() {
        let mut e = exporter();
        assert!(!e.pci_exported() && !e.rdma_exported());
        let pci = e.export_pci();
        let rdma = e.export_rdma();
        assert!(e.pci_exported() && e.rdma_exported());
        assert_eq!(pci.grant, Grant::Pci);
        assert_eq!(rdma.grant, Grant::Rdma);
        assert_eq!(pci.pool, PoolId(1));
    }

    #[test]
    fn import_validates_grant_class() {
        let mut e = exporter();
        let pci = e.export_pci();
        // The RNIC cannot register memory from a PCI-only export.
        assert_eq!(
            create_from_export(&pci, Grant::Rdma, None),
            Err(ImportError::WrongGrant {
                needed: Grant::Rdma,
                got: Grant::Pci
            })
        );
        assert!(create_from_export(&pci, Grant::Pci, None).is_ok());
    }

    #[test]
    fn import_validates_tenant_scope() {
        let mut e = exporter();
        let rdma = e.export_rdma();
        assert_eq!(
            create_from_export(&rdma, Grant::Rdma, Some(TenantId(9))),
            Err(ImportError::TenantMismatch)
        );
        assert!(create_from_export(&rdma, Grant::Rdma, Some(TenantId(1))).is_ok());
    }

    #[test]
    fn revoke_clears_state() {
        let mut e = exporter();
        e.export_pci();
        e.revoke();
        assert!(!e.pci_exported());
    }

    #[test]
    fn export_carries_region_geometry() {
        let mut e = exporter();
        let x = e.export_rdma();
        assert_eq!(x.region.mtt_entries(), 2); // 4 MB over 2 MB hugepages
    }
}
