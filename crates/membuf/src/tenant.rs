//! Per-tenant memory isolation — the DPDK `file-prefix` mechanism.
//!
//! Palladium isolates tenants' memory pools using DPDK's multi-process
//! support (§3.4.1): a per-tenant *shared-memory agent* (the DPDK primary
//! process) creates the pool under a tenant-specific `file-prefix`;
//! functions attach as secondary processes using the same prefix and can
//! only map pools published under it. A function that presents the wrong
//! prefix simply cannot see the other tenant's memory.
//!
//! The reproduction keeps the same roles: [`ShmAgent`] is the primary,
//! [`TenantDirectory`] is the set of memory-mapped files, and
//! [`TenantDirectory::attach`] is the EAL secondary-process attach.

// simlint: allow(no-unordered-iteration) — lookup-only maps below; never iterated
use std::collections::HashMap;

use crate::hugepage::Region;
use crate::ids::{FnId, PoolId, TenantId};
use crate::mmap::MmapExporter;
use crate::pool::UnifiedPool;

/// Errors from tenant-scoped pool management.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TenantError {
    /// No pool published under this file-prefix.
    UnknownPrefix(String),
    /// The function's registered tenant does not match the pool's tenant.
    IsolationViolation {
        /// Tenant the function belongs to.
        function_tenant: TenantId,
        /// Tenant owning the pool it tried to attach.
        pool_tenant: TenantId,
    },
    /// Function was never registered with the directory.
    UnknownFunction(FnId),
    /// A pool with this prefix already exists.
    DuplicatePrefix(String),
}

impl std::fmt::Display for TenantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TenantError::UnknownPrefix(p) => write!(f, "no pool under file-prefix {p:?}"),
            TenantError::IsolationViolation {
                function_tenant,
                pool_tenant,
            } => write!(
                f,
                "tenant isolation violation: function of tenant {function_tenant} \
                 attempted to attach pool of tenant {pool_tenant}"
            ),
            TenantError::UnknownFunction(id) => write!(f, "function {id} not registered"),
            TenantError::DuplicatePrefix(p) => write!(f, "file-prefix {p:?} already in use"),
        }
    }
}

impl std::error::Error for TenantError {}

/// The per-tenant shared-memory agent: creates the unified pool before any
/// function starts (it takes no part in data transfer afterwards, exactly as
/// in §3.4.1) and owns the mmap exporter for the DPU/RNIC grants.
#[derive(Debug)]
pub struct ShmAgent {
    tenant: TenantId,
    prefix: String,
    exporter: MmapExporter,
    pool_id: PoolId,
}

impl ShmAgent {
    /// Create the pool for `tenant` under `prefix` and publish it in the
    /// directory. Returns the agent handle for later mmap exports.
    pub fn create_pool(
        dir: &mut TenantDirectory,
        tenant: TenantId,
        prefix: impl Into<String>,
        n_bufs: u32,
        buf_size: u32,
    ) -> Result<(ShmAgent, PoolId), TenantError> {
        let prefix = prefix.into();
        if dir.by_prefix.contains_key(&prefix) {
            return Err(TenantError::DuplicatePrefix(prefix));
        }
        let pool_id = PoolId(dir.pools.len() as u16);
        let pool = UnifiedPool::new(pool_id, tenant, n_bufs, buf_size);
        let region = Region::hugepages(pool.backing_len().max(1));
        dir.by_prefix.insert(prefix.clone(), pool_id);
        dir.pools.push(pool);
        Ok((
            ShmAgent {
                tenant,
                prefix,
                exporter: MmapExporter::new(pool_id, tenant, region),
                pool_id,
            },
            pool_id,
        ))
    }

    /// The agent's tenant.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The file-prefix this agent published.
    pub fn prefix(&self) -> &str {
        &self.prefix
    }

    /// The pool this agent created.
    pub fn pool_id(&self) -> PoolId {
        self.pool_id
    }

    /// Access the mmap exporter (for `export_pci` / `export_rdma`).
    pub fn exporter(&mut self) -> &mut MmapExporter {
        &mut self.exporter
    }
}

/// The node-local directory of published pools plus function registrations —
/// the stand-in for the hugetlbfs files DPDK secondary processes map.
#[derive(Debug, Default)]
pub struct TenantDirectory {
    pools: Vec<UnifiedPool>,
    // simlint: allow(no-unordered-iteration) — keyed get/insert only (attach path); never iterated
    by_prefix: HashMap<String, PoolId>,
    // simlint: allow(no-unordered-iteration) — keyed get/insert only (tenant_of); never iterated
    fn_tenants: HashMap<FnId, TenantId>,
}

impl TenantDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a function as belonging to `tenant` (done by the control
    /// plane at deployment).
    pub fn register_function(&mut self, f: FnId, tenant: TenantId) {
        self.fn_tenants.insert(f, tenant);
    }

    /// Tenant of a registered function.
    pub fn tenant_of(&self, f: FnId) -> Result<TenantId, TenantError> {
        self.fn_tenants
            .get(&f)
            .copied()
            .ok_or(TenantError::UnknownFunction(f))
    }

    /// Attach function `f` to the pool published under `prefix` — the EAL
    /// secondary-process startup. Enforces tenant isolation: the function's
    /// tenant must own the pool.
    pub fn attach(&self, f: FnId, prefix: &str) -> Result<PoolId, TenantError> {
        let pool_id = *self
            .by_prefix
            .get(prefix)
            .ok_or_else(|| TenantError::UnknownPrefix(prefix.to_string()))?;
        let fn_tenant = self.tenant_of(f)?;
        let pool_tenant = self.pools[pool_id.0 as usize].tenant();
        if fn_tenant != pool_tenant {
            return Err(TenantError::IsolationViolation {
                function_tenant: fn_tenant,
                pool_tenant,
            });
        }
        Ok(pool_id)
    }

    /// Borrow a pool by id.
    pub fn pool(&self, id: PoolId) -> &UnifiedPool {
        &self.pools[id.0 as usize]
    }

    /// Mutably borrow a pool by id.
    pub fn pool_mut(&mut self, id: PoolId) -> &mut UnifiedPool {
        &mut self.pools[id.0 as usize]
    }

    /// Pool published under a prefix, if any.
    pub fn lookup_prefix(&self, prefix: &str) -> Option<PoolId> {
        self.by_prefix.get(prefix).copied()
    }

    /// Number of published pools.
    pub fn pool_count(&self) -> usize {
        self.pools.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Owner;
    use crate::meter::CopyMeter;

    #[test]
    fn agent_creates_and_publishes_pool() {
        let mut dir = TenantDirectory::new();
        let (agent, pool_id) =
            ShmAgent::create_pool(&mut dir, TenantId(1), "tenant_1", 8, 2048).unwrap();
        assert_eq!(agent.tenant(), TenantId(1));
        assert_eq!(agent.prefix(), "tenant_1");
        assert_eq!(dir.lookup_prefix("tenant_1"), Some(pool_id));
        assert_eq!(dir.pool(pool_id).capacity(), 8);
    }

    #[test]
    fn duplicate_prefix_rejected() {
        let mut dir = TenantDirectory::new();
        ShmAgent::create_pool(&mut dir, TenantId(1), "tenant_1", 2, 64).unwrap();
        assert_eq!(
            ShmAgent::create_pool(&mut dir, TenantId(2), "tenant_1", 2, 64).unwrap_err(),
            TenantError::DuplicatePrefix("tenant_1".into())
        );
    }

    #[test]
    fn attach_same_tenant_succeeds() {
        let mut dir = TenantDirectory::new();
        let (_, pool_id) =
            ShmAgent::create_pool(&mut dir, TenantId(1), "tenant_1", 2, 64).unwrap();
        dir.register_function(FnId(1), TenantId(1));
        assert_eq!(dir.attach(FnId(1), "tenant_1").unwrap(), pool_id);
    }

    #[test]
    fn attach_across_tenants_is_isolation_violation() {
        let mut dir = TenantDirectory::new();
        ShmAgent::create_pool(&mut dir, TenantId(1), "tenant_1", 2, 64).unwrap();
        ShmAgent::create_pool(&mut dir, TenantId(2), "tenant_2", 2, 64).unwrap();
        dir.register_function(FnId(7), TenantId(2));
        assert_eq!(
            dir.attach(FnId(7), "tenant_1").unwrap_err(),
            TenantError::IsolationViolation {
                function_tenant: TenantId(2),
                pool_tenant: TenantId(1),
            }
        );
        // Its own prefix works.
        assert!(dir.attach(FnId(7), "tenant_2").is_ok());
    }

    #[test]
    fn unknown_prefix_and_function_reported() {
        let mut dir = TenantDirectory::new();
        dir.register_function(FnId(1), TenantId(1));
        assert!(matches!(
            dir.attach(FnId(1), "nope"),
            Err(TenantError::UnknownPrefix(_))
        ));
        ShmAgent::create_pool(&mut dir, TenantId(1), "tenant_1", 2, 64).unwrap();
        assert!(matches!(
            dir.attach(FnId(99), "tenant_1"),
            Err(TenantError::UnknownFunction(_))
        ));
    }

    #[test]
    fn pools_are_private_state() {
        // Data written through one tenant's pool is invisible to the other
        // tenant's pool (distinct backing storage).
        let mut dir = TenantDirectory::new();
        let (_, p1) = ShmAgent::create_pool(&mut dir, TenantId(1), "t1", 2, 64).unwrap();
        let (_, p2) = ShmAgent::create_pool(&mut dir, TenantId(2), "t2", 2, 64).unwrap();
        let mut m = CopyMeter::new();
        let t1 = dir.pool_mut(p1).alloc(Owner::Engine).unwrap();
        dir.pool_mut(p1).write(&t1, b"secret", &mut m).unwrap();
        let t2 = dir.pool_mut(p2).alloc(Owner::Engine).unwrap();
        assert_eq!(dir.pool(p2).read(&t2).unwrap(), b"");
        dir.pool_mut(p1).free(t1).unwrap();
        dir.pool_mut(p2).free(t2).unwrap();
    }

    #[test]
    fn exporter_available_per_agent() {
        let mut dir = TenantDirectory::new();
        let (mut agent, _) =
            ShmAgent::create_pool(&mut dir, TenantId(1), "tenant_1", 2, 64).unwrap();
        let x = agent.exporter().export_rdma();
        assert_eq!(x.tenant, TenantId(1));
    }
}
