//! Copy accounting — the proof obligation behind "zero-copy".
//!
//! The paper defines zero-copy as the elimination of *software* data copies
//! while still allowing hardware DMA/RDMA moves (§1, footnote 1). Every data
//! movement in the reproduction is routed through a [`CopyMeter`] so tests
//! and benches can assert that Palladium paths perform exactly zero software
//! copies while baselines (e.g. FUYAO's receiver-side copy, cross-tenant
//! hand-offs) pay for theirs.

/// Classification of a data movement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MoveKind {
    /// CPU `memcpy` in software — what zero-copy designs must avoid.
    Software,
    /// The RNIC's DMA engine moving data to/from host memory (line rate).
    RnicDma,
    /// The DPU SoC's DMA engine (the slow one, §4.1.1).
    SocDma,
}

/// Aggregated copy statistics for one simulation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CopyMeter {
    /// Bytes moved by software memcpy.
    pub sw_bytes: u64,
    /// Number of software copy operations.
    pub sw_ops: u64,
    /// Bytes moved by the RNIC DMA engine.
    pub rnic_dma_bytes: u64,
    /// RNIC DMA operations.
    pub rnic_dma_ops: u64,
    /// Bytes moved by the SoC DMA engine.
    pub soc_dma_bytes: u64,
    /// SoC DMA operations.
    pub soc_dma_ops: u64,
}

impl CopyMeter {
    /// A fresh meter with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a data movement of `bytes` of the given kind.
    pub fn record(&mut self, kind: MoveKind, bytes: u64) {
        match kind {
            MoveKind::Software => {
                self.sw_bytes += bytes;
                self.sw_ops += 1;
            }
            MoveKind::RnicDma => {
                self.rnic_dma_bytes += bytes;
                self.rnic_dma_ops += 1;
            }
            MoveKind::SocDma => {
                self.soc_dma_bytes += bytes;
                self.soc_dma_ops += 1;
            }
        }
    }

    /// True when not a single software copy happened — the zero-copy
    /// invariant.
    pub fn is_zero_copy(&self) -> bool {
        self.sw_ops == 0
    }

    /// Merge another meter into this one (e.g. per-node meters into a
    /// cluster-wide report).
    pub fn merge(&mut self, other: &CopyMeter) {
        self.sw_bytes += other.sw_bytes;
        self.sw_ops += other.sw_ops;
        self.rnic_dma_bytes += other.rnic_dma_bytes;
        self.rnic_dma_ops += other.rnic_dma_ops;
        self.soc_dma_bytes += other.soc_dma_bytes;
        self.soc_dma_ops += other.soc_dma_ops;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_kind() {
        let mut m = CopyMeter::new();
        m.record(MoveKind::Software, 100);
        m.record(MoveKind::Software, 50);
        m.record(MoveKind::RnicDma, 4096);
        m.record(MoveKind::SocDma, 64);
        assert_eq!(m.sw_bytes, 150);
        assert_eq!(m.sw_ops, 2);
        assert_eq!(m.rnic_dma_bytes, 4096);
        assert_eq!(m.rnic_dma_ops, 1);
        assert_eq!(m.soc_dma_bytes, 64);
        assert_eq!(m.soc_dma_ops, 1);
    }

    #[test]
    fn zero_copy_means_no_software_ops() {
        let mut m = CopyMeter::new();
        assert!(m.is_zero_copy());
        m.record(MoveKind::RnicDma, 1 << 20); // hardware DMA is fine
        assert!(m.is_zero_copy());
        m.record(MoveKind::Software, 1);
        assert!(!m.is_zero_copy());
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CopyMeter::new();
        a.record(MoveKind::Software, 10);
        let mut b = CopyMeter::new();
        b.record(MoveKind::Software, 5);
        b.record(MoveKind::SocDma, 7);
        a.merge(&b);
        assert_eq!(a.sw_bytes, 15);
        assert_eq!(a.sw_ops, 2);
        assert_eq!(a.soc_dma_bytes, 7);
    }
}
