//! The unified shared-memory pool: pool-based buffer allocation with
//! exclusive-ownership semantics.
//!
//! This is the reproduction of Palladium's per-tenant unified memory pool
//! (§3.4): a fixed number of equal-size buffers reserved up front
//! (`rte_mempool_get()`/`rte_mempool_put()` in the paper's DPDK
//! implementation), shared by every function of one tenant, by the network
//! engine, and — through cross-processor mmap — by the RNIC.
//!
//! Ownership is enforced with *move-only tokens* ([`BufToken`]): holding the
//! token is the capability to read, write or recycle the buffer, emulating
//! the paper's token-passing scheme (§3.5.1) that guarantees lock-free
//! single-producer/single-consumer buffer access. Converting a token into a
//! [`BufDesc`] (for SK_MSG/Comch hand-off) marks the buffer `InTransit`;
//! redeeming the descriptor on the other side reclaims exclusive ownership.
//! Double-redeem, stale-generation and wrong-pool accesses are all hard
//! errors — the test suite and the property tests lean on this.

use std::fmt;

use bytes::Bytes;

use crate::desc::BufDesc;
use crate::ids::{FnId, Owner, PoolId, TenantId};
use crate::meter::{CopyMeter, MoveKind};

/// Errors surfaced by pool operations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PoolError {
    /// The free list is empty — allocation failed.
    Exhausted,
    /// Token or descriptor references a different pool.
    WrongPool,
    /// Token generation does not match the slot (stale/duplicated token).
    StaleToken,
    /// Buffer is not in the expected ownership state.
    BadOwner {
        /// Ownership state found on the slot.
        found: Owner,
    },
    /// Payload larger than the pool's buffer size.
    TooLarge,
    /// Descriptor index out of range.
    BadIndex,
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PoolError::Exhausted => write!(f, "memory pool exhausted"),
            PoolError::WrongPool => write!(f, "token references another pool"),
            PoolError::StaleToken => write!(f, "stale buffer token (generation mismatch)"),
            PoolError::BadOwner { found } => {
                write!(f, "buffer in unexpected ownership state {found:?}")
            }
            PoolError::TooLarge => write!(f, "payload exceeds pool buffer size"),
            PoolError::BadIndex => write!(f, "buffer index out of range"),
        }
    }
}

impl std::error::Error for PoolError {}

/// The unforgeable capability to one buffer. Move-only by construction (no
/// `Clone`): Rust's move semantics *are* the token passing.
#[derive(Debug, PartialEq, Eq)]
pub struct BufToken {
    pool: PoolId,
    idx: u32,
    gen: u32,
}

impl BufToken {
    /// Pool this token belongs to.
    pub fn pool(&self) -> PoolId {
        self.pool
    }

    /// Buffer index within the pool.
    pub fn idx(&self) -> u32 {
        self.idx
    }
}

#[derive(Clone, Debug)]
struct Slot {
    gen: u32,
    owner: Owner,
    len: u32,
    /// The buffer's current payload as a refcounted handle. Copies into
    /// the pool are *metered* (that is the simulation semantics); the
    /// content itself travels as a cheap handle, so the data plane moves
    /// no payload bytes — the same zero-copy discipline the reproduction
    /// models.
    content: Bytes,
}

/// Statistics a pool keeps about itself.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Successful allocations.
    pub allocs: u64,
    /// Buffers returned to the free list.
    pub frees: u64,
    /// Allocation failures due to exhaustion.
    pub alloc_failures: u64,
    /// High-water mark of concurrently allocated buffers.
    pub max_in_use: u32,
}

/// A fixed-size pool of equal-size buffers. The reserved region's *size*
/// models the up-front hugepage reservation (MR registration / MTT sizing
/// read it); payload content rides per-buffer [`Bytes`] handles.
pub struct UnifiedPool {
    id: PoolId,
    tenant: TenantId,
    buf_size: u32,
    n_bufs: u32,
    slots: Vec<Slot>,
    free: Vec<u32>,
    stats: PoolStats,
}

impl UnifiedPool {
    /// A pool of `n_bufs` buffers of `buf_size` bytes each, owned by
    /// `tenant`.
    pub fn new(id: PoolId, tenant: TenantId, n_bufs: u32, buf_size: u32) -> Self {
        assert!(n_bufs > 0, "pool must hold at least one buffer");
        assert!(buf_size > 0, "buffers must be non-empty");
        UnifiedPool {
            id,
            tenant,
            buf_size,
            n_bufs,
            slots: (0..n_bufs)
                .map(|_| Slot {
                    gen: 0,
                    owner: Owner::Free,
                    len: 0,
                    content: Bytes::new(),
                })
                .collect(),
            // LIFO free list: most-recently-freed first for cache warmth,
            // like rte_mempool's per-core cache.
            free: (0..n_bufs).rev().collect(),
            stats: PoolStats::default(),
        }
    }

    /// Pool identifier.
    pub fn id(&self) -> PoolId {
        self.id
    }

    /// Owning tenant.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Size of each buffer in bytes.
    pub fn buf_size(&self) -> u32 {
        self.buf_size
    }

    /// Total number of buffers.
    pub fn capacity(&self) -> u32 {
        self.slots.len() as u32
    }

    /// Buffers currently on the free list.
    pub fn available(&self) -> u32 {
        self.free.len() as u32
    }

    /// Buffers currently allocated (owned by someone or in transit).
    pub fn in_use(&self) -> u32 {
        self.capacity() - self.available()
    }

    /// Pool statistics.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Total backing bytes (for MR registration / MTT sizing).
    pub fn backing_len(&self) -> u64 {
        self.n_bufs as u64 * self.buf_size as u64
    }

    /// Allocate one buffer for `owner`. O(1): pops the free list — the
    /// paper's motivation for pool-based allocation over malloc (§3.4).
    pub fn alloc(&mut self, owner: Owner) -> Result<BufToken, PoolError> {
        debug_assert!(owner.can_access(), "cannot allocate for a passive owner");
        let Some(idx) = self.free.pop() else {
            self.stats.alloc_failures += 1;
            return Err(PoolError::Exhausted);
        };
        let slot = &mut self.slots[idx as usize];
        slot.owner = owner;
        slot.len = 0;
        let gen = slot.gen;
        self.stats.allocs += 1;
        self.stats.max_in_use = self.stats.max_in_use.max(self.in_use());
        Ok(BufToken {
            pool: self.id,
            idx,
            gen,
        })
    }

    fn check(&self, tok: &BufToken) -> Result<usize, PoolError> {
        if tok.pool != self.id {
            return Err(PoolError::WrongPool);
        }
        let idx = tok.idx as usize;
        if idx >= self.slots.len() {
            return Err(PoolError::BadIndex);
        }
        if self.slots[idx].gen != tok.gen {
            return Err(PoolError::StaleToken);
        }
        Ok(idx)
    }

    /// Return a buffer to the free list, consuming the token. The slot
    /// generation bumps so any stale copies of descriptors are invalidated.
    pub fn free(&mut self, tok: BufToken) -> Result<(), PoolError> {
        let idx = self.check(&tok)?;
        let slot = &mut self.slots[idx];
        if !slot.owner.can_access() {
            return Err(PoolError::BadOwner { found: slot.owner });
        }
        slot.owner = Owner::Free;
        slot.len = 0;
        slot.gen = slot.gen.wrapping_add(1);
        // Release the content handle immediately: a freed buffer holds no
        // data (reads are owner-gated and `len` is zeroed on re-alloc
        // anyway), and dropping the `Bytes` here instead of at the next
        // fill lets payload recyclers observe sole ownership as soon as
        // the buffer lifecycle ends.
        slot.content = Bytes::new();
        self.free.push(tok.idx);
        self.stats.frees += 1;
        Ok(())
    }

    /// Write `payload` into the buffer (software copy — metered). Sets the
    /// valid length. Used by functions producing output and by the explicit
    /// cross-security-domain copy path (§3.1 security model).
    pub fn write(
        &mut self,
        tok: &BufToken,
        payload: &[u8],
        meter: &mut CopyMeter,
    ) -> Result<(), PoolError> {
        self.fill(tok, Bytes::copy_from_slice(payload), MoveKind::Software, meter)
    }

    /// [`UnifiedPool::write`] taking an owned handle: the copy is metered
    /// identically, but the content transfers by refcount — no payload
    /// bytes move on the simulator's hot path.
    pub fn write_bytes(
        &mut self,
        tok: &BufToken,
        payload: Bytes,
        meter: &mut CopyMeter,
    ) -> Result<(), PoolError> {
        self.fill(tok, payload, MoveKind::Software, meter)
    }

    /// Write `payload` via a hardware DMA engine (not a software copy).
    pub fn dma_write(
        &mut self,
        tok: &BufToken,
        payload: &[u8],
        kind: MoveKind,
        meter: &mut CopyMeter,
    ) -> Result<(), PoolError> {
        debug_assert!(
            !matches!(kind, MoveKind::Software),
            "use write() for software copies"
        );
        self.fill(tok, Bytes::copy_from_slice(payload), kind, meter)
    }

    /// [`UnifiedPool::dma_write`] taking an owned handle (see
    /// [`UnifiedPool::write_bytes`]).
    pub fn dma_write_bytes(
        &mut self,
        tok: &BufToken,
        payload: Bytes,
        kind: MoveKind,
        meter: &mut CopyMeter,
    ) -> Result<(), PoolError> {
        debug_assert!(
            !matches!(kind, MoveKind::Software),
            "use write_bytes() for software copies"
        );
        self.fill(tok, payload, kind, meter)
    }

    fn fill(
        &mut self,
        tok: &BufToken,
        payload: Bytes,
        kind: MoveKind,
        meter: &mut CopyMeter,
    ) -> Result<(), PoolError> {
        let idx = self.check(tok)?;
        if payload.len() > self.buf_size as usize {
            return Err(PoolError::TooLarge);
        }
        let slot = &mut self.slots[idx];
        if !slot.owner.can_access() {
            return Err(PoolError::BadOwner { found: slot.owner });
        }
        slot.len = payload.len() as u32;
        meter.record(kind, payload.len() as u64);
        slot.content = payload;
        Ok(())
    }

    /// Produce `payload` into the buffer *in place* — the function writing
    /// its output directly through the shared mapping. This is data
    /// production, not a transport copy, so it is deliberately unmetered
    /// (the paper's zero-copy definition concerns copies introduced by the
    /// data plane, not the application computing its result).
    pub fn produce(&mut self, tok: &BufToken, payload: &[u8]) -> Result<(), PoolError> {
        self.produce_bytes(tok, Bytes::copy_from_slice(payload))
    }

    /// [`UnifiedPool::produce`] taking an owned handle (see
    /// [`UnifiedPool::write_bytes`]).
    pub fn produce_bytes(&mut self, tok: &BufToken, payload: Bytes) -> Result<(), PoolError> {
        let mut scratch = CopyMeter::new();
        self.fill(tok, payload, MoveKind::Software, &mut scratch)
    }

    /// Set the valid length without touching bytes — models in-place
    /// production where the function wrote through the mapping directly
    /// (zero-copy path: no meter entry because no copy happened).
    pub fn set_len(&mut self, tok: &BufToken, len: u32) -> Result<(), PoolError> {
        let idx = self.check(tok)?;
        if len > self.buf_size {
            return Err(PoolError::TooLarge);
        }
        let slot = &mut self.slots[idx];
        if (slot.content.len() as u32) < len {
            // Extend with zeroes past the current content, preserving the
            // written prefix — matching the zero-initialized backing
            // region's semantics.
            slot.content = Bytes::zeroed_with_prefix(len as usize, &slot.content);
        }
        slot.len = len;
        Ok(())
    }

    /// Read the valid payload of a buffer.
    pub fn read(&self, tok: &BufToken) -> Result<&[u8], PoolError> {
        let idx = self.check(tok)?;
        let slot = &self.slots[idx];
        if !slot.owner.can_access() {
            return Err(PoolError::BadOwner { found: slot.owner });
        }
        Ok(&slot.content[..slot.len as usize])
    }

    /// Snapshot a buffer's payload as a cheap refcounted handle — the
    /// zero-copy way for the engine to capture "the RNIC's view" of a
    /// pinned buffer (the handle stays valid and immutable even if the
    /// buffer is later recycled, which is exactly the pinned-until-
    /// completion guarantee).
    pub fn read_bytes(&self, tok: &BufToken) -> Result<Bytes, PoolError> {
        let idx = self.check(tok)?;
        let slot = &self.slots[idx];
        if !slot.owner.can_access() {
            return Err(PoolError::BadOwner { found: slot.owner });
        }
        Ok(slot.content.slice(..slot.len as usize))
    }

    /// Valid payload length.
    pub fn len_of(&self, tok: &BufToken) -> Result<u32, PoolError> {
        let idx = self.check(tok)?;
        Ok(self.slots[idx].len)
    }

    /// Current owner of the buffer a token points to.
    pub fn owner_of(&self, tok: &BufToken) -> Result<Owner, PoolError> {
        let idx = self.check(tok)?;
        Ok(self.slots[idx].owner)
    }

    /// Hand the buffer off: consume the token, mark the slot `InTransit`,
    /// and produce the 16-byte descriptor that travels over SK_MSG / Comch /
    /// the RDMA fabric's completion path.
    pub fn into_transit(
        &mut self,
        tok: BufToken,
        src: FnId,
        dst: FnId,
    ) -> Result<BufDesc, PoolError> {
        let idx = self.check(&tok)?;
        let slot = &mut self.slots[idx];
        if !slot.owner.can_access() {
            return Err(PoolError::BadOwner { found: slot.owner });
        }
        slot.owner = Owner::InTransit;
        Ok(BufDesc {
            tenant: self.tenant,
            pool: self.id,
            buf_idx: tok.idx,
            len: slot.len,
            src_fn: src,
            dst_fn: dst,
        })
    }

    /// Redeem a descriptor into exclusive ownership. Fails if the buffer is
    /// not in transit — i.e. a descriptor cannot be redeemed twice, the
    /// lock-free SPSC guarantee of §3.5.1.
    pub fn redeem(&mut self, desc: &BufDesc, new_owner: Owner) -> Result<BufToken, PoolError> {
        debug_assert!(new_owner.can_access(), "cannot redeem to a passive owner");
        if desc.pool != self.id {
            return Err(PoolError::WrongPool);
        }
        let idx = desc.buf_idx as usize;
        if idx >= self.slots.len() {
            return Err(PoolError::BadIndex);
        }
        let slot = &mut self.slots[idx];
        if slot.owner != Owner::InTransit {
            return Err(PoolError::BadOwner { found: slot.owner });
        }
        slot.owner = new_owner;
        Ok(BufToken {
            pool: self.id,
            idx: desc.buf_idx,
            gen: slot.gen,
        })
    }

    /// Transfer ownership in place (e.g. RNIC→Engine on CQE) without going
    /// through a descriptor.
    pub fn transfer(
        &mut self,
        tok: &BufToken,
        from: Owner,
        to: Owner,
    ) -> Result<(), PoolError> {
        let idx = self.check(tok)?;
        let slot = &mut self.slots[idx];
        if slot.owner != from {
            return Err(PoolError::BadOwner { found: slot.owner });
        }
        slot.owner = to;
        Ok(())
    }
}

impl fmt::Debug for UnifiedPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("UnifiedPool")
            .field("id", &self.id)
            .field("tenant", &self.tenant)
            .field("buf_size", &self.buf_size)
            .field("capacity", &self.capacity())
            .field("available", &self.available())
            .finish()
    }
}

/// Copy a payload between two buffers, potentially across pools — the
/// explicit CPU copy Palladium requires at security-domain boundaries
/// (§3.1). Always metered as a software copy.
pub fn copy_across(
    src_pool: &UnifiedPool,
    src: &BufToken,
    dst_pool: &mut UnifiedPool,
    dst: &BufToken,
    meter: &mut CopyMeter,
) -> Result<(), PoolError> {
    let payload = src_pool.read(src)?.to_vec();
    dst_pool.write(dst, &payload, meter)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> UnifiedPool {
        UnifiedPool::new(PoolId(1), TenantId(1), 4, 1024)
    }

    #[test]
    fn alloc_write_read_free() {
        let mut p = pool();
        let mut m = CopyMeter::new();
        let tok = p.alloc(Owner::Function(FnId(1))).unwrap();
        p.write(&tok, b"hello palladium", &mut m).unwrap();
        assert_eq!(p.read(&tok).unwrap(), b"hello palladium");
        assert_eq!(p.len_of(&tok).unwrap(), 15);
        assert_eq!(m.sw_bytes, 15);
        p.free(tok).unwrap();
        assert_eq!(p.available(), 4);
        assert_eq!(p.stats().allocs, 1);
        assert_eq!(p.stats().frees, 1);
    }

    #[test]
    fn exhaustion_fails_cleanly() {
        let mut p = pool();
        let toks: Vec<_> = (0..4).map(|_| p.alloc(Owner::Engine).unwrap()).collect();
        assert_eq!(p.alloc(Owner::Engine), Err(PoolError::Exhausted));
        assert_eq!(p.stats().alloc_failures, 1);
        assert_eq!(p.stats().max_in_use, 4);
        for t in toks {
            p.free(t).unwrap();
        }
        assert!(p.alloc(Owner::Engine).is_ok());
    }

    #[test]
    fn stale_token_rejected_after_free() {
        let mut p = pool();
        let tok = p.alloc(Owner::Engine).unwrap();
        let idx = tok.idx();
        p.free(tok).unwrap();
        // Forge a token with the old generation by allocating the same slot
        // and checking the generation moved on.
        let tok2 = loop {
            let t = p.alloc(Owner::Engine).unwrap();
            if t.idx() == idx {
                break t;
            }
        };
        let stale = BufToken {
            pool: PoolId(1),
            idx,
            gen: tok2.gen.wrapping_sub(1),
        };
        assert_eq!(p.read(&stale), Err(PoolError::StaleToken));
    }

    #[test]
    fn wrong_pool_rejected() {
        let mut p1 = UnifiedPool::new(PoolId(1), TenantId(1), 2, 64);
        let p2 = UnifiedPool::new(PoolId(2), TenantId(2), 2, 64);
        let tok = p1.alloc(Owner::Engine).unwrap();
        assert_eq!(p2.read(&tok), Err(PoolError::WrongPool));
        p1.free(tok).unwrap();
    }

    #[test]
    fn oversized_write_rejected() {
        let mut p = UnifiedPool::new(PoolId(1), TenantId(1), 1, 8);
        let mut m = CopyMeter::new();
        let tok = p.alloc(Owner::Engine).unwrap();
        assert_eq!(
            p.write(&tok, &[0u8; 9], &mut m),
            Err(PoolError::TooLarge)
        );
        assert_eq!(m.sw_bytes, 0, "failed writes must not be metered");
    }

    #[test]
    fn transit_roundtrip_moves_ownership() {
        let mut p = pool();
        let mut m = CopyMeter::new();
        let tok = p.alloc(Owner::Function(FnId(1))).unwrap();
        p.write(&tok, b"payload", &mut m).unwrap();
        let desc = p.into_transit(tok, FnId(1), FnId(2)).unwrap();
        assert_eq!(desc.len, 7);
        // While in transit nobody can read.
        let probe = BufToken {
            pool: desc.pool,
            idx: desc.buf_idx,
            gen: 0,
        };
        assert!(matches!(p.read(&probe), Err(PoolError::BadOwner { .. })));
        // Redeem on the receiving side: zero bytes copied.
        let tok2 = p.redeem(&desc, Owner::Function(FnId(2))).unwrap();
        assert_eq!(p.read(&tok2).unwrap(), b"payload");
        assert_eq!(m.sw_ops, 1, "only the initial produce copied");
        p.free(tok2).unwrap();
    }

    #[test]
    fn double_redeem_rejected() {
        let mut p = pool();
        let tok = p.alloc(Owner::Function(FnId(1))).unwrap();
        let desc = p.into_transit(tok, FnId(1), FnId(2)).unwrap();
        let _tok2 = p.redeem(&desc, Owner::Function(FnId(2))).unwrap();
        assert!(matches!(
            p.redeem(&desc, Owner::Function(FnId(3))),
            Err(PoolError::BadOwner { .. })
        ));
    }

    #[test]
    fn transfer_requires_expected_owner() {
        let mut p = pool();
        let tok = p.alloc(Owner::Rnic).unwrap();
        assert!(matches!(
            p.transfer(&tok, Owner::Engine, Owner::Rnic),
            Err(PoolError::BadOwner { .. })
        ));
        p.transfer(&tok, Owner::Rnic, Owner::Engine).unwrap();
        assert_eq!(p.owner_of(&tok).unwrap(), Owner::Engine);
        p.free(tok).unwrap();
    }

    #[test]
    fn copy_across_pools_is_metered() {
        let mut a = UnifiedPool::new(PoolId(1), TenantId(1), 1, 64);
        let mut b = UnifiedPool::new(PoolId(2), TenantId(2), 1, 64);
        let mut m = CopyMeter::new();
        let ta = a.alloc(Owner::Function(FnId(1))).unwrap();
        a.write(&ta, b"cross-domain", &mut m).unwrap();
        let tb = b.alloc(Owner::Function(FnId(2))).unwrap();
        copy_across(&a, &ta, &mut b, &tb, &mut m).unwrap();
        assert_eq!(b.read(&tb).unwrap(), b"cross-domain");
        assert_eq!(m.sw_ops, 2);
        assert!(!m.is_zero_copy());
    }

    #[test]
    fn dma_write_is_not_a_software_copy() {
        let mut p = pool();
        let mut m = CopyMeter::new();
        let tok = p.alloc(Owner::Rnic).unwrap();
        p.dma_write(&tok, &[7u8; 256], MoveKind::RnicDma, &mut m)
            .unwrap();
        assert!(m.is_zero_copy());
        assert_eq!(m.rnic_dma_bytes, 256);
        assert_eq!(p.read(&tok).unwrap(), &[7u8; 256][..]);
    }

    #[test]
    fn set_len_models_in_place_production() {
        let mut p = pool();
        let tok = p.alloc(Owner::Function(FnId(1))).unwrap();
        p.set_len(&tok, 512).unwrap();
        assert_eq!(p.len_of(&tok).unwrap(), 512);
        assert_eq!(p.set_len(&tok, 2048), Err(PoolError::TooLarge));
    }

    #[test]
    fn lifo_reuse_for_cache_warmth() {
        let mut p = pool();
        let tok = p.alloc(Owner::Engine).unwrap();
        let first_idx = tok.idx();
        p.free(tok).unwrap();
        let tok2 = p.alloc(Owner::Engine).unwrap();
        assert_eq!(tok2.idx(), first_idx, "most recently freed is reused first");
        p.free(tok2).unwrap();
    }
}
