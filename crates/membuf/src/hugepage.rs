//! Hugepage-backed memory regions.
//!
//! Palladium builds its unified pools from 2 MB hugepages specifically to
//! shrink the Memory Translation Table (MTT) footprint on the RNIC cache
//! (§3.4, citing SRNIC): an MR over 4 KB pages needs 512× the translation
//! entries of the same MR over 2 MB pages. The RNIC model in
//! `palladium-rdma` charges extra lookup latency when a node's registered
//! MTT entries overflow the device cache, making this a measurable design
//! choice (ablation bench `bench_substrate`).

/// Standard small page size.
pub const PAGE_4K: u64 = 4 * 1024;
/// x86 2 MB hugepage — what Palladium allocates (§3.4).
pub const HUGEPAGE_2M: u64 = 2 * 1024 * 1024;

/// A contiguous, page-aligned memory region description.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// Total region length in bytes (rounded up to the page size).
    pub len: u64,
    /// Backing page size in bytes.
    pub page_size: u64,
}

impl Region {
    /// A region of at least `len` bytes built from pages of `page_size`.
    pub fn new(len: u64, page_size: u64) -> Region {
        assert!(page_size.is_power_of_two(), "page size must be a power of two");
        assert!(len > 0, "region must be non-empty");
        let pages = len.div_ceil(page_size);
        Region {
            len: pages * page_size,
            page_size,
        }
    }

    /// A hugepage-backed region (Palladium's default).
    pub fn hugepages(len: u64) -> Region {
        Region::new(len, HUGEPAGE_2M)
    }

    /// A 4 KB-page region (the baseline an ablation compares against).
    pub fn small_pages(len: u64) -> Region {
        Region::new(len, PAGE_4K)
    }

    /// Number of backing pages.
    pub fn pages(&self) -> u64 {
        self.len / self.page_size
    }

    /// Number of MTT entries the RNIC needs to map this region — one per
    /// page. This is what hugepages minimize.
    pub fn mtt_entries(&self) -> u64 {
        self.pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_up_to_page_boundary() {
        let r = Region::new(5_000, PAGE_4K);
        assert_eq!(r.len, 8_192);
        assert_eq!(r.pages(), 2);
    }

    #[test]
    fn hugepages_shrink_mtt() {
        let bytes = 64 * 1024 * 1024; // 64 MB pool
        let huge = Region::hugepages(bytes);
        let small = Region::small_pages(bytes);
        assert_eq!(huge.mtt_entries(), 32);
        assert_eq!(small.mtt_entries(), 16_384);
        // The 512x ratio the paper's design leans on.
        assert_eq!(small.mtt_entries() / huge.mtt_entries(), 512);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_page_size() {
        Region::new(1024, 3_000);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn rejects_empty_region() {
        Region::new(0, PAGE_4K);
    }
}
