//! # palladium-membuf — the unified shared-memory pool substrate
//!
//! Reproduces Palladium's memory subsystem (§3.4 of the paper):
//!
//! * [`pool::UnifiedPool`] — fixed-size, pool-based buffer allocation
//!   (`rte_mempool_get/put` analogue) over real backing bytes, with
//!   exclusive-ownership semantics enforced by move-only [`pool::BufToken`]s
//!   (the token-passing scheme of §3.5.1).
//! * [`desc::BufDesc`] — the 16-byte descriptor that is the only thing
//!   software channels carry; payloads never move.
//! * [`tenant`] — per-tenant isolation via the DPDK `file-prefix` mechanism:
//!   a shared-memory agent (primary process) publishes the pool, functions
//!   attach as secondaries, and cross-tenant attaches are rejected.
//! * [`mmap`] — DOCA-style cross-processor mmap export (`export_pci` /
//!   `export_rdma` / `create_from_export`), the key enabler of off-path DPU
//!   offloading (§3.4.2).
//! * [`hugepage`] — 2 MB hugepage regions and their MTT footprint, the
//!   RNIC-cache motivation for hugepages (§3.4).
//! * [`meter::CopyMeter`] — every byte moved is accounted as software copy,
//!   RNIC DMA or SoC DMA; "zero-copy" is an *asserted invariant*, not a
//!   slogan.

// The simulation's memory-safety story is that only the shard mailbox ring
// (simnet) and the bench counting allocator contain `unsafe` at all; this
// crate is compiler-certified to stay out of that set (simlint's
// safety-comments rule covers the two that cannot be).
#![forbid(unsafe_code)]

pub mod desc;
pub mod hugepage;
pub mod ids;
pub mod meter;
pub mod mmap;
pub mod payload;
pub mod pool;
pub mod tenant;

pub use desc::{BufDesc, DESC_WIRE_SIZE};
pub use hugepage::{Region, HUGEPAGE_2M, PAGE_4K};
pub use ids::{FnId, NodeId, Owner, PoolId, TenantId};
pub use meter::{CopyMeter, MoveKind};
pub use mmap::{create_from_export, Grant, ImportError, MmapExport, MmapExporter};
pub use payload::PayloadCache;
pub use pool::{copy_across, BufToken, PoolError, PoolStats, UnifiedPool};
pub use tenant::{ShmAgent, TenantDirectory, TenantError};
