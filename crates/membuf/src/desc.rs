//! The 16-byte buffer descriptor — the only thing Palladium's data plane
//! moves through software channels.
//!
//! The paper exchanges "16B buffer descriptors" between the DNE and host
//! functions over DOCA Comch (§3.5.4) and between co-located functions over
//! eBPF `SK_MSG` (§3.5.3). Payload bytes never travel with the descriptor;
//! they stay in the unified pool and only ownership moves.

use bytes::{Buf, BufMut};

use crate::ids::{FnId, PoolId, TenantId};

/// Size of the encoded descriptor on every software channel.
pub const DESC_WIRE_SIZE: usize = 16;

/// A buffer descriptor: which buffer, how much valid data, and the
/// function-to-function addressing needed for routing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BufDesc {
    /// Tenant (function chain) the buffer's pool belongs to.
    pub tenant: TenantId,
    /// Pool within the tenant.
    pub pool: PoolId,
    /// Buffer index inside the pool.
    pub buf_idx: u32,
    /// Valid payload length in bytes.
    pub len: u32,
    /// Producing function.
    pub src_fn: FnId,
    /// Destination function.
    pub dst_fn: FnId,
}

impl BufDesc {
    /// Encode into the 16-byte wire format (big-endian fields).
    pub fn encode(&self) -> [u8; DESC_WIRE_SIZE] {
        let mut out = [0u8; DESC_WIRE_SIZE];
        {
            let mut b = &mut out[..];
            b.put_u16(self.tenant.0);
            b.put_u16(self.pool.0);
            b.put_u32(self.buf_idx);
            b.put_u32(self.len);
            b.put_u16(self.src_fn.0);
            b.put_u16(self.dst_fn.0);
        }
        out
    }

    /// Decode from the wire format. Returns `None` on short input.
    pub fn decode(raw: &[u8]) -> Option<BufDesc> {
        if raw.len() < DESC_WIRE_SIZE {
            return None;
        }
        let mut b = raw;
        Some(BufDesc {
            tenant: TenantId(b.get_u16()),
            pool: PoolId(b.get_u16()),
            buf_idx: b.get_u32(),
            len: b.get_u32(),
            src_fn: FnId(b.get_u16()),
            dst_fn: FnId(b.get_u16()),
        })
    }

    /// A copy re-addressed to a new destination (used at each chain hop).
    pub fn readdressed(mut self, src: FnId, dst: FnId) -> BufDesc {
        self.src_fn = src;
        self.dst_fn = dst;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BufDesc {
        BufDesc {
            tenant: TenantId(3),
            pool: PoolId(1),
            buf_idx: 0xDEAD,
            len: 4096,
            src_fn: FnId(7),
            dst_fn: FnId(9),
        }
    }

    #[test]
    fn roundtrip() {
        let d = sample();
        let enc = d.encode();
        assert_eq!(enc.len(), DESC_WIRE_SIZE);
        assert_eq!(BufDesc::decode(&enc), Some(d));
    }

    #[test]
    fn decode_short_input_fails() {
        assert_eq!(BufDesc::decode(&[0u8; 15]), None);
        assert_eq!(BufDesc::decode(&[]), None);
    }

    #[test]
    fn decode_ignores_trailing_bytes() {
        let d = sample();
        let mut enc = d.encode().to_vec();
        enc.extend_from_slice(&[0xFF; 8]);
        assert_eq!(BufDesc::decode(&enc), Some(d));
    }

    #[test]
    fn readdress_keeps_buffer_fields() {
        let d = sample().readdressed(FnId(1), FnId(2));
        assert_eq!(d.src_fn, FnId(1));
        assert_eq!(d.dst_fn, FnId(2));
        assert_eq!(d.buf_idx, 0xDEAD);
        assert_eq!(d.len, 4096);
    }

    #[test]
    fn wire_size_is_exactly_16() {
        // The paper's Comch experiments move 16 B descriptors; the encoding
        // must never silently grow.
        assert_eq!(DESC_WIRE_SIZE, 16);
        assert_eq!(std::mem::size_of_val(&sample().encode()), 16);
    }
}
