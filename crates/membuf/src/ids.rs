//! Common identifiers shared across the workspace.
//!
//! Kept in the memory crate because buffers, tenants and functions are the
//! vocabulary every other layer speaks. All ids are small integers wrapped in
//! newtypes so they cannot be confused with each other.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $raw:ty) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub $raw);

        impl $name {
            /// Raw integer value.
            #[inline]
            pub const fn raw(self) -> $raw {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }
    };
}

id_type!(
    /// A worker, ingress or client node in the cluster.
    NodeId,
    u16
);
id_type!(
    /// A serverless function instance.
    FnId,
    u16
);
id_type!(
    /// A tenant — in Palladium, each function chain is its own tenant with a
    /// private unified memory pool (§3.4.1).
    TenantId,
    u16
);
id_type!(
    /// A unified shared-memory pool.
    PoolId,
    u16
);

/// Who currently owns a buffer. Palladium's buffer lifecycle follows
/// exclusive-ownership semantics (§3.5.1): only the owner may read, write or
/// recycle a buffer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Owner {
    /// On the free list.
    Free,
    /// Owned by a function's runtime.
    Function(FnId),
    /// Owned by a network engine (DNE or CNE).
    Engine,
    /// Posted to the RNIC receive queue (awaiting inbound data).
    Rnic,
    /// Owned by the ingress gateway worker.
    Ingress,
    /// Descriptor handed off and in flight between owners; redeemable exactly
    /// once.
    InTransit,
}

impl Owner {
    /// True for owners allowed to read/write payload bytes.
    pub fn can_access(self) -> bool {
        !matches!(self, Owner::Free | Owner::InTransit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compare_and_format() {
        assert_eq!(FnId(3), FnId(3));
        assert_ne!(FnId(3), FnId(4));
        assert_eq!(format!("{:?}", TenantId(7)), "TenantId(7)");
        assert_eq!(format!("{}", NodeId(2)), "2");
        assert_eq!(PoolId(9).raw(), 9);
    }

    #[test]
    fn owner_access_rules() {
        assert!(Owner::Function(FnId(1)).can_access());
        assert!(Owner::Engine.can_access());
        assert!(Owner::Rnic.can_access());
        assert!(Owner::Ingress.can_access());
        assert!(!Owner::Free.can_access());
        assert!(!Owner::InTransit.can_access());
    }
}
