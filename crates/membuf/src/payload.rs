//! Recycled fabricated payloads: the zero-alloc way for drivers to
//! manufacture message bytes.
//!
//! Every load driver in the workspace fabricates payloads — "`len` zero
//! bytes carrying a request/connection id as an 8-byte little-endian
//! prefix" — once per message, forever. Allocating each one
//! (`Bytes::from(vec![0; len])`) was the last steady-state heap traffic on
//! several hot paths, so the chain cluster grew a recycling cache; this
//! module is that cache promoted to a shared utility (ROADMAP: "payload
//! recycling beyond the cluster driver"), now also backing the echo
//! baselines and the sharded multi-node driver, with the `alloc_smoke`
//! CI gate pinning the zero-allocation contract on both cluster and echo.
//!
//! A payload's backing allocation becomes reusable once every traveling
//! handle has dropped — observed via [`Bytes::unique_mut`] — at which
//! point only the id prefix needs rewriting: no flow mutates payload
//! contents, so the bytes beyond the prefix are still zero and a recycled
//! payload is **bit-identical** to a freshly fabricated one (golden traces
//! are unaffected by recycling).

use std::collections::VecDeque;

use bytes::Bytes;

/// Recycles fabricated payloads (zeros with an 8-byte little-endian id
/// prefix). See the module docs for the reuse contract.
#[derive(Debug, Default)]
pub struct PayloadCache {
    /// Per-exact-length rings (a workload charges only a handful of
    /// sizes).
    by_len: Vec<(u32, VecDeque<Bytes>)>,
}

impl PayloadCache {
    /// Candidates examined per request before giving up and allocating:
    /// bounds the scan when many payloads of one size are still in
    /// flight (their handles alive in pool slots or on the wire).
    const SCAN: usize = 16;

    /// An empty cache.
    pub fn new() -> Self {
        PayloadCache { by_len: Vec::new() }
    }

    /// Fabricate an `id`-prefixed zero payload of `len` bytes (floored at
    /// the 8-byte prefix), reusing a retired allocation when one is free.
    /// Flows that read the id back (`req_of`-style) need the full prefix,
    /// hence the floor; size-exact flows use [`PayloadCache::make_exact`].
    pub fn make(&mut self, id: u64, len: u32) -> Bytes {
        self.fabricate(id, len.max(8))
    }

    /// Exact-length fabrication: lengths below 8 truncate the id prefix
    /// instead of padding the buffer. Wire-level size sweeps (the Fig 11
    /// echo drives a 1-byte point) must keep sub-8-byte messages
    /// sub-8-byte — per-byte fabric costs charge `payload.len()`.
    pub fn make_exact(&mut self, id: u64, len: u32) -> Bytes {
        self.fabricate(id, len)
    }

    fn fabricate(&mut self, id: u64, len: u32) -> Bytes {
        let prefix = &id.to_le_bytes()[..(len as usize).min(8)];
        let q = match self.by_len.iter().position(|(l, _)| *l == len) {
            Some(i) => &mut self.by_len[i].1,
            None => {
                self.by_len.push((len, VecDeque::new()));
                &mut self.by_len.last_mut().expect("just pushed").1
            }
        };
        for _ in 0..q.len().min(Self::SCAN) {
            let mut b = q.pop_front().expect("scan bounded by len");
            if let Some(buf) = b.unique_mut() {
                buf[..prefix.len()].copy_from_slice(prefix);
                let out = b.clone();
                q.push_back(b);
                return out;
            }
            q.push_back(b); // still in flight; rotate and try the next
        }
        let out = Bytes::zeroed_with_prefix(len as usize, prefix);
        q.push_back(out.clone());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_payload_is_bit_identical_to_fresh() {
        let mut c = PayloadCache::new();
        let fresh = c.make(7, 64);
        let reference = fresh.as_slice().to_vec();
        drop(fresh); // every traveling handle gone: recyclable
        let recycled = c.make(7, 64);
        assert_eq!(recycled.as_slice(), &reference[..]);
        assert_eq!(&recycled.as_slice()[..8], &7u64.to_le_bytes());
        assert!(recycled.as_slice()[8..].iter().all(|&b| b == 0));
    }

    #[test]
    fn in_flight_payloads_are_never_rewritten() {
        let mut c = PayloadCache::new();
        let held = c.make(1, 32);
        let other = c.make(2, 32); // `held` still alive: must allocate
        assert_eq!(&held.as_slice()[..8], &1u64.to_le_bytes());
        assert_eq!(&other.as_slice()[..8], &2u64.to_le_bytes());
        drop(other);
        let reused = c.make(3, 32);
        assert_eq!(&held.as_slice()[..8], &1u64.to_le_bytes(), "still intact");
        assert_eq!(&reused.as_slice()[..8], &3u64.to_le_bytes());
    }

    #[test]
    fn short_payloads_floor_at_the_prefix() {
        let mut c = PayloadCache::new();
        assert_eq!(c.make(9, 0).len(), 8);
        assert_eq!(c.make(9, 8).len(), 8);
        assert_eq!(c.make(9, 9).len(), 9);
    }

    #[test]
    fn make_exact_preserves_sub_prefix_lengths() {
        let mut c = PayloadCache::new();
        let one = c.make_exact(0x1122, 1);
        assert_eq!(one.len(), 1, "1-byte wire messages stay 1 byte");
        assert_eq!(one.as_slice(), &[0x22], "truncated little-endian prefix");
        drop(one);
        let recycled = c.make_exact(0x33, 1);
        assert_eq!(recycled.as_slice(), &[0x33]);
        assert_eq!(c.make_exact(7, 64).len(), 64, "≥8 matches make()");
    }

    #[test]
    fn sizes_do_not_cross_pollinate() {
        let mut c = PayloadCache::new();
        drop(c.make(1, 64));
        let b = c.make(2, 128);
        assert_eq!(b.len(), 128);
        drop(b);
        assert_eq!(c.make(3, 64).len(), 64);
    }
}
