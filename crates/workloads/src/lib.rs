//! # palladium-workloads — evaluation workloads
//!
//! * [`boutique`] — the Online Boutique application: 10 microservice
//!   functions, the paper's hotspot placement, and the three evaluated
//!   chains (Home Query / ViewCart / Product Query, each >11 exchanges)
//!   plus the deeper Checkout chain used by the examples.
//! * [`wrk`] — wrk-like closed-loop load shapes and the client sweeps /
//!   ramps used across the figures.
//! * [`openloop`] — open-loop overload regimes (Poisson sweeps, flash
//!   crowds with costed scale-out, the metastable negative control) over
//!   the sharded cluster, shared by `slo_smoke`, `alloc_smoke` and the
//!   overload test suite.

// The simulation's memory-safety story is that only the shard mailbox ring
// (simnet) and the bench counting allocator contain `unsafe` at all; this
// crate is compiler-certified to stay out of that set (simlint's
// safety-comments rule covers the two that cannot be).
#![forbid(unsafe_code)]

pub mod boutique;
pub mod openloop;
pub mod wrk;

pub use boutique::{app, checkout_chain, config, ChainKind};
pub use openloop::{
    flash_autoscale, metastable, poisson_overload, OVERLOAD_DEADLINE, OVERLOAD_PAIRS,
    OVERLOAD_POPULATION, SWEEP_RPS,
};
pub use wrk::{Ramp, WrkLoad, BOUTIQUE_SWEEP, CLIENT_SWEEP};
