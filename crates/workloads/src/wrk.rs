//! A wrk-like closed-loop load description.
//!
//! The paper drives every experiment with `wrk` \[19\]: N clients, each
//! holding open connections, each connection issuing the next request as
//! soon as the previous response lands. The drivers implement the loop
//! itself; this module provides the load-shape vocabulary (client counts,
//! ramp schedules) shared by the figure harnesses.

use palladium_simnet::Nanos;

/// A closed-loop load shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WrkLoad {
    /// Concurrent clients.
    pub clients: usize,
    /// Connections per client.
    pub conns_per_client: usize,
    /// Think time between a response and the next request (wrk uses 0).
    pub think_time: Nanos,
}

impl WrkLoad {
    /// `n` clients with one connection each, no think time — the paper's
    /// sweep points.
    pub fn clients(n: usize) -> Self {
        WrkLoad {
            clients: n,
            conns_per_client: 1,
            think_time: Nanos::ZERO,
        }
    }

    /// Total concurrent connections.
    pub fn concurrency(&self) -> usize {
        self.clients * self.conns_per_client
    }
}

/// A client ramp: add one saturating client every `interval` (Fig 14).
#[derive(Clone, Copy, Debug)]
pub struct Ramp {
    /// Interval between client arrivals.
    pub interval: Nanos,
    /// Maximum clients.
    pub max_clients: usize,
    /// Connections per client (a "saturating" wrk client multiplexes many).
    pub conns_per_client: usize,
}

impl Ramp {
    /// The paper's Fig 14 ramp: one client every 10 s.
    pub fn paper() -> Self {
        Ramp {
            interval: Nanos::from_secs(10),
            max_clients: 24,
            conns_per_client: 32,
        }
    }

    /// Number of clients active at time `t`.
    pub fn active_at(&self, t: Nanos) -> usize {
        let n = (t.as_nanos() / self.interval.as_nanos()) as usize + 1;
        n.min(self.max_clients)
    }
}

/// The standard client sweep of Figs 13 and 16.
pub const CLIENT_SWEEP: [usize; 6] = [1, 20, 40, 60, 80, 100];

/// The Fig 16 sweep (tops out at 80).
pub const BOUTIQUE_SWEEP: [usize; 5] = [1, 20, 40, 60, 80];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_shapes() {
        let l = WrkLoad::clients(40);
        assert_eq!(l.concurrency(), 40);
        let l = WrkLoad {
            conns_per_client: 8,
            ..WrkLoad::clients(10)
        };
        assert_eq!(l.concurrency(), 80);
    }

    #[test]
    fn ramp_activation() {
        let r = Ramp::paper();
        assert_eq!(r.active_at(Nanos::ZERO), 1);
        assert_eq!(r.active_at(Nanos::from_secs(9)), 1);
        assert_eq!(r.active_at(Nanos::from_secs(10)), 2);
        assert_eq!(r.active_at(Nanos::from_secs(125)), 13);
        assert_eq!(r.active_at(Nanos::from_secs(10_000)), 24, "capped");
    }

    #[test]
    fn sweeps_match_paper() {
        assert_eq!(CLIENT_SWEEP, [1, 20, 40, 60, 80, 100]);
        assert_eq!(BOUTIQUE_SWEEP, [1, 20, 40, 60, 80]);
    }
}
