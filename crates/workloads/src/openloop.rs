//! Open-loop overload presets over the sharded Fig 16 cluster.
//!
//! The generator itself ([`OpenLoop`], [`ArrivalProcess`], [`ZipfSampler`])
//! lives in `palladium_simnet::openloop` — below the core driver, so the
//! ingress can consume it — and is re-exported here as the workload-facing
//! surface. This module adds the *scenario* layer: named overload regimes
//! over the Online Boutique cluster that `slo_smoke`, `alloc_smoke` and the
//! test suite all share, so the load sweep, the allocation gate and the
//! golden snapshots exercise byte-identical configurations.
//!
//! Calibration anchor: the closed-loop 4-pair HomeQuery cluster completes
//! ~290 requests in 4 ms (~72 k rps) with 32 clients in flight. The sweep
//! grid brackets that; the flash crowd peaks past it; the metastable
//! scenario sits just under it so the transient crash — not the offered
//! load — is what tips the cluster over.

pub use palladium_simnet::openloop::{
    tenant_stream, Arrival, ArrivalProcess, OpenLoop, OpenLoopConfig, ZipfSampler,
};

use palladium_core::autoscaler::AutoscalerConfig;
use palladium_core::driver::cluster_sharded::{
    AutoscalePolicy, ClusterShardedConfig, OverloadConfig,
};
use palladium_core::system::SystemKind;
use palladium_simnet::{Nanos, ScenarioScript};

use crate::boutique::{sharded_config, ChainKind};

/// Worker pairs every overload preset runs with.
pub const OVERLOAD_PAIRS: usize = 4;

/// Zipf function population — large enough to exercise the two-level
/// page table's sparse paths on every arrival.
pub const OVERLOAD_POPULATION: u64 = 10_000;

/// End-to-end deadline propagated with every request (~4–5× the loaded
/// closed-loop p50, so healthy service meets it with queueing headroom).
pub const OVERLOAD_DEADLINE: Nanos = Nanos::from_millis(2);

/// The offered-load grid `slo_smoke --load-sweep` walks (requests/sec),
/// bracketing the ~72 k rps closed-loop saturation point.
pub const SWEEP_RPS: [f64; 7] =
    [20_000.0, 40_000.0, 60_000.0, 80_000.0, 100_000.0, 140_000.0, 200_000.0];

fn overload_base() -> ClusterShardedConfig {
    sharded_config(SystemKind::PalladiumDne, ChainKind::HomeQuery, OVERLOAD_PAIRS)
        .warmup_ms(1)
        .duration_ms(4)
}

/// Steady Poisson arrivals at `rps` under the budgeted-degradation
/// defaults — one point of the goodput-vs-offered-load sweep.
pub fn poisson_overload(rps: f64) -> ClusterShardedConfig {
    overload_base().overload(OverloadConfig::new(
        OpenLoopConfig::poisson(rps, OVERLOAD_POPULATION),
        OVERLOAD_DEADLINE,
    ))
}

/// A flash crowd over a cluster serving from 2 of its 4 pairs: base load
/// fits the active half, the surge does not, and the autoscaler must
/// activate the spare pairs — each activation paying the costed rejoin
/// bill, the first claiming the single pre-leased warm worker at a
/// quarter of it (rFaaS-style).
pub fn flash_autoscale() -> ClusterShardedConfig {
    let traffic = OpenLoopConfig {
        process: ArrivalProcess::FlashCrowd {
            base_rps: 15_000.0,
            peak_rps: 70_000.0,
            start: Nanos::from_micros(1_500),
            ramp: Nanos::from_micros(500),
            hold: Nanos::from_millis(2),
            decay: Nanos::from_millis(1),
        },
        population: OVERLOAD_POPULATION,
        zipf_s: 1.0,
    };
    overload_base().duration_ms(6).overload(
        OverloadConfig::new(traffic, OVERLOAD_DEADLINE).autoscale(AutoscalePolicy {
            initial_pairs: 2,
            scaler: AutoscalerConfig {
                eval_interval: Nanos::from_micros(100),
                cooldown: Nanos::from_micros(200),
                ..AutoscalerConfig::default()
            },
            target_inflight_per_pair: 16,
            warm_leases: 1,
            lease_fraction: 0.25,
        }),
    )
}

/// The metastable-failure scenario: sustained Poisson load at the
/// cluster's open-loop saturation point plus a *transient* rack crash
/// (both pairs of one half, 1.5 ms). At saturation the post-recovery
/// drain rate is ~zero, so whatever backlog the outage accumulates
/// persists; once its queueing delay exceeds the 1 ms deadline, every
/// completion is late and goodput stays collapsed long after the fault
/// cleared — the metastable signature. With `budgeted = true` the
/// admission machinery sheds the stale backlog (oldest-first +
/// deadline-infeasible) and goodput recovers; with `budgeted = false`
/// (the pre-budget unbounded-retry configuration) it does not — the
/// honest negative control.
pub fn metastable(budgeted: bool) -> ClusterShardedConfig {
    let traffic = OpenLoopConfig::poisson(110_000.0, OVERLOAD_POPULATION);
    let mut ov = OverloadConfig::new(traffic, Nanos::from_millis(1));
    if !budgeted {
        ov = ov.unbounded_legacy();
    }
    overload_base()
        .duration_ms(8)
        .chaos(
            ScenarioScript::new()
                .domain("left", &[2, 3, 4, 5])
                .crash_domain("left", Nanos::from_micros(1_500), Nanos::from_millis(3)),
        )
        .overload(ov)
}
