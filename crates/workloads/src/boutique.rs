//! The Online Boutique workload — the paper's §4.3 application.
//!
//! Online Boutique is the canonical microservices demo: ten services
//! (Frontend, ProductCatalog, Cart, Recommendation, Shipping, Checkout,
//! Currency, Payment, Email, Ad) wired into request chains. The paper
//! evaluates three request types — *Home Query*, *ViewCart* and *Product
//! Query* — each incurring **more than 11 data exchanges** between
//! functions, and places the hotspot functions (Frontend, Checkout,
//! Recommendation) on one worker node with everything else on the second
//! (§4.3 "Real Workloads").
//!
//! The gRPC payload sizes are approximated from the public proto message
//! shapes (documented substitution, DESIGN.md §9): catalog/product lists
//! are KB-scale, currency/ad/cart lookups are hundreds of bytes.

use palladium_core::driver::chain::{AppSpec, ChainSimConfig, ChainSpec, FnSpec, HopSpec};
use palladium_core::driver::cluster_sharded::ClusterShardedConfig;
use palladium_core::system::SystemKind;
use palladium_membuf::FnId;
use palladium_simnet::Nanos;

/// Function ids, stable across the workspace.
pub mod fns {
    use palladium_membuf::FnId;

    /// Frontend (entry point; hotspot, node 0).
    pub const FRONTEND: FnId = FnId(1);
    /// Product catalog service (node 1).
    pub const PRODUCT_CATALOG: FnId = FnId(2);
    /// Cart service (node 1).
    pub const CART: FnId = FnId(3);
    /// Recommendation service (hotspot, node 0).
    pub const RECOMMENDATION: FnId = FnId(4);
    /// Shipping service (node 1).
    pub const SHIPPING: FnId = FnId(5);
    /// Checkout service (hotspot, node 0).
    pub const CHECKOUT: FnId = FnId(6);
    /// Currency service (node 1).
    pub const CURRENCY: FnId = FnId(7);
    /// Payment service (node 1).
    pub const PAYMENT: FnId = FnId(8);
    /// Email service (node 1).
    pub const EMAIL: FnId = FnId(9);
    /// Ad service (node 1).
    pub const AD: FnId = FnId(10);
}

/// The three evaluated request types (Fig 16 / Table 2 columns).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChainKind {
    /// Home page: currency + products + cart + ads + recommendations.
    HomeQuery,
    /// View cart: cart contents + per-item catalog lookups + shipping
    /// quote + recommendations.
    ViewCart,
    /// Product page: product + currency conversion + cart + ads +
    /// recommendations.
    ProductQuery,
}

impl ChainKind {
    /// All three chains in paper order.
    pub const ALL: [ChainKind; 3] = [
        ChainKind::HomeQuery,
        ChainKind::ViewCart,
        ChainKind::ProductQuery,
    ];

    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            ChainKind::HomeQuery => "Home Query",
            ChainKind::ViewCart => "ViewCart",
            ChainKind::ProductQuery => "Product Query",
        }
    }

    /// Index into [`app`]'s chain list.
    pub fn index(self) -> usize {
        match self {
            ChainKind::HomeQuery => 0,
            ChainKind::ViewCart => 1,
            ChainKind::ProductQuery => 2,
        }
    }
}

/// Build the Online Boutique application spec: 10 functions with the
/// paper's hotspot placement and the three request chains.
pub fn app() -> AppSpec {
    use fns::*;
    let us = Nanos::from_micros;
    let hop = |from, to, bytes| HopSpec { from, to, bytes };

    AppSpec {
        functions: vec![
            // Hotspots on node 0 (§4.3 placement).
            FnSpec { id: FRONTEND, name: "frontend", node: 0, exec: us(25) },
            FnSpec { id: CHECKOUT, name: "checkout", node: 0, exec: us(30) },
            FnSpec { id: RECOMMENDATION, name: "recommendation", node: 0, exec: us(20) },
            // The rest on node 1.
            FnSpec { id: PRODUCT_CATALOG, name: "productcatalog", node: 1, exec: us(18) },
            FnSpec { id: CART, name: "cart", node: 1, exec: us(15) },
            FnSpec { id: SHIPPING, name: "shipping", node: 1, exec: us(15) },
            FnSpec { id: CURRENCY, name: "currency", node: 1, exec: us(8) },
            FnSpec { id: PAYMENT, name: "payment", node: 1, exec: us(20) },
            FnSpec { id: EMAIL, name: "email", node: 1, exec: us(15) },
            FnSpec { id: AD, name: "ad", node: 1, exec: us(10) },
        ],
        chains: vec![
            // Home Query: frontend fans out for currencies, products, cart,
            // ads and recommendations — 12 exchanges.
            ChainSpec {
                name: "Home Query",
                entry: FRONTEND,
                hops: vec![
                    hop(FRONTEND, CURRENCY, 256),
                    hop(CURRENCY, FRONTEND, 512),
                    hop(FRONTEND, PRODUCT_CATALOG, 256),
                    hop(PRODUCT_CATALOG, FRONTEND, 4096),
                    hop(FRONTEND, CART, 256),
                    hop(CART, FRONTEND, 512),
                    hop(FRONTEND, RECOMMENDATION, 512),
                    hop(RECOMMENDATION, PRODUCT_CATALOG, 256),
                    hop(PRODUCT_CATALOG, RECOMMENDATION, 2048),
                    hop(RECOMMENDATION, FRONTEND, 512),
                    hop(FRONTEND, AD, 256),
                    hop(AD, FRONTEND, 512),
                ],
                req_bytes: 256,
                resp_bytes: 8192,
            },
            // ViewCart: cart contents, per-item catalog lookups, shipping
            // quote, recommendations — 12 exchanges.
            ChainSpec {
                name: "ViewCart",
                entry: FRONTEND,
                hops: vec![
                    hop(FRONTEND, CART, 256),
                    hop(CART, FRONTEND, 1024),
                    hop(FRONTEND, PRODUCT_CATALOG, 512),
                    hop(PRODUCT_CATALOG, FRONTEND, 4096),
                    hop(FRONTEND, SHIPPING, 512),
                    hop(SHIPPING, FRONTEND, 256),
                    hop(FRONTEND, CURRENCY, 256),
                    hop(CURRENCY, FRONTEND, 256),
                    hop(FRONTEND, RECOMMENDATION, 512),
                    hop(RECOMMENDATION, PRODUCT_CATALOG, 256),
                    hop(PRODUCT_CATALOG, RECOMMENDATION, 2048),
                    hop(RECOMMENDATION, FRONTEND, 512),
                ],
                req_bytes: 512,
                resp_bytes: 6144,
            },
            // Product Query: product details, currency, cart, ads,
            // recommendations — 12 exchanges.
            ChainSpec {
                name: "Product Query",
                entry: FRONTEND,
                hops: vec![
                    hop(FRONTEND, PRODUCT_CATALOG, 256),
                    hop(PRODUCT_CATALOG, FRONTEND, 2048),
                    hop(FRONTEND, CURRENCY, 256),
                    hop(CURRENCY, FRONTEND, 256),
                    hop(FRONTEND, CART, 256),
                    hop(CART, FRONTEND, 512),
                    hop(FRONTEND, RECOMMENDATION, 512),
                    hop(RECOMMENDATION, PRODUCT_CATALOG, 256),
                    hop(PRODUCT_CATALOG, RECOMMENDATION, 2048),
                    hop(RECOMMENDATION, FRONTEND, 512),
                    hop(FRONTEND, AD, 256),
                    hop(AD, FRONTEND, 512),
                ],
                req_bytes: 256,
                resp_bytes: 4096,
            },
        ],
    }
}

/// Checkout chain (used by the checkout example): the deepest call graph —
/// cart, per-item lookups, currency, shipping, payment, email.
pub fn checkout_chain() -> ChainSpec {
    use fns::*;
    let hop = |from, to, bytes| HopSpec { from, to, bytes };
    ChainSpec {
        name: "Checkout",
        entry: FRONTEND,
        hops: vec![
            hop(FRONTEND, CHECKOUT, 1024),
            hop(CHECKOUT, CART, 256),
            hop(CART, CHECKOUT, 1024),
            hop(CHECKOUT, PRODUCT_CATALOG, 256),
            hop(PRODUCT_CATALOG, CHECKOUT, 2048),
            hop(CHECKOUT, CURRENCY, 256),
            hop(CURRENCY, CHECKOUT, 256),
            hop(CHECKOUT, SHIPPING, 512),
            hop(SHIPPING, CHECKOUT, 256),
            hop(CHECKOUT, PAYMENT, 512),
            hop(PAYMENT, CHECKOUT, 256),
            hop(CHECKOUT, EMAIL, 1024),
            hop(EMAIL, CHECKOUT, 128),
            hop(CHECKOUT, FRONTEND, 1024),
        ],
        req_bytes: 1024,
        resp_bytes: 2048,
    }
}

/// A ready-to-run cluster configuration for `system` exercising `chain`.
pub fn config(system: SystemKind, chain: ChainKind) -> ChainSimConfig {
    ChainSimConfig::new(system, app(), chain.index())
}

/// Function-id spacing between worker-pair replicas in the sharded
/// cluster: ids 1–10 fit comfortably below it, and remapped ids stay
/// 16-bit for any realistic pair count.
pub const FN_ID_STRIDE: u16 = 16;

/// The boutique replicated over `pairs` worker-node pairs for the sharded
/// Fig 16 cluster ([`palladium_core::driver::cluster_sharded`]): pair `p`
/// runs its own copy of the ten functions — ids remapped to
/// `id + 16·p`, hotspots on global node `2p`, the rest on `2p + 1` — and
/// `chains[p]` is pair `p`'s remapped copy of `chain`. Node `2·pairs` is
/// left to the ingress.
pub fn sharded_app(chain: ChainKind, pairs: usize) -> AppSpec {
    assert!(pairs >= 1, "need at least one worker pair");
    let base = app();
    let remap = |f: FnId, p: usize| FnId(f.0 + FN_ID_STRIDE * p as u16);
    let mut functions = Vec::with_capacity(base.functions.len() * pairs);
    let mut chains = Vec::with_capacity(pairs);
    for p in 0..pairs {
        for f in &base.functions {
            functions.push(FnSpec {
                id: remap(f.id, p),
                name: f.name,
                node: 2 * p + f.node,
                exec: f.exec,
            });
        }
        let c = &base.chains[chain.index()];
        chains.push(ChainSpec {
            name: c.name,
            entry: remap(c.entry, p),
            hops: c
                .hops
                .iter()
                .map(|h| HopSpec {
                    from: remap(h.from, p),
                    to: remap(h.to, p),
                    bytes: h.bytes,
                })
                .collect(),
            req_bytes: c.req_bytes,
            resp_bytes: c.resp_bytes,
        });
    }
    AppSpec { functions, chains }
}

/// A ready-to-run sharded cluster configuration: `system` exercising
/// `chain` replicated over `pairs` worker pairs.
pub fn sharded_config(system: SystemKind, chain: ChainKind, pairs: usize) -> ClusterShardedConfig {
    ClusterShardedConfig::new(system, sharded_app(chain, pairs), pairs)
}

/// Count the data exchanges of a chain including the request-in and
/// response-out legs (the paper counts "more than 11").
pub fn exchange_count(chain: &ChainSpec) -> usize {
    chain.hops.len() + 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_functions_with_hotspot_placement() {
        let app = app();
        assert_eq!(app.functions.len(), 10);
        // Hotspots on node 0 (§4.3).
        for f in [fns::FRONTEND, fns::CHECKOUT, fns::RECOMMENDATION] {
            assert_eq!(app.function(f).node, 0, "{f:?} is a hotspot");
        }
        // Everything else on node 1.
        for f in [
            fns::PRODUCT_CATALOG,
            fns::CART,
            fns::SHIPPING,
            fns::CURRENCY,
            fns::PAYMENT,
            fns::EMAIL,
            fns::AD,
        ] {
            assert_eq!(app.function(f).node, 1);
        }
    }

    #[test]
    fn chains_have_more_than_11_exchanges() {
        let app = app();
        assert_eq!(app.chains.len(), 3);
        for chain in &app.chains {
            assert!(
                exchange_count(chain) > 11,
                "{} has only {} exchanges",
                chain.name,
                exchange_count(chain)
            );
        }
        assert!(exchange_count(&checkout_chain()) > 11);
    }

    #[test]
    fn chains_are_wellformed() {
        // Every hop chains correctly: hop[i].to appears as hop[j>i].from
        // when that function produces output, and every hop's endpoints are
        // deployed functions; the entry starts the chain.
        let app = app();
        for chain in app.chains.iter().chain(std::iter::once(&checkout_chain())) {
            assert_eq!(chain.hops[0].from, chain.entry, "{}", chain.name);
            for h in &chain.hops {
                assert!(app.functions.iter().any(|f| f.id == h.from));
                assert!(app.functions.iter().any(|f| f.id == h.to));
                assert!(h.bytes > 0);
            }
            // The chain driver walks hops sequentially: each hop's producer
            // must be the previous hop's consumer.
            for w in chain.hops.windows(2) {
                assert_eq!(w[0].to, w[1].from, "{} hop discontinuity", chain.name);
            }
        }
    }

    #[test]
    fn chain_kind_mapping() {
        let app = app();
        for kind in ChainKind::ALL {
            assert_eq!(app.chains[kind.index()].name, kind.label());
        }
    }

    #[test]
    fn config_builds() {
        let cfg = config(SystemKind::PalladiumDne, ChainKind::HomeQuery);
        assert_eq!(cfg.chain_idx, 0);
        assert_eq!(cfg.app.functions.len(), 10);
    }
}
