//! Property tests for the open-loop traffic generator
//! (`workloads::openloop`, re-exporting `palladium_simnet::openloop`).
//!
//! Three contracts, each over randomized shapes no hand-written pin would
//! cover:
//!
//! 1. **Poisson mean** — the empirical inter-arrival mean tracks `1/rate`
//!    within a statistical bound at any rate and seed.
//! 2. **Zipf shape** — the population sampler is a proper distribution
//!    whose rank-frequency curve decays monotonically, heavy head first.
//! 3. **Statelessness** — every arrival is a pure function of
//!    `(seed, seq)`: regenerating, resuming mid-stream, or drawing
//!    tenants' streams in any order reproduces identical bytes. This is
//!    the property that makes open-loop overload runs shard-count- and
//!    execution-mode-invariant (`prop_shard.rs` pins it through the
//!    kernel; the overload golden end-to-end).

use proptest::prelude::*;

use palladium_simnet::Nanos;
use palladium_workloads::openloop::{
    tenant_stream, ArrivalProcess, OpenLoop, OpenLoopConfig, ZipfSampler,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // The law of large numbers with generous slack: 4000 exponential
    // gaps put the sample mean within ±10% of 1/rate with overwhelming
    // probability (σ/√n ≈ 1.6% of the mean).
    #[test]
    fn poisson_interarrival_mean_tracks_the_rate(
        rps in 5_000.0f64..2_000_000.0,
        seed in any::<u64>(),
    ) {
        let cfg = OpenLoopConfig::poisson(rps, 100);
        let mut gen = OpenLoop::new(&cfg, seed);
        let n = 4_000u64;
        let mut last = Nanos::ZERO;
        for _ in 0..n {
            last = gen.next_arrival().at;
        }
        let mean = last.as_nanos() as f64 / n as f64;
        let want = 1e9 / rps;
        prop_assert!(
            (mean - want).abs() < 0.10 * want,
            "empirical mean gap {mean:.0} ns vs expected {want:.0} ns"
        );
    }

    // The sampler is a distribution (ranks cover the population, CDF
    // monotone) and Zipf-shaped: per-rank weight decays monotonically
    // and the head rank dominates an equally-sized tail slice.
    #[test]
    fn zipf_rank_frequency_decays_head_first(
        population in 16u64..20_000,
        s in 0.5f64..1.6,
        seed in any::<u64>(),
    ) {
        let z = ZipfSampler::new(population, s);
        prop_assert_eq!(z.len(), population);
        for rank in 1..population.min(64) {
            prop_assert!(
                z.weight(rank - 1) >= z.weight(rank),
                "weight must decay with rank ({rank})"
            );
        }
        // Empirical head vs tail: count draws landing in the first 10%
        // of ranks vs the last 10% — the head must win by a wide margin.
        let cfg = OpenLoopConfig { process: ArrivalProcess::Poisson { rps: 1e6 }, population, zipf_s: s };
        let mut gen = OpenLoop::new(&cfg, seed);
        let decile = (population / 10).max(1);
        let (mut head, mut tail) = (0u64, 0u64);
        for _ in 0..3_000 {
            let id = gen.next_arrival().fn_id;
            prop_assert!(id < population, "sampled id out of range");
            if id < decile {
                head += 1;
            } else if id >= population - decile {
                tail += 1;
            }
        }
        prop_assert!(
            head > 2 * tail,
            "Zipf head decile ({head}) must dominate the tail decile ({tail}) at s={s}"
        );
    }

    // Statelessness: a fresh generator replays the identical arrival
    // sequence, and per-tenant streams depend only on (seed, tenant,
    // draw) — never on the order other tenants drew in.
    #[test]
    fn arrival_streams_are_stateless_and_replayable(
        rps in 5_000.0f64..500_000.0,
        population in 1u64..10_000,
        seed in any::<u64>(),
        tenants in proptest::collection::vec(any::<u64>(), 1..8),
    ) {
        let cfg = OpenLoopConfig::poisson(rps, population);
        let mut a = OpenLoop::new(&cfg, seed);
        let mut b = OpenLoop::new(&cfg, seed);
        for _ in 0..256 {
            prop_assert_eq!(a.next_arrival(), b.next_arrival());
        }
        // Tenant streams: interleaved vs sequential draw orders agree.
        let direct: Vec<u64> = tenants
            .iter()
            .flat_map(|&t| (0..4).map(move |d| (t, d)))
            .map(|(t, d)| tenant_stream(seed, t, d).unit().to_bits())
            .collect();
        let mut interleaved = Vec::new();
        for d in 0..4 {
            for &t in &tenants {
                interleaved.push((t, d, tenant_stream(seed, t, d).unit().to_bits()));
            }
        }
        for (t, d, v) in interleaved {
            let idx = tenants.iter().position(|&x| x == t).unwrap() * 4 + d as usize;
            prop_assert_eq!(direct[idx], v, "tenant {} draw {} depends on order", t, d);
        }
    }

    // Non-homogeneous processes stay inside their configured envelope:
    // the instantaneous rate never exceeds the peak nor undercuts the
    // floor, at any phase.
    #[test]
    fn shaped_processes_respect_their_rate_envelope(
        base in 5_000.0f64..100_000.0,
        mult in 1.5f64..8.0,
        at in 0u64..10_000_000,
    ) {
        let flash = ArrivalProcess::FlashCrowd {
            base_rps: base,
            peak_rps: base * mult,
            start: Nanos(1_000_000),
            ramp: Nanos(500_000),
            hold: Nanos(2_000_000),
            decay: Nanos(1_000_000),
        };
        let r = flash.rate_at(Nanos(at));
        prop_assert!(r >= base - 1e-6 && r <= base * mult + 1e-6, "flash rate {r} escapes envelope");
        let bursty = ArrivalProcess::Bursty {
            base_rps: base,
            burst_rps: base * mult,
            period: Nanos(1_000_000),
            duty: 0.3,
        };
        let r = bursty.rate_at(Nanos(at));
        prop_assert!(r == base || r == base * mult, "bursty rate {r} is neither level");
        let diurnal = ArrivalProcess::Diurnal {
            min_rps: base,
            max_rps: base * mult,
            period: Nanos(5_000_000),
        };
        let r = diurnal.rate_at(Nanos(at));
        prop_assert!(r >= base - 1e-6 && r <= base * mult + 1e-6, "diurnal rate {r} escapes envelope");
    }
}
