//! # palladium-core — the Palladium data plane
//!
//! The paper's primary contribution, rebuilt on the workspace substrates:
//!
//! * [`dne`] — the DPU Network Engine: run-to-completion worker loop (TX:
//!   DWRR dequeue → route → least-congested RC → post; RX: CQE → RBR →
//!   Comch forward) plus the core thread's replenishment sweep. The same
//!   engine at [`config::EngineLocation::Cpu`] is the CNE ablation.
//! * [`dwrr`] — the per-tenant Deficit Weighted Round Robin scheduler (and
//!   the FCFS baseline) behind the Fig 15 fairness result.
//! * [`rbr`] — the receive-buffer registry.
//! * [`connpool`] — the RC connection pool with shadow-QP activity
//!   management and least-congested selection.
//! * [`routing`] — intra-/inter-node route tables and the CNI-like
//!   coordinator.
//! * [`iolib`] — the unified `send()`/`recv()` I/O library functions link
//!   against; picks SK_MSG locally, Comch→DNE remotely.
//! * [`ingress`] — the cluster-wide HTTP/TCP→RDMA gateway: master/worker,
//!   RSS, hysteresis autoscaler ([`autoscaler`]).
//! * [`system`] — declarative wiring of all six evaluated systems and the
//!   Table 1 capability matrix.
//! * [`driver`] — the simulation drivers that regenerate the paper's
//!   figures: descriptor-channel echo (Fig 9), ingress sweep & scaling
//!   (Figs 13–14), multi-tenant fairness (Fig 15) and the full
//!   function-chain cluster (Fig 16 / Table 2).

// The simulation's memory-safety story is that only the shard mailbox ring
// (simnet) and the bench counting allocator contain `unsafe` at all; this
// crate is compiler-certified to stay out of that set (simlint's
// safety-comments rule covers the two that cannot be).
#![forbid(unsafe_code)]

pub mod autoscaler;
pub mod config;
pub mod connpool;
pub mod dne;
pub mod driver;
pub mod dwrr;
pub mod ingress;
pub mod iolib;
pub mod rbr;
pub mod routing;
pub mod system;

pub use autoscaler::{Autoscaler, AutoscalerConfig, ScaleAction};
pub use config::{CostModel, EngineLocation};
pub use connpool::{ConnPool, ConnPoolConfig, PooledConn};
pub use dne::{pack_imm, unpack_imm, Dne, DneEffect, DneStep};
pub use dwrr::{SchedPolicy, TenantScheduler};
pub use rbr::RbrTable;
pub use routing::{Coordinator, DeployEvent, RouteTables};
pub use system::{Capabilities, IngressKind, InterNode, SystemKind, SystemSpec};
