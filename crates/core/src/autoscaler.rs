//! The ingress gateway's horizontal autoscaler.
//!
//! Worker processes busy-poll (DPDK), so raw core usage is always 100 %;
//! the master instead measures *useful* CPU time spent on data-plane work
//! inside each worker's event loop (§3.6) and applies a hysteresis policy:
//! spawn a worker when average useful utilization exceeds 60 %, reap one
//! when it drops below 30 %. Scaling restarts worker processes, causing the
//! brief service blip visible in Fig 14 (2).

use palladium_simnet::Nanos;

/// The hysteresis policy configuration.
#[derive(Clone, Copy, Debug)]
pub struct AutoscalerConfig {
    /// Spawn a worker above this average useful utilization.
    pub scale_up_above: f64,
    /// Reap a worker below this average useful utilization.
    pub scale_down_below: f64,
    /// Minimum workers.
    pub min_workers: usize,
    /// Maximum workers (cores available to the gateway).
    pub max_workers: usize,
    /// How often the master evaluates the policy.
    pub eval_interval: Nanos,
    /// Service interruption while workers restart after a scaling action
    /// (the Fig 14 (2) blip).
    pub reload_blip: Nanos,
    /// Minimum span between two scaling *actions* (not evaluations) when
    /// driven through [`Autoscaler::evaluate_at`] — damps flapping when a
    /// flash crowd makes utilization whipsaw across both thresholds inside
    /// one worker-warmup time. `ZERO` (the default) disables the cooldown,
    /// preserving the classic per-interval policy.
    pub cooldown: Nanos,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            scale_up_above: 0.60,
            scale_down_below: 0.30,
            min_workers: 1,
            max_workers: 24,
            eval_interval: Nanos::from_millis(500),
            reload_blip: Nanos::from_millis(120),
            cooldown: Nanos::ZERO,
        }
    }
}

/// A scaling decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScaleAction {
    /// Keep the current worker count.
    Hold,
    /// Spawn one worker.
    Up,
    /// Reap one worker.
    Down,
}

/// The master process's scaling logic (pure, for testability).
#[derive(Debug)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    workers: usize,
    /// When the last non-`Hold` action was taken (cooldown anchor).
    last_action: Option<Nanos>,
    /// Decisions taken (up, down) — for reports.
    pub ups: u32,
    /// Scale-down decisions taken.
    pub downs: u32,
}

impl Autoscaler {
    /// Start with the minimum worker count.
    pub fn new(cfg: AutoscalerConfig) -> Self {
        Autoscaler {
            workers: cfg.min_workers,
            cfg,
            last_action: None,
            ups: 0,
            downs: 0,
        }
    }

    /// Current worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Configuration.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.cfg
    }

    /// Evaluate the policy against the average useful utilization measured
    /// over the last interval. Applies and returns the action.
    pub fn evaluate(&mut self, avg_useful_util: f64) -> ScaleAction {
        if avg_useful_util > self.cfg.scale_up_above && self.workers < self.cfg.max_workers {
            self.workers += 1;
            self.ups += 1;
            ScaleAction::Up
        } else if avg_useful_util < self.cfg.scale_down_below && self.workers > self.cfg.min_workers
        {
            self.workers -= 1;
            self.downs += 1;
            ScaleAction::Down
        } else {
            ScaleAction::Hold
        }
    }

    /// [`Autoscaler::evaluate`] with the cooldown applied: while `now` is
    /// within `cfg.cooldown` of the last non-`Hold` action, the policy is
    /// not consulted and the answer is `Hold`. With `cooldown == ZERO`
    /// this is exactly `evaluate`.
    pub fn evaluate_at(&mut self, now: Nanos, avg_useful_util: f64) -> ScaleAction {
        if let Some(at) = self.last_action {
            if now.as_nanos() < at.as_nanos().saturating_add(self.cfg.cooldown.as_nanos()) {
                return ScaleAction::Hold;
            }
        }
        let action = self.evaluate(avg_useful_util);
        if action != ScaleAction::Hold {
            self.last_action = Some(now);
        }
        action
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler() -> Autoscaler {
        Autoscaler::new(AutoscalerConfig::default())
    }

    #[test]
    fn scales_up_above_60() {
        let mut s = scaler();
        assert_eq!(s.evaluate(0.61), ScaleAction::Up);
        assert_eq!(s.workers(), 2);
        assert_eq!(s.ups, 1);
    }

    #[test]
    fn scales_down_below_30() {
        let mut s = scaler();
        s.evaluate(0.9); // up to 2
        assert_eq!(s.evaluate(0.29), ScaleAction::Down);
        assert_eq!(s.workers(), 1);
        assert_eq!(s.downs, 1);
    }

    #[test]
    fn hysteresis_band_holds() {
        let mut s = scaler();
        s.evaluate(0.9); // 2 workers
        for util in [0.30, 0.45, 0.60] {
            assert_eq!(s.evaluate(util), ScaleAction::Hold, "util {util}");
        }
        assert_eq!(s.workers(), 2);
    }

    #[test]
    fn respects_bounds() {
        let mut s = Autoscaler::new(AutoscalerConfig {
            min_workers: 1,
            max_workers: 2,
            ..Default::default()
        });
        assert_eq!(s.evaluate(0.9), ScaleAction::Up);
        assert_eq!(s.evaluate(0.9), ScaleAction::Hold, "at max");
        assert_eq!(s.evaluate(0.1), ScaleAction::Down);
        assert_eq!(s.evaluate(0.1), ScaleAction::Hold, "at min");
    }

    #[test]
    fn cooldown_suppresses_back_to_back_actions() {
        let mut s = Autoscaler::new(AutoscalerConfig {
            cooldown: Nanos::from_millis(2),
            ..Default::default()
        });
        let t = Nanos::from_millis;
        assert_eq!(s.evaluate_at(t(0), 0.9), ScaleAction::Up);
        // Saturated again 1 ms later: inside the cooldown, forced Hold.
        assert_eq!(s.evaluate_at(t(1), 0.9), ScaleAction::Hold);
        assert_eq!(s.workers(), 2);
        // Cooldown expired: the policy acts again.
        assert_eq!(s.evaluate_at(t(2), 0.9), ScaleAction::Up);
        assert_eq!(s.workers(), 3);
        // A whipsaw to idle right after the second action is also damped.
        assert_eq!(s.evaluate_at(t(3), 0.1), ScaleAction::Hold);
        assert_eq!(s.evaluate_at(t(4), 0.1), ScaleAction::Down);
        assert_eq!(s.workers(), 2);
    }

    #[test]
    fn zero_cooldown_matches_plain_evaluate() {
        let mut a = scaler();
        let mut b = scaler();
        for (i, util) in [0.9, 0.9, 0.1, 0.45, 0.9, 0.1, 0.1].iter().enumerate() {
            let via_at = a.evaluate_at(Nanos(i as u64), *util);
            let via_plain = b.evaluate(*util);
            assert_eq!(via_at, via_plain, "step {i}");
        }
        assert_eq!(a.workers(), b.workers());
    }

    #[test]
    fn cooldown_holds_do_not_reset_the_window() {
        // Repeated saturated evaluations inside the window must not push the
        // cooldown anchor forward: the action fires exactly when the original
        // window expires.
        let mut s = Autoscaler::new(AutoscalerConfig {
            cooldown: Nanos::from_millis(10),
            ..Default::default()
        });
        assert_eq!(s.evaluate_at(Nanos::ZERO, 0.9), ScaleAction::Up);
        for ms in 1..10 {
            assert_eq!(s.evaluate_at(Nanos::from_millis(ms), 0.9), ScaleAction::Hold);
        }
        assert_eq!(s.evaluate_at(Nanos::from_millis(10), 0.9), ScaleAction::Up);
    }

    #[test]
    fn evaluate_at_respects_worker_clamps() {
        let mut s = Autoscaler::new(AutoscalerConfig {
            min_workers: 2,
            max_workers: 3,
            cooldown: Nanos::from_micros(100),
            ..Default::default()
        });
        assert_eq!(s.workers(), 2);
        assert_eq!(s.evaluate_at(Nanos(0), 0.99), ScaleAction::Up);
        assert_eq!(s.evaluate_at(Nanos(200_000), 0.99), ScaleAction::Hold, "at max");
        assert_eq!(s.workers(), 3);
        assert_eq!(s.evaluate_at(Nanos(400_000), 0.01), ScaleAction::Down);
        assert_eq!(s.evaluate_at(Nanos(600_000), 0.01), ScaleAction::Hold, "at min");
        assert_eq!(s.workers(), 2);
    }

    #[test]
    fn oscillation_resistance() {
        // A load level between the thresholds after one scale-up must not
        // flap: 2 workers at 45% hold forever.
        let mut s = scaler();
        s.evaluate(0.9);
        for _ in 0..100 {
            assert_eq!(s.evaluate(0.45), ScaleAction::Hold);
        }
        assert_eq!(s.workers(), 2);
    }
}
