//! The ingress gateway's horizontal autoscaler.
//!
//! Worker processes busy-poll (DPDK), so raw core usage is always 100 %;
//! the master instead measures *useful* CPU time spent on data-plane work
//! inside each worker's event loop (§3.6) and applies a hysteresis policy:
//! spawn a worker when average useful utilization exceeds 60 %, reap one
//! when it drops below 30 %. Scaling restarts worker processes, causing the
//! brief service blip visible in Fig 14 (2).

use palladium_simnet::Nanos;

/// The hysteresis policy configuration.
#[derive(Clone, Copy, Debug)]
pub struct AutoscalerConfig {
    /// Spawn a worker above this average useful utilization.
    pub scale_up_above: f64,
    /// Reap a worker below this average useful utilization.
    pub scale_down_below: f64,
    /// Minimum workers.
    pub min_workers: usize,
    /// Maximum workers (cores available to the gateway).
    pub max_workers: usize,
    /// How often the master evaluates the policy.
    pub eval_interval: Nanos,
    /// Service interruption while workers restart after a scaling action
    /// (the Fig 14 (2) blip).
    pub reload_blip: Nanos,
}

impl Default for AutoscalerConfig {
    fn default() -> Self {
        AutoscalerConfig {
            scale_up_above: 0.60,
            scale_down_below: 0.30,
            min_workers: 1,
            max_workers: 24,
            eval_interval: Nanos::from_millis(500),
            reload_blip: Nanos::from_millis(120),
        }
    }
}

/// A scaling decision.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScaleAction {
    /// Keep the current worker count.
    Hold,
    /// Spawn one worker.
    Up,
    /// Reap one worker.
    Down,
}

/// The master process's scaling logic (pure, for testability).
#[derive(Debug)]
pub struct Autoscaler {
    cfg: AutoscalerConfig,
    workers: usize,
    /// Decisions taken (up, down) — for reports.
    pub ups: u32,
    /// Scale-down decisions taken.
    pub downs: u32,
}

impl Autoscaler {
    /// Start with the minimum worker count.
    pub fn new(cfg: AutoscalerConfig) -> Self {
        Autoscaler {
            workers: cfg.min_workers,
            cfg,
            ups: 0,
            downs: 0,
        }
    }

    /// Current worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Configuration.
    pub fn config(&self) -> &AutoscalerConfig {
        &self.cfg
    }

    /// Evaluate the policy against the average useful utilization measured
    /// over the last interval. Applies and returns the action.
    pub fn evaluate(&mut self, avg_useful_util: f64) -> ScaleAction {
        if avg_useful_util > self.cfg.scale_up_above && self.workers < self.cfg.max_workers {
            self.workers += 1;
            self.ups += 1;
            ScaleAction::Up
        } else if avg_useful_util < self.cfg.scale_down_below && self.workers > self.cfg.min_workers
        {
            self.workers -= 1;
            self.downs += 1;
            ScaleAction::Down
        } else {
            ScaleAction::Hold
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scaler() -> Autoscaler {
        Autoscaler::new(AutoscalerConfig::default())
    }

    #[test]
    fn scales_up_above_60() {
        let mut s = scaler();
        assert_eq!(s.evaluate(0.61), ScaleAction::Up);
        assert_eq!(s.workers(), 2);
        assert_eq!(s.ups, 1);
    }

    #[test]
    fn scales_down_below_30() {
        let mut s = scaler();
        s.evaluate(0.9); // up to 2
        assert_eq!(s.evaluate(0.29), ScaleAction::Down);
        assert_eq!(s.workers(), 1);
        assert_eq!(s.downs, 1);
    }

    #[test]
    fn hysteresis_band_holds() {
        let mut s = scaler();
        s.evaluate(0.9); // 2 workers
        for util in [0.30, 0.45, 0.60] {
            assert_eq!(s.evaluate(util), ScaleAction::Hold, "util {util}");
        }
        assert_eq!(s.workers(), 2);
    }

    #[test]
    fn respects_bounds() {
        let mut s = Autoscaler::new(AutoscalerConfig {
            min_workers: 1,
            max_workers: 2,
            ..Default::default()
        });
        assert_eq!(s.evaluate(0.9), ScaleAction::Up);
        assert_eq!(s.evaluate(0.9), ScaleAction::Hold, "at max");
        assert_eq!(s.evaluate(0.1), ScaleAction::Down);
        assert_eq!(s.evaluate(0.1), ScaleAction::Hold, "at min");
    }

    #[test]
    fn oscillation_resistance() {
        // A load level between the thresholds after one scale-up must not
        // flap: 2 workers at 45% hold forever.
        let mut s = scaler();
        s.evaluate(0.9);
        for _ in 0..100 {
            assert_eq!(s.evaluate(0.45), ScaleAction::Hold);
        }
        assert_eq!(s.workers(), 2);
    }
}
