//! Deficit Weighted Round Robin — Palladium's per-tenant traffic scheduler.
//!
//! The DNE shares RNIC bandwidth among co-located tenants with a DWRR-like
//! policy (§3.3, citing Shreedhar & Varghese): each tenant has a weight; on
//! each round a tenant's deficit counter grows by `weight × quantum` and the
//! tenant may transmit work whose cost fits the deficit. Higher-weight
//! tenants therefore transfer proportionally more — exactly the Fig 15
//! behaviour (weights 6:1:2 splitting ≈110 K RPS into ≈65/11/22 K).
//!
//! The scheduler is generic over the queued item so the same implementation
//! serves descriptor queues in the DNE and byte-cost queues in tests.

use std::collections::VecDeque;

use palladium_membuf::TenantId;

/// Scheduling discipline of the engine's TX stage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SchedPolicy {
    /// Deficit Weighted Round Robin with per-tenant weights (Palladium).
    Dwrr,
    /// First-come-first-served — the baseline DNE of Fig 15 (1) with no
    /// multi-tenancy support.
    Fcfs,
}

#[derive(Debug)]
struct TenantQueue<T> {
    tenant: TenantId,
    weight: u32,
    deficit: u64,
    queue: VecDeque<(u64, T)>,
}

/// A work scheduler multiplexing per-tenant queues onto one engine.
///
/// Items carry an explicit `cost` (e.g. payload bytes, or 1 for pure
/// request counting); DWRR spends deficit on cost.
#[derive(Debug)]
pub struct TenantScheduler<T> {
    policy: SchedPolicy,
    /// Deficit replenished per round per unit weight.
    quantum: u64,
    tenants: Vec<TenantQueue<T>>,
    /// Round-robin cursor.
    cursor: usize,
    /// Has the cursor's queue received its quantum for the current visit?
    visit_refilled: bool,
    /// FCFS arrival order: (arrival_seq); kept in a single queue of
    /// (tenant_idx) breadcrumbs.
    fcfs_order: VecDeque<usize>,
    len: usize,
}

impl<T> TenantScheduler<T> {
    /// A scheduler with the given policy and DWRR quantum.
    pub fn new(policy: SchedPolicy, quantum: u64) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        TenantScheduler {
            policy,
            quantum,
            tenants: Vec::new(),
            cursor: 0,
            visit_refilled: false,
            fcfs_order: VecDeque::new(),
            len: 0,
        }
    }

    /// Scheduling policy in force.
    pub fn policy(&self) -> SchedPolicy {
        self.policy
    }

    /// Register a tenant with its weight. Re-registering updates the weight.
    pub fn register_tenant(&mut self, tenant: TenantId, weight: u32) {
        assert!(weight > 0, "weight must be positive");
        if let Some(t) = self.tenants.iter_mut().find(|t| t.tenant == tenant) {
            t.weight = weight;
        } else {
            self.tenants.push(TenantQueue {
                tenant,
                weight,
                deficit: 0,
                queue: VecDeque::new(),
            });
        }
    }

    fn tenant_idx(&self, tenant: TenantId) -> Option<usize> {
        self.tenants.iter().position(|t| t.tenant == tenant)
    }

    /// Enqueue an item of the given cost for a tenant. Unregistered tenants
    /// are auto-registered with weight 1 (FCFS semantics need no setup).
    pub fn enqueue(&mut self, tenant: TenantId, cost: u64, item: T) {
        let idx = match self.tenant_idx(tenant) {
            Some(i) => i,
            None => {
                self.register_tenant(tenant, 1);
                self.tenants.len() - 1
            }
        };
        self.tenants[idx].queue.push_back((cost.max(1), item));
        self.fcfs_order.push_back(idx);
        self.len += 1;
    }

    /// Total queued items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued items for one tenant.
    pub fn tenant_depth(&self, tenant: TenantId) -> usize {
        self.tenant_idx(tenant)
            .map(|i| self.tenants[i].queue.len())
            .unwrap_or(0)
    }

    /// Dequeue the next item according to the policy.
    pub fn dequeue(&mut self) -> Option<(TenantId, T)> {
        if self.len == 0 {
            return None;
        }
        match self.policy {
            SchedPolicy::Fcfs => self.dequeue_fcfs(),
            SchedPolicy::Dwrr => self.dequeue_dwrr(),
        }
    }

    fn dequeue_fcfs(&mut self) -> Option<(TenantId, T)> {
        while let Some(idx) = self.fcfs_order.pop_front() {
            if let Some((_, item)) = self.tenants[idx].queue.pop_front() {
                self.len -= 1;
                return Some((self.tenants[idx].tenant, item));
            }
        }
        None
    }

    fn dequeue_dwrr(&mut self) -> Option<(TenantId, T)> {
        let n = self.tenants.len();
        if n == 0 {
            return None;
        }
        // Classic single-item-per-call DWRR: each *visit* to a queue grants
        // one quantum×weight; the queue is served while its deficit lasts,
        // then the cursor advances. Deficits of non-empty queues grow every
        // full round, so an oversized head is eventually affordable —
        // termination is guaranteed while anything is queued (self.len > 0
        // checked by the caller).
        let mut guard = 0u64;
        loop {
            let cursor = self.cursor;
            let t = &mut self.tenants[cursor];
            if t.queue.is_empty() {
                // Idle tenants don't bank deficit (classic DWRR).
                t.deficit = 0;
                self.advance();
                continue;
            }
            if !self.visit_refilled {
                t.deficit += (t.weight as u64) * self.quantum;
                self.visit_refilled = true;
            }
            let head_cost = t.queue.front().expect("non-empty").0;
            if t.deficit >= head_cost {
                t.deficit -= head_cost;
                let (_, item) = t.queue.pop_front().expect("non-empty");
                self.len -= 1;
                // Cursor stays: the tenant keeps sending while its deficit
                // lasts; the next call continues the same visit.
                return Some((t.tenant, item));
            }
            self.advance();
            guard += 1;
            debug_assert!(guard < 10_000_000, "DWRR failed to make progress");
        }
    }

    fn advance(&mut self) {
        self.cursor = (self.cursor + 1) % self.tenants.len().max(1);
        self.visit_refilled = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn fcfs_preserves_arrival_order_across_tenants() {
        let mut s: TenantScheduler<u32> = TenantScheduler::new(SchedPolicy::Fcfs, 100);
        s.enqueue(TenantId(1), 1, 10);
        s.enqueue(TenantId(2), 1, 20);
        s.enqueue(TenantId(1), 1, 11);
        let order: Vec<u32> = std::iter::from_fn(|| s.dequeue().map(|(_, v)| v)).collect();
        assert_eq!(order, [10, 20, 11]);
    }

    #[test]
    fn dwrr_splits_by_weights() {
        // Weights 6:1:2 (the Fig 15 configuration). With all tenants
        // backlogged, long-run service shares must match 6:1:2.
        let mut s: TenantScheduler<usize> = TenantScheduler::new(SchedPolicy::Dwrr, 10);
        s.register_tenant(TenantId(1), 6);
        s.register_tenant(TenantId(2), 1);
        s.register_tenant(TenantId(3), 2);
        for i in 0..9_000 {
            s.enqueue(TenantId(1 + (i % 3) as u16), 10, i);
        }
        let mut served: HashMap<TenantId, usize> = HashMap::new();
        for _ in 0..900 {
            let (t, _) = s.dequeue().expect("backlogged");
            *served.entry(t).or_default() += 1;
        }
        let t1 = served[&TenantId(1)] as f64;
        let t2 = served[&TenantId(2)] as f64;
        let t3 = served[&TenantId(3)] as f64;
        assert!((t1 / t2 - 6.0).abs() < 0.8, "t1/t2 = {}", t1 / t2);
        assert!((t3 / t2 - 2.0).abs() < 0.4, "t3/t2 = {}", t3 / t2);
    }

    #[test]
    fn dwrr_work_conserving_when_one_tenant_active() {
        // A low-weight tenant alone gets the full engine.
        let mut s: TenantScheduler<usize> = TenantScheduler::new(SchedPolicy::Dwrr, 10);
        s.register_tenant(TenantId(1), 6);
        s.register_tenant(TenantId(2), 1);
        for i in 0..100 {
            s.enqueue(TenantId(2), 10, i);
        }
        for _ in 0..100 {
            let (t, _) = s.dequeue().expect("work available");
            assert_eq!(t, TenantId(2));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn dwrr_costs_matter() {
        // Tenant 2's items are 4x costlier; equal weights => tenant 2
        // dequeues ~4x fewer items.
        let mut s: TenantScheduler<usize> = TenantScheduler::new(SchedPolicy::Dwrr, 8);
        s.register_tenant(TenantId(1), 1);
        s.register_tenant(TenantId(2), 1);
        for i in 0..2_000 {
            s.enqueue(TenantId(1), 8, i);
            s.enqueue(TenantId(2), 32, i);
        }
        let mut count = HashMap::new();
        for _ in 0..500 {
            let (t, _) = s.dequeue().unwrap();
            *count.entry(t).or_insert(0usize) += 1;
        }
        let r = count[&TenantId(1)] as f64 / count[&TenantId(2)] as f64;
        assert!((3.0..5.0).contains(&r), "item ratio {r}");
    }

    #[test]
    fn oversized_item_eventually_served() {
        let mut s: TenantScheduler<&str> = TenantScheduler::new(SchedPolicy::Dwrr, 1);
        s.register_tenant(TenantId(1), 1);
        s.enqueue(TenantId(1), 1_000_000, "huge");
        assert_eq!(s.dequeue(), Some((TenantId(1), "huge")));
    }

    #[test]
    fn idle_tenant_does_not_hoard_deficit() {
        let mut s: TenantScheduler<usize> = TenantScheduler::new(SchedPolicy::Dwrr, 10);
        s.register_tenant(TenantId(1), 6);
        s.register_tenant(TenantId(2), 1);
        // Tenant 1 idles while tenant 2 works.
        for i in 0..50 {
            s.enqueue(TenantId(2), 10, i);
        }
        for _ in 0..50 {
            s.dequeue();
        }
        // Now both become active; tenant 1 must not burst beyond its 6:1
        // share from banked deficit.
        for i in 0..700 {
            s.enqueue(TenantId(1), 10, i);
            s.enqueue(TenantId(2), 10, i);
        }
        let mut first_100 = HashMap::new();
        for _ in 0..140 {
            let (t, _) = s.dequeue().unwrap();
            *first_100.entry(t).or_insert(0usize) += 1;
        }
        let t1 = first_100[&TenantId(1)] as f64;
        let t2 = first_100[&TenantId(2)] as f64;
        assert!((t1 / t2 - 6.0).abs() < 1.5, "burst ratio {}", t1 / t2);
    }

    #[test]
    fn auto_registration_defaults_to_weight_one() {
        let mut s: TenantScheduler<u8> = TenantScheduler::new(SchedPolicy::Dwrr, 10);
        s.enqueue(TenantId(9), 1, 1);
        assert_eq!(s.tenant_depth(TenantId(9)), 1);
        assert_eq!(s.dequeue(), Some((TenantId(9), 1)));
    }

    #[test]
    fn empty_dequeue_is_none() {
        let mut s: TenantScheduler<u8> = TenantScheduler::new(SchedPolicy::Dwrr, 10);
        assert_eq!(s.dequeue(), None);
        s.register_tenant(TenantId(1), 1);
        assert_eq!(s.dequeue(), None);
    }
}
