//! The RC connection pool with shadow-QP management.
//!
//! Establishing an RC connection costs tens of milliseconds (§3.3), so the
//! DNE keeps a pool of pre-established connections per peer node. To hold
//! many connections without thrashing the RNIC's QP-context cache, the pool
//! follows the shadow-QP scheme of RoGUE \[52\]: a QP is *active* when it has
//! work queued, *inactive* otherwise; inactive QPs cost the RNIC nothing.
//! The pool caps concurrently active QPs per node and picks the
//! least-congested eligible connection for each transmission — no cross-node
//! state synchronization required.

use palladium_membuf::{NodeId, TenantId};
use palladium_rdma::{Qpn, RdmaNet};
use palladium_simnet::{IdTable, Nanos};

/// Identity of one pooled connection (local endpoint).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PooledConn {
    /// Peer node.
    pub peer: NodeId,
    /// Tenant the connection belongs to.
    pub tenant: TenantId,
    /// Local QP number.
    pub qpn: Qpn,
}

/// Configuration of the pool.
#[derive(Clone, Copy, Debug)]
pub struct ConnPoolConfig {
    /// Connections established per (peer, tenant) pair at warm-up.
    pub conns_per_peer: usize,
    /// Maximum QPs allowed to be active simultaneously on this node (the
    /// anti-thrash cap, kept at or below the RNIC QP-cache capacity).
    pub max_active: usize,
}

impl Default for ConnPoolConfig {
    fn default() -> Self {
        ConnPoolConfig {
            conns_per_peer: 4,
            max_active: 256,
        }
    }
}

/// Control-plane cost model for a worker rejoin (Swift \[PAPERS.md\]: RDMA
/// recovery is dominated by control-plane work, not data-plane loss). A
/// rejoining worker pays serialized QP re-establishment, one MR
/// re-registration pass, and a state re-sync transfer proportional to its
/// pool bytes before it re-enters the routing set.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RejoinCosts {
    /// Control-plane serialization cost per QP re-established (setup RPCs
    /// run on the DPU's slow path, one at a time).
    pub qp_setup: Nanos,
    /// Flat MR/pool re-registration cost (pinning + rkey redistribution).
    pub mr_register: Nanos,
    /// State re-sync transfer cost per KiB of pool memory re-seeded from
    /// peers (rounded up to whole KiB).
    pub resync_ns_per_kib: u64,
}

impl Default for RejoinCosts {
    fn default() -> Self {
        RejoinCosts {
            qp_setup: Nanos::from_micros(25),
            mr_register: Nanos::from_micros(50),
            resync_ns_per_kib: 16,
        }
    }
}

impl RejoinCosts {
    /// Total time a worker spends rejoining: `qps` serialized QP setups,
    /// one MR registration, and `pool_bytes` of state re-sync.
    pub fn cost(&self, qps: usize, pool_bytes: u64) -> Nanos {
        self.qp_setup * qps as u64
            + self.mr_register
            + Nanos(self.resync_ns_per_kib * pool_bytes.div_ceil(1024))
    }
}

/// The per-node connection pool owned by a network engine.
#[derive(Debug)]
pub struct ConnPool {
    node: NodeId,
    cfg: ConnPoolConfig,
    conns: Vec<PooledConn>,
    /// Selection statistics per QPN (for tests/reports), indexed by the
    /// dense QPN space — `select` runs once per posted WR.
    picks: IdTable<u64>,
}

impl ConnPool {
    /// An empty pool for `node`.
    pub fn new(node: NodeId, cfg: ConnPoolConfig) -> Self {
        ConnPool {
            node,
            cfg,
            conns: Vec::new(),
            picks: IdTable::new(),
        }
    }

    /// Node this pool belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Warm up connections to `peer` for `tenant` on the given fabric,
    /// using immediate establishment (the paper's pools are pre-established
    /// before traffic; the multi-ms handshake cost is what the pool hides).
    /// Returns the local QPNs created.
    pub fn warm_up(&mut self, net: &mut RdmaNet, peer: NodeId, tenant: TenantId) -> Vec<Qpn> {
        let mut qpns = Vec::new();
        for _ in 0..self.cfg.conns_per_peer {
            let (qa, _qb) = net.connect_immediate(self.node, peer, tenant);
            self.conns.push(PooledConn {
                peer,
                tenant,
                qpn: qa,
            });
            qpns.push(qa);
        }
        qpns
    }

    /// Warm up connections to `peer` like [`ConnPool::warm_up`], but pay
    /// the control-plane cost through the simulation clock: each QP setup
    /// serializes for `per_qp`, so the pool is usable at the returned
    /// ready-time, not at `now`. This is the rejoin path — a recovered
    /// worker re-establishes its pool one QP at a time (Swift's
    /// serialization bottleneck) instead of getting it for free.
    pub fn warm_up_costed(
        &mut self,
        net: &mut RdmaNet,
        peer: NodeId,
        tenant: TenantId,
        now: Nanos,
        per_qp: Nanos,
    ) -> (Vec<Qpn>, Nanos) {
        let qpns = self.warm_up(net, peer, tenant);
        let ready_at = now + per_qp * qpns.len() as u64;
        (qpns, ready_at)
    }

    /// Adopt an externally established connection.
    pub fn adopt(&mut self, peer: NodeId, tenant: TenantId, qpn: Qpn) {
        self.conns.push(PooledConn { peer, tenant, qpn });
    }

    /// Drop every pooled connection whose QP is gone or sits in the Error
    /// state (go-back-N retry exhaustion). Errored QPs can never carry
    /// work again, but until this sweep they still counted against the
    /// active cap and inflated `pool_size`. Returns how many were evicted.
    pub fn evict_errored(&mut self, net: &RdmaNet) -> usize {
        let rnic = net.rnic(self.node);
        let before = self.conns.len();
        self.conns.retain(|c| {
            rnic.qp(c.qpn)
                .map(|q| q.state != palladium_rdma::QpState::Error)
                .unwrap_or(false)
        });
        before - self.conns.len()
    }

    /// Number of pooled connections to `peer` for `tenant`.
    pub fn pool_size(&self, peer: NodeId, tenant: TenantId) -> usize {
        self.conns
            .iter()
            .filter(|c| c.peer == peer && c.tenant == tenant)
            .count()
    }

    /// Count of currently active QPs on this node (shadow-QP criterion:
    /// outstanding work > 0), per the live fabric state. Errored QPs are
    /// dead weight, not activity — they never count, even while their
    /// abandoned work drains.
    pub fn active_count(&self, net: &RdmaNet) -> usize {
        self.conns
            .iter()
            .filter(|c| {
                net.rnic(self.node)
                    .qp(c.qpn)
                    .map(|q| q.state == palladium_rdma::QpState::Rts && q.is_active())
                    .unwrap_or(false)
            })
            .count()
    }

    /// Select the least-congested connection to `peer` for `tenant`
    /// (§3.2's TX stage). Prefers already-active QPs when the active cap is
    /// reached (activating another would thrash the QP cache); among
    /// eligible QPs picks the smallest outstanding-work count, tie-broken
    /// by QPN for determinism.
    pub fn select(&mut self, net: &RdmaNet, peer: NodeId, tenant: TenantId) -> Option<Qpn> {
        let rnic = net.rnic(self.node);
        // The cap can only bind when the pool holds at least `max_active`
        // connections — skip the per-QP active scan entirely otherwise
        // (`select` runs once per posted WR).
        let at_cap = self.conns.len() >= self.cfg.max_active
            && self.active_count(net) >= self.cfg.max_active;
        let mut best: Option<(usize, Qpn)> = None;
        let mut saw_error = false;
        for c in self
            .conns
            .iter()
            .filter(|c| c.peer == peer && c.tenant == tenant)
        {
            let Ok(qp) = rnic.qp(c.qpn) else { continue };
            if qp.state == palladium_rdma::QpState::Error {
                saw_error = true;
                continue;
            }
            if qp.state != palladium_rdma::QpState::Rts {
                continue;
            }
            let active = qp.is_active();
            if at_cap && !active {
                continue; // don't wake inactive QPs beyond the cap
            }
            let load = qp.outstanding();
            match best {
                Some((l, q)) if (load, c.qpn.0) >= (l, q.0) => {}
                _ => best = Some((load, c.qpn)),
            }
        }
        // If the cap excluded everything (e.g. all this pair's QPs are
        // inactive while other pairs hog the cap), fall back to the least
        // loaded connection regardless — starving a tenant would be worse
        // than a cache miss.
        if best.is_none() {
            best = self
                .conns
                .iter()
                .filter(|c| c.peer == peer && c.tenant == tenant)
                .filter_map(|c| {
                    rnic.qp(c.qpn)
                        .ok()
                        .filter(|q| q.state == palladium_rdma::QpState::Rts)
                        .map(|q| (q.outstanding(), c.qpn))
                })
                .min_by_key(|&(l, q)| (l, q.0));
        }
        let picked = best.map(|(_, q)| q);
        if let Some(q) = picked {
            *self.picks.get_or_insert_with(q.0 as usize, || 0) += 1;
        }
        // Errored QPs surfaced during the scan are purged immediately —
        // leaving them pooled would keep re-scanning corpses and skew the
        // active-cap heuristic (which counts pooled conns).
        if saw_error {
            self.evict_errored(net);
        }
        picked
    }

    /// How often each QPN was selected (diagnostics).
    pub fn pick_count(&self, qpn: Qpn) -> u64 {
        self.picks.get(qpn.0 as usize).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use palladium_membuf::{MmapExporter, PoolId, Region};
    use palladium_rdma::{RdmaConfig, WorkRequest, WrId};
    use palladium_simnet::Nanos;

    fn net() -> RdmaNet {
        let mut net = RdmaNet::new(RdmaConfig::default(), 2, 7);
        for node in [NodeId(0), NodeId(1)] {
            let mut e =
                MmapExporter::new(PoolId(node.raw()), TenantId(1), Region::hugepages(4 << 20));
            net.register_mr(node, &e.export_rdma()).unwrap();
        }
        net
    }

    #[test]
    fn warm_up_creates_connections() {
        let mut net = net();
        let mut pool = ConnPool::new(NodeId(0), ConnPoolConfig::default());
        let qpns = pool.warm_up(&mut net, NodeId(1), TenantId(1));
        assert_eq!(qpns.len(), 4);
        assert_eq!(pool.pool_size(NodeId(1), TenantId(1)), 4);
        assert_eq!(pool.active_count(&net), 0, "fresh QPs are inactive");
    }

    #[test]
    fn select_prefers_least_congested() {
        let mut net = net();
        let mut pool = ConnPool::new(NodeId(0), ConnPoolConfig::default());
        let qpns = pool.warm_up(&mut net, NodeId(1), TenantId(1));
        // Load the first QP with unsent work by posting without running the
        // simulation (the doorbell event is never handled).
        for _ in 0..3 {
            net.post_send(
                Nanos::ZERO,
                NodeId(0),
                qpns[0],
                WorkRequest::send(WrId(1), Bytes::from_static(b"x"), 0),
            )
            .unwrap();
        }
        let picked = pool.select(&net, NodeId(1), TenantId(1)).unwrap();
        assert_ne!(picked, qpns[0], "loaded QP must not be picked");
        assert_eq!(pool.pick_count(picked), 1);
    }

    #[test]
    fn active_cap_avoids_waking_inactive_qps() {
        let mut net = net();
        let mut pool = ConnPool::new(
            NodeId(0),
            ConnPoolConfig {
                conns_per_peer: 3,
                max_active: 1,
            },
        );
        let qpns = pool.warm_up(&mut net, NodeId(1), TenantId(1));
        // Activate exactly one QP.
        net.post_send(
            Nanos::ZERO,
            NodeId(0),
            qpns[1],
            WorkRequest::send(WrId(1), Bytes::from_static(b"x"), 0),
        )
        .unwrap();
        assert_eq!(pool.active_count(&net), 1);
        // At the cap: selection must reuse the active QP rather than waking
        // another (which would thrash the QP cache).
        let picked = pool.select(&net, NodeId(1), TenantId(1)).unwrap();
        assert_eq!(picked, qpns[1]);
    }

    #[test]
    fn select_unknown_pair_is_none() {
        let mut net = net();
        let mut pool = ConnPool::new(NodeId(0), ConnPoolConfig::default());
        pool.warm_up(&mut net, NodeId(1), TenantId(1));
        assert!(pool.select(&net, NodeId(1), TenantId(9)).is_none());
    }

    /// Satellite regression: a QP that hits the Error state (retry
    /// exhaustion) must leave the pool — before the eviction sweep it
    /// lingered forever, inflating `pool_size` and the active-cap
    /// heuristic, and `active_count` kept counting its abandoned work.
    #[test]
    fn select_evicts_errored_qps() {
        let mut net = net();
        let mut pool = ConnPool::new(NodeId(0), ConnPoolConfig::default());
        let qpns = pool.warm_up(&mut net, NodeId(1), TenantId(1));
        assert_eq!(pool.pool_size(NodeId(1), TenantId(1)), 4);
        // Error two QPs, one of them with work still outstanding.
        net.post_send(
            Nanos::ZERO,
            NodeId(0),
            qpns[0],
            WorkRequest::send(WrId(1), Bytes::from_static(b"x"), 0),
        )
        .unwrap();
        for q in [qpns[0], qpns[1]] {
            net.rnic_mut(NodeId(0)).qp_mut(q).unwrap().set_error();
        }
        assert_eq!(pool.active_count(&net), 0, "errored work is not activity");
        // Selection still lands on a healthy QP and purges the corpses.
        let picked = pool.select(&net, NodeId(1), TenantId(1)).unwrap();
        assert!(picked == qpns[2] || picked == qpns[3]);
        assert_eq!(pool.pool_size(NodeId(1), TenantId(1)), 2, "errored QPs evicted");
        // The explicit sweep is idempotent.
        assert_eq!(pool.evict_errored(&net), 0);
    }

    /// The rejoin path pays Swift-style serialized setup: the pool exists
    /// immediately but is only *ready* per-QP-cost × pool-width later, and
    /// the ready-time scales linearly with the configured cost.
    #[test]
    fn costed_warm_up_serializes_setup() {
        let mut fabric = net();
        let mut pool = ConnPool::new(NodeId(0), ConnPoolConfig::default());
        let now = Nanos::from_micros(100);
        let per_qp = Nanos::from_micros(25);
        let (qpns, ready) = pool.warm_up_costed(&mut fabric, NodeId(1), TenantId(1), now, per_qp);
        assert_eq!(qpns.len(), 4);
        assert_eq!(ready, now + per_qp * 4);
        // Doubling the per-QP cost doubles the paid setup time.
        let mut net2 = net();
        let mut pool2 = ConnPool::new(NodeId(0), ConnPoolConfig::default());
        let (_, ready2) =
            pool2.warm_up_costed(&mut net2, NodeId(1), TenantId(1), now, per_qp * 2);
        assert_eq!(ready2 - now, (ready - now) * 2);
    }

    #[test]
    fn rejoin_cost_scales_with_qps_and_pool_bytes() {
        let costs = RejoinCosts::default();
        let base = costs.cost(8, 32 << 20);
        // Component accounting: 8 × 25 µs + 50 µs + 32 Mi/1 Ki × 16 ns.
        assert_eq!(
            base,
            Nanos::from_micros(200) + Nanos::from_micros(50) + Nanos(32 * 1024 * 16)
        );
        assert!(costs.cost(16, 32 << 20) > base, "more QPs cost more");
        assert!(costs.cost(8, 64 << 20) > base, "more state costs more");
        let free = RejoinCosts { qp_setup: Nanos::ZERO, mr_register: Nanos::ZERO, resync_ns_per_kib: 0 };
        assert_eq!(free.cost(8, 32 << 20), Nanos::ZERO);
    }

    #[test]
    fn per_tenant_pools_are_disjoint() {
        let mut net = net();
        let mut pool = ConnPool::new(NodeId(0), ConnPoolConfig::default());
        pool.warm_up(&mut net, NodeId(1), TenantId(1));
        // Register tenant 2's MR so its connections can be established.
        let mut e2 = MmapExporter::new(PoolId(10), TenantId(2), Region::hugepages(2 << 20));
        net.register_mr(NodeId(0), &e2.export_rdma()).unwrap();
        pool.warm_up(&mut net, NodeId(1), TenantId(2));
        let q1 = pool.select(&net, NodeId(1), TenantId(1)).unwrap();
        let q2 = pool.select(&net, NodeId(1), TenantId(2)).unwrap();
        assert_ne!(q1, q2, "tenants never share QPs (isolation, §2.1)");
    }
}
