//! The RC connection pool with shadow-QP management.
//!
//! Establishing an RC connection costs tens of milliseconds (§3.3), so the
//! DNE keeps a pool of pre-established connections per peer node. To hold
//! many connections without thrashing the RNIC's QP-context cache, the pool
//! follows the shadow-QP scheme of RoGUE \[52\]: a QP is *active* when it has
//! work queued, *inactive* otherwise; inactive QPs cost the RNIC nothing.
//! The pool caps concurrently active QPs per node and picks the
//! least-congested eligible connection for each transmission — no cross-node
//! state synchronization required.

use palladium_membuf::{NodeId, TenantId};
use palladium_rdma::{Qpn, RdmaNet};
use palladium_simnet::IdTable;

/// Identity of one pooled connection (local endpoint).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PooledConn {
    /// Peer node.
    pub peer: NodeId,
    /// Tenant the connection belongs to.
    pub tenant: TenantId,
    /// Local QP number.
    pub qpn: Qpn,
}

/// Configuration of the pool.
#[derive(Clone, Copy, Debug)]
pub struct ConnPoolConfig {
    /// Connections established per (peer, tenant) pair at warm-up.
    pub conns_per_peer: usize,
    /// Maximum QPs allowed to be active simultaneously on this node (the
    /// anti-thrash cap, kept at or below the RNIC QP-cache capacity).
    pub max_active: usize,
}

impl Default for ConnPoolConfig {
    fn default() -> Self {
        ConnPoolConfig {
            conns_per_peer: 4,
            max_active: 256,
        }
    }
}

/// The per-node connection pool owned by a network engine.
#[derive(Debug)]
pub struct ConnPool {
    node: NodeId,
    cfg: ConnPoolConfig,
    conns: Vec<PooledConn>,
    /// Selection statistics per QPN (for tests/reports), indexed by the
    /// dense QPN space — `select` runs once per posted WR.
    picks: IdTable<u64>,
}

impl ConnPool {
    /// An empty pool for `node`.
    pub fn new(node: NodeId, cfg: ConnPoolConfig) -> Self {
        ConnPool {
            node,
            cfg,
            conns: Vec::new(),
            picks: IdTable::new(),
        }
    }

    /// Node this pool belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Warm up connections to `peer` for `tenant` on the given fabric,
    /// using immediate establishment (the paper's pools are pre-established
    /// before traffic; the multi-ms handshake cost is what the pool hides).
    /// Returns the local QPNs created.
    pub fn warm_up(&mut self, net: &mut RdmaNet, peer: NodeId, tenant: TenantId) -> Vec<Qpn> {
        let mut qpns = Vec::new();
        for _ in 0..self.cfg.conns_per_peer {
            let (qa, _qb) = net.connect_immediate(self.node, peer, tenant);
            self.conns.push(PooledConn {
                peer,
                tenant,
                qpn: qa,
            });
            qpns.push(qa);
        }
        qpns
    }

    /// Adopt an externally established connection.
    pub fn adopt(&mut self, peer: NodeId, tenant: TenantId, qpn: Qpn) {
        self.conns.push(PooledConn { peer, tenant, qpn });
    }

    /// Number of pooled connections to `peer` for `tenant`.
    pub fn pool_size(&self, peer: NodeId, tenant: TenantId) -> usize {
        self.conns
            .iter()
            .filter(|c| c.peer == peer && c.tenant == tenant)
            .count()
    }

    /// Count of currently active QPs on this node (shadow-QP criterion:
    /// outstanding work > 0), per the live fabric state.
    pub fn active_count(&self, net: &RdmaNet) -> usize {
        self.conns
            .iter()
            .filter(|c| {
                net.rnic(self.node)
                    .qp(c.qpn)
                    .map(|q| q.is_active())
                    .unwrap_or(false)
            })
            .count()
    }

    /// Select the least-congested connection to `peer` for `tenant`
    /// (§3.2's TX stage). Prefers already-active QPs when the active cap is
    /// reached (activating another would thrash the QP cache); among
    /// eligible QPs picks the smallest outstanding-work count, tie-broken
    /// by QPN for determinism.
    pub fn select(&mut self, net: &RdmaNet, peer: NodeId, tenant: TenantId) -> Option<Qpn> {
        let rnic = net.rnic(self.node);
        // The cap can only bind when the pool holds at least `max_active`
        // connections — skip the per-QP active scan entirely otherwise
        // (`select` runs once per posted WR).
        let at_cap = self.conns.len() >= self.cfg.max_active
            && self.active_count(net) >= self.cfg.max_active;
        let mut best: Option<(usize, Qpn)> = None;
        for c in self
            .conns
            .iter()
            .filter(|c| c.peer == peer && c.tenant == tenant)
        {
            let Ok(qp) = rnic.qp(c.qpn) else { continue };
            if qp.state != palladium_rdma::QpState::Rts {
                continue;
            }
            let active = qp.is_active();
            if at_cap && !active {
                continue; // don't wake inactive QPs beyond the cap
            }
            let load = qp.outstanding();
            match best {
                Some((l, q)) if (load, c.qpn.0) >= (l, q.0) => {}
                _ => best = Some((load, c.qpn)),
            }
        }
        // If the cap excluded everything (e.g. all this pair's QPs are
        // inactive while other pairs hog the cap), fall back to the least
        // loaded connection regardless — starving a tenant would be worse
        // than a cache miss.
        if best.is_none() {
            best = self
                .conns
                .iter()
                .filter(|c| c.peer == peer && c.tenant == tenant)
                .filter_map(|c| {
                    rnic.qp(c.qpn)
                        .ok()
                        .filter(|q| q.state == palladium_rdma::QpState::Rts)
                        .map(|q| (q.outstanding(), c.qpn))
                })
                .min_by_key(|&(l, q)| (l, q.0));
        }
        let picked = best.map(|(_, q)| q);
        if let Some(q) = picked {
            *self.picks.get_or_insert_with(q.0 as usize, || 0) += 1;
        }
        picked
    }

    /// How often each QPN was selected (diagnostics).
    pub fn pick_count(&self, qpn: Qpn) -> u64 {
        self.picks.get(qpn.0 as usize).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use palladium_membuf::{MmapExporter, PoolId, Region};
    use palladium_rdma::{RdmaConfig, WorkRequest, WrId};
    use palladium_simnet::Nanos;

    fn net() -> RdmaNet {
        let mut net = RdmaNet::new(RdmaConfig::default(), 2, 7);
        for node in [NodeId(0), NodeId(1)] {
            let mut e =
                MmapExporter::new(PoolId(node.raw()), TenantId(1), Region::hugepages(4 << 20));
            net.register_mr(node, &e.export_rdma()).unwrap();
        }
        net
    }

    #[test]
    fn warm_up_creates_connections() {
        let mut net = net();
        let mut pool = ConnPool::new(NodeId(0), ConnPoolConfig::default());
        let qpns = pool.warm_up(&mut net, NodeId(1), TenantId(1));
        assert_eq!(qpns.len(), 4);
        assert_eq!(pool.pool_size(NodeId(1), TenantId(1)), 4);
        assert_eq!(pool.active_count(&net), 0, "fresh QPs are inactive");
    }

    #[test]
    fn select_prefers_least_congested() {
        let mut net = net();
        let mut pool = ConnPool::new(NodeId(0), ConnPoolConfig::default());
        let qpns = pool.warm_up(&mut net, NodeId(1), TenantId(1));
        // Load the first QP with unsent work by posting without running the
        // simulation (the doorbell event is never handled).
        for _ in 0..3 {
            net.post_send(
                Nanos::ZERO,
                NodeId(0),
                qpns[0],
                WorkRequest::send(WrId(1), Bytes::from_static(b"x"), 0),
            )
            .unwrap();
        }
        let picked = pool.select(&net, NodeId(1), TenantId(1)).unwrap();
        assert_ne!(picked, qpns[0], "loaded QP must not be picked");
        assert_eq!(pool.pick_count(picked), 1);
    }

    #[test]
    fn active_cap_avoids_waking_inactive_qps() {
        let mut net = net();
        let mut pool = ConnPool::new(
            NodeId(0),
            ConnPoolConfig {
                conns_per_peer: 3,
                max_active: 1,
            },
        );
        let qpns = pool.warm_up(&mut net, NodeId(1), TenantId(1));
        // Activate exactly one QP.
        net.post_send(
            Nanos::ZERO,
            NodeId(0),
            qpns[1],
            WorkRequest::send(WrId(1), Bytes::from_static(b"x"), 0),
        )
        .unwrap();
        assert_eq!(pool.active_count(&net), 1);
        // At the cap: selection must reuse the active QP rather than waking
        // another (which would thrash the QP cache).
        let picked = pool.select(&net, NodeId(1), TenantId(1)).unwrap();
        assert_eq!(picked, qpns[1]);
    }

    #[test]
    fn select_unknown_pair_is_none() {
        let mut net = net();
        let mut pool = ConnPool::new(NodeId(0), ConnPoolConfig::default());
        pool.warm_up(&mut net, NodeId(1), TenantId(1));
        assert!(pool.select(&net, NodeId(1), TenantId(9)).is_none());
    }

    #[test]
    fn per_tenant_pools_are_disjoint() {
        let mut net = net();
        let mut pool = ConnPool::new(NodeId(0), ConnPoolConfig::default());
        pool.warm_up(&mut net, NodeId(1), TenantId(1));
        // Register tenant 2's MR so its connections can be established.
        let mut e2 = MmapExporter::new(PoolId(10), TenantId(2), Region::hugepages(2 << 20));
        net.register_mr(NodeId(0), &e2.export_rdma()).unwrap();
        pool.warm_up(&mut net, NodeId(1), TenantId(2));
        let q1 = pool.select(&net, NodeId(1), TenantId(1)).unwrap();
        let q2 = pool.select(&net, NodeId(1), TenantId(2)).unwrap();
        assert_ne!(q1, q2, "tenants never share QPs (isolation, §2.1)");
    }
}
