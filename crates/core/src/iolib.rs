//! The unified I/O library linked into every function runtime (§3.5).
//!
//! User code calls `send()`/`recv()`; the library consults the intra-node
//! routing table (read-only, shared in the unified pool) and transparently
//! dispatches either over SK_MSG (destination co-located, Fig 7 green
//! arrow) or over Comch to the network engine (remote destination, violet
//! arrows). The developer never selects a transport.

use palladium_membuf::{BufDesc, FnId};

use crate::routing::RouteTables;

/// Where the library decided a message goes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dispatch {
    /// Destination runs on this node: hand off over SK_MSG.
    Local,
    /// Destination is remote: hand the descriptor to the network engine.
    Remote,
    /// Destination unknown to the routing state.
    Unroutable,
}

/// The per-function I/O library handle.
#[derive(Debug)]
pub struct IoLib {
    /// The function this instance is linked into.
    pub owner: FnId,
    /// Messages sent via the local path.
    pub local_sends: u64,
    /// Messages sent via the engine.
    pub remote_sends: u64,
}

impl IoLib {
    /// Library instance for `owner`.
    pub fn new(owner: FnId) -> Self {
        IoLib {
            owner,
            local_sends: 0,
            remote_sends: 0,
        }
    }

    /// The unified `send()`: route-query the descriptor's destination.
    /// Pure decision — the driver performs the chosen hand-off and charges
    /// its costs.
    pub fn send(&mut self, routes: &RouteTables, desc: &BufDesc) -> Dispatch {
        if routes.is_local(desc.dst_fn) {
            self.local_sends += 1;
            Dispatch::Local
        } else if routes.node_of(desc.dst_fn).is_some() {
            self.remote_sends += 1;
            Dispatch::Remote
        } else {
            Dispatch::Unroutable
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::{Coordinator, DeployEvent};
    use palladium_membuf::{NodeId, PoolId, TenantId};

    fn desc(dst: u16) -> BufDesc {
        BufDesc {
            tenant: TenantId(1),
            pool: PoolId(0),
            buf_idx: 0,
            len: 0,
            src_fn: FnId(1),
            dst_fn: FnId(dst),
        }
    }

    fn routes() -> RouteTables {
        let mut c = Coordinator::new();
        c.apply(DeployEvent::Created {
            f: FnId(1),
            tenant: TenantId(1),
            node: NodeId(0),
        });
        c.apply(DeployEvent::Created {
            f: FnId(2),
            tenant: TenantId(1),
            node: NodeId(0),
        });
        c.apply(DeployEvent::Created {
            f: FnId(3),
            tenant: TenantId(1),
            node: NodeId(1),
        });
        c.tables_for(NodeId(0))
    }

    #[test]
    fn local_destination_uses_skmsg() {
        let mut io = IoLib::new(FnId(1));
        assert_eq!(io.send(&routes(), &desc(2)), Dispatch::Local);
        assert_eq!(io.local_sends, 1);
        assert_eq!(io.remote_sends, 0);
    }

    #[test]
    fn remote_destination_uses_engine() {
        let mut io = IoLib::new(FnId(1));
        assert_eq!(io.send(&routes(), &desc(3)), Dispatch::Remote);
        assert_eq!(io.remote_sends, 1);
    }

    #[test]
    fn unknown_destination_is_unroutable() {
        let mut io = IoLib::new(FnId(1));
        assert_eq!(io.send(&routes(), &desc(99)), Dispatch::Unroutable);
        assert_eq!(io.local_sends + io.remote_sends, 0);
    }
}
