//! The sharded Fig 16 / Fig 14 cluster: the Palladium data plane
//! replicated over `pairs` worker-node pairs plus one ingress node,
//! running on the conservative sharded kernel ([`palladium_simnet::shard`])
//! with one [`RdmaNet`] fabric instance **per shard**.
//!
//! The serial [`super::cluster::Cluster`] models three nodes in exact
//! detail on one core. This driver is the same machinery — pools, RC
//! state machines, DNE scheduling, the ingress gateway — split along
//! [`Partition`] node-block boundaries so the paper's headline workload
//! (the boutique application, Fig 16, and the scaling sweep, Fig 14)
//! parallelizes across cores:
//!
//! * **Per-shard `RdmaNet` ownership.** Each shard owns the RNICs, CQs
//!   and QP state of its contiguous node block
//!   ([`RdmaNet::with_span`]). QP state machines are per-node, so the
//!   only shared fabric state — frames in flight — becomes explicit:
//!   in sharded-egress mode every inter-node frame (data *and*
//!   ACK/NAK, same-span destinations included) leaves `transmit` as a
//!   fully-timed [`Packet`] that this driver routes through the
//!   deterministic SPSC mailboxes.
//! * **Frame-level lookahead.** Window barriers are sized to
//!   [`RdmaConfig::frame_lookahead`] — the control-frame floor
//!   (~652 ns at default calibration), *not* the WR-level
//!   [`RdmaConfig::lookahead`] (~3.1 µs): ACKs cross shards too, and
//!   they bypass the doorbell and TX/RX pipelines.
//! * **Shard-count invariance.** The discipline from
//!   [`super::multinode`]: all inter-node traffic rides the [`Outbox`]
//!   keyed by global source node id, local events stay node-local, no
//!   randomness is drawn on the steady path (faults stay disabled),
//!   and reports fold in global node order. One shard therefore
//!   reproduces the exact bytes of every sharded run
//!   (`tests/cluster_sharded.rs` pins 1/2/4/8 shards × both execution
//!   modes against a golden trace).
//!
//! # Topology and request-state distribution
//!
//! `pairs` replicas of the serial cluster's two worker nodes — pair `p`
//! owns global nodes `2p` (hotspots) and `2p+1` (the rest) — plus one
//! ingress node at global index `2·pairs`. Function ids are remapped
//! per pair (`id + 16·p`), so routing tables stay a dense id → node
//! lookup; request `r` runs pair `r % pairs`'s chain. Clients, the
//! gateway and the latency statistics live on the shard owning the
//! ingress node.
//!
//! The serial cluster advances a request's hop counter in central
//! `ReqState` — unavailable here, since consecutive hops of one request
//! execute on different shards. Instead the hop index travels **in the
//! payload**: the 8-byte little-endian prefix packs the request id in
//! the low 40 bits, the next hop index in the next 8, and the worker
//! pair running the request in the high 16
//! ([`word_of`]/[`unword`]), so each node derives the chain position
//! from the bytes it received — the same end-to-end-carried prefix the
//! serial driver already reads the request id from. Carrying the pair
//! in the word is what lets the ingress *re-route* a request to a
//! surviving replica under chaos: the chosen pair travels with the
//! bytes instead of being re-derived as `req % pairs` at every hop.
//!
//! # Chaos scenarios, health detection and failover
//!
//! With [`ClusterShardedConfig::chaos`] set, the run replays a
//! [`ScenarioScript`] (node crashes as deterministic partition windows,
//! link flaps/storms as per-node [`palladium_simnet::FaultTimeline`]s,
//! stragglers as cost multipliers) and turns on the health plane: every
//! worker sends [`Packet`] heartbeats to the ingress each
//! `heartbeat_period`, the ingress suspects a worker after
//! `heartbeat_k` silent periods, sheds that pair's in-flight requests
//! (counted honestly as `inflight_lost`) and re-issues their clients
//! against a surviving pair. Fault verdicts draw from per-node
//! [`palladium_simnet::SimRng::stream`]s keyed by global node id, and
//! every shard holds identical scenario tables, so a chaos run is
//! byte-identical at every shard count and execution mode
//! (`tests/chaos_cluster.rs` pins it). With `chaos` unset no heartbeat
//! or health-check events are ever scheduled and the event schedule is
//! exactly the fault-free one — the pre-chaos golden traces hold.
//!
//! # Costed rejoin and gray-failure detection
//!
//! Recovery is not free. When a suspected worker's heartbeats resume,
//! [`HealthMonitor`] moves it to **Rejoining** — still out of the
//! routing set — and the ingress schedules [`Ev::RejoinDone`] after the
//! configured [`RejoinCosts`]: serialized per-QP re-establishment
//! (Swift's control-plane bottleneck), one MR/pool re-registration, and
//! a state re-sync transfer proportional to the worker's pool bytes.
//! Only the paid-up completion re-admits the pair; a worker that goes
//! silent again mid-rejoin aborts the pending completion (a per-worker
//! epoch voids the stale event) and counts as `rejoins_aborted`. The
//! QPs themselves persist across the outage — go-back-N redelivers once
//! the partition lifts (dense per-RNIC QP tables are what keep QPN
//! wiring shard-count invariant) — so the rejoin models the
//! *control-plane time* of re-establishment, mirroring
//! [`crate::connpool::ConnPool::warm_up_costed`]. Time-to-recovery
//! (suspicion → paid re-admission) lands in a [`Histogram`]
//! (`ttr_p50`/`ttr_p99` in [`ChaosReport`]).
//!
//! Gray faults (low-rate directed drop/latency inflation, compiled into
//! per-link [`palladium_simnet::FaultTimeline`]s) sit *below* the
//! heartbeat-miss threshold: probes still arrive, so the monitor never
//! suspects anyone. Detection is differential instead
//! ([`GrayPolicy`]): the ingress keeps a per-pair EWMA of end-to-end
//! latency (lost in-flights charge a loss penalty), and each health
//! sweep compares pairs against the *best* pair's EWMA — a pair whose
//! score exceeds `enter ×` the baseline moves to probation (routing
//! deflects to healthy pairs, counted as `gray_reroutes`), readmitted
//! with hysteresis at `exit ×` once probe traffic — every
//! `probe_every`-th preferred request is still admitted — pulls the
//! EWMA back down. All scores update in ingress event order, so
//! detection is byte-identical at every shard count too.

use bytes::Bytes;

use palladium_ipc::{ChannelCosts, ChannelKind, SkMsgCosts};
use palladium_membuf::{
    BufDesc, BufToken, CopyMeter, FnId, MmapExporter, MoveKind, NodeId, Owner, PayloadCache,
    PoolId, Region, TenantId, UnifiedPool,
};
use palladium_rdma::{
    Cqe, CqeKind, Packet, RdmaConfig, RdmaEvent, RdmaNet, RdmaOutput, RqEntry, Step, WorkRequest,
    WrId,
};
use std::collections::VecDeque;

use palladium_simnet::{
    run_sharded, Arrival, ChannelStats, CompiledScenario, Effects, Execution, HealthMonitor,
    Histogram, IdTable, Nanos, OpenLoop, OpenLoopConfig, Outbox, PageTable, Partition, RunStats,
    ScenarioScript, ServerBank, ShardConfig, ShardEngine, SimRng, Slab, Suspicion, WorkerState,
};

use super::chain::{AppSpec, ChainReport, ChainSpec, INGRESS_FN};
use super::LoadReport;
use crate::autoscaler::{Autoscaler, AutoscalerConfig, ScaleAction};
use crate::config::{CostModel, EngineLocation};
use crate::connpool::{ConnPool, ConnPoolConfig, RejoinCosts};
use crate::dne::{pack_imm, Dne, DneEffect};
use crate::ingress::{IngressConfig, IngressGateway, Leg};
use crate::routing::{Coordinator, DeployEvent};
use crate::system::{IngressKind, InterNode, SystemKind};

const TENANT: TenantId = TenantId(1);
const POOL_BUFS: u32 = 4096;
const BUF_SIZE: u32 = 8192;
const INITIAL_RQ: u64 = 512;

/// Stream-id salt for per-request retry-backoff jitter draws: the draw for
/// `(request, attempt)` is stateless, so backoff schedules are byte-identical
/// at every shard count and execution mode.
const RETRY_STREAM: u64 = 0x6265_6F66_6672;

/// Every `N`-th deadline-infeasible request is admitted anyway. The
/// feasibility estimate only re-learns from completions, so shedding on
/// it unconditionally lets an outage-poisoned EWMA starve the cluster
/// forever — a metastable trap of the admission controller's own making.
/// The probe keeps samples flowing so the estimate can recover.
const DL_PROBE_EVERY: u64 = 8; // "beoffr"

/// Transport retry budget under chaos *without* an overload retry policy —
/// the legacy "undying" configuration: the QP never suicides, go-back-N
/// redelivers once a partition lifts, and failover belongs to the health
/// plane alone.
const UNDYING_RETRY: u32 = 100_000;

/// Payload word layout: request id (low 40 bits), hop index (8 bits),
/// worker pair (high 16 bits) — see the module docs on request-state
/// distribution and failover.
const REQ_BITS: u32 = 40;
const REQ_MASK: u64 = (1 << REQ_BITS) - 1;
const HOP_BITS: u32 = 8;
const HOP_MASK: u64 = (1 << HOP_BITS) - 1;

/// Pack `(req, hop, pair)` into the 8-byte payload prefix word.
fn word_of(req: u64, hop: usize, pair: usize) -> u64 {
    debug_assert!(req <= REQ_MASK, "request id overflows the payload word");
    debug_assert!((hop as u64) <= HOP_MASK, "hop index overflows the payload word");
    debug_assert!(pair < (1 << 16), "pair index overflows the payload word");
    req | ((hop as u64) << REQ_BITS) | ((pair as u64) << (REQ_BITS + HOP_BITS))
}

/// Unpack `(req, hop, pair)` from a payload's 8-byte little-endian prefix.
fn unword(data: &[u8]) -> (u64, usize, usize) {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[..8]);
    let w = u64::from_le_bytes(b);
    (
        w & REQ_MASK,
        ((w >> REQ_BITS) & HOP_MASK) as usize,
        (w >> (REQ_BITS + HOP_BITS)) as usize,
    )
}

/// Configuration of one sharded cluster run.
#[derive(Clone, Debug)]
pub struct ClusterShardedConfig {
    /// Data plane under test — must be a Palladium variant
    /// (two-sided-RDMA inter-node path, early-conversion ingress).
    pub system: SystemKind,
    /// The application: `chains[p]` is worker pair `p`'s chain, function
    /// nodes are **global** node indices (see
    /// `palladium_workloads::boutique::sharded_app`).
    pub app: AppSpec,
    /// Worker-node pairs; the cluster has `2·pairs + 1` nodes.
    pub pairs: usize,
    /// Closed-loop clients (all entering at the ingress).
    pub clients: usize,
    /// Measurement window.
    pub duration: Nanos,
    /// Warm-up excluded from statistics.
    pub warmup: Nanos,
    /// Fabric seed (only drawn by fault injection, which this driver
    /// keeps disabled — see the module docs on invariance).
    pub seed: u64,
    /// Windows batched per barrier. The default window is
    /// `frame_lookahead / stride`, keeping the effective barrier spacing
    /// `window × stride` at (or under) the frame lookahead — sound at
    /// any stride.
    pub stride: u64,
    /// Explicit window width override in nanoseconds. Must satisfy
    /// `window × stride ≤ frame_lookahead` (asserted at run); narrower
    /// windows are always sound, and pinning the window while varying
    /// the stride is how the striding win is measured (same grid, fewer
    /// barriers).
    pub window_ns: Option<u64>,
    /// Chaos scenario replayed by the run (see the module docs). `None`
    /// keeps the event schedule exactly fault-free: no heartbeats, no
    /// health checks, no fault tables.
    pub chaos: Option<ScenarioScript>,
    /// Worker → ingress heartbeat probe period (chaos runs only).
    pub heartbeat_period: Nanos,
    /// Silent heartbeat periods before the ingress suspects a worker.
    pub heartbeat_k: u64,
    /// Control-plane cost model paid by a recovering worker before it
    /// re-enters the routing set (chaos runs only).
    pub rejoin: RejoinCosts,
    /// Differential gray-failure detection policy (chaos runs only).
    pub gray: GrayPolicy,
    /// Buffers per node pool. The default matches the historical constant;
    /// shrinking it is how the pool-exhaustion shed path is tested.
    pub pool_bufs: u32,
    /// Open-loop overload regime (see [`OverloadConfig`]). `None` keeps the
    /// classic closed-loop drivers byte-for-byte: no arrival events, no
    /// admission queue, no retry budgets, no autoscaler.
    pub overload: Option<OverloadConfig>,
}

/// The overload regime: open-loop arrivals plus the degradation machinery
/// that keeps overload survivable — ingress admission control with
/// deadline-aware shedding, per-request retry budgets, a per-pair circuit
/// breaker, and (optionally) costed autoscaler scale-out.
///
/// Every stochastic draw (arrival gaps, population ranks, retry jitter)
/// comes from stateless [`SimRng::stream`]s keyed by sequence numbers, and
/// every decision executes in ingress event order, so overload runs are
/// byte-identical at every shard count and execution mode like everything
/// else in this driver.
#[derive(Clone, Debug)]
pub struct OverloadConfig {
    /// The open-loop arrival profile and Zipf function population.
    pub traffic: OpenLoopConfig,
    /// End-to-end deadline propagated with each request; completions past
    /// it are *measured* as `late` (not goodput) regardless of policy.
    pub deadline: Nanos,
    /// Bounded admission queue capacity (requests waiting at the ingress).
    pub queue_cap: usize,
    /// Maximum admitted-but-unfinished requests (the concurrency window
    /// that keeps the data plane out of its own congestion collapse).
    pub inflight_cap: u64,
    /// Queued requests older than this are shed oldest-first — serving a
    /// request that already waited this long only makes every later one
    /// later.
    pub queue_delay_max: Nanos,
    /// Initial service-latency estimate seeding the deadline-feasibility
    /// EWMA (updated from admission→completion samples).
    pub est_latency: Nanos,
    /// Whether the admission/retry machinery *acts* on deadlines (sheds
    /// infeasible requests). The unbounded-legacy negative control turns
    /// this off: deadlines are still measured, never enforced.
    pub shed_on_deadline: bool,
    /// Per-request retry budget and backoff shape.
    pub retry: RetryPolicy,
    /// Per-pair circuit breaker.
    pub breaker: BreakerPolicy,
    /// Costed autoscaler scale-out; `None` serves with all pairs active.
    pub autoscale: Option<AutoscalePolicy>,
}

impl OverloadConfig {
    /// Budgeted-degradation defaults over the given traffic and deadline.
    pub fn new(traffic: OpenLoopConfig, deadline: Nanos) -> Self {
        OverloadConfig {
            traffic,
            deadline,
            queue_cap: 512,
            inflight_cap: 64,
            queue_delay_max: Nanos::from_micros(500),
            est_latency: Nanos::from_micros(500),
            shed_on_deadline: true,
            retry: RetryPolicy::budgeted(),
            breaker: BreakerPolicy::default(),
            autoscale: None,
        }
    }

    /// Tune the admission bound: queue capacity, in-flight window, and the
    /// oldest-first queue-delay threshold.
    pub fn admission(mut self, queue_cap: usize, inflight_cap: u64, queue_delay_max: Nanos) -> Self {
        self.queue_cap = queue_cap;
        self.inflight_cap = inflight_cap;
        self.queue_delay_max = queue_delay_max;
        self
    }

    /// Set the retry policy.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Set the circuit-breaker policy.
    pub fn breaker(mut self, policy: BreakerPolicy) -> Self {
        self.breaker = policy;
        self
    }

    /// Enable costed autoscaler scale-out.
    pub fn autoscale(mut self, policy: AutoscalePolicy) -> Self {
        self.autoscale = Some(policy);
        self
    }

    /// The honest negative control: the pre-budget configuration with an
    /// effectively unbounded queue, undying retries with near-zero backoff,
    /// no breaker, and no deadline enforcement (deadlines are still
    /// *measured*, so goodput reads honestly). Under a transient fault at
    /// sustained load this is the classic metastable recipe — the backlog
    /// and retry storm outlive the fault.
    pub fn unbounded_legacy(mut self) -> Self {
        self.queue_cap = 1 << 20;
        self.queue_delay_max = Nanos::from_secs(3600);
        self.shed_on_deadline = false;
        self.retry = RetryPolicy::unbounded();
        self.breaker = BreakerPolicy::disabled();
        self
    }
}

/// Per-request retry budget with deterministic exponential backoff +
/// jitter. Budget exhaustion is an honest client-visible failure
/// (`retry_exhausted` in [`OverloadReport`]), not an infinite loop.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries allowed after the first attempt.
    pub budget: u32,
    /// Backoff before retry `k` is `base × 2^(k-1)`, capped.
    pub backoff_base: Nanos,
    /// Backoff ceiling.
    pub backoff_cap: Nanos,
    /// Uniform jitter fraction (±) applied to each backoff — deterministic
    /// per `(request, attempt)` via a stateless stream.
    pub jitter_frac: f64,
    /// Transport-level (QP) retry budget under chaos. `None` keeps the
    /// legacy undying transport ([`UNDYING_RETRY`]); `Some(n)` makes the
    /// transport give up honestly after `n` RTOs, handing failure to the
    /// client-level budget above.
    pub transport_retry: Option<u32>,
}

impl RetryPolicy {
    /// The budgeted configuration: 3 retries, 50 µs base doubling to an
    /// 800 µs cap, ±25% jitter, transport retries bounded.
    pub fn budgeted() -> Self {
        RetryPolicy {
            budget: 3,
            backoff_base: Nanos::from_micros(50),
            backoff_cap: Nanos::from_micros(800),
            jitter_frac: 0.25,
            transport_retry: Some(64),
        }
    }

    /// The legacy storm: effectively infinite retries with a near-zero
    /// fixed backoff and an undying transport.
    pub fn unbounded() -> Self {
        RetryPolicy {
            budget: u32::MAX,
            backoff_base: Nanos::from_micros(5),
            backoff_cap: Nanos::from_micros(5),
            jitter_frac: 0.2,
            transport_retry: None,
        }
    }
}

/// Per-pair circuit breaker: after `open_after` consecutive transport/loss
/// failures the pair is shed *at the source* for `cooldown`; the first
/// admission after the cooldown is the half-open probe — success closes
/// the breaker, failure re-arms it. Composes with the health plane and the
/// gray/probation states: the breaker reacts to failures the EWMA detector
/// is too slow for (a demoted pair keeps losing in-flights).
#[derive(Clone, Copy, Debug)]
pub struct BreakerPolicy {
    /// Consecutive failures that open the breaker.
    pub open_after: u32,
    /// How long an open breaker sheds before allowing a half-open probe.
    pub cooldown: Nanos,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        BreakerPolicy {
            open_after: 8,
            cooldown: Nanos::from_micros(200),
        }
    }
}

impl BreakerPolicy {
    /// A breaker that never opens (the legacy control).
    pub fn disabled() -> Self {
        BreakerPolicy {
            open_after: u32::MAX,
            cooldown: Nanos::ZERO,
        }
    }
}

/// Costed elastic scale-out: the run starts serving from `initial_pairs`
/// and the [`Autoscaler`] activates further (fully wired but idle) pairs
/// when the backlog-derived utilization crosses its thresholds. Each
/// activation pays the full [`RejoinCosts`] bill before serving — or, while
/// pre-leased warm workers remain, an rFaaS-style `lease_fraction` of it.
#[derive(Clone, Copy, Debug)]
pub struct AutoscalePolicy {
    /// Pairs active at t = 0 (the rest are spares awaiting activation).
    pub initial_pairs: usize,
    /// The hysteresis policy. `min_workers`/`max_workers` are overridden to
    /// `initial_pairs`/total pairs by the driver; set `eval_interval` and
    /// `cooldown` to the cadence the scenario needs.
    pub scaler: AutoscalerConfig,
    /// In-flight + queued requests one active pair is expected to absorb;
    /// utilization fed to the scaler is `backlog / (active × target)`.
    pub target_inflight_per_pair: u64,
    /// Pre-leased warm workers that activate at `lease_fraction` of the
    /// full rejoin bill.
    pub warm_leases: u32,
    /// Fraction of the rejoin bill a leased activation pays.
    pub lease_fraction: f64,
}

/// Differential gray-failure detection: per-pair EWMA latency scores,
/// compared against the best pair (not an absolute timeout — a gray
/// link inflates latency *relative to its peers* while heartbeats still
/// arrive). Degraded pairs move to a probation routing weight and are
/// readmitted with hysteresis.
#[derive(Clone, Copy, Debug)]
pub struct GrayPolicy {
    /// EWMA smoothing factor for per-pair latency scores.
    pub alpha: f64,
    /// Demote a pair to probation when its EWMA exceeds `enter ×` the
    /// best pair's EWMA.
    pub enter: f64,
    /// Restore a probationary pair when its EWMA falls back under
    /// `exit ×` the best pair's EWMA (must be `< enter` for hysteresis).
    pub exit: f64,
    /// Minimum completed samples before a pair participates in the
    /// comparison (both as baseline and as demotion candidate).
    pub min_samples: u64,
    /// On probation, every `probe_every`-th preferred request is still
    /// admitted so the EWMA can observe recovery.
    pub probe_every: u64,
    /// Latency charged to a pair's EWMA for each in-flight request
    /// abandoned on it (losses must hurt the score, not just vanish).
    pub loss_penalty: Nanos,
}

impl Default for GrayPolicy {
    fn default() -> Self {
        GrayPolicy {
            alpha: 0.125,
            enter: 2.0,
            exit: 1.4,
            min_samples: 16,
            probe_every: 8,
            loss_penalty: Nanos::from_millis(10),
        }
    }
}

impl ClusterShardedConfig {
    /// A run of `system` over `app` with `pairs` worker pairs.
    pub fn new(system: SystemKind, app: AppSpec, pairs: usize) -> Self {
        assert!(pairs >= 1, "need at least one worker pair");
        assert_eq!(app.chains.len(), pairs, "one chain replica per pair");
        ClusterShardedConfig {
            system,
            app,
            pairs,
            clients: 16 * pairs,
            duration: Nanos::from_millis(120),
            warmup: Nanos::from_millis(30),
            seed: 42,
            stride: 1,
            window_ns: None,
            chaos: None,
            heartbeat_period: Nanos::from_micros(50),
            heartbeat_k: 3,
            rejoin: RejoinCosts::default(),
            gray: GrayPolicy::default(),
            pool_bufs: POOL_BUFS,
            overload: None,
        }
    }

    /// Set the client count.
    pub fn clients(mut self, n: usize) -> Self {
        self.clients = n;
        self
    }

    /// Set the measurement window in milliseconds.
    pub fn duration_ms(mut self, ms: u64) -> Self {
        self.duration = Nanos::from_millis(ms);
        self
    }

    /// Set the warm-up in milliseconds.
    pub fn warmup_ms(mut self, ms: u64) -> Self {
        self.warmup = Nanos::from_millis(ms);
        self
    }

    /// Batch `stride` windows per barrier (see [`ClusterShardedConfig::stride`]).
    pub fn stride(mut self, stride: u64) -> Self {
        assert!(stride >= 1, "stride must be at least one window");
        self.stride = stride;
        self
    }

    /// Pin the window width (see [`ClusterShardedConfig::window_ns`]).
    pub fn window_ns(mut self, ns: u64) -> Self {
        self.window_ns = Some(ns);
        self
    }

    /// Replay `script` during the run (turns on the health plane).
    pub fn chaos(mut self, script: ScenarioScript) -> Self {
        self.chaos = Some(script);
        self
    }

    /// Tune the health plane: probe period and missed-period threshold.
    pub fn heartbeat(mut self, period: Nanos, k: u64) -> Self {
        assert!(!period.is_zero() && k > 0, "degenerate heartbeat config");
        self.heartbeat_period = period;
        self.heartbeat_k = k;
        self
    }

    /// Set the rejoin cost model (see [`RejoinCosts`]).
    pub fn rejoin(mut self, costs: RejoinCosts) -> Self {
        self.rejoin = costs;
        self
    }

    /// Set the gray-failure detection policy (see [`GrayPolicy`]).
    pub fn gray(mut self, policy: GrayPolicy) -> Self {
        assert!(policy.exit < policy.enter, "hysteresis requires exit < enter");
        assert!(policy.probe_every > 0, "probation needs probe traffic");
        self.gray = policy;
        self
    }

    /// Set the per-node pool size in buffers.
    pub fn pool_bufs(mut self, bufs: u32) -> Self {
        assert!(bufs >= 1, "need at least one pool buffer");
        self.pool_bufs = bufs;
        self
    }

    /// Drive the run open-loop under `overload` (see [`OverloadConfig`]).
    /// Replaces the closed-loop clients entirely.
    pub fn overload(mut self, overload: OverloadConfig) -> Self {
        assert!(overload.inflight_cap >= 1, "need a non-empty in-flight window");
        assert!(overload.traffic.population >= 1, "need a function population");
        self.overload = Some(overload);
        self
    }

    /// The window width a run of this configuration uses.
    pub fn window(&self) -> Nanos {
        let frame_la = RdmaConfig::default().frame_lookahead();
        let w = match self.window_ns {
            Some(ns) => Nanos(ns),
            None => Nanos(frame_la.as_nanos() / self.stride),
        };
        assert!(!w.is_zero(), "stride exceeds the frame lookahead");
        assert!(
            w.as_nanos() * self.stride <= frame_la.as_nanos(),
            "window {w} × stride {} exceeds the frame lookahead {frame_la}",
            self.stride
        );
        w
    }
}

/// The report of one sharded cluster run: the serial cluster's
/// [`ChainReport`] plus the sharding counters.
#[derive(Clone, Debug)]
pub struct ClusterShardedReport {
    /// The Fig 16 quantities (rps, latency, copies, utilization).
    pub chain: ChainReport,
    /// Simulation events processed across all shards.
    pub events: u64,
    /// Inter-node frames delivered through the mailboxes.
    pub messages: u64,
    /// Mailbox ring overflows (spills, not drops).
    pub spilled: u64,
    /// Window barriers executed (with striding, one barrier covers
    /// `stride` windows).
    pub windows: u64,
    /// Per-shard run-phase wall nanoseconds.
    pub busy_ns: Vec<u64>,
    /// `Σ_k max_s busy[s][k]` — modeled wall time with one core per
    /// shard; exact under [`Execution::Sequential`].
    pub critical_path_ns: u64,
    /// Per-channel mailbox statistics (spills, high-water marks,
    /// auto-sized capacities).
    pub channels: Vec<ChannelStats>,
    /// Median end-to-end latency from the streaming histogram.
    pub p50: Nanos,
    /// 99th-percentile latency (within the histogram's 3.125% bound).
    pub p99: Nanos,
    /// 99.9th-percentile latency.
    pub p999: Nanos,
    /// Chaos accounting — all-zero on fault-free runs.
    pub chaos: ChaosReport,
    /// Overload accounting — all-zero on closed-loop runs.
    pub overload: OverloadReport,
}

/// Open-loop overload accounting for one run. Goodput is the honest
/// metric: completions within their propagated deadline. Folded entirely
/// from ingress-ordered state — byte-identical at every shard count.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OverloadReport {
    /// Arrivals generated inside the measurement window.
    pub offered: u64,
    /// Requests admitted to the data plane inside the window.
    pub admitted: u64,
    /// Completions within their deadline (the goodput numerator).
    pub goodput: u64,
    /// Completions past their deadline — served, but worthless.
    pub late: u64,
    /// Within-deadline completions finishing in the last quarter of the
    /// window — distinguishes a system that *recovered* from one whose
    /// backlog outlived the run (the metastable signature).
    pub recovery_goodput: u64,
    /// Retry attempts scheduled by the backoff machinery.
    pub retries: u64,
    /// Requests that exhausted their retry budget (or whose deadline
    /// passed before the next attempt) — honest client-visible failures.
    pub retry_exhausted: u64,
    /// Circuit-breaker open (and re-arm) transitions.
    pub breaker_opens: u64,
    /// Circuit-breaker half-open probes that closed the breaker.
    pub breaker_closes: u64,
    /// Autoscaler pair activations that completed (after paying).
    pub scale_ups: u64,
    /// Autoscaler pair deactivations.
    pub scale_downs: u64,
    /// Activations that paid the full rejoin bill.
    pub rejoin_bills: u64,
    /// Activations that claimed a pre-leased warm worker at a fraction of
    /// the bill.
    pub lease_hits: u64,
    /// p99 end-to-end latency of completions inside the surge window (the
    /// flash-crowd ramp), `ZERO` when no surge window applies.
    pub ramp_p99: Nanos,
}

/// Fault, detection and failover accounting for one run. Folded
/// deterministically (net counters in shard order, health counters from
/// the ingress), so these are byte-identical at every shard count too.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Frames dropped by stochastic fault plans.
    pub fault_drops: u64,
    /// Frames dropped by crash/partition windows (deterministic).
    pub crash_drops: u64,
    /// Frames corrupted in flight (later dropped by the integrity check).
    pub corrupt: u64,
    /// Retransmission-timeout firings across all QPs.
    pub rto: u64,
    /// Workers the ingress suspected dead (missed-heartbeat transitions).
    pub suspected: u64,
    /// Suspected workers that later recovered (heartbeats resumed).
    pub recovered: u64,
    /// In-flight requests abandoned when their pair was suspected.
    pub inflight_lost: u64,
    /// Requests issued to a non-preferred pair because the preferred one
    /// was believed dead.
    pub reroutes: u64,
    /// Requests/sends shed because a post failed (errored QP) — zero
    /// unless a QP exhausts its transport retry budget.
    pub shed_qp: u64,
    /// Requests shed because the ingress buffer pool was exhausted (every
    /// drop path is attributed — this one used to vanish silently).
    pub shed_pool: u64,
    /// Requests shed by admission control: queue full, or queued past the
    /// oldest-first queue-delay threshold.
    pub shed_admission: u64,
    /// Requests shed because their propagated deadline could not be met
    /// under the current backlog estimate.
    pub shed_deadline: u64,
    /// Requests shed at the source by an open per-pair circuit breaker.
    pub shed_breaker: u64,
    /// Recovered workers that completed the costed rejoin and re-entered
    /// the routing set.
    pub rejoins: u64,
    /// Rejoins voided because the worker went silent again mid-rejoin.
    pub rejoins_aborted: u64,
    /// Median time-to-recovery: suspicion → paid re-admission.
    pub ttr_p50: Nanos,
    /// 99th-percentile time-to-recovery.
    pub ttr_p99: Nanos,
    /// Pairs demoted to probation by the differential EWMA detector.
    pub gray_demoted: u64,
    /// Probationary pairs restored once their EWMA recovered.
    pub gray_restored: u64,
    /// Requests deflected away from a probationary (but heartbeat-alive)
    /// preferred pair.
    pub gray_reroutes: u64,
}

#[derive(Debug)]
pub(crate) enum Ev {
    /// A client issues a request (ingress shard only).
    Issue { client: usize },
    /// Ingress finished the inbound leg.
    GwIn { req: u64, worker: usize },
    /// Ingress finished the outbound leg.
    GwOut { req: u64, worker: usize },
    /// RDMA fabric sub-simulator event (this shard's instance).
    Rdma(RdmaEvent),
    /// A Palladium engine core freed up on node `n`.
    EngineSlot { n: usize },
    /// Engine TX processing done: post the WR.
    PostSend {
        n: usize,
        dst: NodeId,
        tenant: TenantId,
        wr: WorkRequest,
    },
    /// RNIC DMA application of received bytes.
    ApplyDma {
        n: usize,
        token: BufToken,
        data: Bytes,
    },
    /// Descriptor delivery to a function (after channel transit).
    Deliver { n: usize, desc: BufDesc },
    /// A transmitted buffer completed.
    ReleaseTx { n: usize, token: BufToken },
    /// Core-thread RQ replenishment.
    Replenish { n: usize, cnt: u64 },
    /// A function's hand-off reached the engine.
    EngineRx { n: usize, desc: BufDesc },
    /// Function finished executing on input `desc`.
    FnDone { n: usize, desc: BufDesc },
    /// Worker node `n` emits its next liveness probe (chaos runs only).
    HeartbeatTick { n: usize, seq: u64 },
    /// The ingress sweeps for silent workers (chaos runs only).
    HealthCheck,
    /// Worker `n` finished paying its rejoin cost (chaos runs only).
    /// `epoch` voids completions staled by a crash mid-rejoin.
    RejoinDone { n: usize, epoch: u64 },
    /// The next open-loop arrival lands at the ingress (overload runs
    /// only; self-perpetuating).
    Arrive,
    /// A failed request's backoff expired; re-enter admission.
    Retry { req: u64 },
    /// The autoscaler evaluates its policy (overload + autoscale only;
    /// self-perpetuating at the eval interval).
    ScaleTick,
    /// A scale-out finished paying its bill: pair `pair` activates.
    ScaleOutDone { pair: usize },
}

struct ReqState {
    client: usize,
    issued: Nanos,
    done: bool,
    /// Worker pair serving this request (usually `req % pairs`; a
    /// surviving pair under failover).
    pair: usize,
    /// Overload-mode fields (all zero/false on closed-loop runs).
    /// Propagated end-to-end deadline.
    deadline: Nanos,
    /// When this request last entered the admission queue.
    queued_at: Nanos,
    /// When this request was last admitted to the data plane.
    admitted_at: Nanos,
    /// Attempts started (1 on arrival; retries increment).
    attempts: u32,
    /// Currently admitted and unfinished (distinguishes in-plane requests
    /// from queued/backing-off ones during suspicion sweeps).
    inflight: bool,
    /// Routing hint from the function-population table (`fn_id % pairs`).
    hint: u16,
}

/// State owned by the shard carrying the ingress node.
struct IngressState {
    gw: IngressGateway,
    rbr: crate::rbr::RbrTable,
    conns: ConnPool,
    /// TX buffers awaiting send completions (slab-keyed WR ids).
    tx: Slab<BufToken>,
    reqs: Vec<ReqState>,
    stats: RunStats,
    /// Heartbeat bookkeeping over all worker nodes (chaos runs only).
    health: Option<HealthMonitor>,
    /// Workers suspected dead so far.
    suspected: u64,
    /// Suspected workers that recovered.
    recovered: u64,
    /// In-flight requests abandoned on suspicion.
    inflight_lost: u64,
    /// Requests steered away from a suspected preferred pair.
    reroutes: u64,
    /// Rejoin and gray-failure bookkeeping (present iff chaos is on,
    /// like `health`).
    chaosx: Option<IngressChaos>,
    /// Open-loop overload machinery (present iff `cfg.overload` is set).
    overload: Option<IngressOverload>,
}

/// Admission control, retry budgets, breaker state and the autoscaler,
/// owned by the ingress. Everything updates in ingress event order.
struct IngressOverload {
    ov: OverloadConfig,
    gen: OpenLoop,
    /// The next arrival, pre-drawn so its time can be scheduled.
    next: Arrival,
    /// Function id → preferred-pair hint over the whole Zipf population
    /// (the PR 3 two-level page table, exercised per arrival).
    route: PageTable<u16>,
    /// Bounded admission queue of request ids (FIFO).
    queue: VecDeque<u64>,
    /// Admitted-but-unfinished requests.
    inflight: u64,
    /// EWMA of admission→completion latency (ns), seeding deadline
    /// feasibility; initialized from `ov.est_latency`.
    est: f64,
    /// Per-pair breaker: `ZERO` = closed, else shed until that instant
    /// (first admission at/after it is the half-open probe).
    breaker_until: Vec<Nanos>,
    /// Per-pair consecutive-failure counter.
    breaker_fails: Vec<u32>,
    /// Deadline-infeasible requests seen (every [`DL_PROBE_EVERY`]-th is
    /// admitted as a probe so the feasibility EWMA can re-learn).
    dl_probe: u64,
    /// The scaling policy engine (present iff `ov.autoscale`).
    scaler: Option<Autoscaler>,
    /// Pairs currently receiving traffic (prefix `0..active_pairs`).
    active_pairs: usize,
    /// Activations in flight (0 or 1; evaluation pauses while paying).
    activating: usize,
    /// Pre-leased warm workers remaining.
    leases_left: u32,
    /// Full rejoin bill one activation pays (before lease discount).
    scaleout_bill: Nanos,
    seed: u64,
    warmup: Nanos,
    /// Completions at/after this instant count as recovery goodput
    /// (last quarter of the measurement window).
    recovery_lo: Nanos,
    /// Surge window for ramp-tail measurement.
    ramp_lo: Nanos,
    ramp_hi: Nanos,
    /// End-to-end latency of completions inside the surge window.
    ramp: Histogram,
    // Counters (see [`OverloadReport`] / [`ChaosReport`]).
    offered: u64,
    admitted: u64,
    goodput: u64,
    late: u64,
    recovery_goodput: u64,
    retries: u64,
    retry_exhausted: u64,
    shed_admission: u64,
    shed_deadline: u64,
    shed_breaker: u64,
    breaker_opens: u64,
    breaker_closes: u64,
    scale_ups: u64,
    scale_downs: u64,
    lease_hits: u64,
    rejoin_bills: u64,
}

impl IngressOverload {
    fn new(
        ov: OverloadConfig,
        pairs: usize,
        seed: u64,
        warmup: Nanos,
        horizon: Nanos,
        scaleout_bill: Nanos,
    ) -> Self {
        let mut gen = OpenLoop::new(&ov.traffic, seed);
        let next = gen.next_arrival();
        let mut route = PageTable::new();
        for id in 0..ov.traffic.population {
            route.insert(id as usize, (id % pairs as u64) as u16);
        }
        let (ramp_lo, ramp_hi) = ov.traffic.process.surge_window().unwrap_or((warmup, horizon));
        let recovery_lo = Nanos(
            warmup.as_nanos() + (horizon.as_nanos() - warmup.as_nanos()) * 3 / 4,
        );
        let active_pairs = ov
            .autoscale
            .map(|p| p.initial_pairs.clamp(1, pairs))
            .unwrap_or(pairs);
        let scaler = ov.autoscale.map(|p| {
            Autoscaler::new(AutoscalerConfig {
                min_workers: active_pairs,
                max_workers: pairs,
                ..p.scaler
            })
        });
        let leases_left = ov.autoscale.map(|p| p.warm_leases).unwrap_or(0);
        let est = ov.est_latency.as_nanos() as f64;
        IngressOverload {
            gen,
            next,
            route,
            queue: VecDeque::with_capacity(ov.queue_cap.min(4096)),
            inflight: 0,
            est,
            breaker_until: vec![Nanos::ZERO; pairs],
            breaker_fails: vec![0; pairs],
            dl_probe: 0,
            scaler,
            active_pairs,
            activating: 0,
            leases_left,
            scaleout_bill,
            seed,
            warmup,
            recovery_lo,
            ramp_lo,
            ramp_hi,
            ramp: Histogram::new(),
            offered: 0,
            admitted: 0,
            goodput: 0,
            late: 0,
            recovery_goodput: 0,
            retries: 0,
            retry_exhausted: 0,
            shed_admission: 0,
            shed_deadline: 0,
            shed_breaker: 0,
            breaker_opens: 0,
            breaker_closes: 0,
            scale_ups: 0,
            scale_downs: 0,
            lease_hits: 0,
            rejoin_bills: 0,
            ov,
        }
    }

    /// Record a pair-attributed transport/loss failure; open (or re-arm)
    /// the breaker after `open_after` consecutive ones.
    fn breaker_fail(&mut self, now: Nanos, pair: usize) {
        let pol = self.ov.breaker;
        if pol.open_after == u32::MAX {
            return;
        }
        if self.breaker_until[pair] != Nanos::ZERO {
            // Open or probing: a failure re-arms the cooldown.
            self.breaker_until[pair] = now + pol.cooldown;
            self.breaker_opens += 1;
            return;
        }
        self.breaker_fails[pair] += 1;
        if self.breaker_fails[pair] >= pol.open_after {
            self.breaker_until[pair] = now + pol.cooldown;
            self.breaker_opens += 1;
            self.breaker_fails[pair] = 0;
        }
    }

    /// Record a successful completion on `pair`: reset the failure streak
    /// and close the breaker if this was the half-open probe.
    fn breaker_ok(&mut self, now: Nanos, pair: usize) {
        self.breaker_fails[pair] = 0;
        if self.breaker_until[pair] != Nanos::ZERO && now >= self.breaker_until[pair] {
            self.breaker_until[pair] = Nanos::ZERO;
            self.breaker_closes += 1;
        }
    }
}

/// Per-worker rejoin tracking and per-pair gray-failure scores, owned by
/// the ingress (see the module docs on costed rejoin and differential
/// detection). All state updates in ingress event order — deterministic
/// at every shard count.
struct IngressChaos {
    /// When each worker was last suspected (TTR measurement anchor).
    suspected_at: Vec<Nanos>,
    /// Per-worker rejoin epoch: bumped on every recovery *and* on every
    /// crash mid-rejoin, so a stale [`Ev::RejoinDone`] never re-admits a
    /// worker that went silent after it was scheduled.
    rejoin_epoch: Vec<u64>,
    /// Time-to-recovery: suspicion → paid re-admission.
    ttr: Histogram,
    /// Completed rejoins.
    rejoins: u64,
    /// Rejoins voided by a crash mid-rejoin.
    rejoins_aborted: u64,
    /// Per-pair EWMA of end-to-end latency (nanoseconds).
    ewma: Vec<f64>,
    /// Samples observed per pair (gates the differential comparison).
    ewma_n: Vec<u64>,
    /// Pairs currently demoted to probation routing weight.
    probation: Vec<bool>,
    /// Per-pair probe admission counter while on probation.
    probe_tick: Vec<u64>,
    /// Demotions, restorations, and probation deflections.
    gray_demoted: u64,
    gray_restored: u64,
    gray_reroutes: u64,
}

impl IngressChaos {
    fn new(workers: usize, pairs: usize) -> Self {
        IngressChaos {
            suspected_at: vec![Nanos::ZERO; workers],
            rejoin_epoch: vec![0; workers],
            ttr: Histogram::new(),
            rejoins: 0,
            rejoins_aborted: 0,
            ewma: vec![0.0; pairs],
            ewma_n: vec![0; pairs],
            probation: vec![false; pairs],
            probe_tick: vec![0; pairs],
            gray_demoted: 0,
            gray_restored: 0,
            gray_reroutes: 0,
        }
    }

    /// Fold one latency observation into `pair`'s EWMA score.
    fn observe(&mut self, alpha: f64, pair: usize, sample: Nanos) {
        let s = sample.as_nanos() as f64;
        if self.ewma_n[pair] == 0 {
            self.ewma[pair] = s;
        } else {
            self.ewma[pair] += alpha * (s - self.ewma[pair]);
        }
        self.ewma_n[pair] += 1;
    }
}

/// One shard of the cluster: a contiguous global-node block with its own
/// fabric instance (see the module docs).
pub(crate) struct ClusterShard {
    /// First global node this shard owns.
    lo: usize,
    /// Dense global node → shard route table.
    shard_of: Vec<u32>,
    ingress_node: usize,
    pairs: usize,
    /// Per-pair chains (`chains[p]` for requests `r ≡ p mod pairs`).
    chains: Vec<ChainSpec>,
    /// Remapped function id → global node, dense.
    placement: IdTable<usize>,
    fn_exec: IdTable<Nanos>,
    cost: CostModel,
    engine_loc: EngineLocation,
    comch: ChannelCosts,
    skmsg: SkMsgCosts,

    // Per owned node, indexed `node - lo`.
    pools: Vec<UnifiedPool>,
    meters: Vec<CopyMeter>,
    fn_cores: Vec<Option<ServerBank>>,
    dnes: Vec<Option<Dne>>,
    inbound_tokens: Vec<IdTable<BufToken>>,

    /// This shard's span of the fabric, in sharded-egress mode.
    net: RdmaNet,
    /// Present exactly on the shard owning the ingress node.
    ingress: Option<IngressState>,
    /// Compiled chaos tables, identical on every shard (`None` on
    /// fault-free runs — every chaos branch below is then never taken).
    chaos: Option<CompiledScenario>,
    /// Probe period for [`Ev::HeartbeatTick`] / [`Ev::HealthCheck`].
    heartbeat_period: Nanos,
    /// Rejoin cost model (applied by the ingress shard).
    rejoin: RejoinCosts,
    /// Gray-failure detection policy (applied by the ingress shard).
    gray: GrayPolicy,
    /// QPs a worker re-establishes on rejoin (its pool width: partner +
    /// ingress connections).
    worker_qps: usize,
    /// Pool bytes a worker re-syncs on rejoin.
    pool_bytes: u64,
    /// Requests/sends shed on post failure (errored QP), this shard.
    shed_qp: u64,
    /// Requests shed on ingress pool exhaustion, this shard.
    shed_pool: u64,
    /// Scratch for the health sweep (newly suspected workers).
    health_scratch: Vec<Suspicion>,
    /// Scratch for in-flight requests lost to a suspicion sweep
    /// (overload mode feeds them to the retry machinery after the sweep).
    lost_scratch: Vec<u64>,

    // Reused scratch so steady-state stepping does not allocate.
    rdma_step: Step,
    post_step: Step,
    cqe_scratch: Vec<Cqe>,
    dne_fx: crate::dne::DneStep,
    payloads: PayloadCache,
}

impl ClusterShard {
    /// Local index of global node `n`.
    #[inline]
    fn li(&self, n: usize) -> usize {
        n - self.lo
    }

    fn node_of(&self, f: FnId) -> usize {
        if f == INGRESS_FN {
            self.ingress_node
        } else {
            *self.placement.get(f.raw() as usize).expect("placed function")
        }
    }

    fn fn_exec(&self, f: FnId) -> Nanos {
        *self.fn_exec.get(f.raw() as usize).expect("deployed function")
    }

    /// The chain worker pair `pair` runs.
    #[inline]
    fn chain(&self, pair: usize) -> &ChainSpec {
        &self.chains[pair]
    }

    /// Pick the worker pair serving request `req`: the preferred
    /// `req % pairs` when healthy, else the first believed-alive,
    /// non-probationary pair scanning upward from it (failover
    /// re-route). Suspected *and* rejoining workers are out of the set —
    /// re-admission is paid for, not assumed. A probationary preferred
    /// pair still receives every `probe_every`-th request so its EWMA
    /// can observe recovery. Falls back to the preferred pair when
    /// nothing qualifies — the request then rides the transport's retry
    /// machinery. Fault-free runs have no health monitor and always take
    /// the preferred pair.
    fn choose_pair(&mut self, req: u64) -> usize {
        let preferred = (req % self.pairs as u64) as usize;
        let pairs = self.pairs;
        let Some(ing) = self.ingress.as_mut() else {
            return preferred;
        };
        let IngressState { health, chaosx, reroutes, .. } = ing;
        let Some(health) = health.as_ref() else {
            return preferred;
        };
        for off in 0..pairs {
            let p = (preferred + off) % pairs;
            if !health.is_alive(2 * p) || !health.is_alive(2 * p + 1) {
                continue;
            }
            if let Some(cx) = chaosx.as_mut() {
                if cx.probation[p] {
                    if p != preferred {
                        continue; // never deflect *onto* a gray pair
                    }
                    cx.probe_tick[p] += 1;
                    if cx.probe_tick[p] % self.gray.probe_every != 0 {
                        continue; // deflected; only probes get through
                    }
                }
            }
            if p != preferred {
                // Attribute the deflection: if the preferred pair's
                // heartbeats are fine, probation (gray detection) caused
                // it; otherwise it is ordinary crash failover.
                let preferred_alive =
                    health.is_alive(2 * preferred) && health.is_alive(2 * preferred + 1);
                match (preferred_alive, chaosx.as_mut()) {
                    (true, Some(cx)) => cx.gray_reroutes += 1,
                    _ => *reroutes += 1,
                }
            }
            return p;
        }
        preferred
    }

    /// Differential gray-failure sweep (run from each health check):
    /// compare every heartbeat-alive pair's EWMA against the best such
    /// pair. Scores more than `enter ×` the baseline demote to
    /// probation; probationary scores back under `exit ×` restore. The
    /// best pair can never demote (its EWMA *is* the baseline), so the
    /// comparison needs no absolute latency threshold.
    fn gray_sweep(&mut self) {
        let gray = self.gray;
        let pairs = self.pairs;
        let Some(ing) = self.ingress.as_mut() else {
            return;
        };
        let IngressState { health, chaosx, .. } = ing;
        let (Some(h), Some(cx)) = (health.as_ref(), chaosx.as_mut()) else {
            return;
        };
        let eligible = |p: usize, cx: &IngressChaos| {
            h.is_alive(2 * p) && h.is_alive(2 * p + 1) && cx.ewma_n[p] >= gray.min_samples
        };
        let mut best: Option<f64> = None;
        for p in 0..pairs {
            if eligible(p, cx) {
                best = Some(best.map_or(cx.ewma[p], |b: f64| b.min(cx.ewma[p])));
            }
        }
        let Some(best) = best else {
            return; // no baseline yet (warm-up, or everything is down)
        };
        for p in 0..pairs {
            if !eligible(p, cx) {
                continue;
            }
            if !cx.probation[p] && cx.ewma[p] > gray.enter * best {
                cx.probation[p] = true;
                cx.gray_demoted += 1;
            } else if cx.probation[p] && cx.ewma[p] <= gray.exit * best {
                cx.probation[p] = false;
                cx.gray_restored += 1;
            }
        }
    }

    /// Pick the pair serving `req` in overload mode, scanning the *active*
    /// prefix upward from the routing hint. A pair qualifies when its
    /// workers are believed alive, it is not deflected by gray probation
    /// (same probe admission as [`ClusterShard::choose_pair`]), and its
    /// circuit breaker is closed — or due a half-open probe, in which case
    /// this admission *is* the probe. `None` means every active pair is
    /// shedding at the source (`shed_breaker`), the honest answer under a
    /// cluster-wide brownout: the request rides the retry budget instead
    /// of piling onto a broken pair.
    fn overload_choose(&mut self, now: Nanos, req: u64) -> Option<usize> {
        let probe_every = self.gray.probe_every;
        let ing = self.ingress.as_mut().expect("ingress shard");
        let IngressState { health, chaosx, reroutes, overload, reqs, .. } = ing;
        let ov = overload.as_mut().expect("overload mode");
        let active = ov.active_pairs.max(1);
        let pref = reqs[req as usize].hint as usize % active;
        for off in 0..active {
            let p = (pref + off) % active;
            if let Some(h) = health.as_ref() {
                if !h.is_alive(2 * p) || !h.is_alive(2 * p + 1) {
                    continue;
                }
            }
            if let Some(cx) = chaosx.as_mut() {
                if cx.probation[p] {
                    if p != pref {
                        continue; // never deflect *onto* a gray pair
                    }
                    cx.probe_tick[p] += 1;
                    if cx.probe_tick[p] % probe_every != 0 {
                        continue;
                    }
                }
            }
            let until = ov.breaker_until[p];
            if until != Nanos::ZERO && now < until {
                continue; // breaker open: shed at the source
            }
            if p != pref {
                // Attribute the deflection: probation → gray, everything
                // else (dead pair, open breaker) → ordinary reroute.
                let pref_gray =
                    chaosx.as_ref().map(|cx| cx.probation[pref]).unwrap_or(false);
                let pref_alive = health
                    .as_ref()
                    .map(|h| h.is_alive(2 * pref) && h.is_alive(2 * pref + 1))
                    .unwrap_or(true);
                if pref_alive && pref_gray {
                    if let Some(cx) = chaosx.as_mut() {
                        cx.gray_reroutes += 1;
                    }
                } else {
                    *reroutes += 1;
                }
            }
            return Some(p);
        }
        None
    }

    /// Full admission pipeline for an arriving or retrying request:
    /// breaker/health pair selection (sheds at the source), deadline
    /// feasibility under the backlog estimate, then the bounded queue with
    /// oldest-first shedding past the queue-delay threshold.
    fn try_admit(&mut self, now: Nanos, fx: &mut Effects<'_, Ev>, req: u64) {
        let Some(pair) = self.overload_choose(now, req) else {
            let ov = self.ingress.as_mut().expect("ingress shard").overload.as_mut().unwrap();
            ov.shed_breaker += 1;
            self.fail_or_retry(now, fx, req);
            return;
        };
        let admit_now = {
            let ing = self.ingress.as_mut().expect("ingress shard");
            let deadline = ing.reqs[req as usize].deadline;
            let ov = ing.overload.as_mut().expect("overload mode");
            if ov.ov.shed_on_deadline {
                // ETA = queue drain (Little's-law estimate against the
                // in-flight window) + one service time.
                let wait = ov.est * (ov.queue.len() as f64 + 1.0) / ov.ov.inflight_cap as f64;
                let eta = now.as_nanos() as f64 + wait + ov.est;
                if eta > deadline.as_nanos() as f64 {
                    ov.dl_probe += 1;
                    if !ov.dl_probe.is_multiple_of(DL_PROBE_EVERY) {
                        ov.shed_deadline += 1;
                        self.fail_or_retry(now, fx, req);
                        return;
                    }
                    // Probe admission (see [`DL_PROBE_EVERY`]).
                }
            }
            ov.inflight < ov.ov.inflight_cap
        };
        if admit_now {
            self.admit(now, fx, req, pair);
            return;
        }
        // In-flight window full: queue, shedding the oldest entries that
        // have already overstayed the queue-delay threshold.
        loop {
            let stale = {
                let ing = self.ingress.as_mut().expect("ingress shard");
                let IngressState { overload, reqs, .. } = ing;
                let ov = overload.as_mut().expect("overload mode");
                match ov.queue.front() {
                    Some(&head) if now - reqs[head as usize].queued_at > ov.ov.queue_delay_max => {
                        ov.queue.pop_front();
                        ov.shed_admission += 1;
                        Some(head)
                    }
                    _ => None,
                }
            };
            match stale {
                Some(head) => self.fail_or_retry(now, fx, head),
                None => break,
            }
        }
        let queued = {
            let ing = self.ingress.as_mut().expect("ingress shard");
            let IngressState { overload, reqs, .. } = ing;
            let ov = overload.as_mut().expect("overload mode");
            if ov.queue.len() >= ov.ov.queue_cap {
                ov.shed_admission += 1;
                false
            } else {
                reqs[req as usize].queued_at = now;
                ov.queue.push_back(req);
                true
            }
        };
        if !queued {
            self.fail_or_retry(now, fx, req);
        }
    }

    /// Admit `req` to the data plane on `pair`: the overload-mode analogue
    /// of the closed-loop [`Ev::Issue`] submission.
    fn admit(&mut self, now: Nanos, fx: &mut Effects<'_, Ev>, req: u64, pair: usize) {
        let client_wire = self.cost.client_wire;
        let (req_bytes, resp_bytes) = {
            let chain = self.chain(pair);
            (chain.req_bytes as u64, chain.resp_bytes as u64)
        };
        let ing = self.ingress.as_mut().expect("ingress shard");
        let ov = ing.overload.as_mut().expect("overload mode");
        ov.inflight += 1;
        if now >= ov.warmup {
            ov.admitted += 1;
        }
        let st = &mut ing.reqs[req as usize];
        st.pair = pair;
        st.inflight = true;
        st.admitted_at = now;
        let client = st.client;
        let arrive = now + client_wire;
        let (w, done) = ing.gw.submit(arrive, client, Leg::Inbound, req_bytes, resp_bytes);
        fx.at(done, Ev::GwIn { req, worker: w });
    }

    /// Refill the in-flight window from the admission queue, re-checking
    /// staleness, deadline feasibility and pair availability at dequeue.
    fn drain_queue(&mut self, now: Nanos, fx: &mut Effects<'_, Ev>) {
        loop {
            let req = {
                let ov = self
                    .ingress
                    .as_mut()
                    .expect("ingress shard")
                    .overload
                    .as_mut()
                    .expect("overload mode");
                if ov.inflight >= ov.ov.inflight_cap {
                    break;
                }
                match ov.queue.pop_front() {
                    Some(r) => r,
                    None => break,
                }
            };
            let verdict = {
                let ing = self.ingress.as_mut().expect("ingress shard");
                let st = &ing.reqs[req as usize];
                let (queued_at, deadline) = (st.queued_at, st.deadline);
                let ov = ing.overload.as_mut().expect("overload mode");
                if now - queued_at > ov.ov.queue_delay_max {
                    ov.shed_admission += 1;
                    Err(())
                } else if ov.ov.shed_on_deadline
                    && now.as_nanos() as f64 + ov.est > deadline.as_nanos() as f64
                {
                    ov.dl_probe += 1;
                    if ov.dl_probe.is_multiple_of(DL_PROBE_EVERY) {
                        Ok(()) // probe admission (see [`DL_PROBE_EVERY`])
                    } else {
                        ov.shed_deadline += 1;
                        Err(())
                    }
                } else {
                    Ok(())
                }
            };
            if verdict.is_err() {
                self.fail_or_retry(now, fx, req);
                continue;
            }
            match self.overload_choose(now, req) {
                Some(pair) => self.admit(now, fx, req, pair),
                None => {
                    let ov = self
                        .ingress
                        .as_mut()
                        .expect("ingress shard")
                        .overload
                        .as_mut()
                        .unwrap();
                    ov.shed_breaker += 1;
                    self.fail_or_retry(now, fx, req);
                }
            }
        }
    }

    /// A request's attempt failed (shed, lost, or transport-errored):
    /// consume retry budget and schedule the next attempt with exponential
    /// backoff + stateless jitter, or give up honestly.
    fn fail_or_retry(&mut self, now: Nanos, fx: &mut Effects<'_, Ev>, req: u64) {
        let ing = self.ingress.as_mut().expect("ingress shard");
        let IngressState { overload, reqs, .. } = ing;
        let ov = overload.as_mut().expect("overload mode");
        let st = &mut reqs[req as usize];
        if st.done {
            return;
        }
        let rp = ov.ov.retry;
        let attempts = st.attempts;
        if attempts > rp.budget {
            st.done = true;
            ov.retry_exhausted += 1;
            return;
        }
        let exp = attempts.saturating_sub(1).min(16);
        let raw = rp.backoff_base.as_nanos().saturating_mul(1u64 << exp);
        let backoff = Nanos(raw.min(rp.backoff_cap.as_nanos()).max(1));
        let mut rng = SimRng::stream(
            ov.seed ^ RETRY_STREAM,
            req.wrapping_mul(64).wrapping_add(attempts as u64),
        );
        let wait = rng.jitter(backoff, rp.jitter_frac).max(Nanos(1));
        let at = now + wait;
        if ov.ov.shed_on_deadline && at > st.deadline {
            // The next attempt cannot land inside the deadline: an honest
            // failure, not a zombie retry.
            st.done = true;
            ov.retry_exhausted += 1;
            return;
        }
        st.attempts = attempts + 1;
        ov.retries += 1;
        fx.at(at, Ev::Retry { req });
    }

    /// An admitted request failed in the data plane (pool exhausted or QP
    /// errored at post time). In overload mode: release its in-flight
    /// slot, charge the pair's breaker, and hand it to the retry budget.
    /// No-op on closed-loop runs (the health plane re-issues clients).
    fn overload_send_failed(&mut self, now: Nanos, fx: &mut Effects<'_, Ev>, req: u64) {
        {
            let Some(ing) = self.ingress.as_mut() else {
                return;
            };
            if ing.overload.is_none() {
                return;
            }
            let st = &mut ing.reqs[req as usize];
            if !st.inflight {
                return;
            }
            st.inflight = false;
            let pair = st.pair;
            let ov = ing.overload.as_mut().unwrap();
            ov.inflight = ov.inflight.saturating_sub(1);
            ov.breaker_fail(now, pair);
        }
        self.fail_or_retry(now, fx, req);
        self.drain_queue(now, fx);
    }

    /// Charge work on a function core of worker node `n`.
    fn on_fn_core(&mut self, n: usize, now: Nanos, service: Nanos) -> Nanos {
        let li = self.li(n);
        let bank = self.fn_cores[li].as_mut().expect("worker node");
        let (idx, done) = bank.submit(now, service);
        bank.complete(idx);
        done
    }

    /// Channel costs between functions and the engine (see
    /// [`super::cluster`]).
    fn fn_channel_costs(&self) -> (Nanos, Nanos) {
        match self.engine_loc {
            EngineLocation::Dpu => (self.comch.transit, self.comch.host_send_cpu),
            EngineLocation::Cpu => (self.skmsg.transit, self.skmsg.send_cpu),
        }
    }

    fn fn_recv_cost(&self) -> Nanos {
        match self.engine_loc {
            EngineLocation::Dpu => self.comch.host_recv_cpu,
            EngineLocation::Cpu => self.skmsg.recv_cpu,
        }
    }

    /// Replenish `cnt` receive buffers on worker node `n` (node-local,
    /// identical at every shard count).
    fn replenish(&mut self, n: usize, cnt: u64) {
        let li = self.li(n);
        for _ in 0..cnt {
            let Ok(token) = self.pools[li].alloc(Owner::Rnic) else {
                break;
            };
            let pool_id = self.pools[li].id();
            let wr_id = self.dnes[li].as_mut().expect("worker dne").rbr.register(TENANT, token);
            let _ = self.net.post_recv(
                NodeId(n as u16),
                TENANT,
                RqEntry {
                    wr_id,
                    pool: pool_id,
                    capacity: BUF_SIZE,
                },
            );
        }
    }

    /// Replenish ingress-side receive buffers.
    fn replenish_ingress(&mut self, cnt: u64) {
        let li = self.li(self.ingress_node);
        for _ in 0..cnt {
            let Ok(token) = self.pools[li].alloc(Owner::Rnic) else {
                break;
            };
            let pool_id = self.pools[li].id();
            let wr_id = self.ingress.as_mut().expect("ingress shard").rbr.register(TENANT, token);
            let _ = self.net.post_recv(
                NodeId(self.ingress_node as u16),
                TENANT,
                RqEntry {
                    wr_id,
                    pool: pool_id,
                    capacity: BUF_SIZE,
                },
            );
        }
    }

    /// Route every frame the fabric egressed this step: into the mailbox
    /// of the destination node's shard (self-sends included — that is
    /// what makes arrival schedules partition-independent), keyed by the
    /// global source node id.
    fn route_egress(&mut self, now: Nanos, out: &mut Outbox<Packet>, step: &mut Step) {
        for t in step.egress.drain(..) {
            let dst = t.value.dst.raw() as usize;
            let src = t.value.src.raw() as u32;
            out.send(self.shard_of[dst] as usize, now + t.after, src, t.value);
        }
    }

    /// Schedule the effects of a Palladium engine step.
    fn apply_dne_step(&mut self, fx: &mut Effects<'_, Ev>, n: usize, step: &mut crate::dne::DneStep) {
        let (to_fn_transit, _) = self.fn_channel_costs();
        for t in step.drain(..) {
            match t.value {
                DneEffect::PostSend { dst_node, tenant, wr } => {
                    fx.after(
                        t.after,
                        Ev::PostSend {
                            n,
                            dst: dst_node,
                            tenant,
                            wr,
                        },
                    );
                }
                DneEffect::DeliverToFn { dst: _, desc } => {
                    fx.after(t.after + to_fn_transit, Ev::Deliver { n, desc });
                }
                DneEffect::ApplyDma { token, data, .. } => {
                    fx.after(t.after, Ev::ApplyDma { n, token, data });
                }
                DneEffect::ReleaseTxBuffer { token } => {
                    fx.after(t.after, Ev::ReleaseTx { n, token });
                }
                DneEffect::Replenish { n: cnt, .. } => {
                    fx.after(t.after, Ev::Replenish { n, cnt });
                }
                DneEffect::EngineSlot => {
                    fx.after(t.after, Ev::EngineSlot { n });
                }
                DneEffect::RouteMiss { .. } => {}
            }
        }
    }

    fn on_rdma_output(&mut self, now: Nanos, fx: &mut Effects<'_, Ev>, out: RdmaOutput) {
        match out {
            RdmaOutput::CqReady { node } => {
                let n = node.raw() as usize;
                let li = self.li(n);
                let mut cqes = std::mem::take(&mut self.cqe_scratch);
                cqes.clear();
                self.net.drain_cq_into(node, &mut cqes);
                if n == self.ingress_node {
                    for cqe in cqes.drain(..) {
                        self.on_ingress_cqe(now, fx, cqe);
                    }
                } else {
                    let mut step = std::mem::take(&mut self.dne_fx);
                    self.dnes[li]
                        .as_mut()
                        .expect("worker dne")
                        .drain_cq_into(now, &mut cqes, &mut step);
                    self.apply_dne_step(fx, n, &mut step);
                    self.dne_fx = step;
                }
                self.cqe_scratch = cqes;
            }
            RdmaOutput::RnrSeen { node, .. } => {
                let n = node.raw() as usize;
                if n == self.ingress_node {
                    self.replenish_ingress(32);
                } else {
                    self.replenish(n, 32);
                }
            }
            RdmaOutput::HeartbeatSeen { node, from, .. }
                if node.raw() as usize == self.ingress_node =>
            {
                let cost = self.rejoin.cost(self.worker_qps, self.pool_bytes);
                if let Some(ing) = self.ingress.as_mut() {
                    if let Some(h) = ing.health.as_mut() {
                        if h.heartbeat(from.raw() as usize, now) {
                            // Suspect → Rejoining: heartbeats resumed,
                            // but the worker re-enters routing only after
                            // paying the control-plane rejoin cost.
                            ing.recovered += 1;
                            if let Some(cx) = ing.chaosx.as_mut() {
                                let n = from.raw() as usize;
                                cx.rejoin_epoch[n] += 1;
                                let epoch = cx.rejoin_epoch[n];
                                fx.after(cost, Ev::RejoinDone { n, epoch });
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_ingress_cqe(&mut self, now: Nanos, fx: &mut Effects<'_, Ev>, cqe: Cqe) {
        let li = self.li(self.ingress_node);
        match cqe.kind {
            CqeKind::Recv => {
                // A response payload arrived from a worker.
                let Some((_, token)) = self.ingress.as_mut().expect("ingress shard").rbr.consume(cqe.wr_id)
                else {
                    return;
                };
                let (req, _, pair) = unword(&cqe.data);
                self.pools[li]
                    .dma_write_bytes(&token, cqe.data, MoveKind::RnicDma, &mut self.meters[li])
                    .expect("dma into ingress buffer");
                let _ = self.pools[li].free(token);
                let consumed = self.ingress.as_mut().expect("ingress shard").rbr.take_consumed(TENANT);
                self.replenish_ingress(consumed);
                let (req_bytes, resp_bytes) = {
                    let chain = self.chain(pair);
                    (chain.req_bytes as u64, chain.resp_bytes as u64)
                };
                let ing = self.ingress.as_mut().expect("ingress shard");
                let client = ing.reqs[req as usize].client;
                let (w, done) = ing.gw.submit(now, client, Leg::Outbound, req_bytes, resp_bytes);
                fx.at(done, Ev::GwOut { req, worker: w });
            }
            CqeKind::SendDone(_) => {
                if let Some(token) = self.ingress.as_mut().expect("ingress shard").tx.remove(cqe.wr_id.0) {
                    let _ = self.pools[li].free(token);
                }
            }
            CqeKind::ReadData => {}
        }
    }

    fn on_fn_done(&mut self, now: Nanos, fx: &mut Effects<'_, Ev>, n: usize, desc: BufDesc) {
        let li = self.li(n);
        // Consume the input buffer; the payload prefix carries the chain
        // position (see the module docs).
        let token = self.inbound_tokens[li]
            .remove(desc.buf_idx as usize)
            .expect("inbound token tracked");
        let (req, hop_idx, pair) = {
            let data = self.pools[li].read(&token);
            unword(data.expect("owned"))
        };
        let _ = self.pools[li].free(token);

        let f = desc.dst_fn;
        let (to, bytes) = {
            let chain = self.chain(pair);
            if hop_idx < chain.hops.len() {
                let h = chain.hops[hop_idx];
                debug_assert_eq!(h.from, f, "chain hop source mismatch");
                (h.to, h.bytes)
            } else {
                (INGRESS_FN, chain.resp_bytes)
            }
        };

        let dst_node = self.node_of(to);
        let word = if to == INGRESS_FN {
            word_of(req, 0, pair)
        } else {
            word_of(req, hop_idx + 1, pair)
        };
        let data = self.payloads.make(word, bytes);

        if dst_node == n && to != INGRESS_FN {
            // Local hop over SK_MSG: produce into a fresh buffer, pass the
            // descriptor — zero copies.
            let Ok(out) = self.pools[li].alloc(Owner::Function(f)) else {
                return;
            };
            self.pools[li].produce_bytes(&out, data).expect("sized buffer");
            let out_desc = self.pools[li].into_transit(out, f, to).expect("owned");
            let tok2 = self.pools[li]
                .redeem(&out_desc, Owner::Function(to))
                .expect("redeem local");
            self.inbound_tokens[li].insert(out_desc.buf_idx as usize, tok2);
            let send_cpu = self.skmsg.send_cpu;
            let transit = self.skmsg.transit;
            let send_done = self.on_fn_core(n, now, send_cpu);
            fx.at(send_done + transit, Ev::Deliver { n, desc: out_desc });
            return;
        }

        // Remote hop (or response to the ingress) over two-sided RDMA.
        let Ok(out) = self.pools[li].alloc(Owner::Function(f)) else {
            return;
        };
        self.pools[li].produce_bytes(&out, data).expect("sized buffer");
        let out_desc = self.pools[li].into_transit(out, f, to).expect("owned");
        let (transit, send_cpu) = self.fn_channel_costs();
        let send_done = self.on_fn_core(n, now, send_cpu);
        fx.at(send_done + transit, Ev::EngineRx { n, desc: out_desc });
    }
}

impl ShardEngine for ClusterShard {
    type Ev = Ev;
    type Msg = Packet;

    fn on_event(&mut self, now: Nanos, ev: Ev, fx: &mut Effects<'_, Ev>, out: &mut Outbox<Packet>) {
        match ev {
            Ev::Issue { client } => {
                let client_wire = self.cost.client_wire;
                let req = self.ingress.as_ref().expect("issue on ingress shard").reqs.len() as u64;
                let pair = self.choose_pair(req);
                let ing = self.ingress.as_mut().expect("issue on ingress shard");
                ing.reqs.push(ReqState {
                    client,
                    issued: now,
                    done: false,
                    pair,
                    deadline: Nanos::ZERO,
                    queued_at: Nanos::ZERO,
                    admitted_at: Nanos::ZERO,
                    attempts: 1,
                    inflight: false,
                    hint: 0,
                });
                let (req_bytes, resp_bytes) = {
                    let chain = self.chain(pair);
                    (chain.req_bytes as u64, chain.resp_bytes as u64)
                };
                let ing = self.ingress.as_mut().expect("issue on ingress shard");
                let arrive = now + client_wire;
                let (w, done) = ing.gw.submit(arrive, client, Leg::Inbound, req_bytes, resp_bytes);
                fx.at(done, Ev::GwIn { req, worker: w });
            }
            Ev::GwIn { req, worker } => {
                let ing = self.ingress.as_mut().expect("ingress shard");
                ing.gw.leg_done(worker);
                let pair = ing.reqs[req as usize].pair;
                let (entry, bytes) = {
                    let chain = self.chain(pair);
                    (chain.entry, chain.req_bytes)
                };
                let entry_node = self.node_of(entry);
                let li = self.li(self.ingress_node);
                // Early conversion: payload into a registered buffer, over
                // RDMA to the entry node's DNE. The word encodes hop 0.
                let data = self.payloads.make(word_of(req, 0, pair), bytes);
                let Ok(token) = self.pools[li].alloc(Owner::Ingress) else {
                    // Pool exhausted: shed the request, *attributed* — and
                    // in overload mode hand it to the retry budget.
                    self.shed_pool += 1;
                    self.overload_send_failed(now, fx, req);
                    return;
                };
                self.pools[li]
                    .write_bytes(&token, data.clone(), &mut self.meters[li])
                    .expect("sized buffer");
                let wr_id = WrId(self.ingress.as_mut().expect("ingress shard").tx.insert(token));
                let mut step = std::mem::take(&mut self.post_step);
                step.clear();
                let Some(qpn) = self
                    .ingress
                    .as_mut()
                    .expect("ingress shard")
                    .conns
                    .select(&self.net, NodeId(entry_node as u16), TENANT)
                else {
                    // Every QP to the entry node is errored (transport
                    // retry budget exhausted under chaos): shed the request
                    // instead of panicking; the health plane re-issues its
                    // client (closed loop) or the retry budget takes over
                    // (overload).
                    self.shed_qp += 1;
                    if let Some(tok) = self.ingress.as_mut().expect("ingress shard").tx.remove(wr_id.0)
                    {
                        let _ = self.pools[li].free(tok);
                    }
                    self.post_step = step;
                    self.overload_send_failed(now, fx, req);
                    return;
                };
                self.meters[li].record(MoveKind::RnicDma, data.len() as u64);
                let imm = pack_imm(INGRESS_FN, entry, TENANT);
                if self
                    .net
                    .post_send_into(
                        now,
                        NodeId(self.ingress_node as u16),
                        qpn,
                        WorkRequest::send(wr_id, data, imm),
                        &mut step,
                    )
                    .is_err()
                {
                    self.shed_qp += 1;
                    if let Some(tok) = self.ingress.as_mut().expect("ingress shard").tx.remove(wr_id.0)
                    {
                        let _ = self.pools[li].free(tok);
                    }
                    self.overload_send_failed(now, fx, req);
                }
                fx.extend_drain(&mut step.events, Ev::Rdma);
                self.route_egress(now, out, &mut step);
                self.post_step = step;
            }
            Ev::Rdma(rdma_ev) => {
                let mut step = std::mem::take(&mut self.rdma_step);
                step.clear();
                self.net.handle_into(now, rdma_ev, &mut step);
                fx.extend_drain(&mut step.events, Ev::Rdma);
                self.route_egress(now, out, &mut step);
                for o in step.outputs.drain(..) {
                    self.on_rdma_output(now, fx, o);
                }
                self.rdma_step = step;
            }
            Ev::EngineSlot { n } => {
                let li = self.li(n);
                let mut step = std::mem::take(&mut self.dne_fx);
                self.dnes[li].as_mut().expect("worker dne").on_engine_slot_into(now, &mut step);
                self.apply_dne_step(fx, n, &mut step);
                self.dne_fx = step;
            }
            Ev::PostSend { n, dst, tenant, wr } => {
                let li = self.li(n);
                self.meters[li].record(MoveKind::RnicDma, wr.payload.len() as u64);
                let mut step = std::mem::take(&mut self.post_step);
                step.clear();
                let Some(qpn) = self.dnes[li]
                    .as_mut()
                    .expect("worker dne")
                    .select_conn(&self.net, dst, tenant)
                else {
                    self.post_step = step;
                    return;
                };
                if self
                    .net
                    .post_send_into(now, NodeId(n as u16), qpn, wr, &mut step)
                    .is_err()
                {
                    // Errored QP (transport retries exhausted): shed the
                    // send — the ingress abandons and re-issues (closed
                    // loop) or retries within budget (overload) once the
                    // health plane reports the loss.
                    self.shed_qp += 1;
                }
                fx.extend_drain(&mut step.events, Ev::Rdma);
                self.route_egress(now, out, &mut step);
                self.post_step = step;
            }
            Ev::ApplyDma { n, token, data } => {
                let li = self.li(n);
                self.pools[li]
                    .dma_write_bytes(&token, data, MoveKind::RnicDma, &mut self.meters[li])
                    .expect("dma into posted buffer");
                self.pools[li]
                    .transfer(&token, Owner::Rnic, Owner::Engine)
                    .expect("rnic to engine");
                self.inbound_tokens[li].insert(token.idx() as usize, token);
            }
            Ev::Deliver { n, desc } => {
                let recv = self.fn_recv_cost();
                let exec = self.fn_exec(desc.dst_fn);
                let mut service = recv + exec;
                // Straggler windows scale the node's compute service time;
                // `chaos` is `None` on fault-free runs, leaving the
                // original path untouched.
                if let Some(ch) = &self.chaos {
                    let factor = ch.straggle_factor(n, now);
                    if factor != 1.0 {
                        service = service.scale(factor);
                    }
                }
                let done = self.on_fn_core(n, now, service);
                fx.at(done, Ev::FnDone { n, desc });
            }
            Ev::ReleaseTx { n, token } => {
                let li = self.li(n);
                let _ = self.pools[li].free(token);
            }
            Ev::Replenish { n, cnt } => {
                self.replenish(n, cnt);
            }
            Ev::EngineRx { n, desc } => {
                let li = self.li(n);
                let token = self.pools[li]
                    .redeem(&desc, Owner::Engine)
                    .expect("fn handed off buffer");
                let data = self.pools[li].read_bytes(&token).expect("owned");
                let mut step = std::mem::take(&mut self.dne_fx);
                self.dnes[li]
                    .as_mut()
                    .expect("worker dne")
                    .submit_tx_into(now, desc, data, Some(token), &mut step);
                self.apply_dne_step(fx, n, &mut step);
                self.dne_fx = step;
            }
            Ev::FnDone { n, desc } => {
                self.on_fn_done(now, fx, n, desc);
            }
            Ev::GwOut { req, worker } => {
                let client_wire = self.cost.client_wire;
                let alpha = self.gray.alpha;
                let ing = self.ingress.as_mut().expect("ingress shard");
                ing.gw.leg_done(worker);
                let finish = now + client_wire;
                let st = &mut ing.reqs[req as usize];
                if st.done {
                    return;
                }
                st.done = true;
                st.inflight = false;
                let issued = st.issued;
                let client = st.client;
                let pair = st.pair;
                let deadline = st.deadline;
                let admitted_at = st.admitted_at;
                ing.stats.complete(finish, issued);
                // Feed the pair's gray-failure score with the
                // end-to-end latency this request observed.
                if let Some(cx) = ing.chaosx.as_mut() {
                    cx.observe(alpha, pair, finish - issued);
                }
                if let Some(ov) = ing.overload.as_mut() {
                    // Open loop: release the in-flight slot, update the
                    // service estimate, classify against the deadline —
                    // and never re-issue.
                    ov.inflight = ov.inflight.saturating_sub(1);
                    let sample = (finish - admitted_at).as_nanos() as f64;
                    ov.est += 0.125 * (sample - ov.est);
                    ov.breaker_ok(now, pair);
                    if finish >= ov.warmup {
                        if finish <= deadline {
                            ov.goodput += 1;
                            if finish >= ov.recovery_lo {
                                ov.recovery_goodput += 1;
                            }
                        } else {
                            ov.late += 1;
                        }
                    }
                    if finish >= ov.ramp_lo && finish <= ov.ramp_hi {
                        ov.ramp.record(finish - issued);
                    }
                    self.drain_queue(now, fx);
                } else {
                    fx.at(finish, Ev::Issue { client });
                }
            }
            Ev::HeartbeatTick { n, seq } => {
                // Probe the ingress and reschedule. A crashed node keeps
                // "sending" — its frames die at the destination's
                // partition check, which is exactly what lets the ingress
                // miss them. Scheduled only when chaos is on.
                let mut step = std::mem::take(&mut self.post_step);
                step.clear();
                self.net.send_heartbeat_into(
                    now,
                    NodeId(n as u16),
                    NodeId(self.ingress_node as u16),
                    seq,
                    &mut step,
                );
                fx.extend_drain(&mut step.events, Ev::Rdma);
                self.route_egress(now, out, &mut step);
                self.post_step = step;
                fx.after(self.heartbeat_period, Ev::HeartbeatTick { n, seq: seq + 1 });
            }
            Ev::HealthCheck => {
                let loss_penalty = self.gray.loss_penalty;
                let alpha = self.gray.alpha;
                let mut newly = std::mem::take(&mut self.health_scratch);
                newly.clear();
                {
                    let ing = self.ingress.as_mut().expect("health check on ingress shard");
                    ing.health
                        .as_mut()
                        .expect("chaos run")
                        .check_into(now, &mut newly);
                    ing.suspected += newly.len() as u64;
                }
                // Abandon in-flight requests whose pair lost a node:
                // closed-loop runs re-issue their clients against a
                // surviving pair; overload runs hand the loss to the retry
                // budget (and charge the pair's breaker). Scanning `reqs`
                // in index order keeps the accounting (and the retry
                // schedule) deterministic.
                let mut lost = std::mem::take(&mut self.lost_scratch);
                lost.clear();
                for s in &newly {
                    let pair = s.node / 2;
                    let ing = self.ingress.as_mut().expect("ingress shard");
                    if let Some(cx) = ing.chaosx.as_mut() {
                        cx.suspected_at[s.node] = now;
                        if s.was_rejoining {
                            // Crashed mid-rejoin: void the pending
                            // completion so a stale RejoinDone cannot
                            // re-admit a silent worker.
                            cx.rejoins_aborted += 1;
                            cx.rejoin_epoch[s.node] += 1;
                        }
                    }
                    let overload_on = ing.overload.is_some();
                    for req in 0..ing.reqs.len() {
                        let st = &mut ing.reqs[req];
                        if overload_on {
                            // Only *admitted* requests ride the lost pair;
                            // queued and backing-off ones have no live
                            // attempt to abandon.
                            if st.inflight && st.pair == pair {
                                st.inflight = false;
                                ing.inflight_lost += 1;
                                if let Some(cx) = ing.chaosx.as_mut() {
                                    cx.observe(alpha, pair, loss_penalty);
                                }
                                let ov = ing.overload.as_mut().unwrap();
                                ov.inflight = ov.inflight.saturating_sub(1);
                                ov.breaker_fail(now, pair);
                                lost.push(req as u64);
                            }
                        } else if !st.done && st.pair == pair {
                            st.done = true;
                            ing.inflight_lost += 1;
                            let client = st.client;
                            // A lost request is the worst latency signal
                            // there is — charge it to the pair's score.
                            if let Some(cx) = ing.chaosx.as_mut() {
                                cx.observe(alpha, pair, loss_penalty);
                            }
                            fx.at(now, Ev::Issue { client });
                        }
                    }
                }
                for &req in &lost {
                    self.fail_or_retry(now, fx, req);
                }
                if !lost.is_empty() {
                    self.drain_queue(now, fx);
                }
                self.lost_scratch = lost;
                self.health_scratch = newly;
                self.gray_sweep();
                fx.after(self.heartbeat_period, Ev::HealthCheck);
            }
            Ev::RejoinDone { n, epoch } => {
                let ing = self.ingress.as_mut().expect("rejoin on ingress shard");
                let (Some(h), Some(cx)) = (ing.health.as_mut(), ing.chaosx.as_mut()) else {
                    return;
                };
                // Stale completions (epoch mismatch after a crash
                // mid-rejoin) and already-resolved workers are no-ops.
                if cx.rejoin_epoch[n] == epoch
                    && h.state(n) == WorkerState::Rejoining
                    && h.rejoin_complete(n)
                {
                    cx.rejoins += 1;
                    cx.ttr.record(now - cx.suspected_at[n]);
                }
            }
            Ev::Arrive => {
                // One open-loop arrival: materialize the pre-drawn request,
                // pump the next one, and run the admission pipeline.
                let req = {
                    let ing = self.ingress.as_mut().expect("arrivals on ingress shard");
                    let ov = ing.overload.as_mut().expect("overload mode");
                    let a = ov.next;
                    debug_assert_eq!(a.at, now, "arrival lands at its drawn time");
                    let nxt = ov.gen.next_arrival();
                    ov.next = nxt;
                    fx.at(nxt.at, Ev::Arrive);
                    if now >= ov.warmup {
                        ov.offered += 1;
                    }
                    let deadline = now + ov.ov.deadline;
                    let hint = ov.route.get(a.fn_id as usize).copied().unwrap_or(0);
                    let req = ing.reqs.len() as u64;
                    ing.reqs.push(ReqState {
                        client: a.fn_id as usize,
                        issued: now,
                        done: false,
                        pair: 0,
                        deadline,
                        queued_at: Nanos::ZERO,
                        admitted_at: Nanos::ZERO,
                        attempts: 1,
                        inflight: false,
                        hint,
                    });
                    req
                };
                self.try_admit(now, fx, req);
            }
            Ev::Retry { req } => {
                let done = {
                    let ing = self.ingress.as_mut().expect("retry on ingress shard");
                    ing.reqs[req as usize].done
                };
                if !done {
                    self.try_admit(now, fx, req);
                }
            }
            Ev::ScaleTick => {
                let total_pairs = self.pairs;
                let ing = self.ingress.as_mut().expect("scale tick on ingress shard");
                let ov = ing.overload.as_mut().expect("overload mode");
                let Some(pol) = ov.ov.autoscale else {
                    return;
                };
                // Evaluation pauses while an activation is paying its bill
                // — scale-out in progress is its own cooldown.
                if ov.activating == 0 {
                    let denom =
                        (ov.active_pairs as u64 * pol.target_inflight_per_pair).max(1) as f64;
                    let util = (ov.inflight + ov.queue.len() as u64) as f64 / denom;
                    let scaler = ov.scaler.as_mut().expect("autoscale on");
                    match scaler.evaluate_at(now, util) {
                        ScaleAction::Up => {
                            // The new pair is wired (QPNs are invariant)
                            // but must pay the control-plane bill — full
                            // rejoin, or a leased warm worker's fraction —
                            // before serving.
                            ov.activating = 1;
                            let full = ov.scaleout_bill;
                            let bill = if ov.leases_left > 0 {
                                ov.leases_left -= 1;
                                ov.lease_hits += 1;
                                full.scale(pol.lease_fraction)
                            } else {
                                ov.rejoin_bills += 1;
                                full
                            };
                            fx.after(
                                bill.max(Nanos(1)),
                                Ev::ScaleOutDone { pair: ov.active_pairs },
                            );
                        }
                        ScaleAction::Down => {
                            debug_assert!(ov.active_pairs > 1, "scaler min bounds this");
                            ov.active_pairs = (ov.active_pairs - 1).min(total_pairs).max(1);
                            ov.scale_downs += 1;
                        }
                        ScaleAction::Hold => {}
                    }
                }
                fx.after(pol.scaler.eval_interval, Ev::ScaleTick);
            }
            Ev::ScaleOutDone { pair } => {
                let total_pairs = self.pairs;
                {
                    let ing = self.ingress.as_mut().expect("scale-out on ingress shard");
                    let ov = ing.overload.as_mut().expect("overload mode");
                    ov.active_pairs = (pair + 1).min(total_pairs);
                    ov.activating = 0;
                    ov.scale_ups += 1;
                }
                // New capacity: refill the in-flight window immediately.
                self.drain_queue(now, fx);
            }
        }
    }

    #[inline]
    fn lift(&mut self, _at: Nanos, _src: u32, msg: Packet) -> Ev {
        Ev::Rdma(RdmaEvent::Arrive { pkt: msg })
    }
}

/// Establish `count` RC connections from global node `a` to `b` — within
/// one fabric instance when both live on the same shard, across two
/// instances otherwise — adopting the local endpoints into `pool`. Every
/// wiring call site runs in one canonical global order, so each RNIC's
/// QP-creation sequence (and therefore every QPN) is identical at every
/// shard count.
fn warm_conns(
    pool: &mut ConnPool,
    nets: &mut [RdmaNet],
    part: &Partition,
    a: usize,
    b: usize,
    count: usize,
) {
    let (na, nb) = (NodeId(a as u16), NodeId(b as u16));
    let (sa, sb) = (part.shard_of(a), part.shard_of(b));
    for _ in 0..count {
        let (qa, _qb) = if sa == sb {
            nets[sa].connect_immediate(na, nb, TENANT)
        } else if sa < sb {
            let (left, right) = nets.split_at_mut(sb);
            RdmaNet::connect_pair_immediate(&mut left[sa], na, &mut right[0], nb, TENANT)
        } else {
            let (left, right) = nets.split_at_mut(sa);
            RdmaNet::connect_pair_immediate(&mut right[0], na, &mut left[sb], nb, TENANT)
        };
        pool.adopt(nb, TENANT, qa);
    }
}

/// The sharded Fig 16 / Fig 14 cluster simulation.
pub struct ClusterShardedSim {
    cfg: ClusterShardedConfig,
}

impl ClusterShardedSim {
    /// Build a run. Panics unless `cfg.system` is a Palladium variant
    /// (the sharded cluster models the paper's data plane only; the
    /// baselines keep the serial three-node driver).
    pub fn new(cfg: ClusterShardedConfig) -> Self {
        let spec = cfg.system.spec();
        assert_eq!(
            spec.inter_node,
            InterNode::TwoSidedRdma,
            "sharded cluster is Palladium-only (two-sided RDMA inter-node path)"
        );
        assert_eq!(
            spec.ingress,
            IngressKind::Palladium,
            "sharded cluster is Palladium-only (early-conversion ingress)"
        );
        assert!(cfg.clients >= 1, "need at least one client");
        let _ = cfg.window(); // validate window × stride ≤ frame lookahead
        ClusterShardedSim { cfg }
    }

    /// Total nodes: `2·pairs` workers plus the ingress.
    pub fn nodes(&self) -> usize {
        2 * self.cfg.pairs + 1
    }

    /// Run partitioned over `shards` shards in the given execution mode.
    /// Reports are bit-identical across shard counts and execution modes
    /// (see the module docs; `tests/cluster_sharded.rs` pins it).
    pub fn run(&self, shards: usize, execution: Execution) -> ClusterShardedReport {
        let cfg = &self.cfg;
        let n_nodes = self.nodes();
        let ingress_node = 2 * cfg.pairs;
        assert!(shards >= 1 && shards <= n_nodes, "1..=nodes shards");
        let part = Partition::new(n_nodes, shards);
        let spec = cfg.system.spec();
        let cost = CostModel::default();
        let mut rdma_cfg = RdmaConfig::default();
        let chaos = cfg.chaos.as_ref().map(|script| script.compile(n_nodes));
        if chaos.is_some() {
            // Chaos runs must survive multi-millisecond partitions:
            // at the default rto (500 µs) the stock retry budget (7)
            // gives up after ~3.5 ms of outage and kills the QP. Raise
            // it so go-back-N redelivers once the window ends; failover
            // comes from the health plane, not from QP suicide. An
            // overload config can bound the transport budget instead —
            // the undying loop is what turns a transient fault into a
            // retry-storm metastable failure.
            let limit = cfg
                .overload
                .as_ref()
                .map(|o| o.retry.transport_retry.unwrap_or(UNDYING_RETRY))
                .unwrap_or(UNDYING_RETRY);
            rdma_cfg.retry_limit = limit;
            rdma_cfg.rnr_retry_limit = limit;
        }

        // Per-shard fabric spans in sharded-egress mode. Every instance
        // gets the *same* seed: fault RNG streams are derived per global
        // node id inside the fabric ([`palladium_simnet::SimRng::stream`]),
        // so verdict sequences — and therefore faulty runs — are
        // identical at every shard count.
        let mut nets: Vec<RdmaNet> = (0..shards)
            .map(|s| {
                let mut net = RdmaNet::with_span(rdma_cfg, part.range(s), cfg.seed);
                net.set_sharded_egress(true);
                if let Some(ch) = &chaos {
                    // Full-fabric partition table on every instance (an
                    // arriving frame's source may live on any shard);
                    // per-node fault timelines only where owned.
                    net.set_down_windows(ch.down.clone());
                    for n in part.range(s) {
                        if !ch.faults[n].is_none() {
                            net.set_node_fault(NodeId(n as u16), ch.faults[n].clone());
                        }
                        // Directed gray links land on the destination's
                        // owning shard (faults apply at the destination
                        // port — same invariance discipline).
                        for (src, tl) in &ch.links[n] {
                            net.set_link_fault(NodeId(*src as u16), NodeId(n as u16), tl.clone());
                        }
                    }
                }
                net
            })
            .collect();

        // Pools + MR registration on the owning shard, global node order.
        let mut pools = Vec::with_capacity(n_nodes);
        for n in 0..n_nodes {
            let pool = UnifiedPool::new(PoolId(n as u16), TENANT, cfg.pool_bufs, BUF_SIZE);
            let mut exporter =
                MmapExporter::new(PoolId(n as u16), TENANT, Region::hugepages(pool.backing_len()));
            nets[part.shard_of(n)]
                .register_mr(NodeId(n as u16), &exporter.export_rdma())
                .expect("register pool MR");
            pools.push(pool);
        }

        // Placement and routing over the remapped function ids.
        let mut placement = IdTable::new();
        let mut fn_exec = IdTable::new();
        let mut coord = Coordinator::new();
        for f in &cfg.app.functions {
            placement.insert(f.id.raw() as usize, f.node);
            fn_exec.insert(f.id.raw() as usize, f.exec);
            coord.apply(DeployEvent::Created {
                f: f.id,
                tenant: TENANT,
                node: NodeId(f.node as u16),
            });
        }
        coord.apply(DeployEvent::Created {
            f: INGRESS_FN,
            tenant: TENANT,
            node: NodeId(ingress_node as u16),
        });

        // DNEs per worker node, in global node order.
        let mut dnes: Vec<Dne> = (0..2 * cfg.pairs)
            .map(|n| {
                let mut dne = Dne::new(
                    NodeId(n as u16),
                    spec.engine_loc,
                    cost,
                    spec.sched,
                    ConnPool::new(NodeId(n as u16), ConnPoolConfig::default()),
                );
                dne.routes = coord.tables_for(NodeId(n as u16));
                dne.register_tenant(TENANT, 1);
                dne
            })
            .collect();
        let mut ingress_conns = ConnPool::new(NodeId(ingress_node as u16), ConnPoolConfig::default());

        // Warm RC connections in one canonical global order (see
        // `warm_conns` on QPN invariance): per pair worker↔worker and
        // worker→ingress, then ingress→workers — the serial cluster's
        // sequence generalized over pairs.
        let cpp = ConnPoolConfig::default().conns_per_peer;
        for p in 0..cfg.pairs {
            let (w0, w1) = (2 * p, 2 * p + 1);
            warm_conns(&mut dnes[w0].pool, &mut nets, &part, w0, w1, cpp);
            warm_conns(&mut dnes[w1].pool, &mut nets, &part, w1, w0, cpp);
            warm_conns(&mut dnes[w0].pool, &mut nets, &part, w0, ingress_node, cpp);
            warm_conns(&mut dnes[w1].pool, &mut nets, &part, w1, ingress_node, cpp);
        }
        for p in 0..cfg.pairs {
            warm_conns(&mut ingress_conns, &mut nets, &part, ingress_node, 2 * p, cpp);
            warm_conns(&mut ingress_conns, &mut nets, &part, ingress_node, 2 * p + 1, cpp);
        }

        // Assemble the shard engines: distribute the per-node state along
        // the partition (shards and node blocks are both ascending, so
        // draining in order preserves global node order).
        let mut pool_it = pools.into_iter();
        let mut dne_it = dnes.into_iter();
        let mut ingress_state = Some(IngressState {
            gw: IngressGateway::new(IngressConfig::new(spec.ingress).with_fixed_workers(8), cost),
            rbr: crate::rbr::RbrTable::new(),
            conns: ingress_conns,
            tx: Slab::new(),
            reqs: Vec::new(),
            stats: RunStats::new(cfg.warmup),
            health: chaos
                .as_ref()
                .map(|_| HealthMonitor::new(2 * cfg.pairs, cfg.heartbeat_period, cfg.heartbeat_k)),
            suspected: 0,
            recovered: 0,
            inflight_lost: 0,
            reroutes: 0,
            chaosx: chaos.as_ref().map(|_| IngressChaos::new(2 * cfg.pairs, cfg.pairs)),
            overload: cfg.overload.as_ref().map(|o| {
                IngressOverload::new(
                    o.clone(),
                    cfg.pairs,
                    cfg.seed,
                    cfg.warmup,
                    cfg.warmup + cfg.duration,
                    cfg.rejoin.cost(2 * cpp, cfg.pool_bufs as u64 * BUF_SIZE as u64),
                )
            }),
        });
        // First arrival time + scale-tick interval, captured before the
        // ingress state moves into its shard.
        let overload_first = ingress_state.as_ref().and_then(|i| {
            i.overload
                .as_ref()
                .map(|o| (o.next.at, o.ov.autoscale.map(|p| p.scaler.eval_interval)))
        });
        let mut engines: Vec<ClusterShard> = Vec::with_capacity(shards);
        for (s, net) in nets.into_iter().enumerate() {
            let range = part.range(s);
            let mut shard = ClusterShard {
                lo: range.start,
                shard_of: part.shard_lookup(),
                ingress_node,
                pairs: cfg.pairs,
                chains: cfg.app.chains.clone(),
                placement: {
                    let mut t = IdTable::new();
                    for f in &cfg.app.functions {
                        t.insert(f.id.raw() as usize, f.node);
                    }
                    t
                },
                fn_exec: {
                    let mut t = IdTable::new();
                    for f in &cfg.app.functions {
                        t.insert(f.id.raw() as usize, f.exec);
                    }
                    t
                },
                cost,
                engine_loc: spec.engine_loc,
                comch: ChannelCosts::for_kind(ChannelKind::ComchE),
                skmsg: SkMsgCosts::default(),
                pools: Vec::new(),
                meters: Vec::new(),
                fn_cores: Vec::new(),
                dnes: Vec::new(),
                inbound_tokens: Vec::new(),
                net,
                ingress: None,
                chaos: chaos.clone(),
                heartbeat_period: cfg.heartbeat_period,
                rejoin: cfg.rejoin,
                gray: cfg.gray,
                worker_qps: 2 * cpp,
                pool_bytes: cfg.pool_bufs as u64 * BUF_SIZE as u64,
                shed_qp: 0,
                shed_pool: 0,
                lost_scratch: Vec::new(),
                health_scratch: Vec::new(),
                rdma_step: Step::default(),
                post_step: Step::default(),
                cqe_scratch: Vec::new(),
                dne_fx: Vec::new(),
                payloads: PayloadCache::new(),
            };
            for n in range.clone() {
                shard.pools.push(pool_it.next().expect("pool per node"));
                shard.meters.push(CopyMeter::new());
                shard.inbound_tokens.push(IdTable::new());
                if n == ingress_node {
                    shard.fn_cores.push(None);
                    shard.dnes.push(None);
                    shard.ingress = ingress_state.take();
                } else {
                    shard.fn_cores.push(Some(ServerBank::new(&format!("w{n}-host"), 38)));
                    shard.dnes.push(Some(dne_it.next().expect("dne per worker")));
                }
            }
            // Prime receive queues (node-local work, shard-count-invariant).
            for n in range {
                if n == ingress_node {
                    shard.replenish_ingress(INITIAL_RQ);
                } else {
                    shard.replenish(n, INITIAL_RQ);
                }
            }
            engines.push(shard);
        }

        let scfg = ShardConfig::new(shards, cfg.window())
            .stride(cfg.stride)
            .execution(execution);
        let deadline = cfg.warmup + cfg.duration;
        let clients = cfg.clients;
        let ingress_shard = part.shard_of(ingress_node);
        let chaos_on = chaos.is_some();
        let heartbeat_period = cfg.heartbeat_period;
        let run = run_sharded(
            &scfg,
            engines,
            |s, h| {
                if chaos_on {
                    // The health plane: per-worker probes on the owning
                    // shard, the suspicion sweep on the ingress shard.
                    // Never scheduled fault-free, so the fault-free event
                    // schedule (and its goldens) is untouched.
                    for n in part.range(s) {
                        if n != ingress_node {
                            h.schedule_at(Nanos::ZERO, Ev::HeartbeatTick { n, seq: 0 });
                        }
                    }
                }
                if s == ingress_shard {
                    if let Some((first, tick)) = overload_first {
                        // Open loop: arrivals come from the generator, not
                        // from completions — overload is reachable.
                        h.schedule_at(first, Ev::Arrive);
                        if let Some(interval) = tick {
                            h.schedule_at(interval, Ev::ScaleTick);
                        }
                    } else {
                        for client in 0..clients {
                            h.schedule_at(Nanos::ZERO, Ev::Issue { client });
                        }
                    }
                    if chaos_on {
                        h.schedule_at(heartbeat_period, Ev::HealthCheck);
                    }
                }
            },
            deadline,
        );

        // Fold the report in global node order (identical floats at every
        // shard count).
        let mut engines = run.engines;
        let mut worker_meter = CopyMeter::new();
        let mut cpu_pct = 0.0;
        let mut dpu_pct = 0.0;
        let horizon = deadline;
        for n in 0..n_nodes {
            if n == ingress_node {
                continue;
            }
            let e = &engines[part.shard_of(n)];
            let li = n - e.lo;
            worker_meter.merge(&e.meters[li]);
            let dne = e.dnes[li].as_ref().expect("worker dne");
            if spec.engine_loc == EngineLocation::Dpu {
                // Busy-polling DNE worker cores: 100% each (§4.3.1), plus
                // the core thread's useful time.
                dpu_pct += 100.0;
                dpu_pct += 100.0 * dne.core_thread.utilization(horizon);
            } else {
                cpu_pct += 100.0 * dne.worker_core.utilization(horizon);
                cpu_pct += 100.0 * dne.core_thread.utilization(horizon);
            }
        }
        // Fault/protocol counters fold in shard order; health/failover
        // counters live on the ingress. Both are deterministic per the
        // invariance discipline.
        let mut chaos_rep = ChaosReport::default();
        for e in &engines {
            chaos_rep.fault_drops += e.net.counters.get("drop");
            chaos_rep.crash_drops += e.net.counters.get("crash_drop");
            chaos_rep.corrupt += e.net.counters.get("corrupt");
            chaos_rep.rto += e.net.counters.get("rto");
            chaos_rep.shed_qp += e.shed_qp;
            chaos_rep.shed_pool += e.shed_pool;
        }
        let mut ing = engines[ingress_shard].ingress.take().expect("ingress state");
        chaos_rep.suspected = ing.suspected;
        chaos_rep.recovered = ing.recovered;
        chaos_rep.inflight_lost = ing.inflight_lost;
        chaos_rep.reroutes = ing.reroutes;
        if let Some(cx) = &ing.chaosx {
            chaos_rep.rejoins = cx.rejoins;
            chaos_rep.rejoins_aborted = cx.rejoins_aborted;
            if !cx.ttr.is_empty() {
                chaos_rep.ttr_p50 = cx.ttr.p50();
                chaos_rep.ttr_p99 = cx.ttr.p99();
            }
            chaos_rep.gray_demoted = cx.gray_demoted;
            chaos_rep.gray_restored = cx.gray_restored;
            chaos_rep.gray_reroutes = cx.gray_reroutes;
        }
        let mut overload_rep = OverloadReport::default();
        if let Some(ov) = &ing.overload {
            chaos_rep.shed_admission = ov.shed_admission;
            chaos_rep.shed_deadline = ov.shed_deadline;
            chaos_rep.shed_breaker = ov.shed_breaker;
            overload_rep = OverloadReport {
                offered: ov.offered,
                admitted: ov.admitted,
                goodput: ov.goodput,
                late: ov.late,
                recovery_goodput: ov.recovery_goodput,
                retries: ov.retries,
                retry_exhausted: ov.retry_exhausted,
                breaker_opens: ov.breaker_opens,
                breaker_closes: ov.breaker_closes,
                scale_ups: ov.scale_ups,
                scale_downs: ov.scale_downs,
                rejoin_bills: ov.rejoin_bills,
                lease_hits: ov.lease_hits,
                ramp_p99: if ov.ramp.is_empty() { Nanos::ZERO } else { ov.ramp.p99() },
            };
        }
        let (p50, p99, p999) = {
            let h = ing.stats.histogram();
            (h.p50(), h.p99(), h.p999())
        };
        let mean_latency = ing.stats.latency().mean();
        let load: LoadReport = ing.stats.report(cfg.duration);
        let chain = ChainReport {
            rps: load.rps,
            mean_latency,
            software_copy_bytes: worker_meter.sw_bytes,
            software_copy_ops: worker_meter.sw_ops,
            rnic_dma_bytes: worker_meter.rnic_dma_bytes,
            cpu_util_pct: cpu_pct,
            dpu_util_pct: dpu_pct,
            load,
        };
        ClusterShardedReport {
            chain,
            events: run.events,
            messages: run.messages,
            spilled: run.spilled,
            windows: run.windows,
            busy_ns: run.busy_ns,
            critical_path_ns: run.critical_path_ns,
            channels: run.channels,
            p50,
            p99,
            p999,
            chaos: chaos_rep,
            overload: overload_rep,
        }
    }
}
