//! The scaled multi-node chain workload: the cluster driver's traffic
//! pattern stretched to as many nodes as the machine has cores, running on
//! the conservative sharded runner ([`palladium_simnet::shard`]).
//!
//! The Fig 16 cluster driver models three nodes in exact detail (pools,
//! RC state machines, DNE scheduling). Palladium's headline results are
//! *cluster*-scale, though — Fig 14 drives a multi-node ingress through
//! scale-up/scale-down, Fig 16 runs a full boutique app — and related
//! systems (Swift, rFaaS) evaluate at node counts a single-threaded
//! simulation cannot reach in reasonable wall-clock. This driver is the
//! scale vehicle: `N` nodes, each with a node engine (the DNE RX path), a
//! function core and closed-loop clients, exchanging request chains over
//! the RDMA fabric's cost model. Node `v`'s requests visit
//! `v, v+s, v+2s, …` (stride `s` deliberately crossing shard boundaries)
//! and return to `v`, so partitioned runs generate *real* cross-shard
//! traffic on every hop.
//!
//! # Shard-count invariance
//!
//! The engine follows the discipline `palladium_simnet::shard` documents
//! for reports that are identical at **every** shard count, not merely
//! reproducible at one:
//!
//! * every inter-node message goes through the [`Outbox`] — same-shard
//!   destinations included — with the *global source node id* as the
//!   merge key, so arrival schedules are independent of the partition;
//! * local events only ever target the node that produced them;
//! * randomness is a per-node [`SimRng`] stream seeded from
//!   `(seed, node)`, consumed in that node's (invariant) arrival order;
//! * per-node [`RunStats`] fold in global node order.
//!
//! `--shards 1` therefore reproduces the exact bytes of every sharded
//! run (`prop_shard`/`sharded_chain.rs` pin this), and the hop delay is
//! always ≥ [`RdmaConfig::lookahead`], the window the runner synchronizes
//! on.

use palladium_rdma::RdmaConfig;
use palladium_simnet::{
    run_sharded, Effects, Execution, FifoServer, LoadReport, Nanos, Outbox, Partition, RunStats,
    ShardConfig, ShardEngine, SimRng,
};

/// Configuration of one scaled multi-node run.
#[derive(Clone, Debug)]
pub struct MultiNodeConfig {
    /// Simulated nodes (must exceed `hops · stride`'s wrap so no hop
    /// self-sends; validated at build).
    pub nodes: usize,
    /// Closed-loop clients issuing requests at each node.
    pub clients_per_node: usize,
    /// Forward hops per request (visited nodes beyond the origin); the
    /// response hop back to the origin is added on top.
    pub hops: usize,
    /// Node-index stride per forward hop. The default (7) is coprime with
    /// the default node count, so consecutive hops almost always cross
    /// shard blocks — the sharded runner earns nothing from locality.
    pub stride: usize,
    /// Payload bytes per hop.
    pub payload: u32,
    /// Mean function execution cost per hop (±10 % per-node jitter).
    pub exec: Nanos,
    /// Node-engine receive processing per arriving message.
    pub rx_cost: Nanos,
    /// Measurement window.
    pub duration: Nanos,
    /// Warm-up excluded from statistics.
    pub warmup: Nanos,
    /// Per-node RNG streams derive from this.
    pub seed: u64,
    /// Lookahead windows batched per barrier. Sound whenever
    /// `window_stride × rdma.lookahead() ≤ rdma.one_way(payload)` — every
    /// hop of this workload travels a full one-way fabric delay, so wider
    /// effective windows still cannot observe a same-window send
    /// (validated at build). Grid-equivalent to stride 1 modulo the
    /// frames-in-flight tail count; barriers drop by the stride factor.
    pub window_stride: u64,
    /// Fabric cost model: hop latency is `rdma.one_way(payload)` and the
    /// barrier window is `rdma.lookahead()`.
    pub rdma: RdmaConfig,
}

impl MultiNodeConfig {
    /// The benchmark shape at `nodes` nodes: saturating closed-loop load
    /// with microsecond-scale services, so each barrier window carries
    /// real work.
    pub fn scaled(nodes: usize) -> Self {
        MultiNodeConfig {
            nodes,
            clients_per_node: 8,
            hops: 4,
            stride: 7,
            payload: 1024,
            exec: Nanos::from_micros(1),
            rx_cost: Nanos::from_nanos(400),
            duration: Nanos::from_millis(60),
            warmup: Nanos::from_millis(10),
            seed: 77,
            window_stride: 1,
            rdma: RdmaConfig::default(),
        }
    }

    /// Set the closed-loop client count per node.
    pub fn clients(mut self, n: usize) -> Self {
        self.clients_per_node = n;
        self
    }

    /// Set the measurement window in milliseconds.
    pub fn duration_ms(mut self, ms: u64) -> Self {
        self.duration = Nanos::from_millis(ms);
        self
    }

    /// Set the warm-up in milliseconds.
    pub fn warmup_ms(mut self, ms: u64) -> Self {
        self.warmup = Nanos::from_millis(ms);
        self
    }

    /// Batch `n` lookahead windows per barrier (see
    /// [`MultiNodeConfig::window_stride`]; distinct from the node-index
    /// hop [`MultiNodeConfig::stride`]).
    pub fn window_stride(mut self, n: u64) -> Self {
        self.window_stride = n;
        self
    }

    /// The conservative window width a sharded run of this workload uses.
    pub fn lookahead(&self) -> Nanos {
        self.rdma.lookahead()
    }

    fn validate(&self) {
        assert!(self.nodes >= 2, "need at least two nodes");
        assert!(self.hops >= 1, "need at least one hop");
        assert!(self.window_stride >= 1, "need at least one window per barrier");
        assert!(
            self.lookahead().as_nanos() * self.window_stride
                <= self.rdma.one_way(self.payload as u64).as_nanos(),
            "window_stride {} × lookahead {} exceeds the {} B hop delay {}",
            self.window_stride,
            self.lookahead(),
            self.payload,
            self.rdma.one_way(self.payload as u64)
        );
        for leg in 1..=self.hops {
            assert!(
                !(leg * self.stride).is_multiple_of(self.nodes),
                "stride {} self-sends at leg {leg} of {} nodes",
                self.stride,
                self.nodes
            );
        }
    }
}

/// The report of one multi-node run, plus the sharding counters.
#[derive(Clone, Debug)]
pub struct MultiNodeReport {
    /// Merged throughput/latency over all nodes.
    pub load: LoadReport,
    /// Simulation events processed across all shards.
    pub events: u64,
    /// Cross-shard messages delivered through the mailboxes.
    pub messages: u64,
    /// Mailbox ring overflows (spills, not drops).
    pub spilled: u64,
    /// Window barriers executed.
    pub windows: u64,
    /// Per-shard run-phase wall nanoseconds.
    pub busy_ns: Vec<u64>,
    /// Modeled run-phase wall nanoseconds on one core per shard
    /// (`Σ_k max_s busy`); exact under [`Execution::Sequential`].
    pub critical_path_ns: u64,
}

/// One request chain in flight, carried inside every message/event.
#[derive(Clone, Copy, Debug)]
struct Hop {
    origin: u32,
    client: u32,
    issued: Nanos,
    /// Route position this message/event is heading to / executing at:
    /// `1..=hops` are forward legs, `hops + 1` is the response at the
    /// origin.
    leg: u8,
}

/// A cross-node message: the destination plus the chain state.
#[derive(Clone, Copy, Debug)]
struct Msg {
    dst: u32,
    m: Hop,
}

#[derive(Debug)]
enum Ev {
    /// A client (re-)issues a request at its node.
    Issue { node: u32, client: u32 },
    /// A message landed at `node` (fabric delivery done).
    Arrive { node: u32, m: Hop },
    /// Node-engine receive processing finished.
    EngineDone { node: u32, m: Hop },
    /// Function execution finished: forward the chain.
    FnDone { node: u32, m: Hop },
}

/// Per-node state: queueing servers, RNG stream, local stats.
struct Node {
    engine: FifoServer,
    core: FifoServer,
    rng: SimRng,
    stats: RunStats,
}

/// One shard: a contiguous block of nodes (see [`Partition`]).
struct NodeShard {
    lo: u32,
    nodes: Vec<Node>,
    /// Dense node → shard route table (divide-free per-send lookup).
    shard_of: Vec<u32>,
    /// Precomputed hop latency `rdma.one_way(payload)`.
    one_way: Nanos,
    exec: Nanos,
    rx_cost: Nanos,
    hops: u8,
    stride: u32,
    total_nodes: u32,
}

impl NodeShard {
    #[inline]
    fn node_mut(&mut self, id: u32) -> &mut Node {
        &mut self.nodes[(id - self.lo) as usize]
    }

    /// Route position `leg` of a chain originating at `origin`.
    #[inline]
    fn pos(&self, origin: u32, leg: u8) -> u32 {
        if u32::from(leg) > u32::from(self.hops) {
            origin
        } else {
            (origin + u32::from(leg) * self.stride) % self.total_nodes
        }
    }

    /// Emit the message for route position `m.leg` from `src`.
    fn send_next(&self, out: &mut Outbox<Msg>, now: Nanos, src: u32, m: Hop) {
        let dst = self.pos(m.origin, m.leg);
        debug_assert_ne!(dst, src, "validated routes never self-send");
        let at = now + self.one_way;
        out.send(self.shard_of[dst as usize] as usize, at, src, Msg { dst, m });
    }
}

impl ShardEngine for NodeShard {
    type Ev = Ev;
    type Msg = Msg;

    fn on_event(&mut self, now: Nanos, ev: Ev, fx: &mut Effects<'_, Ev>, out: &mut Outbox<Msg>) {
        match ev {
            Ev::Issue { node, client } => {
                let m = Hop { origin: node, client, issued: now, leg: 1 };
                self.send_next(out, now, node, m);
            }
            Ev::Arrive { node, m } => {
                let rx = self.rx_cost;
                let n = self.node_mut(node);
                let done = n.engine.submit(now, rx);
                n.engine.complete();
                fx.at(done, Ev::EngineDone { node, m });
            }
            Ev::EngineDone { node, m } => {
                if m.leg == self.hops + 1 {
                    // Response processed at the origin: complete and
                    // immediately re-issue (closed loop).
                    debug_assert_eq!(node, m.origin);
                    let n = self.node_mut(node);
                    n.stats.complete(now, m.issued);
                    fx.now_ev(Ev::Issue { node, client: m.client });
                } else {
                    let exec = self.exec;
                    let n = self.node_mut(node);
                    let service = n.rng.jitter(exec, 0.1);
                    let done = n.core.submit(now, service);
                    n.core.complete();
                    fx.at(done, Ev::FnDone { node, m });
                }
            }
            Ev::FnDone { node, m } => {
                let next = Hop { leg: m.leg + 1, ..m };
                self.send_next(out, now, node, next);
            }
        }
    }

    #[inline]
    fn lift(&mut self, _at: Nanos, _src: u32, msg: Msg) -> Ev {
        Ev::Arrive { node: msg.dst, m: msg.m }
    }
}

/// The scaled multi-node simulation.
pub struct MultiNodeSim {
    cfg: MultiNodeConfig,
}

impl MultiNodeSim {
    /// Build a run.
    pub fn new(cfg: MultiNodeConfig) -> Self {
        cfg.validate();
        MultiNodeSim { cfg }
    }

    /// Run partitioned over `shards` shards in the given execution mode
    /// and merge the per-node reports. Results are bit-identical across
    /// shard counts and execution modes (see the module docs).
    pub fn run(&self, shards: usize, execution: Execution) -> MultiNodeReport {
        let cfg = &self.cfg;
        let part = Partition::new(cfg.nodes, shards);
        let one_way = cfg.rdma.one_way(cfg.payload as u64);
        debug_assert!(one_way >= cfg.lookahead());

        let engines: Vec<NodeShard> = (0..shards)
            .map(|s| {
                let range = part.range(s);
                NodeShard {
                    lo: range.start as u32,
                    shard_of: part.shard_lookup(),
                    nodes: range
                        .map(|node| Node {
                            engine: FifoServer::new(format!("n{node}-engine")),
                            core: FifoServer::new(format!("n{node}-core")),
                            rng: SimRng::seed_from(
                                cfg.seed ^ (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                            ),
                            stats: RunStats::new(cfg.warmup),
                        })
                        .collect(),
                    one_way,
                    exec: cfg.exec,
                    rx_cost: cfg.rx_cost,
                    hops: cfg.hops as u8,
                    stride: cfg.stride as u32,
                    total_nodes: cfg.nodes as u32,
                }
            })
            .collect();

        let scfg = ShardConfig::new(shards, cfg.lookahead())
            .stride(cfg.window_stride)
            .execution(execution);
        let deadline = cfg.warmup + cfg.duration;
        let clients = cfg.clients_per_node;
        let run = run_sharded(
            &scfg,
            engines,
            |s, h| {
                // Deterministic stagger (independent of the partition) so
                // clients do not issue phase-locked.
                for node in part.range(s) {
                    for client in 0..clients {
                        let k = (node * clients + client) as u64;
                        h.schedule_at(
                            Nanos(k * 137),
                            Ev::Issue { node: node as u32, client: client as u32 },
                        );
                    }
                }
            },
            deadline,
        );

        // Fold per-node stats in global node order: engines arrive in
        // shard order and each shard's nodes are a contiguous ascending
        // block, so this concatenation *is* node order.
        let mut stats = RunStats::new(cfg.warmup);
        for shard in run.engines {
            for node in shard.nodes {
                stats.merge(node.stats);
            }
        }
        MultiNodeReport {
            load: stats.report(cfg.duration),
            events: run.events,
            messages: run.messages,
            spilled: run.spilled,
            windows: run.windows,
            busy_ns: run.busy_ns,
            critical_path_ns: run.critical_path_ns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MultiNodeConfig {
        let mut cfg = MultiNodeConfig::scaled(12);
        cfg.clients_per_node = 3;
        cfg.duration = Nanos::from_millis(4);
        cfg.warmup = Nanos::from_millis(1);
        cfg
    }

    /// Everything a report exposes, byte-comparably.
    fn fingerprint(r: &MultiNodeReport) -> String {
        format!(
            "rps={:016x} mean={} p99={} completed={} events={} messages={}",
            r.load.rps.to_bits(),
            r.load.mean_latency.as_nanos(),
            r.load.p99_latency.as_nanos(),
            r.load.completed,
            r.events,
            r.messages
        )
    }

    #[test]
    fn completes_requests_with_cross_shard_traffic() {
        let r = MultiNodeSim::new(small()).run(3, Execution::Sequential);
        assert!(r.load.completed > 200, "completed {}", r.load.completed);
        assert!(r.load.mean_latency >= Nanos::from_micros(20), "5 hops of fabric");
        // Every hop of every request crosses the mailboxes.
        assert!(r.messages > 5 * r.load.completed, "messages {}", r.messages);
        assert!(r.windows > 0 && r.events > 0);
        assert_eq!(r.spilled, 0, "default mailbox capacity must absorb a window");
    }

    #[test]
    fn shard_counts_and_execution_modes_agree_exactly() {
        let sim = MultiNodeSim::new(small());
        let reference = fingerprint(&sim.run(1, Execution::Sequential));
        for shards in [2usize, 3, 4] {
            for exec in [Execution::Sequential, Execution::Threads] {
                let r = sim.run(shards, exec);
                assert_eq!(
                    fingerprint(&r),
                    reference,
                    "{shards} shards / {exec:?} diverged from serial"
                );
            }
        }
    }

    #[test]
    fn hop_delay_always_honors_the_lookahead() {
        let cfg = small();
        assert!(cfg.rdma.one_way(cfg.payload as u64) >= cfg.lookahead());
    }

    #[test]
    #[should_panic(expected = "self-sends")]
    fn bad_stride_is_rejected() {
        // stride 6 at 12 nodes: leg 2 lands back on the origin.
        let mut cfg = small();
        cfg.stride = 6;
        let _ = MultiNodeSim::new(cfg);
    }

    #[test]
    fn window_striding_halves_barriers_without_changing_results() {
        // At 8 KB payloads one hop costs ≈2× the lookahead, so batching
        // two windows per barrier is sound — and must reproduce the same
        // physics with about half the barriers. (The raw mailbox frame
        // count is grid-tail-dependent and excluded; see `window_stride`.)
        let mut cfg = small();
        cfg.payload = 8192;
        let results = |r: &MultiNodeReport| {
            format!(
                "rps={:016x} mean={} p99={} completed={} events={}",
                r.load.rps.to_bits(),
                r.load.mean_latency.as_nanos(),
                r.load.p99_latency.as_nanos(),
                r.load.completed,
                r.events
            )
        };
        let plain = MultiNodeSim::new(cfg.clone()).run(3, Execution::Sequential);
        let strided = MultiNodeSim::new(cfg.window_stride(2)).run(3, Execution::Sequential);
        assert_eq!(results(&strided), results(&plain), "striding changed results");
        assert!(
            strided.windows <= plain.windows / 2 + 1,
            "stride 2 must halve the barrier count ({} vs {})",
            strided.windows,
            plain.windows
        );
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn oversized_window_stride_is_rejected() {
        // 1 KB hops (≈3.8 µs) cannot cover three 3.1 µs windows.
        let _ = MultiNodeSim::new(small().window_stride(3));
    }
}
