//! Simulation drivers — the compositions that regenerate the paper's
//! figures.
//!
//! Every driver is an [`palladium_simnet::Engine`] run by the shared
//! [`palladium_simnet::Harness`] trampoline: the driver owns only its
//! topology, workload and event alphabet; the clock, the batched event
//! loop and the [`LoadReport`] bookkeeping live in `palladium-simnet`.
//!
//! * [`channel`] — host↔DPU descriptor echo over Comch-E / Comch-P / TCP
//!   (Fig 9).
//! * [`ingress_sweep`] — external clients through one ingress design to an
//!   echo function (Fig 13) and the autoscaling time series (Fig 14).
//! * [`fairness`] — three tenants through one DNE, DWRR vs FCFS (Fig 15).
//! * [`chain`] — the full multi-node serverless cluster running function
//!   chains on any [`crate::system::SystemKind`] (Fig 16, Table 2); its
//!   event-level machinery lives in [`cluster`].
//! * [`multinode`] — the cluster traffic pattern scaled to N nodes on the
//!   conservative sharded runner (`palladium_simnet::shard`): one
//!   simulation kernel per core, deterministic cross-shard mailboxes.
//! * [`cluster_sharded`] — the full Fig 16 data plane (pools, RC state
//!   machines, DNEs, ingress gateway) replicated over worker-node pairs
//!   and partitioned across shards with one `RdmaNet` instance each;
//!   reports are bit-identical at every shard count.
//!
//! The cross-node echo driver for Figs 11–12 (on-path/off-path, RDMA
//! primitive selection) lives in `palladium-baselines` next to the
//! one-sided variants it compares; it runs on the same harness.

pub mod chain;
pub mod channel;
pub mod cluster;
pub mod cluster_sharded;
pub mod fairness;
pub mod ingress_sweep;
pub mod multinode;

// The shared report type moved down into the simulation kernel; drivers and
// downstream crates keep importing it from here.
pub use palladium_simnet::{LoadReport, RunStats};
