//! Simulation drivers — the compositions that regenerate the paper's
//! figures.
//!
//! Each driver owns a [`palladium_simnet::Sim`] with its own event enum,
//! instantiates the real substrate objects (pools, engines, schedulers, the
//! RDMA fabric, the ingress gateway) and runs closed-loop load against
//! them. Reports carry both rates and latency statistics plus the copy
//! meters that prove (or disprove) zero-copy behaviour.
//!
//! * [`channel`] — host↔DPU descriptor echo over Comch-E / Comch-P / TCP
//!   (Fig 9).
//! * [`ingress_sweep`] — external clients through one ingress design to an
//!   echo function (Fig 13) and the autoscaling time series (Fig 14).
//! * [`fairness`] — three tenants through one DNE, DWRR vs FCFS (Fig 15).
//! * [`chain`] — the full multi-node serverless cluster running function
//!   chains on any [`crate::system::SystemKind`] (Fig 16, Table 2).
//!
//! The cross-node echo driver for Figs 11–12 (on-path/off-path, RDMA
//! primitive selection) lives in `palladium-baselines` next to the
//! one-sided variants it compares.

pub mod chain;
pub mod channel;
pub mod fairness;
pub mod ingress_sweep;

/// A latency/throughput report shared by the drivers.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Completed requests per second over the measurement window.
    pub rps: f64,
    /// Mean end-to-end latency.
    pub mean_latency: palladium_simnet::Nanos,
    /// 99th percentile latency.
    pub p99_latency: palladium_simnet::Nanos,
    /// Requests completed in the window.
    pub completed: u64,
}
