//! The multi-node cluster engine behind the Fig 16 / Table 2 driver.
//!
//! [`Cluster`] is the event-level machinery of the full serverless
//! cluster: per-node pools and meters, the RDMA fabric, the DNEs (or the
//! baselines' generic engines), the ingress gateway and the request state.
//! It implements [`palladium_simnet::Engine`], so the shared harness runs
//! it; [`super::chain`] owns only the topology/workload types and the
//! public driver API.
//!
//! Everything on the request path is the real machinery built in this
//! workspace: requests allocate real buffers from per-tenant pools, payload
//! bytes really carry the request id end-to-end, ownership really moves by
//! token passing, inter-node hops run the full RC state machine in
//! [`palladium_rdma::RdmaNet`], the DNE really schedules with DWRR and
//! replenishes its RBR, and every software copy lands on a per-node
//! [`CopyMeter`] — the zero-copy claims are asserted, not assumed.

use bytes::Bytes;

use palladium_ipc::{ChannelCosts, ChannelKind, SkMsgCosts};
use palladium_membuf::{
    BufDesc, BufToken, CopyMeter, FnId, MmapExporter, MoveKind, NodeId, Owner, PayloadCache,
    PoolId, Region, TenantId, UnifiedPool,
};
use palladium_rdma::{
    Cqe, CqeKind, RdmaConfig, RdmaEvent, RdmaNet, RdmaOutput, RemoteAddr, RqEntry, Step,
    WorkRequest, WrId,
};
use palladium_simnet::{Effects, Engine, FifoServer, IdTable, Nanos, RunStats, ServerBank, Slab};
use palladium_tcpstack::{StackKind, TcpCostTable, TcpCosts};

use super::chain::{ChainReport, ChainSimConfig, ChainSpec, INGRESS_FN};
use super::LoadReport;
use crate::config::{CostModel, EngineLocation};
use crate::connpool::{ConnPool, ConnPoolConfig};
use crate::dne::{pack_imm, unpack_imm, Dne, DneEffect};
use crate::ingress::{IngressConfig, IngressGateway, Leg};
use crate::routing::{Coordinator, DeployEvent};
use crate::system::{IngressKind, InterNode, SystemKind};

const TENANT: TenantId = TenantId(1);
const N_WORKERS: usize = 2;
const INGRESS_NODE: usize = 2;
const POOL_BUFS: u32 = 4096;
const BUF_SIZE: u32 = 8192;
const INITIAL_RQ: u64 = 512;

fn req_of(data: &[u8]) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&data[..8]);
    u64::from_le_bytes(b)
}

#[derive(Debug)]
pub(crate) enum Ev {
    /// A client issues a request.
    Issue { client: usize },
    /// Ingress finished the inbound leg.
    GwIn { req: u64, worker: usize },
    /// Ingress finished the outbound leg.
    GwOut { req: u64, worker: usize },
    /// RDMA fabric sub-simulator event.
    Rdma(RdmaEvent),
    /// A Palladium engine core freed up.
    EngineSlot { n: usize },
    /// Engine TX processing done: post the WR (by value — the event
    /// queue's payload arena makes wide variants free to schedule).
    PostSend {
        n: usize,
        dst: NodeId,
        tenant: TenantId,
        wr: WorkRequest,
    },
    /// RNIC DMA application of received bytes.
    ApplyDma {
        n: usize,
        token: BufToken,
        data: Bytes,
    },
    /// Descriptor delivery to a function (after channel transit): charge
    /// receive + execute.
    Deliver { n: usize, desc: BufDesc },
    /// A transmitted buffer completed.
    ReleaseTx { n: usize, token: BufToken },
    /// Core-thread RQ replenishment.
    Replenish { n: usize, cnt: u64 },
    /// A function's hand-off reached the engine (Comch/SK_MSG transit done).
    EngineRx { n: usize, desc: BufDesc },
    /// Function finished executing on input `desc`.
    FnDone { n: usize, desc: BufDesc },
    /// Bytes on the intra-cluster TCP wire toward a node's engine.
    TcpWire {
        dst_n: usize,
        req: u64,
        from: FnId,
        to: FnId,
        bytes: u32,
    },
    /// Engine finished TCP receive processing: materialize the buffer.
    TcpRxDone {
        n: usize,
        req: u64,
        from: FnId,
        to: FnId,
        bytes: u32,
    },
    /// FUYAO receiver's poller noticed a one-sided write.
    FuyaoPickup {
        n: usize,
        slot: u32,
        imm: u64,
        data: Bytes,
    },
    /// FUYAO receiver engine finished the receiver-side copy.
    FuyaoCopied {
        n: usize,
        imm: u64,
        data: Bytes,
    },
    /// Worker engine finished the TCP transmit of the response leg.
    RespTcpTx { req: u64 },
    /// A generic-engine work item completed (backlog accounting).
    EngineRelease { n: usize },
}

struct ReqState {
    client: usize,
    issued: Nanos,
    hop: usize,
    done: bool,
}

/// The full cluster state machine (see module docs).
pub(crate) struct Cluster {
    cfg: ChainSimConfig,
    cost: CostModel,
    spec: crate::system::SystemSpec,
    chain: ChainSpec,
    /// Function → worker-node index, dense over the fn-id space (queried
    /// once per hop).
    placement: IdTable<usize>,

    // Resources.
    pools: Vec<UnifiedPool>,     // per worker node (0,1) + ingress (2)
    ded_pools: Vec<UnifiedPool>, // FUYAO dedicated RDMA pools per worker
    ded_slots: Vec<Vec<BufToken>>,
    ded_next: Vec<u32>,
    meters: Vec<CopyMeter>, // per node
    fn_cores: Vec<ServerBank>,
    engines: Vec<FifoServer>, // generic engines (non-Palladium)
    eng_load: Vec<u64>,
    dnes: Vec<Dne>, // Palladium engines (per worker)
    net: Option<RdmaNet>,
    gw: IngressGateway,
    ingress_rbr: crate::rbr::RbrTable,
    ingress_conns: ConnPool,
    /// Ingress-side TX buffers awaiting send completions; the WR id is the
    /// generation-checked slab key.
    ingress_tx: Slab<BufToken>,
    fuyao_conns: Vec<ConnPool>,
    /// FUYAO per-worker TX buffers awaiting write completions (slab-keyed
    /// WR ids, resolved on that worker's CQ only).
    fuyao_tx: Vec<Slab<BufToken>>,

    // Channel costs. The TCP tables are per-size-class lookups: every
    // payload size a run can charge (chain hops, request, response) is
    // precomputed at build, so the steady-state rx/tx charge is one dense
    // index.
    comch: ChannelCosts,
    skmsg: SkMsgCosts,
    worker_tcp: TcpCostTable,
    /// SPRIGHT's inter-node legs always ride the kernel stack, whatever
    /// the worker-side stack is.
    internode_tcp: TcpCostTable,

    // Request state.
    reqs: Vec<ReqState>,
    /// Per-node buffer-index → token for descriptors handed to functions.
    /// Unified-pool buffers index directly; FUYAO dedicated-pool buffers
    /// are offset by `POOL_BUFS` (the two ID spaces per node are disjoint).
    inbound_tokens: Vec<IdTable<BufToken>>,
    stats: RunStats,

    /// Per-function execution cost, dense over the fn-id space.
    fn_exec: IdTable<Nanos>,

    // Reused scratch so steady-state stepping does not allocate.
    rdma_step: Step,
    /// Separate step for `post_send_into` call sites — `rdma_step` is
    /// checked out while an `Ev::Rdma` event is being handled.
    post_step: Step,
    cqe_scratch: Vec<Cqe>,
    dne_fx: crate::dne::DneStep,
    /// Recycled request payloads (see [`PayloadCache`]).
    payloads: PayloadCache,
}

/// Dense inbound-token key for a buffer on one node (see
/// [`Cluster::inbound_tokens`]).
fn token_key(pool: PoolId, buf_idx: u32) -> usize {
    let base = if pool.raw() >= 10 { POOL_BUFS } else { 0 };
    base as usize + buf_idx as usize
}

impl Cluster {
    /// Build the cluster for `cfg`: pools, fabric, engines, routes,
    /// connections, gateway — everything up to (but excluding) the first
    /// client event.
    pub(crate) fn build(cfg: ChainSimConfig) -> Cluster {
        let cost = CostModel::default();
        let spec = cfg.system.spec();
        let chain = cfg.app.chains[cfg.chain_idx].clone();

        // Placement: per app spec, or all on node 0 for single-node systems.
        let mut placement = IdTable::new();
        for f in &cfg.app.functions {
            placement.insert(f.id.raw() as usize, if spec.single_node { 0 } else { f.node });
        }

        // Pools (+ mmap exports) per node.
        let mut pools = Vec::new();
        let mut exporters = Vec::new();
        for n in 0..=INGRESS_NODE {
            let pool = UnifiedPool::new(PoolId(n as u16), TENANT, POOL_BUFS, BUF_SIZE);
            let region = Region::hugepages(pool.backing_len());
            exporters.push(MmapExporter::new(PoolId(n as u16), TENANT, region));
            pools.push(pool);
        }

        // FUYAO dedicated pools (ids 10, 11).
        let needs_rdma = matches!(
            spec.inter_node,
            InterNode::TwoSidedRdma | InterNode::OneSidedRecvCopy
        );
        let mut ded_pools = Vec::new();
        let mut ded_exporters = Vec::new();
        if spec.inter_node == InterNode::OneSidedRecvCopy {
            for n in 0..N_WORKERS {
                let pool = UnifiedPool::new(PoolId(10 + n as u16), TENANT, 1024, BUF_SIZE);
                let region = Region::hugepages(pool.backing_len());
                ded_exporters.push(MmapExporter::new(PoolId(10 + n as u16), TENANT, region));
                ded_pools.push(pool);
            }
        }

        // The fabric.
        let mut net = needs_rdma.then(|| RdmaNet::new(RdmaConfig::default(), 3, cfg.seed));
        if let Some(net) = net.as_mut() {
            for (n, exporter) in exporters.iter_mut().enumerate() {
                net.register_mr(NodeId(n as u16), &exporter.export_rdma())
                    .expect("register pool MR");
            }
            for (n, exporter) in ded_exporters.iter_mut().enumerate() {
                net.register_mr(NodeId(n as u16), &exporter.export_rdma())
                    .expect("register dedicated MR");
            }
        }

        // FUYAO dedicated slots: tokens owned by the receiving engine.
        let mut ded_slots: Vec<Vec<BufToken>> = Vec::new();
        for pool in ded_pools.iter_mut() {
            let mut v = Vec::new();
            for _ in 0..pool.capacity() {
                v.push(pool.alloc(Owner::Engine).expect("dedicated slot"));
            }
            ded_slots.push(v);
        }

        // Routing.
        let mut coord = Coordinator::new();
        for f in &cfg.app.functions {
            coord.apply(DeployEvent::Created {
                f: f.id,
                tenant: TENANT,
                node: NodeId(*placement.get(f.id.raw() as usize).expect("placed") as u16),
            });
        }
        coord.apply(DeployEvent::Created {
            f: INGRESS_FN,
            tenant: TENANT,
            node: NodeId(INGRESS_NODE as u16),
        });

        // Palladium engines.
        let is_palladium = spec.inter_node == InterNode::TwoSidedRdma;
        let mut dnes = Vec::new();
        if is_palladium {
            for n in 0..N_WORKERS {
                let mut dne = Dne::new(
                    NodeId(n as u16),
                    spec.engine_loc,
                    cost,
                    spec.sched,
                    ConnPool::new(NodeId(n as u16), ConnPoolConfig::default()),
                );
                dne.routes = coord.tables_for(NodeId(n as u16));
                dne.register_tenant(TENANT, 1);
                dnes.push(dne);
            }
            // Warm RC connections: worker↔worker and worker↔ingress.
            let net = net.as_mut().expect("palladium uses the fabric");
            {
                let (d0, d1) = dnes.split_at_mut(1);
                d0[0].pool.warm_up(net, NodeId(1), TENANT);
                d1[0].pool.warm_up(net, NodeId(0), TENANT);
                d0[0].pool.warm_up(net, NodeId(INGRESS_NODE as u16), TENANT);
                d1[0].pool.warm_up(net, NodeId(INGRESS_NODE as u16), TENANT);
            }
        }

        // Ingress-side connections (early transport conversion).
        let mut ingress_conns =
            ConnPool::new(NodeId(INGRESS_NODE as u16), ConnPoolConfig::default());
        if is_palladium {
            let net = net.as_mut().expect("palladium uses the fabric");
            ingress_conns.warm_up(net, NodeId(0), TENANT);
            ingress_conns.warm_up(net, NodeId(1), TENANT);
        }

        // FUYAO engine-side connections.
        let mut fuyao_conns: Vec<ConnPool> = Vec::new();
        if spec.inter_node == InterNode::OneSidedRecvCopy {
            let net = net.as_mut().expect("fuyao uses the fabric");
            for n in 0..N_WORKERS {
                let mut p = ConnPool::new(NodeId(n as u16), ConnPoolConfig::default());
                p.warm_up(net, NodeId(1 - n as u16), TENANT);
                fuyao_conns.push(p);
            }
        }

        // Ingress gateway.
        let gw_workers = match spec.ingress {
            IngressKind::KernelDeferred => 24,
            _ => 8,
        };
        let gw = IngressGateway::new(
            IngressConfig::new(spec.ingress).with_fixed_workers(gw_workers),
            cost,
        );

        let worker_tcp = match cfg.system {
            SystemKind::Spright | SystemKind::FuyaoF => TcpCosts::for_kind(StackKind::FStack),
            _ => TcpCosts::for_kind(StackKind::Kernel),
        };
        // Every payload size this run can charge over TCP.
        let tcp_sizes = || {
            chain
                .hops
                .iter()
                .map(|h| h.bytes as u64)
                .chain([chain.req_bytes as u64, chain.resp_bytes as u64])
        };
        let worker_tcp = TcpCostTable::new(worker_tcp, tcp_sizes());
        let internode_tcp = TcpCostTable::new(TcpCosts::for_kind(StackKind::Kernel), tcp_sizes());

        let warmup = cfg.warmup;
        let mut cluster = Cluster {
            cost,
            spec,
            chain,
            placement,
            pools,
            ded_pools,
            ded_slots,
            ded_next: vec![0; N_WORKERS],
            meters: (0..=INGRESS_NODE).map(|_| CopyMeter::new()).collect(),
            fn_cores: (0..N_WORKERS)
                .map(|n| ServerBank::new(&format!("w{n}-host"), 38))
                .collect(),
            engines: (0..N_WORKERS)
                .map(|n| FifoServer::new(format!("w{n}-engine")))
                .collect(),
            eng_load: vec![0; N_WORKERS],
            dnes,
            net,
            gw,
            ingress_rbr: crate::rbr::RbrTable::new(),
            ingress_conns,
            ingress_tx: Slab::new(),
            fuyao_conns,
            fuyao_tx: (0..N_WORKERS).map(|_| Slab::new()).collect(),
            comch: ChannelCosts::for_kind(ChannelKind::ComchE),
            skmsg: SkMsgCosts::default(),
            worker_tcp,
            internode_tcp,
            reqs: Vec::new(),
            inbound_tokens: (0..=INGRESS_NODE).map(|_| IdTable::new()).collect(),
            stats: RunStats::new(warmup),
            fn_exec: {
                let mut t = IdTable::new();
                for f in &cfg.app.functions {
                    t.insert(f.id.raw() as usize, f.exec);
                }
                t
            },
            rdma_step: Step::default(),
            post_step: Step::default(),
            cqe_scratch: Vec::new(),
            dne_fx: Vec::new(),
            payloads: PayloadCache::new(),
            cfg,
        };

        // Prime receive queues.
        if is_palladium {
            for n in 0..N_WORKERS {
                cluster.replenish(n, INITIAL_RQ);
            }
            cluster.replenish_ingress(INITIAL_RQ);
        }

        cluster
    }

    /// One kick-off event per closed-loop client.
    pub(crate) fn initial_events(&self) -> impl Iterator<Item = Ev> {
        (0..self.cfg.clients).map(|client| Ev::Issue { client })
    }

    fn node_of(&self, f: FnId) -> usize {
        if f == INGRESS_FN {
            INGRESS_NODE
        } else {
            *self
                .placement
                .get(f.raw() as usize)
                .expect("placed function")
        }
    }

    fn fn_exec(&self, f: FnId) -> Nanos {
        *self.fn_exec.get(f.raw() as usize).expect("deployed function")
    }

    /// Charge work on a function core of worker `n`.
    fn on_fn_core(&mut self, n: usize, now: Nanos, service: Nanos) -> Nanos {
        let (idx, done) = self.fn_cores[n].submit(now, service);
        self.fn_cores[n].complete(idx);
        done
    }

    /// Charge work on the generic engine of worker `n` (with NightCore's
    /// kernel livelock where applicable). The caller must later call
    /// [`Cluster::engine_done`].
    fn on_engine(&mut self, n: usize, now: Nanos, base: Nanos) -> Nanos {
        let mut service = base;
        if self.spec.kind == SystemKind::NightCore {
            service += self.cost.kernel_livelock(self.eng_load[n]);
        }
        self.eng_load[n] += 1;
        let done = self.engines[n].submit(now, service);
        self.engines[n].complete();
        done
    }

    fn engine_done(&mut self, n: usize) {
        self.eng_load[n] = self.eng_load[n].saturating_sub(1);
    }

    /// Schedule the effects of a Palladium engine step, draining the
    /// reusable effect buffer.
    fn apply_dne_step(&mut self, fx: &mut Effects<'_, Ev>, n: usize, step: &mut crate::dne::DneStep) {
        let (to_fn_transit, _) = self.fn_channel_costs();
        for t in step.drain(..) {
            match t.value {
                DneEffect::PostSend { dst_node, tenant, wr } => {
                    fx.after(
                        t.after,
                        Ev::PostSend {
                            n,
                            dst: dst_node,
                            tenant,
                            wr,
                        },
                    );
                }
                DneEffect::DeliverToFn { dst: _, desc } => {
                    fx.after(t.after + to_fn_transit, Ev::Deliver { n, desc });
                }
                DneEffect::ApplyDma { token, data, .. } => {
                    fx.after(t.after, Ev::ApplyDma { n, token, data });
                }
                DneEffect::ReleaseTxBuffer { token } => {
                    fx.after(t.after, Ev::ReleaseTx { n, token });
                }
                DneEffect::Replenish { n: cnt, .. } => {
                    fx.after(t.after, Ev::Replenish { n, cnt });
                }
                DneEffect::EngineSlot => {
                    fx.after(t.after, Ev::EngineSlot { n });
                }
                DneEffect::RouteMiss { .. } => {}
            }
        }
    }

    /// Channel costs between functions and the Palladium engine:
    /// `(transit, host_send)` — Comch for the DNE, SK_MSG for the CNE.
    fn fn_channel_costs(&self) -> (Nanos, Nanos) {
        match self.spec.engine_loc {
            EngineLocation::Dpu => (self.comch.transit, self.comch.host_send_cpu),
            EngineLocation::Cpu => (self.skmsg.transit, self.skmsg.send_cpu),
        }
    }

    /// Host-side receive cost when the engine delivers to a function.
    fn fn_recv_cost(&self) -> Nanos {
        match self.spec.engine_loc {
            EngineLocation::Dpu => self.comch.host_recv_cpu,
            EngineLocation::Cpu => self.skmsg.recv_cpu,
        }
    }

    /// Replenish `cnt` receive buffers on worker `n`.
    fn replenish(&mut self, n: usize, cnt: u64) {
        for _ in 0..cnt {
            let Ok(token) = self.pools[n].alloc(Owner::Rnic) else {
                break;
            };
            let pool_id = self.pools[n].id();
            let wr_id = self.dnes[n].rbr.register(TENANT, token);
            let _ = self.net.as_mut().expect("rdma system").post_recv(
                NodeId(n as u16),
                TENANT,
                RqEntry {
                    wr_id,
                    pool: pool_id,
                    capacity: BUF_SIZE,
                },
            );
        }
    }

    /// Replenish ingress-side receive buffers.
    fn replenish_ingress(&mut self, cnt: u64) {
        for _ in 0..cnt {
            let Ok(token) = self.pools[INGRESS_NODE].alloc(Owner::Rnic) else {
                break;
            };
            let pool_id = self.pools[INGRESS_NODE].id();
            let wr_id = self.ingress_rbr.register(TENANT, token);
            let _ = self.net.as_mut().expect("rdma system").post_recv(
                NodeId(INGRESS_NODE as u16),
                TENANT,
                RqEntry {
                    wr_id,
                    pool: pool_id,
                    capacity: BUF_SIZE,
                },
            );
        }
    }

    fn on_rdma_output(&mut self, now: Nanos, fx: &mut Effects<'_, Ev>, out: RdmaOutput) {
        match out {
            RdmaOutput::CqReady { node } => {
                // One doorbell wakeup surfaces the whole CQ backlog: drain
                // everything into the reused scratch, then retire it as one
                // window (required for liveness — the doorbell stays down
                // until the CQ goes empty).
                let n = node.raw() as usize;
                let mut cqes = std::mem::take(&mut self.cqe_scratch);
                cqes.clear();
                self.net
                    .as_mut()
                    .expect("rdma")
                    .drain_cq_into(node, &mut cqes);
                if n != INGRESS_NODE && self.spec.inter_node == InterNode::TwoSidedRdma {
                    // Palladium engines take the batched path: the entire
                    // window feeds the DNE RX queue in one call, one kick.
                    let mut step = std::mem::take(&mut self.dne_fx);
                    self.dnes[n].drain_cq_into(now, &mut cqes, &mut step);
                    self.apply_dne_step(fx, n, &mut step);
                    self.dne_fx = step;
                } else {
                    for cqe in cqes.drain(..) {
                        if n == INGRESS_NODE {
                            self.on_ingress_cqe(now, fx, cqe);
                        } else if let CqeKind::SendDone(_) = cqe.kind {
                            // FUYAO: free the sender-side buffer on
                            // completion.
                            if let Some(token) = self.fuyao_tx[n].remove(cqe.wr_id.0) {
                                let _ = self.pools[n].free(token);
                            }
                        }
                    }
                }
                self.cqe_scratch = cqes;
            }
            RdmaOutput::WriteDelivered {
                node,
                addr,
                data,
                imm,
                ..
            } => {
                let n = node.raw() as usize;
                let slot = addr.buf_idx;
                // RNIC DMA into the dedicated pool slot.
                {
                    let token = &self.ded_slots[n][slot as usize];
                    self.ded_pools[n]
                        .dma_write_bytes(token, data.clone(), MoveKind::RnicDma, &mut self.meters[n])
                        .expect("dma into dedicated slot");
                }
                // The receiver's poller notices after half a poll period.
                fx.after(
                    self.cost.onesided_poll_interval / 2,
                    Ev::FuyaoPickup { n, slot, imm, data },
                );
            }
            RdmaOutput::RnrSeen { node, .. } => {
                let n = node.raw() as usize;
                if n == INGRESS_NODE {
                    self.replenish_ingress(32);
                } else if self.spec.inter_node == InterNode::TwoSidedRdma {
                    self.replenish(n, 32);
                }
            }
            _ => {}
        }
    }

    fn on_ingress_cqe(&mut self, now: Nanos, fx: &mut Effects<'_, Ev>, cqe: Cqe) {
        match cqe.kind {
            CqeKind::Recv => {
                // A response payload arrived from a worker.
                let Some((_, token)) = self.ingress_rbr.consume(cqe.wr_id) else {
                    return;
                };
                let req = req_of(&cqe.data);
                self.pools[INGRESS_NODE]
                    .dma_write_bytes(
                        &token,
                        cqe.data,
                        MoveKind::RnicDma,
                        &mut self.meters[INGRESS_NODE],
                    )
                    .expect("dma into ingress buffer");
                let _ = self.pools[INGRESS_NODE].free(token);
                let consumed = self.ingress_rbr.take_consumed(TENANT);
                self.replenish_ingress(consumed);
                let client = self.reqs[req as usize].client;
                let (w, done) = self.gw.submit(
                    now,
                    client,
                    Leg::Outbound,
                    self.chain.req_bytes as u64,
                    self.chain.resp_bytes as u64,
                );
                fx.at(done, Ev::GwOut { req, worker: w });
            }
            CqeKind::SendDone(_) => {
                if let Some(token) = self.ingress_tx.remove(cqe.wr_id.0) {
                    let _ = self.pools[INGRESS_NODE].free(token);
                }
            }
            CqeKind::ReadData => {}
        }
    }

    fn on_fn_done(&mut self, now: Nanos, fx: &mut Effects<'_, Ev>, n: usize, desc: BufDesc) {
        // Consume the input buffer.
        let token = self.inbound_tokens[n]
            .remove(token_key(desc.pool, desc.buf_idx))
            .expect("inbound token tracked");
        let req = {
            let data = if desc.pool.raw() >= 10 {
                self.ded_pools[n].read(&token)
            } else {
                self.pools[n].read(&token)
            };
            req_of(data.expect("owned"))
        };
        self.free_any(n, desc.pool, token);

        let st = &mut self.reqs[req as usize];
        let hop_idx = st.hop;
        st.hop += 1;
        let f = desc.dst_fn;

        let (to, bytes) = if hop_idx < self.chain.hops.len() {
            let h = self.chain.hops[hop_idx];
            debug_assert_eq!(h.from, f, "chain hop source mismatch");
            (h.to, h.bytes)
        } else {
            (INGRESS_FN, self.chain.resp_bytes)
        };

        let dst_node = self.node_of(to);
        let data = self.payloads.make(req, bytes);

        if dst_node == n && to != INGRESS_FN {
            // Local hop over SK_MSG: produce into a fresh buffer, pass the
            // descriptor — zero copies, for every system.
            let Ok(out) = self.pools[n].alloc(Owner::Function(f)) else {
                return;
            };
            self.pools[n].produce_bytes(&out, data).expect("sized buffer");
            let out_desc = self.pools[n].into_transit(out, f, to).expect("owned");
            let tok2 = self.pools[n]
                .redeem(&out_desc, Owner::Function(to))
                .expect("redeem local");
            self.inbound_tokens[n].insert(token_key(out_desc.pool, out_desc.buf_idx), tok2);
            let send_done = self.on_fn_core(n, now, self.skmsg.send_cpu);
            fx.at(
                send_done + self.skmsg.transit,
                Ev::Deliver { n, desc: out_desc },
            );
            return;
        }

        // Remote hop (or response to the ingress).
        match self.spec.inter_node {
            InterNode::TwoSidedRdma => {
                let Ok(out) = self.pools[n].alloc(Owner::Function(f)) else {
                    return;
                };
                self.pools[n].produce_bytes(&out, data).expect("sized buffer");
                let out_desc = self.pools[n].into_transit(out, f, to).expect("owned");
                let (transit, send_cpu) = self.fn_channel_costs();
                let send_done = self.on_fn_core(n, now, send_cpu);
                fx.at(send_done + transit, Ev::EngineRx { n, desc: out_desc });
            }
            InterNode::OneSidedRecvCopy => {
                if to == INGRESS_FN {
                    self.response_via_tcp(now, fx, n, req, bytes);
                    return;
                }
                // Local buffer holds the payload until the write completes.
                let Ok(out) = self.pools[n].alloc(Owner::Engine) else {
                    return;
                };
                self.pools[n]
                    .produce_bytes(&out, data.clone())
                    .expect("sized buffer");
                let send_done = self.on_fn_core(n, now, self.skmsg.send_cpu);
                let engine_done = self.on_engine(
                    n,
                    send_done + self.skmsg.transit,
                    self.cost.fuyao_engine_op,
                );
                fx.at(engine_done, Ev::EngineRelease { n });
                // Pick a dedicated slot on the destination.
                let slot = self.ded_next[dst_node] % self.ded_pools[dst_node].capacity();
                self.ded_next[dst_node] = self.ded_next[dst_node].wrapping_add(1);
                let wr_id = WrId(self.fuyao_tx[n].insert(out));
                self.meters[n].record(MoveKind::RnicDma, data.len() as u64);
                let imm = pack_imm(f, to, TENANT);
                let wr = WorkRequest::write(
                    wr_id,
                    data,
                    RemoteAddr {
                        pool: PoolId(10 + dst_node as u16),
                        buf_idx: slot,
                    },
                    imm,
                );
                let mut step = std::mem::take(&mut self.post_step);
                step.clear();
                let net = self.net.as_mut().expect("fuyao fabric");
                let Some(qpn) = self.fuyao_conns[n].select(net, NodeId(dst_node as u16), TENANT)
                else {
                    self.post_step = step;
                    return;
                };
                net.post_send_into(engine_done, NodeId(n as u16), qpn, wr, &mut step)
                    .expect("post one-sided write");
                // The doorbell rings when the engine finishes.
                fx.extend_at_drain(engine_done, &mut step.events, Ev::Rdma);
                self.post_step = step;
            }
            InterNode::KernelTcp => {
                if to == INGRESS_FN {
                    self.response_via_tcp(now, fx, n, req, bytes);
                    return;
                }
                // SPRIGHT: serialize out through the node engine over
                // kernel TCP — a software copy at each end.
                let send_done = self.on_fn_core(n, now, self.skmsg.send_cpu);
                let tx = self.internode_tcp.tx(bytes as u64);
                let done = self.on_engine(n, send_done + self.skmsg.transit, tx);
                fx.at(done, Ev::EngineRelease { n });
                self.meters[n].record(MoveKind::Software, bytes as u64);
                fx.at(
                    done + TcpCosts::INTER_NODE_WIRE,
                    Ev::TcpWire {
                        dst_n: dst_node,
                        req,
                        from: f,
                        to,
                        bytes,
                    },
                );
            }
            InterNode::None => {
                if to == INGRESS_FN {
                    self.response_via_tcp(now, fx, n, req, bytes);
                    return;
                }
                // NightCore: hops pass through its node-local gateway
                // over per-function pipes (syscalls both ways).
                let dispatch = Nanos::from_nanos(1_200);
                let done = self.on_engine(n, now, dispatch);
                fx.at(done, Ev::EngineRelease { n });
                let Ok(out) = self.pools[n].alloc(Owner::Engine) else {
                    return;
                };
                self.pools[n].produce_bytes(&out, data).expect("sized buffer");
                let out_desc = self.pools[n].into_transit(out, f, to).expect("owned");
                let tok2 = self.pools[n]
                    .redeem(&out_desc, Owner::Function(to))
                    .expect("redeem");
                self.inbound_tokens[n]
                    .insert(token_key(out_desc.pool, out_desc.buf_idx), tok2);
                fx.at(done + self.skmsg.transit, Ev::Deliver { n, desc: out_desc });
            }
        }
    }

    /// Response leg for the deferred-ingress systems: worker-side TCP
    /// transmit through the node engine, then the wire to the gateway.
    fn response_via_tcp(
        &mut self,
        now: Nanos,
        fx: &mut Effects<'_, Ev>,
        n: usize,
        req: u64,
        bytes: u32,
    ) {
        let send_done = self.on_fn_core(n, now, self.skmsg.send_cpu);
        let tx = self.worker_tcp.tx(bytes as u64);
        let done = self.on_engine(n, send_done, tx);
        fx.at(done, Ev::EngineRelease { n });
        self.meters[n].record(MoveKind::Software, bytes as u64);
        fx.at(done, Ev::RespTcpTx { req });
    }

    fn free_any(&mut self, n: usize, pool: PoolId, token: BufToken) {
        if pool.raw() >= 10 {
            let _ = self.ded_pools[n].free(token);
        } else {
            let _ = self.pools[n].free(token);
        }
    }

    /// Fold the run into the public [`ChainReport`].
    pub(crate) fn report(mut self, deadline: Nanos) -> ChainReport {
        let duration = self.cfg.duration;
        let mean_latency = self.stats.latency().mean();
        let load: LoadReport = self.stats.report(duration);
        let rps = load.rps;
        let mut worker_meter = CopyMeter::new();
        for n in 0..N_WORKERS {
            worker_meter.merge(&self.meters[n]);
        }

        // Data-plane utilization (percent of one core).
        let horizon = deadline;
        let mut cpu_pct = 0.0;
        let mut dpu_pct = 0.0;
        if self.spec.engine_loc == EngineLocation::Dpu
            && self.spec.inter_node == InterNode::TwoSidedRdma
        {
            // Busy-polling DNE worker cores: 100% each (§4.3.1), plus the
            // core thread's useful time.
            for dne in &self.dnes {
                dpu_pct += 100.0;
                dpu_pct += 100.0 * dne.core_thread.utilization(horizon);
            }
        } else {
            for dne in &self.dnes {
                cpu_pct += 100.0 * dne.worker_core.utilization(horizon);
                cpu_pct += 100.0 * dne.core_thread.utilization(horizon);
            }
        }
        for e in &self.engines {
            cpu_pct += 100.0 * e.utilization(horizon);
        }
        if self.spec.receiver_polls {
            // FUYAO pins a polling core on every worker node.
            cpu_pct += 100.0 * N_WORKERS as f64;
        }

        ChainReport {
            rps,
            mean_latency,
            software_copy_bytes: worker_meter.sw_bytes,
            software_copy_ops: worker_meter.sw_ops,
            rnic_dma_bytes: worker_meter.rnic_dma_bytes,
            cpu_util_pct: cpu_pct,
            dpu_util_pct: dpu_pct,
            load,
        }
    }
}

impl Engine for Cluster {
    type Ev = Ev;

    fn on_event(&mut self, now: Nanos, ev: Ev, fx: &mut Effects<'_, Ev>) {
        match ev {
            Ev::Issue { client } => {
                let req = self.reqs.len() as u64;
                self.reqs.push(ReqState {
                    client,
                    issued: now,
                    hop: 0,
                    done: false,
                });
                let arrive = now + self.cost.client_wire;
                let (w, done) = self.gw.submit(
                    arrive,
                    client,
                    Leg::Inbound,
                    self.chain.req_bytes as u64,
                    self.chain.resp_bytes as u64,
                );
                fx.at(done, Ev::GwIn { req, worker: w });
            }
            Ev::GwIn { req, worker } => {
                self.gw.leg_done(worker);
                let entry = self.chain.entry;
                let entry_node = self.node_of(entry);
                let bytes = self.chain.req_bytes;
                if self.spec.ingress == IngressKind::Palladium {
                    // Early conversion: payload into a registered buffer,
                    // over RDMA to the entry node's DNE.
                    let data = self.payloads.make(req, bytes);
                    let Ok(token) = self.pools[INGRESS_NODE].alloc(Owner::Ingress) else {
                        return; // pool exhausted: shed the request
                    };
                    // The TCP receive path copies the payload into the
                    // registered buffer (an ingress-side copy, not worker).
                    self.pools[INGRESS_NODE]
                        .write_bytes(&token, data.clone(), &mut self.meters[INGRESS_NODE])
                        .expect("sized buffer");
                    let wr_id = WrId(self.ingress_tx.insert(token));
                    let mut step = std::mem::take(&mut self.post_step);
                    step.clear();
                    let net = self.net.as_mut().expect("palladium fabric");
                    let qpn = self
                        .ingress_conns
                        .select(net, NodeId(entry_node as u16), TENANT)
                        .expect("warm ingress connection");
                    self.meters[INGRESS_NODE].record(MoveKind::RnicDma, data.len() as u64);
                    let imm = pack_imm(INGRESS_FN, entry, TENANT);
                    net.post_send_into(
                        now,
                        NodeId(INGRESS_NODE as u16),
                        qpn,
                        WorkRequest::send(wr_id, data, imm),
                        &mut step,
                    )
                    .expect("post ingress send");
                    fx.extend_drain(&mut step.events, Ev::Rdma);
                    self.post_step = step;
                } else {
                    // Deferred conversion: second TCP connection into the
                    // cluster; worker-side termination happens at arrival.
                    fx.after(
                        TcpCosts::INTER_NODE_WIRE,
                        Ev::TcpWire {
                            dst_n: entry_node,
                            req,
                            from: INGRESS_FN,
                            to: entry,
                            bytes,
                        },
                    );
                }
            }
            Ev::Rdma(rdma_ev) => {
                // Reuse one Step across the simulation: the fabric is the
                // dominant event source, so this path must not allocate.
                let mut step = std::mem::take(&mut self.rdma_step);
                step.clear();
                self.net
                    .as_mut()
                    .expect("rdma system")
                    .handle_into(now, rdma_ev, &mut step);
                fx.extend_drain(&mut step.events, Ev::Rdma);
                for out in step.outputs.drain(..) {
                    self.on_rdma_output(now, fx, out);
                }
                self.rdma_step = step;
            }
            Ev::EngineSlot { n } => {
                let mut step = std::mem::take(&mut self.dne_fx);
                self.dnes[n].on_engine_slot_into(now, &mut step);
                self.apply_dne_step(fx, n, &mut step);
                self.dne_fx = step;
            }
            Ev::PostSend { n, dst, tenant, wr } => {
                self.meters[n].record(MoveKind::RnicDma, wr.payload.len() as u64);
                let mut step = std::mem::take(&mut self.post_step);
                step.clear();
                let net = self.net.as_mut().expect("palladium fabric");
                let Some(qpn) = self.dnes[n].select_conn(net, dst, tenant) else {
                    self.post_step = step;
                    return;
                };
                net.post_send_into(now, NodeId(n as u16), qpn, wr, &mut step)
                    .expect("post dne send");
                fx.extend_drain(&mut step.events, Ev::Rdma);
                self.post_step = step;
            }
            Ev::ApplyDma { n, token, data } => {
                self.pools[n]
                    .dma_write_bytes(&token, data, MoveKind::RnicDma, &mut self.meters[n])
                    .expect("dma into posted buffer");
                self.pools[n]
                    .transfer(&token, Owner::Rnic, Owner::Engine)
                    .expect("rnic to engine");
                self.inbound_tokens[n].insert(token_key(token.pool(), token.idx()), token);
            }
            Ev::Deliver { n, desc } => {
                // Charge host-side receive + function execution, then run.
                let recv = self.fn_recv_cost();
                let exec = self.fn_exec(desc.dst_fn);
                let done = self.on_fn_core(n, now, recv + exec);
                fx.at(done, Ev::FnDone { n, desc });
            }
            Ev::ReleaseTx { n, token } => {
                let _ = self.pools[n].free(token);
            }
            Ev::Replenish { n, cnt } => {
                self.replenish(n, cnt);
            }
            Ev::EngineRx { n, desc } => {
                // Redeem the buffer for the engine and queue the TX.
                let token = self.pools[n]
                    .redeem(&desc, Owner::Engine)
                    .expect("fn handed off buffer");
                let data = self.pools[n].read_bytes(&token).expect("owned");
                let mut step = std::mem::take(&mut self.dne_fx);
                self.dnes[n].submit_tx_into(now, desc, data, Some(token), &mut step);
                self.apply_dne_step(fx, n, &mut step);
                self.dne_fx = step;
            }
            Ev::FnDone { n, desc } => {
                self.on_fn_done(now, fx, n, desc);
            }
            Ev::TcpWire {
                dst_n,
                req,
                from,
                to,
                bytes,
            } => {
                // Worker-side TCP receive processing on the node engine.
                let rx = self.worker_tcp.rx(bytes as u64);
                let done = self.on_engine(dst_n, now, rx);
                fx.at(
                    done,
                    Ev::TcpRxDone {
                        n: dst_n,
                        req,
                        from,
                        to,
                        bytes,
                    },
                );
            }
            Ev::TcpRxDone {
                n,
                req,
                from,
                to,
                bytes,
            } => {
                self.engine_done(n);
                // The TCP receive copies payload into the node-local pool.
                let Ok(token) = self.pools[n].alloc(Owner::Engine) else {
                    return;
                };
                let data = self.payloads.make(req, bytes);
                self.pools[n]
                    .write_bytes(&token, data, &mut self.meters[n])
                    .expect("sized buffer");
                let desc = self.pools[n]
                    .into_transit(token, from, to)
                    .expect("engine owned");
                let tok2 = self.pools[n]
                    .redeem(&desc, Owner::Function(to))
                    .expect("redeem for fn");
                self.inbound_tokens[n].insert(token_key(desc.pool, desc.buf_idx), tok2);
                fx.after(self.skmsg.transit, Ev::Deliver { n, desc });
            }
            Ev::FuyaoPickup { n, slot, imm, data } => {
                // Receiver engine: polling pickup + the OWRC receiver-side
                // copy from the dedicated pool into the local pool.
                let copy =
                    self.cost.fuyao_engine_op + self.cost.owrc_copy(data.len() as u64, true);
                let done = self.on_engine(n, now, copy);
                let _ = slot;
                fx.at(done, Ev::FuyaoCopied { n, imm, data });
            }
            Ev::FuyaoCopied { n, imm, data } => {
                self.engine_done(n);
                let (from, to, _) = unpack_imm(imm);
                let Ok(token) = self.pools[n].alloc(Owner::Engine) else {
                    return;
                };
                self.pools[n]
                    .write_bytes(&token, data, &mut self.meters[n])
                    .expect("receiver-side copy");
                let desc = self.pools[n]
                    .into_transit(token, from, to)
                    .expect("engine owned");
                let tok2 = self.pools[n]
                    .redeem(&desc, Owner::Function(to))
                    .expect("redeem for fn");
                self.inbound_tokens[n].insert(token_key(desc.pool, desc.buf_idx), tok2);
                fx.after(self.skmsg.transit, Ev::Deliver { n, desc });
            }
            Ev::RespTcpTx { req } => {
                // Response reached the ingress over TCP: outbound leg.
                let client = self.reqs[req as usize].client;
                let (w, done) = self.gw.submit(
                    now + TcpCosts::INTER_NODE_WIRE,
                    client,
                    Leg::Outbound,
                    self.chain.req_bytes as u64,
                    self.chain.resp_bytes as u64,
                );
                fx.at(done, Ev::GwOut { req, worker: w });
            }
            Ev::EngineRelease { n } => {
                self.engine_done(n);
            }
            Ev::GwOut { req, worker } => {
                self.gw.leg_done(worker);
                let finish = now + self.cost.client_wire;
                let st = &mut self.reqs[req as usize];
                if !st.done {
                    st.done = true;
                    let issued = st.issued;
                    let client = st.client;
                    self.stats.complete(finish, issued);
                    fx.at(finish, Ev::Issue { client });
                }
            }
        }
    }
}
