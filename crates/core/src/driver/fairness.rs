//! Fig 15 driver: multi-tenant RDMA fairness through the DNE.
//!
//! Three tenants, each a client/server function pair across two worker
//! nodes, compete for one DNE sustaining ≈110 K RPS on its single DPU core
//! (§4.2's configuration). Tenant 1 (weight 6) runs for the whole
//! experiment; tenant 2 (weight 1) joins at 20 s and leaves at 3 m 20 s
//! with periodic surges; tenant 3 (weight 2) runs 1 m 30 s – 2 m 30 s and
//! is burstier. The DWRR engine divides throughput 6:1:2 under contention;
//! the FCFS engine serves in arrival order and lets the bursty tenants
//! starve tenant 1.

use palladium_membuf::TenantId;
use palladium_simnet::{Effects, Engine, FifoServer, Harness, Nanos, WindowedRate};

use crate::dwrr::{SchedPolicy, TenantScheduler};

/// One tenant's activity pattern.
#[derive(Clone, Copy, Debug)]
pub struct TenantProfile {
    /// Tenant id.
    pub tenant: TenantId,
    /// DWRR weight.
    pub weight: u32,
    /// Closed-loop client count while active (offered concurrency).
    pub clients: usize,
    /// Activity window start.
    pub start: Nanos,
    /// Activity window end.
    pub stop: Nanos,
    /// Surge period: within the activity window the tenant alternates
    /// `on_time` active / `off_time` idle. `off_time == 0` = steady.
    pub on_time: Nanos,
    /// Idle part of the surge cycle.
    pub off_time: Nanos,
}

impl TenantProfile {
    /// Is the tenant generating load at `t`?
    pub fn active_at(&self, t: Nanos) -> bool {
        if t < self.start || t >= self.stop {
            return false;
        }
        if self.off_time.is_zero() {
            return true;
        }
        let cycle = (self.on_time + self.off_time).as_nanos();
        let phase = (t - self.start).as_nanos() % cycle;
        phase < self.on_time.as_nanos()
    }

    /// Next instant at or after `t` when the tenant becomes active, if any.
    pub fn next_active(&self, t: Nanos) -> Option<Nanos> {
        if t >= self.stop {
            return None;
        }
        let t = t.max(self.start);
        if self.active_at(t) {
            return Some(t);
        }
        if self.off_time.is_zero() {
            return None;
        }
        let cycle = (self.on_time + self.off_time).as_nanos();
        let phase = (t - self.start).as_nanos() % cycle;
        let next = t + Nanos(cycle - phase);
        (next < self.stop).then_some(next)
    }
}

/// Configuration of one Fig 15 run.
#[derive(Clone, Debug)]
pub struct FairnessSimConfig {
    /// Scheduling policy (the figure's two panels).
    pub policy: SchedPolicy,
    /// Tenants and their schedules.
    pub profiles: Vec<TenantProfile>,
    /// Per-request DNE service time (the paper configures the engine to
    /// sustain ≈110 K RPS → ≈9.09 µs per request).
    pub service: Nanos,
    /// Total experiment duration.
    pub duration: Nanos,
    /// Reporting window for the time series.
    pub window: Nanos,
}

impl FairnessSimConfig {
    /// The paper's §4.2 configuration, scaled by `time_scale` (1.0 = the
    /// full 4-minute run; tests use a small fraction).
    pub fn paper(policy: SchedPolicy, time_scale: f64) -> Self {
        let s = |secs: f64| Nanos::from_f64_saturating(secs * time_scale * 1e9);
        FairnessSimConfig {
            policy,
            profiles: vec![
                TenantProfile {
                    tenant: TenantId(1),
                    weight: 6,
                    clients: 32,
                    start: s(0.0),
                    stop: s(240.0),
                    on_time: s(240.0),
                    off_time: Nanos::ZERO,
                },
                TenantProfile {
                    tenant: TenantId(2),
                    weight: 1,
                    clients: 48,
                    start: s(20.0),
                    stop: s(200.0),
                    on_time: s(12.0),
                    off_time: s(4.0),
                },
                TenantProfile {
                    tenant: TenantId(3),
                    weight: 2,
                    clients: 64,
                    start: s(90.0),
                    stop: s(150.0),
                    on_time: s(5.0),
                    off_time: s(3.0),
                },
            ],
            service: Nanos::from_nanos(9_090),
            duration: s(240.0),
            window: s(4.0),
        }
    }
}

/// Result: per-tenant time series plus totals.
#[derive(Clone, Debug)]
pub struct FairnessReport {
    /// `(tenant, series of (window end, RPS))` in profile order.
    pub series: Vec<(TenantId, Vec<(Nanos, f64)>)>,
    /// Total completed requests per tenant.
    pub totals: Vec<(TenantId, u64)>,
}

impl FairnessReport {
    /// Mean RPS of `tenant` over windows where `filter` holds.
    pub fn mean_rps_during(
        &self,
        tenant: TenantId,
        mut filter: impl FnMut(Nanos) -> bool,
    ) -> f64 {
        let Some((_, series)) = self.series.iter().find(|(t, _)| *t == tenant) else {
            return 0.0;
        };
        let picked: Vec<f64> = series
            .iter()
            .filter(|(end, _)| filter(*end))
            .map(|(_, rps)| *rps)
            .collect();
        if picked.is_empty() {
            0.0
        } else {
            picked.iter().sum::<f64>() / picked.len() as f64
        }
    }
}

#[derive(Debug)]
enum Ev {
    /// A client of `tenant` issues a request.
    Issue { tenant: TenantId },
    /// The engine finished one request.
    Done { tenant: TenantId },
    /// The engine core freed up — dequeue the next request.
    Slot,
}

/// The driver's state machine: the tenant scheduler feeding one DNE core.
struct FairnessEngine {
    sched: TenantScheduler<TenantId>,
    core: FifoServer,
    busy: bool,
    service: Nanos,
    profiles: Vec<TenantProfile>,
    rates: Vec<WindowedRate>,
    totals: Vec<u64>,
}

impl FairnessEngine {
    fn idx_of(&self, t: TenantId) -> usize {
        self.profiles
            .iter()
            .position(|p| p.tenant == t)
            .expect("known tenant")
    }
}

impl Engine for FairnessEngine {
    type Ev = Ev;

    fn on_event(&mut self, now: Nanos, ev: Ev, fx: &mut Effects<'_, Ev>) {
        match ev {
            Ev::Issue { tenant } => {
                self.sched.enqueue(tenant, 1, tenant);
                if !self.busy {
                    fx.now_ev(Ev::Slot);
                }
            }
            Ev::Slot => {
                if self.busy {
                    return;
                }
                if let Some((tenant, _)) = self.sched.dequeue() {
                    self.busy = true;
                    let done = self.core.submit(now, self.service);
                    self.core.complete();
                    fx.at(done, Ev::Done { tenant });
                }
            }
            Ev::Done { tenant } => {
                self.busy = false;
                let i = self.idx_of(tenant);
                self.rates[i].record(now);
                self.totals[i] += 1;
                // Closed loop: the client re-issues while its tenant is in
                // an active phase; otherwise it parks until the next surge.
                let p = &self.profiles[i];
                if p.active_at(now) {
                    fx.now_ev(Ev::Issue { tenant });
                } else if let Some(at) = p.next_active(now) {
                    fx.at(at, Ev::Issue { tenant });
                }
                fx.now_ev(Ev::Slot);
            }
        }
    }
}

/// The Fig 15 simulation.
pub struct FairnessSim {
    cfg: FairnessSimConfig,
}

impl FairnessSim {
    /// Build the simulation.
    pub fn new(cfg: FairnessSimConfig) -> Self {
        FairnessSim { cfg }
    }

    /// Run and report per-tenant series.
    pub fn run(&self) -> FairnessReport {
        let cfg = &self.cfg;
        let mut sched: TenantScheduler<TenantId> = TenantScheduler::new(cfg.policy, 1);
        for p in &cfg.profiles {
            sched.register_tenant(p.tenant, p.weight);
        }
        let mut engine = FairnessEngine {
            sched,
            core: FifoServer::new("dne-core"),
            busy: false,
            service: cfg.service,
            profiles: cfg.profiles.clone(),
            rates: cfg
                .profiles
                .iter()
                .map(|_| WindowedRate::new(cfg.window, Nanos::ZERO))
                .collect(),
            totals: vec![0u64; cfg.profiles.len()],
        };

        let mut harness: Harness<Ev> = Harness::new();
        for p in &cfg.profiles {
            let at = p.next_active(Nanos::ZERO).unwrap_or(p.start);
            for _ in 0..p.clients {
                harness.schedule_at(at, Ev::Issue { tenant: p.tenant });
            }
        }
        harness.run(&mut engine, cfg.duration);

        FairnessReport {
            series: cfg
                .profiles
                .iter()
                .zip(&engine.rates)
                .map(|(p, r)| (p.tenant, r.series(cfg.duration)))
                .collect(),
            totals: cfg
                .profiles
                .iter()
                .zip(&engine.totals)
                .map(|(p, &n)| (p.tenant, n))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A steady three-tenant contention config (no surges): weights 6:1:2,
    /// everyone active for the whole run — the cleanest way to assert
    /// shares without surge-phase alignment noise.
    fn steady(policy: SchedPolicy, clients: [usize; 3]) -> FairnessSimConfig {
        let dur = Nanos::from_millis(1_500);
        let profile = |tenant, weight, clients| TenantProfile {
            tenant,
            weight,
            clients,
            start: Nanos::ZERO,
            stop: dur,
            on_time: dur,
            off_time: Nanos::ZERO,
        };
        FairnessSimConfig {
            policy,
            profiles: vec![
                profile(TenantId(1), 6, clients[0]),
                profile(TenantId(2), 1, clients[1]),
                profile(TenantId(3), 2, clients[2]),
            ],
            service: Nanos::from_nanos(9_090),
            duration: dur,
            window: Nanos::from_millis(100),
        }
    }

    /// Mean RPS over the steady-state second half of the run.
    fn late_rps(report: &FairnessReport, t: TenantId) -> f64 {
        report.mean_rps_during(t, |end| end > Nanos::from_millis(700))
    }

    #[test]
    fn profile_activity_windows() {
        let p = TenantProfile {
            tenant: TenantId(2),
            weight: 1,
            clients: 1,
            start: Nanos::from_secs(20),
            stop: Nanos::from_secs(200),
            on_time: Nanos::from_secs(12),
            off_time: Nanos::from_secs(4),
        };
        assert!(!p.active_at(Nanos::from_secs(10)));
        assert!(p.active_at(Nanos::from_secs(25)));
        // 20+12=32: off phase 32..36.
        assert!(!p.active_at(Nanos::from_secs(33)));
        assert!(p.active_at(Nanos::from_secs(36)));
        assert!(!p.active_at(Nanos::from_secs(201)));
        assert_eq!(
            p.next_active(Nanos::from_secs(33)),
            Some(Nanos::from_secs(36))
        );
        assert_eq!(p.next_active(Nanos::from_secs(205)), None);
    }

    #[test]
    fn sole_tenant_gets_full_capacity() {
        // Only tenant 1 offers load: it gets the whole ≈110K regardless of
        // its 6/9 weight share (DWRR is work-conserving).
        let mut cfg = steady(SchedPolicy::Dwrr, [32, 0, 0]);
        cfg.profiles.retain(|p| p.clients > 0);
        let report = FairnessSim::new(cfg).run();
        let t1 = late_rps(&report, TenantId(1));
        assert!(
            (100_000.0..115_000.0).contains(&t1),
            "solo tenant 1 RPS {t1:.0}"
        );
    }

    #[test]
    fn dwrr_enforces_weighted_shares_under_contention() {
        let report = FairnessSim::new(steady(SchedPolicy::Dwrr, [32, 48, 64])).run();
        let t1 = late_rps(&report, TenantId(1));
        let t2 = late_rps(&report, TenantId(2));
        let t3 = late_rps(&report, TenantId(3));
        assert!(t1 > 0.0 && t2 > 0.0 && t3 > 0.0);
        let r12 = t1 / t2;
        let r32 = t3 / t2;
        assert!((5.0..7.0).contains(&r12), "t1/t2 = {r12:.2} (want ≈6)");
        assert!((1.6..2.4).contains(&r32), "t3/t2 = {r32:.2} (want ≈2)");
        // Absolute split of ≈110K capacity: ≈73/12/24K.
        assert!((63_000.0..83_000.0).contains(&t1), "t1 {t1:.0}");
        assert!((8_000.0..17_000.0).contains(&t2), "t2 {t2:.0}");
        assert!((18_000.0..31_000.0).contains(&t3), "t3 {t3:.0}");
    }

    #[test]
    fn fcfs_starves_the_heavy_tenant() {
        // Under FCFS, shares follow offered concurrency (32:48:64), not
        // weights: tenant 1 gets far less than DWRR would give it.
        let fcfs = FairnessSim::new(steady(SchedPolicy::Fcfs, [32, 48, 64])).run();
        let dwrr = FairnessSim::new(steady(SchedPolicy::Dwrr, [32, 48, 64])).run();
        let f1 = late_rps(&fcfs, TenantId(1));
        let d1 = late_rps(&dwrr, TenantId(1));
        assert!(
            f1 < d1 * 0.6,
            "FCFS tenant-1 {f1:.0} should starve vs DWRR {d1:.0}"
        );
        // FCFS share ≈ 32/144 of 110K ≈ 24K.
        assert!((18_000.0..32_000.0).contains(&f1), "FCFS t1 {f1:.0}");
    }

    #[test]
    fn work_conservation() {
        for policy in [SchedPolicy::Dwrr, SchedPolicy::Fcfs] {
            let report = FairnessSim::new(steady(policy, [32, 48, 64])).run();
            let total: f64 = [TenantId(1), TenantId(2), TenantId(3)]
                .iter()
                .map(|&t| late_rps(&report, t))
                .sum();
            assert!(
                (100_000.0..118_000.0).contains(&total),
                "{policy:?} total {total:.0}"
            );
        }
    }

    #[test]
    fn paper_schedule_smoke() {
        // The full paper schedule at a tiny time scale: runs, produces
        // series for all three tenants, and tenant 2 shows surge gaps.
        let report = FairnessSim::new(FairnessSimConfig::paper(SchedPolicy::Dwrr, 0.01)).run();
        assert_eq!(report.series.len(), 3);
        let (_, t1_series) = &report.series[0];
        assert!(t1_series.iter().any(|&(_, rps)| rps > 0.0));
    }
}
