//! Fig 9 driver: DPU↔host descriptor-channel comparison.
//!
//! N host functions issue back-to-back 16 B descriptor echoes against a
//! single-core DNE on the DPU (§3.5.4's experiment): function sends a
//! descriptor over the channel, the DNE's event loop receives it and
//! replies, the function receives the reply and immediately sends the next.
//!
//! What shapes the curves:
//! * **TCP** pays full protocol-stack costs on both sides — worst latency,
//!   and the wimpy DPU core saturates earliest.
//! * **Comch-P** busy-polls: lowest unloaded latency, but (a) every host
//!   function pins a host core, so beyond the core count extra functions
//!   cannot run ("No more CPU cores"), and (b) the DNE-side progress engine
//!   sweeps every endpoint per op, collapsing past its knee (§3.5.4's
//!   "overloads beyond 6 functions").
//! * **Comch-E** is event-driven: no pinned cores, endpoint-count-
//!   independent DNE cost — the practical choice Palladium ships.

use palladium_ipc::{ChannelCosts, ChannelKind, ComchServer};
use palladium_membuf::{BufDesc, FnId, PoolId, TenantId};
use palladium_simnet::{Effects, Engine, FifoServer, Harness, Nanos, RunStats, ServerBank};

use super::LoadReport;

/// Configuration of one Fig 9 run.
#[derive(Clone, Copy, Debug)]
pub struct ChannelSimConfig {
    /// The channel flavour under test.
    pub kind: ChannelKind,
    /// Number of host functions issuing echoes.
    pub functions: usize,
    /// Host cores available to functions (testbed: 2 × 40).
    pub host_cores: usize,
    /// Measurement window.
    pub duration: Nanos,
    /// Warm-up excluded from statistics.
    pub warmup: Nanos,
}

impl ChannelSimConfig {
    /// The paper's configuration for `kind` with `functions` echoers.
    pub fn new(kind: ChannelKind, functions: usize) -> Self {
        ChannelSimConfig {
            kind,
            functions,
            host_cores: 80,
            duration: Nanos::from_millis(120),
            warmup: Nanos::from_millis(20),
        }
    }
}

#[derive(Debug)]
enum Ev {
    /// Function issues an echo (kick-off and closed-loop re-issue).
    Issue { f: usize },
    /// Function finished its send-side work; descriptor heads to the DNE.
    SentToDne { f: usize },
    /// DNE finished processing (receive + reply); reply heads to the host.
    DneReplied { f: usize },
    /// Function received the reply; echo complete.
    EchoDone { f: usize, issued: Nanos },
}

/// The driver's state machine: channel registry, host cores, DNE core.
struct ChannelEngine {
    cfg: ChannelSimConfig,
    costs: ChannelCosts,
    comch: ComchServer,
    dne_op: Nanos,
    fn_cores: ServerBank,
    dne_core: FifoServer,
    issued_at: Vec<Nanos>,
    stats: RunStats,
}

impl ChannelEngine {
    fn desc(&self, f: usize) -> BufDesc {
        BufDesc {
            tenant: TenantId(1),
            pool: PoolId(0),
            buf_idx: f as u32,
            len: 16,
            src_fn: FnId(f as u16),
            dst_fn: FnId(0),
        }
    }

    /// Charge the host-side send and put the descriptor on the wire.
    fn issue(&mut self, now: Nanos, f: usize, fx: &mut Effects<'_, Ev>) {
        self.issued_at[f] = now;
        let core = f % self.cfg.host_cores;
        let done = self
            .fn_cores
            .get_mut(core)
            .submit(now, self.costs.host_send_cpu);
        self.fn_cores.get_mut(core).complete();
        self.comch
            .host_send(FnId(f as u16), self.desc(f))
            .expect("endpoint connected");
        fx.at(done + self.costs.transit, Ev::SentToDne { f });
    }
}

impl Engine for ChannelEngine {
    type Ev = Ev;

    fn on_event(&mut self, now: Nanos, ev: Ev, fx: &mut Effects<'_, Ev>) {
        match ev {
            Ev::Issue { f } => self.issue(now, f, fx),
            Ev::SentToDne { f } => {
                // The DNE's run-to-completion loop: drain the endpoint,
                // process, reply. One descriptor in, one out: 2 ops.
                let drained = self.comch.dne_recv(FnId(f as u16), 1);
                debug_assert_eq!(drained.len(), 1);
                let done = self.dne_core.submit(now, self.dne_op + self.dne_op);
                self.dne_core.complete();
                self.comch
                    .dne_send(FnId(f as u16), self.desc(f))
                    .expect("endpoint connected");
                fx.at(done + self.costs.transit, Ev::DneReplied { f });
            }
            Ev::DneReplied { f } => {
                let drained = self.comch.host_recv(FnId(f as u16), 1);
                debug_assert_eq!(drained.len(), 1);
                let core = f % self.cfg.host_cores;
                let done = self
                    .fn_cores
                    .get_mut(core)
                    .submit(now, self.costs.host_recv_cpu);
                self.fn_cores.get_mut(core).complete();
                fx.at(
                    done,
                    Ev::EchoDone {
                        f,
                        issued: self.issued_at[f],
                    },
                );
            }
            Ev::EchoDone { f, issued } => {
                self.stats.complete(now, issued);
                // Closed loop: immediately issue the next echo.
                self.issue(now, f, fx);
            }
        }
    }
}

/// The Fig 9 simulation.
pub struct ChannelSim {
    cfg: ChannelSimConfig,
    costs: ChannelCosts,
}

impl ChannelSim {
    /// Build the simulation.
    pub fn new(cfg: ChannelSimConfig) -> Self {
        ChannelSim {
            costs: ChannelCosts::for_kind(cfg.kind),
            cfg,
        }
    }

    /// Run to completion; returns the aggregate report.
    pub fn run(&self) -> LoadReport {
        let cfg = self.cfg;
        let costs = self.costs;

        // Real channel state: endpoint registry + queues.
        let mut comch = ComchServer::new(cfg.kind);
        // Active functions: Comch-P pins one host core per function.
        let active = if costs.pins_host_core {
            cfg.functions.min(cfg.host_cores)
        } else {
            cfg.functions
        };
        for f in 0..cfg.functions {
            comch.connect(FnId(f as u16), TenantId(1));
        }
        let endpoints = comch.connected_endpoints();

        let mut engine = ChannelEngine {
            dne_op: costs.dne_cpu(endpoints),
            costs,
            comch,
            // Host cores: polling functions own a core; event-driven
            // functions share the bank (pinned round-robin).
            fn_cores: ServerBank::new("host", cfg.host_cores.max(1)),
            dne_core: FifoServer::new("dne-arm"),
            issued_at: vec![Nanos::ZERO; active],
            stats: RunStats::new(cfg.warmup),
            cfg,
        };

        let mut harness: Harness<Ev> = Harness::new();
        for f in 0..active {
            harness.schedule_at(Nanos::ZERO, Ev::Issue { f });
        }
        harness.run(&mut engine, cfg.warmup + cfg.duration);

        engine.stats.report(cfg.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(kind: ChannelKind, functions: usize) -> LoadReport {
        ChannelSim::new(ChannelSimConfig::new(kind, functions)).run()
    }

    #[test]
    fn single_function_latency_ordering() {
        let p = run(ChannelKind::ComchP, 1);
        let e = run(ChannelKind::ComchE, 1);
        let t = run(ChannelKind::Tcp, 1);
        assert!(p.mean_latency < e.mean_latency);
        assert!(e.mean_latency < t.mean_latency);
        // Paper: Comch-P >8x lower latency than TCP at low concurrency.
        let ratio = t.mean_latency.as_nanos() as f64 / p.mean_latency.as_nanos() as f64;
        assert!(ratio > 8.0, "P vs TCP latency ratio {ratio:.1}");
    }

    #[test]
    fn comch_p_collapses_beyond_its_knee() {
        // §3.5.4: Comch-P "overloads beyond 6 functions".
        let at4 = run(ChannelKind::ComchP, 4);
        let at40 = run(ChannelKind::ComchP, 40);
        assert!(
            at40.rps < at4.rps,
            "Comch-P must degrade: {} vs {}",
            at40.rps,
            at4.rps
        );
        // Comch-E keeps scaling over the same range.
        let e4 = run(ChannelKind::ComchE, 4);
        let e40 = run(ChannelKind::ComchE, 40);
        assert!(e40.rps >= e4.rps * 0.9, "Comch-E stays stable");
    }

    #[test]
    fn comch_e_beats_tcp_at_scale() {
        let e = run(ChannelKind::ComchE, 40);
        let t = run(ChannelKind::Tcp, 40);
        let ratio = e.rps / t.rps;
        assert!(
            ratio > 2.0,
            "Comch-E vs TCP RPS at 40 fns: {:.0} vs {:.0}",
            e.rps,
            t.rps
        );
        assert!(t.mean_latency > e.mean_latency);
    }

    #[test]
    fn deterministic_runs() {
        let a = run(ChannelKind::ComchE, 20);
        let b = run(ChannelKind::ComchE, 20);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.mean_latency, b.mean_latency);
    }
}
