//! Figs 13–14 driver: cluster ingress designs under client sweep and
//! autoscaling.
//!
//! External clients send HTTP requests through the cluster ingress to an
//! echo function on a worker node (§4.1.3's setup):
//!
//! * **Palladium** terminates TCP at the edge and bridges payloads over
//!   RDMA to the worker's DNE — one TCP connection per request path, no
//!   proxy bookkeeping, no worker-side protocol processing.
//! * **F-Ingress** (deferred conversion) reverse-proxies over a second TCP
//!   connection; the worker terminates TCP with F-Stack.
//! * **K-Ingress** does the same on the interrupt-driven kernel stack and
//!   additionally suffers receive-livelock inflation under backlog — the
//!   Fig 14 overload collapse, complete with client disconnections.
//!
//! Fig 13 pins the gateway to one core and sweeps the client count; Fig 14
//! adds a saturating client every 10 s and lets the hysteresis autoscaler
//! (60 %/30 %) manage worker processes. Both figures run the same
//! [`IngressPath`] request pipeline through the shared harness; only the
//! surrounding engine differs.

use palladium_rdma::RdmaConfig;
use palladium_simnet::{
    Effects, Engine, FifoServer, Harness, Nanos, RunStats, ServerBank, UtilizationBins,
    WindowedRate,
};
use palladium_tcpstack::{StackKind, TcpCosts};

use super::LoadReport;
use crate::config::{CostModel, EngineLocation};
use crate::ingress::{IngressConfig, IngressGateway, Leg};
use crate::system::IngressKind;

/// Configuration for the ingress experiments.
#[derive(Clone, Copy, Debug)]
pub struct IngressSimConfig {
    /// Ingress design under test.
    pub kind: IngressKind,
    /// Closed-loop clients.
    pub clients: usize,
    /// Concurrent connections per client (wrk-style pipelining).
    pub conns_per_client: usize,
    /// Request payload bytes.
    pub req_bytes: u64,
    /// Response payload bytes.
    pub resp_bytes: u64,
    /// Gateway worker cores pinned (None = autoscaled).
    pub fixed_workers: Option<usize>,
    /// Worker-node host cores for the echo function.
    pub worker_cores: usize,
    /// Echo function execution cost.
    pub fn_exec: Nanos,
    /// Client gives up if a response takes longer than this (the Fig 14
    /// disconnections); `Nanos::MAX` disables.
    pub client_timeout: Nanos,
    /// Measurement window.
    pub duration: Nanos,
    /// Warm-up.
    pub warmup: Nanos,
}

impl IngressSimConfig {
    /// The Fig 13 configuration: one gateway core, 256 B echoes.
    pub fn fig13(kind: IngressKind, clients: usize) -> Self {
        IngressSimConfig {
            kind,
            clients,
            conns_per_client: 1,
            req_bytes: 256,
            resp_bytes: 256,
            fixed_workers: Some(1),
            worker_cores: 16,
            fn_exec: Nanos::from_micros(2),
            client_timeout: Nanos::MAX,
            duration: Nanos::from_millis(400),
            warmup: Nanos::from_millis(100),
        }
    }
}

#[derive(Debug)]
enum Ev {
    /// A client connection issues a request (arrives at the gateway after
    /// the client-side wire).
    Arrive { conn: usize, issued: Nanos },
    /// Gateway finished the inbound leg; request heads into the cluster.
    InboundDone { conn: usize, issued: Nanos, worker: usize },
    /// Worker node produced the response; it heads back to the gateway.
    WorkerDone { conn: usize, issued: Nanos },
    /// Gateway finished the outbound leg; response heads to the client.
    OutboundDone { conn: usize, issued: Nanos, worker: usize },
    /// Fig 14: a new saturating client joins.
    AddClient,
    /// Autoscaler evaluation tick.
    ScalerTick,
}

/// Per-request worker-node cost for one ingress design.
struct WorkerSide {
    /// Cost on a worker host core per request (TCP termination for the
    /// deferred designs; Comch wake + echo for Palladium).
    host_per_req: Nanos,
    /// Cost on the worker's engine (DNE) core per request (Palladium only).
    engine_per_req: Nanos,
    /// One-way ingress↔worker latency.
    wire: Nanos,
}

impl WorkerSide {
    fn for_kind(kind: IngressKind, cost: &CostModel, fn_exec: Nanos, bytes: u64) -> Self {
        let rdma = RdmaConfig::default();
        match kind {
            IngressKind::Palladium => WorkerSide {
                // Comch deliver + epoll wake + echo + Comch send-back.
                host_per_req: Nanos::from_nanos(1_300 + 500) + fn_exec,
                // DNE RX for the request + TX for the response.
                engine_per_req: cost.engine_rx_at(EngineLocation::Dpu)
                    + cost.engine_tx_at(EngineLocation::Dpu),
                wire: rdma.one_way(bytes),
            },
            IngressKind::FStackDeferred | IngressKind::KernelDeferred => {
                // Worker terminates TCP with F-Stack (§4.1.3) then echoes.
                let t = TcpCosts::for_kind(StackKind::FStack);
                WorkerSide {
                    host_per_req: t.rx(bytes) + fn_exec + t.tx(bytes),
                    engine_per_req: Nanos::ZERO,
                    wire: Nanos::from_micros(5),
                }
            }
        }
    }
}

/// The request pipeline both figures share: gateway legs, the wire, the
/// worker engine + host cores.
struct IngressPath {
    cfg: IngressSimConfig,
    cost: CostModel,
    gw: IngressGateway,
    ws: WorkerSide,
    worker_cores: ServerBank,
    engine: FifoServer,
}

impl IngressPath {
    fn new(cfg: IngressSimConfig, cost: CostModel, gw: IngressGateway) -> Self {
        IngressPath {
            ws: WorkerSide::for_kind(cfg.kind, &cost, cfg.fn_exec, cfg.req_bytes),
            worker_cores: ServerBank::new("worker", cfg.worker_cores),
            engine: FifoServer::new("worker-dne"),
            cfg,
            cost,
            gw,
        }
    }

    fn client_of(&self, conn: usize) -> usize {
        // One connection per client (the Fig 13 sweep) must not pay a
        // hardware divide per leg.
        if self.cfg.conns_per_client == 1 {
            conn
        } else {
            conn / self.cfg.conns_per_client
        }
    }

    /// Gateway inbound leg.
    fn arrive(&mut self, now: Nanos, conn: usize, issued: Nanos, fx: &mut Effects<'_, Ev>) {
        let (w, done) = self.gw.submit(
            now,
            self.client_of(conn),
            Leg::Inbound,
            self.cfg.req_bytes,
            self.cfg.resp_bytes,
        );
        fx.at(done, Ev::InboundDone { conn, issued, worker: w });
    }

    /// Into the cluster: wire + worker-side processing.
    fn inbound_done(
        &mut self,
        now: Nanos,
        conn: usize,
        issued: Nanos,
        worker: usize,
        fx: &mut Effects<'_, Ev>,
    ) {
        self.gw.leg_done(worker);
        let arrive = now + self.ws.wire;
        let mut ready = arrive;
        if !self.ws.engine_per_req.is_zero() {
            ready = self.engine.submit(arrive, self.ws.engine_per_req);
            self.engine.complete();
        }
        let (core, host_done) = self.worker_cores.submit(ready, self.ws.host_per_req);
        self.worker_cores.complete(core);
        fx.at(host_done + self.ws.wire, Ev::WorkerDone { conn, issued });
    }

    /// Gateway outbound leg.
    fn worker_done(&mut self, now: Nanos, conn: usize, issued: Nanos, fx: &mut Effects<'_, Ev>) {
        let (w, done) = self.gw.submit(
            now,
            self.client_of(conn),
            Leg::Outbound,
            self.cfg.req_bytes,
            self.cfg.resp_bytes,
        );
        fx.at(done, Ev::OutboundDone { conn, issued, worker: w });
    }
}

/// Fig 13 engine: fixed clients, closed loop, latency/RPS stats.
struct SweepEngine {
    path: IngressPath,
    stats: RunStats,
}

impl Engine for SweepEngine {
    type Ev = Ev;

    fn on_event(&mut self, now: Nanos, ev: Ev, fx: &mut Effects<'_, Ev>) {
        match ev {
            Ev::Arrive { conn, issued } => self.path.arrive(now, conn, issued, fx),
            Ev::InboundDone { conn, issued, worker } => {
                self.path.inbound_done(now, conn, issued, worker, fx)
            }
            Ev::WorkerDone { conn, issued } => self.path.worker_done(now, conn, issued, fx),
            Ev::OutboundDone { conn, issued, worker } => {
                self.path.gw.leg_done(worker);
                let finish = now + self.path.cost.client_wire;
                self.stats.complete(finish, issued);
                // Closed loop: next request after the response reaches the
                // client.
                fx.at(
                    finish + self.path.cost.client_wire,
                    Ev::Arrive { conn, issued: finish },
                );
            }
            _ => unreachable!("sweep uses no scaling events"),
        }
    }
}

/// Fig 14 time-series output.
#[derive(Clone, Debug)]
pub struct ScalingReport {
    /// `(window end, gateway cores in use)`.
    pub cores_series: Vec<(Nanos, f64)>,
    /// `(window end, completed RPS)`.
    pub rps_series: Vec<(Nanos, f64)>,
    /// Clients that disconnected (timed out).
    pub disconnected: usize,
    /// Scale-up actions taken.
    pub scale_ups: u32,
    /// Scale-down actions taken.
    pub scale_downs: u32,
}

/// Fig 14 engine: ramping clients, autoscaler ticks, timeouts.
struct ScalingEngine {
    path: IngressPath,
    rps: WindowedRate,
    util: UtilizationBins,
    last_busy: Nanos,
    last_tick: Nanos,
    joined: usize,
    max_clients: usize,
    join_interval: Nanos,
    eval_interval: Nanos,
    client_timeout: Nanos,
    disconnected: usize,
    alive: Vec<bool>,
}

impl Engine for ScalingEngine {
    type Ev = Ev;

    fn on_event(&mut self, now: Nanos, ev: Ev, fx: &mut Effects<'_, Ev>) {
        match ev {
            Ev::AddClient => {
                if self.joined < self.max_clients {
                    let client = self.joined;
                    self.joined += 1;
                    self.alive.push(true);
                    for k in 0..self.path.cfg.conns_per_client {
                        let conn = client * self.path.cfg.conns_per_client + k;
                        fx.after(self.path.cost.client_wire, Ev::Arrive { conn, issued: now });
                    }
                    fx.after(self.join_interval, Ev::AddClient);
                }
            }
            Ev::ScalerTick => {
                // Track useful busy time as a cores-in-use series: for
                // busy-polling gateways the pinned cores count fully.
                let elapsed = now - self.last_tick;
                let busy = self.path.gw.total_busy();
                let delta = busy - self.last_busy;
                self.last_busy = busy;
                self.last_tick = now;
                match self.path.cfg.kind {
                    IngressKind::KernelDeferred => {
                        // Interrupt-driven: cores used = useful busy time,
                        // spread across the interval (delta may span
                        // several cores' worth of work).
                        let mut remaining = delta;
                        while remaining > elapsed && !elapsed.is_zero() {
                            self.util.record_busy(now - elapsed, now);
                            remaining -= elapsed;
                        }
                        if !remaining.is_zero() {
                            self.util.record_busy(now - remaining, now);
                        }
                    }
                    _ => {
                        // Busy-polling: every active worker pins its core.
                        for _ in 0..self.path.gw.active_workers() {
                            self.util.record_busy(now - elapsed, now);
                        }
                    }
                }
                self.path.gw.evaluate(now, elapsed);
                fx.after(self.eval_interval, Ev::ScalerTick);
            }
            Ev::Arrive { conn, issued } => self.path.arrive(now, conn, issued, fx),
            Ev::InboundDone { conn, issued, worker } => {
                self.path.inbound_done(now, conn, issued, worker, fx)
            }
            Ev::WorkerDone { conn, issued } => self.path.worker_done(now, conn, issued, fx),
            Ev::OutboundDone { conn, issued, worker } => {
                self.path.gw.leg_done(worker);
                let finish = now + self.path.cost.client_wire;
                let client = self.path.client_of(conn);
                self.rps.record(finish);
                let rtt = finish - issued;
                if rtt > self.client_timeout && self.alive.get(client).copied().unwrap_or(false) {
                    // Client gives up: disconnect all its connections.
                    self.alive[client] = false;
                    self.disconnected += 1;
                } else if self.alive.get(client).copied().unwrap_or(false) {
                    fx.at(
                        finish + self.path.cost.client_wire,
                        Ev::Arrive { conn, issued: finish },
                    );
                }
            }
        }
    }
}

/// The Fig 13/14 simulation.
pub struct IngressSim {
    cfg: IngressSimConfig,
    cost: CostModel,
}

impl IngressSim {
    /// Build with the default cost model.
    pub fn new(cfg: IngressSimConfig) -> Self {
        IngressSim {
            cfg,
            cost: CostModel::default(),
        }
    }

    /// Fig 13: fixed client count, fixed single gateway core. Returns the
    /// load report (mean E2E latency + RPS).
    pub fn sweep(&self) -> LoadReport {
        self.sweep_counted().0
    }

    /// [`IngressSim::sweep`], also returning the number of simulation
    /// events processed — the denominator of the `simcore_throughput`
    /// events/sec benchmark.
    pub fn sweep_counted(&self) -> (LoadReport, u64) {
        let cfg = self.cfg;
        let cost = self.cost;
        let gw = IngressGateway::new(
            IngressConfig::new(cfg.kind).with_fixed_workers(cfg.fixed_workers.unwrap_or(1)),
            cost,
        );
        let mut engine = SweepEngine {
            path: IngressPath::new(cfg, cost, gw),
            stats: RunStats::new(cfg.warmup),
        };

        let total_conns = cfg.clients * cfg.conns_per_client;
        let mut harness: Harness<Ev> = Harness::new();
        for conn in 0..total_conns {
            harness.schedule_at(cost.client_wire, Ev::Arrive { conn, issued: Nanos::ZERO });
        }
        let events = harness.run(&mut engine, cfg.warmup + cfg.duration);

        (engine.stats.report(cfg.duration), events)
    }

    /// Fig 14: clients join every `join_interval`; the gateway autoscales
    /// (Palladium / F-Ingress) or runs all kernel workers (K-Ingress).
    /// `time_scale` compresses the 4-minute experiment.
    pub fn scaling_run(&self, time_scale: f64, max_clients: usize) -> ScalingReport {
        let cfg = self.cfg;
        let cost = self.cost;
        let s = |secs: f64| Nanos::from_f64_saturating(secs * time_scale * 1e9);
        let duration = s(240.0);
        let window = s(4.0);
        let eval_interval = s(0.5);

        // K-Ingress: interrupt-driven kernel workers on all cores from the
        // start; Palladium/F: autoscaled busy-poll workers. The reload blip
        // compresses with the experiment's time scale.
        let mut gw_cfg = match cfg.kind {
            IngressKind::KernelDeferred => IngressConfig::new(cfg.kind).with_fixed_workers(24),
            _ => IngressConfig::new(cfg.kind),
        };
        gw_cfg.autoscaler.reload_blip = s(0.12);
        gw_cfg.autoscaler.eval_interval = eval_interval;
        let gw = IngressGateway::new(gw_cfg, cost);

        let mut engine = ScalingEngine {
            path: IngressPath::new(cfg, cost, gw),
            rps: WindowedRate::new(window, Nanos::ZERO),
            util: UtilizationBins::new(window),
            last_busy: Nanos::ZERO,
            last_tick: Nanos::ZERO,
            joined: 0,
            max_clients,
            join_interval: s(10.0),
            eval_interval,
            client_timeout: s(1.0),
            disconnected: 0,
            alive: Vec::new(),
        };

        let mut harness: Harness<Ev> = Harness::new();
        harness.schedule_at(Nanos::ZERO, Ev::AddClient);
        harness.schedule_at(eval_interval, Ev::ScalerTick);
        harness.run(&mut engine, duration);

        ScalingReport {
            cores_series: engine.util.series(duration),
            rps_series: engine.rps.series(duration),
            disconnected: engine.disconnected,
            scale_ups: engine.path.gw.scaler_ups(),
            scale_downs: engine.path.gw.scaler_downs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(kind: IngressKind, clients: usize) -> LoadReport {
        IngressSim::new(IngressSimConfig::fig13(kind, clients)).sweep()
    }

    #[test]
    fn saturated_rps_ordering_matches_paper() {
        // At 60 clients all designs are saturated: Palladium ≫ F ≫ K.
        let p = sweep(IngressKind::Palladium, 60);
        let f = sweep(IngressKind::FStackDeferred, 60);
        let k = sweep(IngressKind::KernelDeferred, 60);
        assert!(p.rps > f.rps && f.rps > k.rps);
        let pf = p.rps / f.rps;
        let pk = p.rps / k.rps;
        assert!((2.4..4.2).contains(&pf), "P/F RPS ratio {pf:.2} (paper 3.2)");
        assert!(pk > 6.0, "P/K RPS ratio {pk:.2} (paper 11.4)");
        // Absolute: Palladium ≈ 200-260K on one core (paper ≈250K).
        assert!((150_000.0..280_000.0).contains(&p.rps), "palladium {:.0}", p.rps);
    }

    #[test]
    fn latency_ordering_under_load() {
        let p = sweep(IngressKind::Palladium, 60);
        let f = sweep(IngressKind::FStackDeferred, 60);
        let k = sweep(IngressKind::KernelDeferred, 60);
        assert!(p.mean_latency < f.mean_latency);
        assert!(f.mean_latency < k.mean_latency);
    }

    #[test]
    fn single_client_latency_is_low() {
        let p = sweep(IngressKind::Palladium, 1);
        // Unloaded: wire (2x20µs) + legs + worker side ⇒ well under 100 µs.
        assert!(p.mean_latency < Nanos::from_micros(100), "{}", p.mean_latency);
        let k = sweep(IngressKind::KernelDeferred, 1);
        assert!(k.mean_latency < Nanos::from_micros(200));
    }

    #[test]
    fn palladium_scales_workers_under_ramp() {
        let cfg = IngressSimConfig {
            fixed_workers: None,
            conns_per_client: 32,
            ..IngressSimConfig::fig13(IngressKind::Palladium, 0)
        };
        let report = IngressSim::new(cfg).scaling_run(0.05, 20);
        assert!(report.scale_ups >= 1, "autoscaler must add workers");
        assert_eq!(report.disconnected, 0, "no palladium disconnections");
        // RPS grows over the run.
        let early = report.rps_series.iter().take(2).map(|&(_, r)| r).sum::<f64>();
        let late: f64 = report.rps_series.iter().rev().take(2).map(|&(_, r)| r).sum();
        assert!(late > early, "rps must ramp: early {early:.0} late {late:.0}");
    }

    #[test]
    fn kernel_ingress_collapses_with_disconnects() {
        let cfg = IngressSimConfig {
            fixed_workers: None,
            conns_per_client: 32,
            ..IngressSimConfig::fig13(IngressKind::KernelDeferred, 0)
        };
        let report = IngressSim::new(cfg).scaling_run(0.05, 20);
        assert!(
            report.disconnected > 0,
            "overloaded kernel ingress must shed clients"
        );
    }

    #[test]
    fn deterministic() {
        let a = sweep(IngressKind::Palladium, 20);
        let b = sweep(IngressKind::Palladium, 20);
        assert_eq!(a.completed, b.completed);
    }
}
