//! Fig 16 / Table 2 driver: the full multi-node serverless cluster running
//! function chains on any of the six evaluated data planes.
//!
//! Topology (the paper's §4.3 testbed): two worker nodes carrying the
//! functions (hotspots on one, the rest on the other), an ingress node at
//! the cluster edge, and closed-loop external clients. Node 0 and node 1
//! are the workers; node 2 is the ingress.
//!
//! This module owns the *what*: the application topology ([`AppSpec`],
//! [`ChainSpec`]), the run configuration and the public report. The *how*
//! — the cluster state machine with its pools, fabric, engines and event
//! alphabet — lives in [`super::cluster`] and runs on the shared
//! [`palladium_simnet::Harness`] trampoline.

use palladium_membuf::FnId;
use palladium_simnet::{Harness, Nanos};

use super::cluster::Cluster;
use super::LoadReport;

/// The pseudo function id addressing the ingress gateway in routing tables.
pub const INGRESS_FN: FnId = FnId(0xFFFF);

/// One deployed function.
#[derive(Clone, Debug)]
pub struct FnSpec {
    /// Function id.
    pub id: FnId,
    /// Human-readable name.
    pub name: &'static str,
    /// Worker node index (0 or 1) the placement policy chose.
    pub node: usize,
    /// Execution cost per invocation (host-core time).
    pub exec: Nanos,
}

/// One data exchange in a chain.
#[derive(Clone, Copy, Debug)]
pub struct HopSpec {
    /// Producing function.
    pub from: FnId,
    /// Consuming function.
    pub to: FnId,
    /// Payload bytes.
    pub bytes: u32,
}

/// A function chain (one request type).
#[derive(Clone, Debug)]
pub struct ChainSpec {
    /// Chain name ("Home Query", ...).
    pub name: &'static str,
    /// Entry function (receives the client request).
    pub entry: FnId,
    /// The data exchanges, in order. After the final hop executes, its `to`
    /// function sends the response back to the ingress.
    pub hops: Vec<HopSpec>,
    /// Client request payload bytes.
    pub req_bytes: u32,
    /// Response payload bytes.
    pub resp_bytes: u32,
}

/// An application: functions plus chains.
#[derive(Clone, Debug)]
pub struct AppSpec {
    /// Deployed functions.
    pub functions: Vec<FnSpec>,
    /// Request chains.
    pub chains: Vec<ChainSpec>,
}

impl AppSpec {
    /// Function spec by id.
    pub fn function(&self, f: FnId) -> &FnSpec {
        self.functions
            .iter()
            .find(|s| s.id == f)
            .expect("unknown function id")
    }
}

/// Configuration of one Fig 16 cluster run.
#[derive(Clone, Debug)]
pub struct ChainSimConfig {
    /// Data plane under test.
    pub system: crate::system::SystemKind,
    /// The application.
    pub app: AppSpec,
    /// Which chain the clients exercise.
    pub chain_idx: usize,
    /// Closed-loop clients.
    pub clients: usize,
    /// Measurement window.
    pub duration: Nanos,
    /// Warm-up excluded from statistics.
    pub warmup: Nanos,
    /// Fabric/randomness seed.
    pub seed: u64,
}

impl ChainSimConfig {
    /// A run of `system` over `app`'s chain `chain_idx`.
    pub fn new(system: crate::system::SystemKind, app: AppSpec, chain_idx: usize) -> Self {
        ChainSimConfig {
            system,
            app,
            chain_idx,
            clients: 20,
            duration: Nanos::from_millis(300),
            warmup: Nanos::from_millis(60),
            seed: 42,
        }
    }

    /// Set the client count.
    pub fn clients(mut self, n: usize) -> Self {
        self.clients = n;
        self
    }

    /// Set the measurement window in milliseconds.
    pub fn duration_ms(mut self, ms: u64) -> Self {
        self.duration = Nanos::from_millis(ms);
        self
    }

    /// Set the warm-up in milliseconds.
    pub fn warmup_ms(mut self, ms: u64) -> Self {
        self.warmup = Nanos::from_millis(ms);
        self
    }
}

/// The cluster run's report.
#[derive(Clone, Debug)]
pub struct ChainReport {
    /// Throughput and latency details.
    pub load: LoadReport,
    /// Completed requests per second (alias of `load.rps`).
    pub rps: f64,
    /// Mean end-to-end latency.
    pub mean_latency: Nanos,
    /// Software copy bytes on the *worker* data plane (zero for Palladium).
    pub software_copy_bytes: u64,
    /// Software copy operations on the worker data plane.
    pub software_copy_ops: u64,
    /// RNIC DMA bytes moved on the workers.
    pub rnic_dma_bytes: u64,
    /// Worker-side data-plane CPU utilization in percent of one core
    /// (engines, pollers, worker TCP processing — not function execution).
    pub cpu_util_pct: f64,
    /// DPU utilization in percent of one core (busy-polling DNE cores count
    /// 100 % each, §4.3.1).
    pub dpu_util_pct: f64,
}

/// The Fig 16 simulation.
pub struct ChainSim {
    cfg: ChainSimConfig,
}

impl ChainSim {
    /// Build a cluster run.
    pub fn new(cfg: ChainSimConfig) -> Self {
        ChainSim { cfg }
    }

    /// Run the cluster and report.
    pub fn run(self) -> ChainReport {
        self.run_counted().0
    }

    /// Run the cluster, also returning the number of simulation events
    /// processed (heap pops + inline-drained effects) — the denominator of
    /// the `simcore_throughput` events/sec benchmark.
    pub fn run_counted(self) -> (ChainReport, u64) {
        let deadline = self.cfg.warmup + self.cfg.duration;
        let mut cluster = Cluster::build(self.cfg);
        let mut harness = Harness::new();
        for ev in cluster.initial_events() {
            harness.schedule_at(Nanos::ZERO, ev);
        }
        let events = harness.run(&mut cluster, deadline);
        (cluster.report(deadline), events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SystemKind;

    /// A small test app: 4 functions, hotspots (A, D) on node 0, the rest
    /// on node 1; one chain with 5 hops (2 local, 3 remote).
    fn test_app() -> AppSpec {
        let us = Nanos::from_micros;
        AppSpec {
            functions: vec![
                FnSpec { id: FnId(1), name: "A", node: 0, exec: us(15) },
                FnSpec { id: FnId(2), name: "B", node: 1, exec: us(10) },
                FnSpec { id: FnId(3), name: "C", node: 1, exec: us(10) },
                FnSpec { id: FnId(4), name: "D", node: 0, exec: us(12) },
            ],
            chains: vec![ChainSpec {
                name: "test-chain",
                entry: FnId(1),
                hops: vec![
                    HopSpec { from: FnId(1), to: FnId(2), bytes: 512 },
                    HopSpec { from: FnId(2), to: FnId(3), bytes: 1024 },
                    HopSpec { from: FnId(3), to: FnId(2), bytes: 256 },
                    HopSpec { from: FnId(2), to: FnId(4), bytes: 512 },
                    HopSpec { from: FnId(4), to: FnId(1), bytes: 256 },
                ],
                req_bytes: 256,
                resp_bytes: 512,
            }],
        }
    }

    fn run(system: SystemKind, clients: usize) -> ChainReport {
        ChainSim::new(
            ChainSimConfig::new(system, test_app(), 0)
                .clients(clients)
                .warmup_ms(40)
                .duration_ms(160),
        )
        .run()
    }

    #[test]
    fn palladium_dne_completes_requests_zero_copy() {
        let r = run(SystemKind::PalladiumDne, 10);
        assert!(r.load.completed > 100, "completed {}", r.load.completed);
        assert_eq!(
            r.software_copy_bytes, 0,
            "palladium worker data plane must be zero-copy"
        );
        assert!(r.rnic_dma_bytes > 0, "data moved by RNIC DMA");
        assert!(r.dpu_util_pct >= 200.0, "two busy-polled DPU cores");
    }

    #[test]
    fn cne_completes_requests_zero_copy_on_cpu() {
        let r = run(SystemKind::PalladiumCne, 10);
        assert!(r.load.completed > 100);
        assert_eq!(r.software_copy_bytes, 0);
        assert_eq!(r.dpu_util_pct, 0.0, "CNE uses no DPU");
        assert!(r.cpu_util_pct > 0.0, "CNE burns host cores");
    }

    #[test]
    fn baselines_complete_and_copy() {
        for sys in [SystemKind::Spright, SystemKind::FuyaoF, SystemKind::NightCore] {
            let r = run(sys, 10);
            assert!(r.load.completed > 50, "{sys:?} completed {}", r.load.completed);
            assert!(
                r.software_copy_bytes > 0,
                "{sys:?} must pay software copies"
            );
        }
    }

    #[test]
    fn palladium_beats_baselines_at_load() {
        let dne = run(SystemKind::PalladiumDne, 40);
        let spright = run(SystemKind::Spright, 40);
        let nightcore = run(SystemKind::NightCore, 40);
        let fuyao = run(SystemKind::FuyaoF, 40);
        assert!(
            dne.rps > spright.rps,
            "DNE {:.0} vs SPRIGHT {:.0}",
            dne.rps,
            spright.rps
        );
        assert!(
            dne.rps > fuyao.rps,
            "DNE {:.0} vs FUYAO-F {:.0}",
            dne.rps,
            fuyao.rps
        );
        assert!(
            dne.rps / nightcore.rps > 3.0,
            "DNE {:.0} vs NightCore {:.0}",
            dne.rps,
            nightcore.rps
        );
    }

    #[test]
    fn dne_beats_cne_under_load() {
        let dne = run(SystemKind::PalladiumDne, 60);
        let cne = run(SystemKind::PalladiumCne, 60);
        assert!(
            dne.rps >= cne.rps,
            "DNE {:.0} vs CNE {:.0} at 60 clients",
            dne.rps,
            cne.rps
        );
    }

    #[test]
    fn latency_rises_with_clients() {
        let low = run(SystemKind::PalladiumDne, 4);
        let high = run(SystemKind::PalladiumDne, 60);
        assert!(high.mean_latency > low.mean_latency);
        assert!(high.rps > low.rps, "more clients, more throughput until saturation");
    }

    #[test]
    fn deterministic_runs() {
        let a = run(SystemKind::PalladiumDne, 10);
        let b = run(SystemKind::PalladiumDne, 10);
        assert_eq!(a.load.completed, b.load.completed);
        assert_eq!(a.mean_latency, b.mean_latency);
    }
}
