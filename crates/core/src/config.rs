//! The cluster-wide cost model: every remaining service-time constant the
//! drivers charge, in one place, each row traceable to a paper statement
//! (DESIGN.md §6).
//!
//! Substrate-specific constants live with their substrates
//! (`palladium_rdma::RdmaConfig`, `palladium_ipc::costs`,
//! `palladium_tcpstack::stack`); this module holds the engine-, function-
//! and client-level knobs plus derived helpers.

use palladium_dpu::SocSpec;
use palladium_simnet::{ByteCost, Nanos};

/// Where a network engine runs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineLocation {
    /// On the DPU's ARM cores — the DNE. Op costs scale by the wimpy
    /// factor, but the run-to-completion loop takes no per-message
    /// interrupt hit (it busy-polls Comch and the CQ).
    Dpu,
    /// On a host core — the CNE ablation (§4.3). Host-speed ops, but
    /// SK_MSG's interrupt-driven delivery charges a per-message wake and
    /// degrades under high concurrency (receive-livelock pressure \[68\]).
    Cpu,
}

/// Engine and workload cost model.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// DPU spec (clock ratio → wimpy factor).
    pub soc: SocSpec,
    /// Engine TX stage, host-core time: dequeue descriptor, route lookup,
    /// least-congested select, build + post WR (§3.2).
    pub engine_tx: Nanos,
    /// Engine RX stage, host-core time: poll CQE, RBR lookup, forward
    /// descriptor (§3.2).
    pub engine_rx: Nanos,
    /// Core-thread work per replenished receive buffer (alloc + post).
    pub engine_replenish: Nanos,
    /// Per-message interrupt cost on a CPU-located engine (SK_MSG wake).
    pub cne_interrupt: Nanos,
    /// Queue-depth-dependent slowdown per queued message for interrupt-
    /// driven receivers (receive-livelock model): effective service =
    /// base + livelock_slope × backlog.
    pub cne_livelock_slope: Nanos,
    /// Interrupt-driven kernel ingress livelock slope (much steeper; drives
    /// the K-Ingress collapse in Fig 14 and NightCore's overload).
    pub kernel_livelock_slope: Nanos,
    /// Backlog threshold below which no livelock penalty applies.
    pub livelock_threshold: u64,
    /// Client ↔ ingress one-way latency over the external Ethernet side
    /// (client stack + switch).
    pub client_wire: Nanos,
    /// Receiver-side polling interval for one-sided designs (FUYAO-style
    /// receivers poll memory for arrivals; adds half an interval on
    /// average — we charge the deterministic mean).
    pub onesided_poll_interval: Nanos,
    /// Receiver-side copy rate for OWRC designs (fixed-point ns/byte) when
    /// the copy hits cache (OWRC-Best, §4.1.2).
    pub copy_per_byte_hot: ByteCost,
    /// ... and when it goes to main memory (OWRC-Worst).
    pub copy_per_byte_cold: ByteCost,
    /// Distributed-lock round trips for OWDL: lock request + grant (one
    /// fabric RTT) plus lock-manager processing per side.
    pub owdl_lock_proc: Nanos,
    /// FUYAO-style engine cost per message (host time): ring polling scan,
    /// slot/credit management and descriptor bookkeeping in its userspace
    /// engine. Calibrated so FUYAO saturates where the paper's Table 2
    /// shows it already saturated at 20 clients.
    pub fuyao_engine_op: Nanos,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            soc: SocSpec::default(),
            engine_tx: Nanos::from_nanos(700),
            engine_rx: Nanos::from_nanos(700),
            engine_replenish: Nanos::from_nanos(250),
            cne_interrupt: Nanos::from_nanos(1_200),
            cne_livelock_slope: Nanos::from_nanos(25),
            kernel_livelock_slope: Nanos::from_nanos(1_800),
            livelock_threshold: 2,
            client_wire: Nanos::from_micros(20),
            onesided_poll_interval: Nanos::from_micros(2),
            copy_per_byte_hot: ByteCost::per_byte_ns(0.12),
            copy_per_byte_cold: ByteCost::per_byte_ns(0.25),
            owdl_lock_proc: Nanos::from_micros(1),
            fuyao_engine_op: Nanos::from_nanos(5_000),
        }
    }
}

impl CostModel {
    /// Engine TX-stage service time at the given location.
    pub fn engine_tx_at(&self, loc: EngineLocation) -> Nanos {
        match loc {
            EngineLocation::Dpu => self.soc.scale(self.engine_tx),
            EngineLocation::Cpu => self.engine_tx,
        }
    }

    /// Engine RX-stage service time at the given location.
    pub fn engine_rx_at(&self, loc: EngineLocation) -> Nanos {
        match loc {
            EngineLocation::Dpu => self.soc.scale(self.engine_rx),
            EngineLocation::Cpu => self.engine_rx,
        }
    }

    /// Extra per-message cost on a CPU engine: the SK_MSG interrupt plus
    /// the livelock slope applied to the current backlog.
    pub fn cne_overhead(&self, backlog: u64) -> Nanos {
        let over = backlog.saturating_sub(self.livelock_threshold);
        self.cne_interrupt + self.cne_livelock_slope * over
    }

    /// Kernel-stack livelock inflation for an interrupt-driven server with
    /// the given backlog (charged on top of base service).
    pub fn kernel_livelock(&self, backlog: u64) -> Nanos {
        let over = backlog.saturating_sub(self.livelock_threshold);
        self.kernel_livelock_slope * over
    }

    /// OWRC receiver-side copy cost for `bytes`.
    pub fn owrc_copy(&self, bytes: u64, cold: bool) -> Nanos {
        let rate = if cold {
            self.copy_per_byte_cold
        } else {
            self.copy_per_byte_hot
        };
        rate.cost(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dpu_ops_scale_by_wimpy_factor() {
        let m = CostModel::default();
        let cpu = m.engine_tx_at(EngineLocation::Cpu);
        let dpu = m.engine_tx_at(EngineLocation::Dpu);
        let ratio = dpu.as_nanos() as f64 / cpu.as_nanos() as f64;
        assert!((2.1..2.3).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn cne_overhead_grows_with_backlog() {
        let m = CostModel::default();
        let idle = m.cne_overhead(0);
        let busy = m.cne_overhead(30);
        assert_eq!(idle, m.cne_interrupt);
        assert!(busy > idle + Nanos::from_nanos(500));
        // At low load the CPU engine is cheaper per op than the DPU engine
        // (paper: CNE slightly better latency under 20 clients)...
        let cne_total = m.engine_rx_at(EngineLocation::Cpu) + m.cne_overhead(1);
        let dne_total = m.engine_rx_at(EngineLocation::Dpu);
        assert!(cne_total < dne_total + Nanos::from_micros(1));
        // ...but at high backlog the DNE wins (the >20-client crossover).
        let cne_loaded = m.engine_rx_at(EngineLocation::Cpu) + m.cne_overhead(30);
        assert!(cne_loaded > dne_total);
    }

    #[test]
    fn kernel_livelock_is_steep() {
        let m = CostModel::default();
        assert_eq!(m.kernel_livelock(m.livelock_threshold), Nanos::ZERO);
        assert!(m.kernel_livelock(22) >= Nanos::from_micros(30));
    }

    #[test]
    fn owrc_copy_rates() {
        let m = CostModel::default();
        let hot = m.owrc_copy(4096, false);
        let cold = m.owrc_copy(4096, true);
        assert!(cold > hot);
        // 4 KB cold ≈ 1 µs — the OWRC-Worst vs Best gap at 4 KB (§4.1.2).
        assert!((cold - hot) >= Nanos::from_nanos(400));
    }
}
