//! The DPU Network Engine (DNE) — Palladium's core contribution (§3.2).
//!
//! The DNE is a lightweight reverse proxy running on the DPU's ARM cores
//! with exclusive access to the node's RDMA QPs. It consists of:
//!
//! * a **core thread** (one DPU core): imports host pools via DOCA mmap,
//!   registers memory with the RNIC, accepts Comch connections and — during
//!   operation — monitors per-tenant CQE counters to keep the shared
//!   receive queues replenished (§3.5.2);
//! * a **worker thread** (another DPU core): a non-blocking,
//!   run-to-completion event loop. The TX stage dequeues descriptors from
//!   the per-tenant DWRR scheduler, resolves the destination node,
//!   picks the least-congested RC connection and posts the WR. The RX stage
//!   polls CQEs, resolves receive buffers through the RBR table and
//!   forwards descriptors to destination functions over Comch.
//!
//! This is exactly the "two wimpy DPU cores" the paper's efficiency result
//! counts (§4.3.1). The same engine, instantiated with
//! [`EngineLocation::Cpu`], is the CNE ablation: host-speed service times
//! but per-message SK_MSG interrupt overhead that throttles it at high
//! concurrency.
//!
//! Like every substrate here, the engine is a passive state machine: the
//! driver feeds it descriptors/CQEs and trampolines the returned timed
//! effects.

use std::collections::VecDeque;

use bytes::Bytes;

use palladium_membuf::{BufDesc, BufToken, FnId, NodeId, TenantId};
use palladium_rdma::{Cqe, CqeKind, CqeStatus, Qpn, WorkRequest, WrId};
use palladium_simnet::{FifoServer, Nanos, Slab, Timed};

use crate::config::{CostModel, EngineLocation};
use crate::connpool::ConnPool;
use crate::dwrr::{SchedPolicy, TenantScheduler};
use crate::rbr::RbrTable;
use crate::routing::RouteTables;

/// Pack descriptor metadata into the RDMA immediate word: the receiver-side
/// engine needs (src_fn, dst_fn, tenant) to route without touching payload.
pub fn pack_imm(src: FnId, dst: FnId, tenant: TenantId) -> u64 {
    ((src.0 as u64) << 32) | ((dst.0 as u64) << 16) | tenant.0 as u64
}

/// Unpack the immediate word.
pub fn unpack_imm(imm: u64) -> (FnId, FnId, TenantId) {
    (
        FnId((imm >> 32) as u16),
        FnId((imm >> 16) as u16),
        TenantId(imm as u16),
    )
}

/// An item queued in the engine's TX scheduler.
#[derive(Debug)]
struct TxItem {
    desc: BufDesc,
    /// Destination node (resolved at enqueue from the inter-node table).
    dst_node: NodeId,
    /// Payload snapshot the RNIC will transmit.
    payload: Bytes,
    /// The sender-side buffer, released when the send completes.
    token: Option<BufToken>,
}

/// Externally visible effects of engine processing.
#[derive(Debug)]
pub enum DneEffect {
    /// Post a send WR toward `dst_node` (driver resolves the QP through
    /// [`Dne::select_conn`] and forwards to `RdmaNet`).
    PostSend {
        /// Destination node.
        dst_node: NodeId,
        /// Tenant the transfer belongs to.
        tenant: TenantId,
        /// The work request, by value: driver event queues keep payloads
        /// in a slab arena (`palladium_simnet::arena`), so a wide effect
        /// variant no longer needs a box to keep queue entries small.
        wr: WorkRequest,
    },
    /// Deliver a descriptor to a local function over Comch (driver charges
    /// channel costs and wakes the function).
    DeliverToFn {
        /// Destination function.
        dst: FnId,
        /// The descriptor (references a buffer in the tenant pool).
        desc: BufDesc,
    },
    /// Apply received bytes into the posted buffer (RNIC DMA; driver calls
    /// `pool.dma_write` and then hands the token to the function runtime).
    ApplyDma {
        /// Tenant pool owning the buffer.
        tenant: TenantId,
        /// The receive buffer token from the RBR.
        token: BufToken,
        /// The DMA'd bytes.
        data: Bytes,
    },
    /// A transmitted buffer completed; return it to its pool.
    ReleaseTxBuffer {
        /// The sender-side buffer token.
        token: BufToken,
    },
    /// The core thread should replenish `n` receive buffers for `tenant`
    /// (alloc from pool, register in RBR, post to the RNIC RQ).
    Replenish {
        /// Tenant whose shared RQ drained.
        tenant: TenantId,
        /// Buffers to post.
        n: u64,
    },
    /// The engine core freed up; the driver must call
    /// [`Dne::on_engine_slot`] at this time.
    EngineSlot,
    /// TX submitted for an unroutable destination (dropped; counted).
    RouteMiss {
        /// The unroutable function.
        dst: FnId,
    },
}

/// One network engine instance (DNE on the DPU or CNE on the host).
pub struct Dne {
    node: NodeId,
    loc: EngineLocation,
    cost: CostModel,
    /// Worker-thread core (the run-to-completion loop).
    pub worker_core: FifoServer,
    /// Core thread (mmap/Comch management + RQ replenishment).
    pub core_thread: FifoServer,
    sched: TenantScheduler<TxItem>,
    /// Receive-side CQE work awaiting the engine.
    rx_queue: VecDeque<Cqe>,
    /// RBR: posted receive buffers.
    pub rbr: RbrTable,
    /// RC connection pool.
    pub pool: ConnPool,
    /// Routing tables (synced by the coordinator).
    pub routes: RouteTables,
    /// In-flight TX sends awaiting completions. WR ids are the
    /// generation-checked slab keys, so allocation and the per-completion
    /// resolution are both O(1) index operations and a stale id from a
    /// recycled slot can never release someone else's buffer.
    tx_inflight: Slab<Option<BufToken>>,
    engine_busy: bool,
    /// Statistics.
    pub tx_count: u64,
    /// Receive-side descriptor deliveries.
    pub rx_count: u64,
    /// Route misses.
    pub route_misses: u64,
}

/// The result of poking the engine.
pub type DneStep = Vec<Timed<DneEffect>>;

impl Dne {
    /// An engine for `node` at `loc` with the given scheduling policy.
    pub fn new(
        node: NodeId,
        loc: EngineLocation,
        cost: CostModel,
        policy: SchedPolicy,
        pool: ConnPool,
    ) -> Self {
        let prefix = match loc {
            EngineLocation::Dpu => "dne",
            EngineLocation::Cpu => "cne",
        };
        Dne {
            node,
            loc,
            cost,
            worker_core: FifoServer::new(format!("{prefix}{}-worker", node.raw())),
            core_thread: FifoServer::new(format!("{prefix}{}-core", node.raw())),
            sched: TenantScheduler::new(policy, 1 << 12),
            rx_queue: VecDeque::new(),
            rbr: RbrTable::new(),
            pool,
            routes: RouteTables::new(),
            tx_inflight: Slab::new(),
            engine_busy: false,
            tx_count: 0,
            rx_count: 0,
            route_misses: 0,
        }
    }

    /// Node this engine serves.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Engine location.
    pub fn location(&self) -> EngineLocation {
        self.loc
    }

    /// Register a tenant's DWRR weight.
    pub fn register_tenant(&mut self, tenant: TenantId, weight: u32) {
        self.sched.register_tenant(tenant, weight);
    }

    /// Pending work (TX queued + RX queued).
    pub fn backlog(&self) -> u64 {
        (self.sched.len() + self.rx_queue.len()) as u64
    }

    /// A function handed the engine a descriptor for a remote function
    /// (the Comch arrival). `payload` is the RNIC's view of the buffer;
    /// `token` is the redeemed sender-side buffer, released on the send
    /// completion (exclusive-ownership lifecycle, §3.5.1).
    pub fn submit_tx(
        &mut self,
        now: Nanos,
        desc: BufDesc,
        payload: Bytes,
        token: Option<BufToken>,
    ) -> DneStep {
        let mut out = Vec::new();
        self.submit_tx_into(now, desc, payload, token, &mut out);
        out
    }

    /// [`Dne::submit_tx`] appending into a caller-owned buffer, so drivers
    /// can reuse one effect vector across every engine poke.
    pub fn submit_tx_into(
        &mut self,
        now: Nanos,
        desc: BufDesc,
        payload: Bytes,
        token: Option<BufToken>,
        out: &mut DneStep,
    ) {
        let Some(dst_node) = self.routes.node_of(desc.dst_fn) else {
            self.route_misses += 1;
            out.push(Timed::now(DneEffect::RouteMiss { dst: desc.dst_fn }));
            return;
        };
        let cost = (payload.len() as u64).max(64);
        self.sched.enqueue(
            desc.tenant,
            cost,
            TxItem {
                desc,
                dst_node,
                payload,
                token,
            },
        );
        self.kick(now, out);
    }

    /// A completion arrived on the node's shared CQ.
    pub fn submit_cqe(&mut self, now: Nanos, cqe: Cqe) -> DneStep {
        let mut out = Vec::new();
        self.submit_cqe_into(now, cqe, &mut out);
        out
    }

    /// [`Dne::submit_cqe`] appending into a caller-owned buffer.
    pub fn submit_cqe_into(&mut self, now: Nanos, cqe: Cqe, out: &mut DneStep) {
        self.rx_queue.push_back(cqe);
        self.kick(now, out);
    }

    /// Retire an entire CQ window in one call: every CQE in `cqes` is
    /// queued for the engine's RX stage (draining the caller's scratch so
    /// it can be reused) and the engine is kicked **once**.
    ///
    /// This is provably equivalent to a [`Dne::submit_cqe_into`] loop —
    /// each CQE lands in `rx_queue` in the same order, and every kick
    /// after the first is a no-op because the first kick leaves the engine
    /// busy (`crates/core/tests/prop_drain.rs` pins this across random
    /// windows/occupancy) — but hoists the engine-busy check and the
    /// effect-vector bookkeeping out of the per-CQE loop, which is what
    /// makes a single doorbell wakeup that surfaces a deep CQ backlog
    /// cheap. The kick happens after queuing only the *first* CQE: the
    /// CNE's receive-livelock model samples the backlog at kick time, so
    /// the first CQE's service time must see the same queue depth the
    /// per-CQE loop would have shown it (once the engine is busy, the
    /// rest of the window is bulk-queued without re-sampling, identically
    /// in both paths).
    pub fn drain_cq_into(&mut self, now: Nanos, cqes: &mut Vec<Cqe>, out: &mut DneStep) {
        if cqes.is_empty() {
            return;
        }
        self.rx_queue.reserve(cqes.len());
        let mut window = cqes.drain(..);
        let first = window.next().expect("checked non-empty");
        self.rx_queue.push_back(first);
        self.kick(now, out);
        self.rx_queue.extend(window);
    }

    fn kick(&mut self, now: Nanos, out: &mut DneStep) {
        if self.engine_busy {
            return;
        }
        self.on_engine_slot_into(now, out);
    }

    /// Per-op service time for the current location and backlog.
    fn service(&self, base: Nanos) -> Nanos {
        match self.loc {
            EngineLocation::Dpu => self.cost.soc.scale(base),
            EngineLocation::Cpu => base + self.cost.cne_overhead(self.backlog()),
        }
    }

    /// The engine core is free: start the next unit of work
    /// (run-to-completion: RX completions first, then TX per the
    /// scheduler). Returns effects; includes the next `EngineSlot` if more
    /// work was started.
    pub fn on_engine_slot(&mut self, now: Nanos) -> DneStep {
        let mut out = Vec::new();
        self.on_engine_slot_into(now, &mut out);
        out
    }

    /// [`Dne::on_engine_slot`] appending into a caller-owned buffer.
    pub fn on_engine_slot_into(&mut self, now: Nanos, out: &mut DneStep) {
        self.engine_busy = false;
        // RX stage has priority: completions free buffers and unblock
        // remote senders.
        if let Some(cqe) = self.rx_queue.pop_front() {
            let service = self.service(self.cost.engine_rx);
            let done = self.worker_core.submit(now, service);
            self.worker_core.complete();
            self.engine_busy = true;
            let delay = done - now;
            self.process_cqe(cqe, delay, out);
            out.push(Timed::new(delay, DneEffect::EngineSlot));
            return;
        }
        if let Some((_tenant, item)) = self.sched.dequeue() {
            let service = self.service(self.cost.engine_tx);
            let done = self.worker_core.submit(now, service);
            self.worker_core.complete();
            self.engine_busy = true;
            let delay = done - now;
            self.process_tx(item, delay, out);
            out.push(Timed::new(delay, DneEffect::EngineSlot));
        }
    }

    fn process_tx(&mut self, item: TxItem, delay: Nanos, out: &mut DneStep) {
        // Redeem happens driver-side before submit; here the engine selects
        // the connection (driver-side, at effect time) and builds the WR.
        // The WR id *is* the inflight-table key.
        let wr_id = WrId(self.tx_inflight.insert(item.token));
        let imm = pack_imm(item.desc.src_fn, item.desc.dst_fn, item.desc.tenant);
        let wr = WorkRequest::send(wr_id, item.payload, imm);
        self.tx_count += 1;
        out.push(Timed::new(
            delay,
            DneEffect::PostSend {
                dst_node: item.dst_node,
                tenant: item.desc.tenant,
                wr,
            },
        ));
    }

    /// Resolve the sentinel QPN in a `PostSend` effect into a real
    /// connection (needs fabric state, so it happens driver-side at effect
    /// time). Returns `None` when no connection exists.
    pub fn select_conn(
        &mut self,
        net: &palladium_rdma::RdmaNet,
        dst_node: NodeId,
        tenant: TenantId,
    ) -> Option<Qpn> {
        self.pool.select(net, dst_node, tenant)
    }

    /// Track a posted TX buffer awaiting its send completion; returns the
    /// WR id the send must carry so the completion resolves back to the
    /// buffer.
    pub fn track_tx_buffer(&mut self, token: BufToken) -> WrId {
        WrId(self.tx_inflight.insert(Some(token)))
    }

    fn process_cqe(&mut self, cqe: Cqe, delay: Nanos, out: &mut DneStep) {
        match cqe.kind {
            CqeKind::Recv => {
                let Some((tenant, token)) = self.rbr.consume(cqe.wr_id) else {
                    return;
                };
                let (src, dst, _) = unpack_imm(cqe.imm);
                let desc = BufDesc {
                    tenant,
                    pool: token.pool(),
                    buf_idx: token.idx(),
                    len: cqe.data.len() as u32,
                    src_fn: src,
                    dst_fn: dst,
                };
                self.rx_count += 1;
                out.push(Timed::new(
                    delay,
                    DneEffect::ApplyDma {
                        tenant,
                        token,
                        data: cqe.data,
                    },
                ));
                out.push(Timed::new(delay, DneEffect::DeliverToFn { dst, desc }));
                // Core thread replenishment sweep (runs on the other core,
                // asynchronously — charge it there).
                let consumed = self.rbr.take_consumed(tenant);
                if consumed > 0 {
                    let service = match self.loc {
                        EngineLocation::Dpu => self
                            .cost
                            .soc
                            .scale(self.cost.engine_replenish)
                            .saturating_mul(consumed),
                        EngineLocation::Cpu => {
                            self.cost.engine_replenish.saturating_mul(consumed)
                        }
                    };
                    let rdone = self.core_thread.submit(Nanos::ZERO.max(delay), service);
                    self.core_thread.complete();
                    out.push(Timed::new(
                        rdone,
                        DneEffect::Replenish {
                            tenant,
                            n: consumed,
                        },
                    ));
                }
            }
            CqeKind::SendDone(_) => {
                if let Some(Some(token)) = self.tx_inflight.remove(cqe.wr_id.0) {
                    out.push(Timed::new(delay, DneEffect::ReleaseTxBuffer { token }));
                }
                if cqe.status != CqeStatus::Success {
                    // Connection died; buffers already released above. The
                    // driver decides whether to re-establish.
                }
            }
            CqeKind::ReadData => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connpool::ConnPoolConfig;
    use palladium_membuf::PoolId;

    fn engine(loc: EngineLocation) -> Dne {
        Dne::new(
            NodeId(0),
            loc,
            CostModel::default(),
            SchedPolicy::Dwrr,
            ConnPool::new(NodeId(0), ConnPoolConfig::default()),
        )
    }

    fn desc() -> BufDesc {
        BufDesc {
            tenant: TenantId(1),
            pool: PoolId(0),
            buf_idx: 1,
            len: 64,
            src_fn: FnId(1),
            dst_fn: FnId(2),
        }
    }

    #[test]
    fn imm_packing_roundtrip() {
        let imm = pack_imm(FnId(0xAB), FnId(0xCD), TenantId(0xEF));
        assert_eq!(unpack_imm(imm), (FnId(0xAB), FnId(0xCD), TenantId(0xEF)));
    }

    #[test]
    fn unroutable_tx_is_a_route_miss() {
        let mut dne = engine(EngineLocation::Dpu);
        let fx = dne.submit_tx(Nanos::ZERO, desc(), Bytes::from_static(b"x"), None);
        assert!(matches!(fx[0].value, DneEffect::RouteMiss { dst } if dst == FnId(2)));
        assert_eq!(dne.route_misses, 1);
    }

    #[test]
    fn tx_emits_post_send_after_service_time() {
        let mut dne = engine(EngineLocation::Dpu);
        // Route fn 2 to node 1.
        let mut coord = crate::routing::Coordinator::new();
        coord.apply(crate::routing::DeployEvent::Created {
            f: FnId(2),
            tenant: TenantId(1),
            node: NodeId(1),
        });
        dne.routes = coord.tables_for(NodeId(0));
        let fx = dne.submit_tx(Nanos::ZERO, desc(), Bytes::from_static(b"payload"), None);
        let post = fx
            .iter()
            .find(|t| matches!(t.value, DneEffect::PostSend { .. }))
            .expect("PostSend effect");
        // DPU-located: service = engine_tx × wimpy ≈ 1.54 µs.
        assert!(post.after >= Nanos::from_nanos(1_400) && post.after <= Nanos::from_nanos(1_700));
        if let DneEffect::PostSend { wr, .. } = &post.value {
            assert_eq!(unpack_imm(wr.imm), (FnId(1), FnId(2), TenantId(1)));
            assert_eq!(wr.payload.len(), 7);
        }
        assert_eq!(dne.tx_count, 1);
        // An EngineSlot follows so the driver re-polls.
        assert!(fx
            .iter()
            .any(|t| matches!(t.value, DneEffect::EngineSlot)));
    }

    #[test]
    fn cne_degrades_with_backlog_while_dne_stays_flat() {
        // The Fig 16 DNE-vs-CNE crossover at the engine level: the CPU
        // engine pays interrupt + livelock costs that grow with backlog;
        // the DPU engine's busy-polled op cost is constant (just wimpier).
        let mut coordinator = crate::routing::Coordinator::new();
        coordinator.apply(crate::routing::DeployEvent::Created {
            f: FnId(2),
            tenant: TenantId(1),
            node: NodeId(1),
        });
        let cost = CostModel::default();
        // Unloaded per-op: CNE = engine_tx + interrupt; DNE = engine_tx ×
        // wimpy. They are within ~25% of each other (the end-to-end
        // light-load advantage of the CNE comes from the cheaper SK_MSG
        // transit, exercised in the chain driver tests).
        let cne_unloaded = cost.engine_tx + cost.cne_overhead(0);
        let dne_op = cost.engine_tx_at(EngineLocation::Dpu);
        let ratio = cne_unloaded.as_nanos() as f64 / dne_op.as_nanos() as f64;
        assert!((0.8..1.4).contains(&ratio), "unloaded ratio {ratio}");
        // Heavily backlogged: CNE per-op must clearly exceed DNE per-op
        // (this is what throttles the CNE at high concurrency, §4.3 — the
        // end-to-end crossover lands at the paper's 1.3-1.8x band).
        let cne_loaded = cost.engine_tx + cost.cne_overhead(40);
        assert!(
            cne_loaded > dne_op + Nanos::from_nanos(800),
            "loaded CNE {cne_loaded} vs DNE {dne_op}"
        );
    }

    #[test]
    fn recv_cqe_resolves_rbr_and_delivers() {
        let mut dne = engine(EngineLocation::Dpu);
        let mut pool = palladium_membuf::UnifiedPool::new(PoolId(0), TenantId(1), 4, 256);
        let tok = pool.alloc(palladium_membuf::Owner::Rnic).unwrap();
        let idx = tok.idx();
        let wr_id = dne.rbr.register(TenantId(1), tok);
        let cqe = Cqe {
            wr_id,
            kind: CqeKind::Recv,
            status: CqeStatus::Success,
            qpn: Qpn(1),
            tenant: TenantId(1),
            peer: NodeId(1),
            data: Bytes::from_static(b"hello"),
            imm: pack_imm(FnId(1), FnId(2), TenantId(1)),
        };
        let fx = dne.submit_cqe(Nanos::ZERO, cqe);
        let deliver = fx
            .iter()
            .find_map(|t| match &t.value {
                DneEffect::DeliverToFn { dst, desc } => Some((*dst, *desc)),
                _ => None,
            })
            .expect("delivery effect");
        assert_eq!(deliver.0, FnId(2));
        assert_eq!(deliver.1.buf_idx, idx);
        assert_eq!(deliver.1.len, 5);
        // DMA application effect present.
        assert!(fx
            .iter()
            .any(|t| matches!(&t.value, DneEffect::ApplyDma { data, .. } if data.len() == 5)));
        // Replenish effect for the consumed buffer.
        assert!(fx.iter().any(
            |t| matches!(t.value, DneEffect::Replenish { tenant, n } if tenant == TenantId(1) && n == 1)
        ));
        assert_eq!(dne.rx_count, 1);
    }

    #[test]
    fn send_done_releases_tracked_buffer() {
        let mut dne = engine(EngineLocation::Dpu);
        let mut pool = palladium_membuf::UnifiedPool::new(PoolId(0), TenantId(1), 4, 256);
        let tok = pool.alloc(palladium_membuf::Owner::Engine).unwrap();
        let idx = tok.idx();
        let wr_id = dne.track_tx_buffer(tok);
        let cqe = Cqe {
            wr_id,
            kind: CqeKind::SendDone(palladium_rdma::OpKind::Send),
            status: CqeStatus::Success,
            qpn: Qpn(1),
            tenant: TenantId(1),
            peer: NodeId(1),
            data: Bytes::new(),
            imm: 0,
        };
        let fx = dne.submit_cqe(Nanos::ZERO, cqe);
        let released = fx
            .iter()
            .find_map(|t| match &t.value {
                DneEffect::ReleaseTxBuffer { token } => Some(token.idx()),
                _ => None,
            })
            .expect("release effect");
        assert_eq!(released, idx);
    }

    #[test]
    fn engine_serializes_work() {
        // Two TX submissions: the second's PostSend lands one service time
        // after the first (single engine core).
        let mut dne = engine(EngineLocation::Dpu);
        let mut coord = crate::routing::Coordinator::new();
        coord.apply(crate::routing::DeployEvent::Created {
            f: FnId(2),
            tenant: TenantId(1),
            node: NodeId(1),
        });
        dne.routes = coord.tables_for(NodeId(0));
        let fx1 = dne.submit_tx(Nanos::ZERO, desc(), Bytes::from_static(b"a"), None);
        let t1 = fx1
            .iter()
            .find(|t| matches!(t.value, DneEffect::PostSend { .. }))
            .unwrap()
            .after;
        // Second arrives immediately; engine busy → no effects yet.
        let fx2 = dne.submit_tx(Nanos::ZERO, desc(), Bytes::from_static(b"b"), None);
        assert!(fx2.is_empty(), "engine busy: work deferred to EngineSlot");
        // Driver fires EngineSlot at t1.
        let fx3 = dne.on_engine_slot(t1);
        let t2 = fx3
            .iter()
            .find(|t| matches!(t.value, DneEffect::PostSend { .. }))
            .unwrap()
            .after;
        assert_eq!(t1 + t2, t1 * 2, "second op takes one more service time");
    }
}
