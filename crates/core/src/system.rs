//! System definitions: the six data planes of the §4.3 evaluation plus the
//! ablation variants, expressed as a single declarative spec the chain
//! driver wires up. Also the Table 1 capability matrix.

use crate::config::EngineLocation;
use crate::dwrr::SchedPolicy;

/// Which serverless data plane a cluster runs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SystemKind {
    /// Palladium with the DPU-offloaded network engine.
    PalladiumDne,
    /// Palladium with the engine on a host CPU core (apples-to-apples
    /// DPU-offload ablation, §4.3).
    PalladiumCne,
    /// FUYAO with the F-Stack ingress (one-sided WRITE + receiver copy).
    FuyaoF,
    /// FUYAO with the kernel ingress.
    FuyaoK,
    /// SPRIGHT: intra-node shared memory, kernel TCP across nodes,
    /// F-Stack ingress.
    Spright,
    /// NightCore: single-node shared memory, built-in kernel ingress.
    NightCore,
}

impl SystemKind {
    /// Every system of the Fig 16 / Table 2 comparison, in paper order.
    pub const ALL: [SystemKind; 6] = [
        SystemKind::PalladiumDne,
        SystemKind::PalladiumCne,
        SystemKind::FuyaoF,
        SystemKind::FuyaoK,
        SystemKind::Spright,
        SystemKind::NightCore,
    ];

    /// Display name matching the paper's labels.
    pub fn label(self) -> &'static str {
        match self {
            SystemKind::PalladiumDne => "Palladium (DNE)",
            SystemKind::PalladiumCne => "Palladium (CNE)",
            SystemKind::FuyaoF => "FUYAO-F",
            SystemKind::FuyaoK => "FUYAO-K",
            SystemKind::Spright => "SPRIGHT",
            SystemKind::NightCore => "NightCore",
        }
    }

    /// The declarative wiring for this system.
    pub fn spec(self) -> SystemSpec {
        match self {
            SystemKind::PalladiumDne => SystemSpec {
                kind: self,
                ingress: IngressKind::Palladium,
                inter_node: InterNode::TwoSidedRdma,
                engine_loc: EngineLocation::Dpu,
                sched: SchedPolicy::Dwrr,
                single_node: false,
                receiver_polls: false,
            },
            SystemKind::PalladiumCne => SystemSpec {
                kind: self,
                ingress: IngressKind::Palladium,
                inter_node: InterNode::TwoSidedRdma,
                engine_loc: EngineLocation::Cpu,
                sched: SchedPolicy::Dwrr,
                single_node: false,
                receiver_polls: false,
            },
            SystemKind::FuyaoF => SystemSpec {
                kind: self,
                ingress: IngressKind::FStackDeferred,
                inter_node: InterNode::OneSidedRecvCopy,
                engine_loc: EngineLocation::Cpu,
                sched: SchedPolicy::Fcfs,
                single_node: false,
                receiver_polls: true,
            },
            SystemKind::FuyaoK => SystemSpec {
                kind: self,
                ingress: IngressKind::KernelDeferred,
                inter_node: InterNode::OneSidedRecvCopy,
                engine_loc: EngineLocation::Cpu,
                sched: SchedPolicy::Fcfs,
                single_node: false,
                receiver_polls: true,
            },
            SystemKind::Spright => SystemSpec {
                kind: self,
                ingress: IngressKind::FStackDeferred,
                inter_node: InterNode::KernelTcp,
                engine_loc: EngineLocation::Cpu,
                sched: SchedPolicy::Fcfs,
                single_node: false,
                receiver_polls: false,
            },
            SystemKind::NightCore => SystemSpec {
                kind: self,
                ingress: IngressKind::KernelDeferred,
                inter_node: InterNode::None,
                engine_loc: EngineLocation::Cpu,
                sched: SchedPolicy::Fcfs,
                single_node: true,
                receiver_polls: false,
            },
        }
    }

    /// Table 1 capability row.
    pub fn capabilities(self) -> Capabilities {
        match self {
            SystemKind::PalladiumDne | SystemKind::PalladiumCne => Capabilities {
                multi_tenancy: true,
                distributed_zero_copy: true,
                dpu_offloading: self == SystemKind::PalladiumDne,
                eliminates_proto_in_cluster: true,
            },
            SystemKind::FuyaoF | SystemKind::FuyaoK => Capabilities {
                multi_tenancy: false,
                distributed_zero_copy: false, // receiver-side copy
                dpu_offloading: true,
                eliminates_proto_in_cluster: false,
            },
            SystemKind::Spright => Capabilities {
                multi_tenancy: false,
                distributed_zero_copy: false,
                dpu_offloading: false,
                eliminates_proto_in_cluster: false,
            },
            SystemKind::NightCore => Capabilities {
                multi_tenancy: false,
                distributed_zero_copy: false,
                dpu_offloading: false,
                eliminates_proto_in_cluster: false,
            },
        }
    }
}

/// How external HTTP traffic enters the cluster.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IngressKind {
    /// Early HTTP/TCP→RDMA conversion at the cluster edge (§3.6).
    Palladium,
    /// Deferred conversion, F-Stack proxy at the edge + TCP to workers.
    FStackDeferred,
    /// Deferred conversion, kernel-stack proxy (interrupt-driven).
    KernelDeferred,
}

/// How inter-node function hops travel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InterNode {
    /// Two-sided RDMA SEND/RECV through the engine (Palladium, §2.1).
    TwoSidedRdma,
    /// One-sided WRITE into a dedicated pool + receiver-side copy (FUYAO).
    OneSidedRecvCopy,
    /// Kernel TCP between node-local engines (SPRIGHT).
    KernelTcp,
    /// No inter-node path: all functions co-located (NightCore).
    None,
}

/// Full declarative wiring of one system.
#[derive(Clone, Copy, Debug)]
pub struct SystemSpec {
    /// Which system this is.
    pub kind: SystemKind,
    /// Ingress design.
    pub ingress: IngressKind,
    /// Inter-node transport.
    pub inter_node: InterNode,
    /// Engine location (DPU vs CPU).
    pub engine_loc: EngineLocation,
    /// TX scheduling policy.
    pub sched: SchedPolicy,
    /// All functions forced onto one node?
    pub single_node: bool,
    /// Does the receiver pin a core busy-polling for one-sided arrivals?
    pub receiver_polls: bool,
}

/// Table 1 capability flags.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Capabilities {
    /// Multi-tenancy support for the RDMA fabric.
    pub multi_tenancy: bool,
    /// Distributed zero-copy data plane.
    pub distributed_zero_copy: bool,
    /// DPU offloading.
    pub dpu_offloading: bool,
    /// Eliminates protocol processing within the cluster.
    pub eliminates_proto_in_cluster: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_matrix() {
        // Palladium is the only row with all four capabilities (Table 1).
        let p = SystemKind::PalladiumDne.capabilities();
        assert!(
            p.multi_tenancy
                && p.distributed_zero_copy
                && p.dpu_offloading
                && p.eliminates_proto_in_cluster
        );
        let f = SystemKind::FuyaoF.capabilities();
        assert!(f.dpu_offloading && !f.multi_tenancy && !f.distributed_zero_copy);
        let s = SystemKind::Spright.capabilities();
        assert!(!s.dpu_offloading && !s.distributed_zero_copy);
        let n = SystemKind::NightCore.capabilities();
        assert!(!n.multi_tenancy && !n.dpu_offloading);
    }

    #[test]
    fn specs_are_consistent() {
        for k in SystemKind::ALL {
            let s = k.spec();
            assert_eq!(s.kind, k);
            if s.single_node {
                assert_eq!(s.inter_node, InterNode::None);
            }
            if s.receiver_polls {
                assert_eq!(s.inter_node, InterNode::OneSidedRecvCopy);
            }
        }
        assert_eq!(
            SystemKind::PalladiumDne.spec().engine_loc,
            EngineLocation::Dpu
        );
        assert_eq!(
            SystemKind::PalladiumCne.spec().engine_loc,
            EngineLocation::Cpu
        );
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(SystemKind::PalladiumDne.label(), "Palladium (DNE)");
        assert_eq!(SystemKind::FuyaoK.label(), "FUYAO-K");
        assert_eq!(SystemKind::ALL.len(), 6);
    }
}
