//! The cluster-wide ingress gateway (§3.6, Fig 10).
//!
//! Master/worker architecture: worker processes run a run-to-completion
//! busy-polling loop doing F-Stack TCP termination, real HTTP processing
//! and — in Palladium's design — *early transport conversion*: the HTTP
//! payload leaves toward workers over RDMA, never over a second TCP
//! connection. RSS spreads client connections across workers; the master
//! horizontally scales the worker count with the 60 %/30 % hysteresis
//! policy, measuring *useful* CPU time inside the event loops (busy-polling
//! cores are nominally always 100 % busy).
//!
//! The deferred-conversion baselines (K-Ingress / F-Ingress, Fig 4 (1)) run
//! through the same gateway object with different per-request service
//! models; the kernel variant additionally suffers receive-livelock
//! inflation under overload — the collapse visible in Fig 14.

use palladium_simnet::{FifoServer, Nanos};
use palladium_tcpstack::{IngressServiceModel, StackKind};

use crate::autoscaler::{Autoscaler, AutoscalerConfig, ScaleAction};
use crate::config::CostModel;
use crate::system::IngressKind;

/// Gateway configuration.
#[derive(Clone, Copy, Debug)]
pub struct IngressConfig {
    /// Ingress design.
    pub kind: IngressKind,
    /// Autoscaler policy (ignored when `fixed_workers` is set).
    pub autoscaler: AutoscalerConfig,
    /// Pin the worker count (Fig 13 uses exactly one core).
    pub fixed_workers: Option<usize>,
}

impl IngressConfig {
    /// A gateway of the given design with autoscaling enabled.
    pub fn new(kind: IngressKind) -> Self {
        IngressConfig {
            kind,
            autoscaler: AutoscalerConfig::default(),
            fixed_workers: None,
        }
    }

    /// Pin the worker count.
    pub fn with_fixed_workers(mut self, n: usize) -> Self {
        self.fixed_workers = Some(n);
        self
    }
}

/// Which half of a request the worker is processing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Leg {
    /// Client request in → (RDMA post | upstream TCP out).
    Inbound,
    /// (RDMA reap | upstream TCP in) → client response out.
    Outbound,
}

/// The gateway state machine.
pub struct IngressGateway {
    cfg: IngressConfig,
    model: IngressServiceModel,
    cost: CostModel,
    /// One FifoServer per potential worker (up to max_workers).
    workers: Vec<FifoServer>,
    active: usize,
    scaler: Autoscaler,
    /// During a scaling reload, processing pauses until this instant.
    blip_until: Nanos,
    /// Useful busy-time snapshot per worker at the last evaluation.
    busy_snapshot: Vec<Nanos>,
    /// Requests whose inbound leg completed (for reports).
    pub inbound_done: u64,
    /// Responses returned to clients.
    pub outbound_done: u64,
}

impl IngressGateway {
    /// Build a gateway.
    pub fn new(cfg: IngressConfig, cost: CostModel) -> Self {
        let stack = match cfg.kind {
            IngressKind::Palladium | IngressKind::FStackDeferred => StackKind::FStack,
            IngressKind::KernelDeferred => StackKind::Kernel,
        };
        let max = cfg.autoscaler.max_workers;
        let initial = cfg.fixed_workers.unwrap_or(cfg.autoscaler.min_workers);
        IngressGateway {
            cfg,
            model: IngressServiceModel::new(stack),
            cost,
            workers: (0..max).map(|i| FifoServer::new(format!("igw-{i}"))).collect(),
            active: initial.min(max).max(1),
            scaler: Autoscaler::new(cfg.autoscaler),
            blip_until: Nanos::ZERO,
            busy_snapshot: vec![Nanos::ZERO; max],
            inbound_done: 0,
            outbound_done: 0,
        }
    }

    /// Ingress design.
    pub fn kind(&self) -> IngressKind {
        self.cfg.kind
    }

    /// Active worker processes.
    pub fn active_workers(&self) -> usize {
        self.active
    }

    /// The service model in force.
    pub fn model(&self) -> &IngressServiceModel {
        &self.model
    }

    /// RSS: assign a client's connection to a worker. The single-worker
    /// case (every Fig 13 run pins one core) skips the hardware divide —
    /// a measurable cost when this runs once per leg on the hot path.
    #[inline]
    pub fn rss_worker(&self, client: usize) -> usize {
        if self.active == 1 {
            0
        } else {
            client % self.active
        }
    }

    fn leg_service(&self, leg: Leg, req_bytes: u64, resp_bytes: u64, backlog: u64) -> Nanos {
        let m = &self.model;
        let mut s = match (self.cfg.kind, leg) {
            // Early conversion: rx + parse + RDMA post inbound; RDMA reap +
            // serialize + tx outbound.
            (IngressKind::Palladium, Leg::Inbound) => {
                m.client_stack.rx(req_bytes) + m.http.parse + m.bridge.post
            }
            (IngressKind::Palladium, Leg::Outbound) => {
                m.bridge.reap + m.http.serialize + m.client_stack.tx(resp_bytes)
            }
            // Deferred conversion: full proxy legs; proxy bookkeeping split
            // across both halves.
            (_, Leg::Inbound) => {
                m.client_stack.rx(req_bytes)
                    + m.http.parse
                    + m.client_stack.tx(req_bytes)
                    + m.http.proxy_overhead / 2
            }
            (_, Leg::Outbound) => {
                m.client_stack.rx(resp_bytes)
                    + m.http.serialize
                    + m.client_stack.tx(resp_bytes)
                    + m.http.proxy_overhead / 2
            }
        };
        // Interrupt-driven kernel stack: livelock inflation under backlog.
        if self.cfg.kind == IngressKind::KernelDeferred {
            s += self.cost.kernel_livelock(backlog);
        }
        s
    }

    /// A request leg arrives at the worker serving `client`. Returns
    /// `(worker index, completion time)`; the driver schedules the
    /// follow-up (RDMA post / upstream TCP / client response) at that time.
    pub fn submit(
        &mut self,
        now: Nanos,
        client: usize,
        leg: Leg,
        req_bytes: u64,
        resp_bytes: u64,
    ) -> (usize, Nanos) {
        let start = now.max(self.blip_until);
        let w = self.rss_worker(client);
        // Kernel livelock pressure is a shared-NIC phenomenon: softirqs
        // steal cycles in proportion to the *total* interrupt arrival rate,
        // not one worker's queue.
        let backlog = if self.cfg.kind == IngressKind::KernelDeferred {
            self.total_in_flight()
        } else {
            self.workers[w].in_flight()
        };
        let service = self.leg_service(leg, req_bytes, resp_bytes, backlog);
        let done = self.workers[w].submit(start, service);
        match leg {
            Leg::Inbound => self.inbound_done += 1,
            Leg::Outbound => self.outbound_done += 1,
        }
        (w, done)
    }

    /// A leg previously submitted to `worker` finished (the driver calls
    /// this at the returned completion time). Keeping in-flight counts
    /// accurate is what drives the kernel stack's livelock inflation.
    pub fn leg_done(&mut self, worker: usize) {
        self.workers[worker].complete();
    }

    /// Total legs in flight across all workers (interrupt pressure).
    pub fn total_in_flight(&self) -> u64 {
        self.workers.iter().map(|w| w.in_flight()).sum()
    }

    /// Master-process evaluation tick: measure useful utilization over the
    /// window ending `now`, apply the hysteresis policy, and return the
    /// action. A scaling action triggers the reload blip.
    pub fn evaluate(&mut self, now: Nanos, window: Nanos) -> ScaleAction {
        if self.cfg.fixed_workers.is_some() || window.is_zero() {
            return ScaleAction::Hold;
        }
        let mut useful = Nanos::ZERO;
        for w in 0..self.active {
            let busy = self.workers[w].busy_time();
            useful += busy - self.busy_snapshot[w];
        }
        for (w, snap) in self.busy_snapshot.iter_mut().enumerate() {
            *snap = self.workers[w].busy_time();
        }
        let util = useful.as_nanos() as f64 / (window.as_nanos() as f64 * self.active as f64);
        let action = self.scaler.evaluate(util);
        if action != ScaleAction::Hold {
            self.active = self.scaler.workers();
            self.blip_until = now + self.cfg.autoscaler.reload_blip;
        }
        action
    }

    /// Busy time accumulated across active workers (for CPU-usage series).
    pub fn total_busy(&self) -> Nanos {
        self.workers.iter().map(|w| w.busy_time()).sum()
    }

    /// The worker FifoServers (read access for utilization bins).
    pub fn workers(&self) -> &[FifoServer] {
        &self.workers
    }

    /// Is the gateway inside a scaling blip at `now`?
    pub fn in_blip(&self, now: Nanos) -> bool {
        now < self.blip_until
    }

    /// Scale-up actions taken so far.
    pub fn scaler_ups(&self) -> u32 {
        self.scaler.ups
    }

    /// Scale-down actions taken so far.
    pub fn scaler_downs(&self) -> u32 {
        self.scaler.downs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gw(kind: IngressKind) -> IngressGateway {
        IngressGateway::new(
            IngressConfig::new(kind).with_fixed_workers(1),
            CostModel::default(),
        )
    }

    #[test]
    fn palladium_legs_are_cheapest() {
        let mut p = gw(IngressKind::Palladium);
        let mut f = gw(IngressKind::FStackDeferred);
        let mut k = gw(IngressKind::KernelDeferred);
        let (_, tp) = p.submit(Nanos::ZERO, 0, Leg::Inbound, 256, 256);
        let (_, tf) = f.submit(Nanos::ZERO, 0, Leg::Inbound, 256, 256);
        let (_, tk) = k.submit(Nanos::ZERO, 0, Leg::Inbound, 256, 256);
        assert!(tp < tf, "palladium {tp} < f-ingress {tf}");
        assert!(tf < tk, "f-ingress {tf} < k-ingress {tk}");
    }

    #[test]
    fn full_request_capacity_ratios_match_paper() {
        // Both legs together reproduce the stack-level capacity ratios
        // (≈3.2x and ≈11x, §4.1.3).
        let per_req = |kind| {
            let mut g = gw(kind);
            let (_, t1) = g.submit(Nanos::ZERO, 0, Leg::Inbound, 256, 256);
            let (_, t2) = g.submit(t1, 0, Leg::Outbound, 256, 256);
            t2.as_nanos() as f64
        };
        let p = per_req(IngressKind::Palladium);
        let f = per_req(IngressKind::FStackDeferred);
        let k = per_req(IngressKind::KernelDeferred);
        assert!((2.7..3.8).contains(&(f / p)), "F/P ratio {}", f / p);
        assert!((9.0..13.0).contains(&(k / p)), "K/P ratio {}", k / p);
    }

    #[test]
    fn rss_spreads_clients() {
        let mut g = IngressGateway::new(
            IngressConfig::new(IngressKind::Palladium).with_fixed_workers(4),
            CostModel::default(),
        );
        g.active = 4;
        let assigned: Vec<usize> = (0..8).map(|c| g.rss_worker(c)).collect();
        assert_eq!(assigned, [0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn kernel_livelock_inflates_under_backlog() {
        let mut k = gw(IngressKind::KernelDeferred);
        // Pile up 20 concurrent legs: later ones must take much longer than
        // base service because livelock grows with in-flight count...
        let mut last = Nanos::ZERO;
        for _ in 0..20 {
            let (_, t) = k.submit(Nanos::ZERO, 0, Leg::Inbound, 256, 256);
            last = t;
        }
        // ...whereas F-stack stays linear.
        let mut f = gw(IngressKind::FStackDeferred);
        let mut flast = Nanos::ZERO;
        for _ in 0..20 {
            let (_, t) = f.submit(Nanos::ZERO, 0, Leg::Inbound, 256, 256);
            flast = t;
        }
        let k_one = gw(IngressKind::KernelDeferred)
            .submit(Nanos::ZERO, 0, Leg::Inbound, 256, 256)
            .1;
        let f_one = gw(IngressKind::FStackDeferred)
            .submit(Nanos::ZERO, 0, Leg::Inbound, 256, 256)
            .1;
        let k_inflation = last.as_nanos() as f64 / (k_one.as_nanos() as f64 * 20.0);
        let f_inflation = flast.as_nanos() as f64 / (f_one.as_nanos() as f64 * 20.0);
        assert!(k_inflation > 1.3, "kernel inflation {k_inflation}");
        assert!(f_inflation < 1.05, "fstack stays linear {f_inflation}");
    }

    #[test]
    fn autoscaler_scales_and_blips() {
        let mut g = IngressGateway::new(
            IngressConfig::new(IngressKind::Palladium),
            CostModel::default(),
        );
        assert_eq!(g.active_workers(), 1);
        // Saturate worker 0 for a full window.
        let window = Nanos::from_millis(500);
        let mut t = Nanos::ZERO;
        while t < window {
            let (_, done) = g.submit(t, 0, Leg::Inbound, 256, 256);
            t = done;
        }
        let action = g.evaluate(window, window);
        assert_eq!(action, ScaleAction::Up);
        assert_eq!(g.active_workers(), 2);
        assert!(g.in_blip(window + Nanos::from_millis(1)));
        // Idle window: scale back down.
        let w2 = window * 2;
        let action = g.evaluate(w2, window);
        assert_eq!(action, ScaleAction::Down);
        assert_eq!(g.active_workers(), 1);
    }

    #[test]
    fn fixed_workers_never_scale() {
        let mut g = gw(IngressKind::Palladium);
        assert_eq!(g.evaluate(Nanos::from_secs(1), Nanos::from_secs(1)), ScaleAction::Hold);
        assert_eq!(g.active_workers(), 1);
    }
}
