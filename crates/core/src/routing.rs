//! Routing state: intra-node and inter-node function routes, and the
//! control-plane coordinator that maintains them.
//!
//! Palladium keeps two tables (§3.5.5): the intra-node table (read-only to
//! functions, stored in the unified pool) listing locally running
//! functions, and the inter-node table (on the DPU) mapping remote
//! functions to their nodes. A CNI-like coordinator listens for function
//! deployment events and synchronizes both.

use std::collections::BTreeMap;

use palladium_membuf::{FnId, NodeId, TenantId};
use palladium_simnet::PageTable;

/// One node's view of the routing state.
///
/// Both tables are two-level [`PageTable`]s over the 16-bit fn-id space
/// (256×256): the DNE consults `node_of` for every TX descriptor and the
/// I/O library consults `is_local` for every hand-off, so a route query is
/// two indexes — not a hash — on the hot path, while a node routing a
/// sparse production-scale slice of the fn-id space allocates only the
/// pages it touches instead of one dense 64 Ki-entry vector per node.
/// Small fn-id ranges (< 256, every paper topology) stay on the dense
/// fast path through the pre-allocated first page. The control-plane
/// [`Coordinator`] keeps the sparse authoritative map and materializes
/// these per node.
#[derive(Debug, Default, Clone)]
pub struct RouteTables {
    /// Functions running on this node (fn → owning tenant).
    local: PageTable<TenantId>,
    /// Function → node for every function in the cluster (inter-node table,
    /// kept on the DPU for the DNE's TX stage).
    global: PageTable<NodeId>,
}

impl RouteTables {
    /// Empty tables.
    pub fn new() -> Self {
        Self::default()
    }

    /// Is `f` deployed on this node? (The I/O library's first routing
    /// query, Fig 7 "route query".)
    #[inline]
    pub fn is_local(&self, f: FnId) -> bool {
        self.local.contains(f.raw() as usize)
    }

    /// Node hosting `f`, from the inter-node table.
    #[inline]
    pub fn node_of(&self, f: FnId) -> Option<NodeId> {
        self.global.get(f.raw() as usize).copied()
    }

    /// Tenant of a locally deployed function.
    #[inline]
    pub fn local_tenant(&self, f: FnId) -> Option<TenantId> {
        self.local.get(f.raw() as usize).copied()
    }

    /// Locally deployed functions, in ascending id order.
    pub fn local_functions(&self) -> Vec<FnId> {
        self.local.iter().map(|(f, _)| FnId(f as u16)).collect()
    }

    /// Pages allocated across both tables (memory-footprint diagnostics:
    /// sparse fn-id populations should stay near the 2-page floor).
    pub fn pages_allocated(&self) -> usize {
        self.local.pages_allocated() + self.global.pages_allocated()
    }
}

/// A function deployment event (creation or termination).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeployEvent {
    /// Function started on a node.
    Created {
        /// The function.
        f: FnId,
        /// Its tenant.
        tenant: TenantId,
        /// Where it runs.
        node: NodeId,
    },
    /// Function terminated.
    Terminated {
        /// The function.
        f: FnId,
    },
}

/// The control-plane coordinator: holds the authoritative deployment map
/// and pushes per-node tables (the CNI-like component of §3.5.5).
#[derive(Debug, Default)]
pub struct Coordinator {
    /// Ordered so `tables_for` (and any future placement enumeration)
    /// walks deployments in fn-id order regardless of deploy history —
    /// the coordinator is control-plane state that feeds deterministic
    /// per-node tables.
    placements: BTreeMap<FnId, (TenantId, NodeId)>,
}

impl Coordinator {
    /// A coordinator with no deployments.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply a deployment event.
    pub fn apply(&mut self, ev: DeployEvent) {
        match ev {
            DeployEvent::Created { f, tenant, node } => {
                self.placements.insert(f, (tenant, node));
            }
            DeployEvent::Terminated { f } => {
                self.placements.remove(&f);
            }
        }
    }

    /// Where a function runs.
    pub fn placement(&self, f: FnId) -> Option<(TenantId, NodeId)> {
        self.placements.get(&f).copied()
    }

    /// Build the routing tables for `node` (what the coordinator syncs to
    /// each worker).
    pub fn tables_for(&self, node: NodeId) -> RouteTables {
        let mut t = RouteTables::new();
        for (&f, &(tenant, n)) in &self.placements {
            t.global.insert(f.raw() as usize, n);
            if n == node {
                t.local.insert(f.raw() as usize, tenant);
            }
        }
        t
    }

    /// Total deployed functions.
    pub fn len(&self) -> usize {
        self.placements.len()
    }

    /// True when nothing is deployed.
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinator_syncs_tables() {
        let mut c = Coordinator::new();
        c.apply(DeployEvent::Created {
            f: FnId(1),
            tenant: TenantId(1),
            node: NodeId(0),
        });
        c.apply(DeployEvent::Created {
            f: FnId(2),
            tenant: TenantId(1),
            node: NodeId(1),
        });
        let t0 = c.tables_for(NodeId(0));
        assert!(t0.is_local(FnId(1)));
        assert!(!t0.is_local(FnId(2)));
        assert_eq!(t0.node_of(FnId(2)), Some(NodeId(1)));
        assert_eq!(t0.local_tenant(FnId(1)), Some(TenantId(1)));
        assert_eq!(t0.local_functions(), vec![FnId(1)]);
    }

    #[test]
    fn termination_removes_routes() {
        let mut c = Coordinator::new();
        c.apply(DeployEvent::Created {
            f: FnId(1),
            tenant: TenantId(1),
            node: NodeId(0),
        });
        c.apply(DeployEvent::Terminated { f: FnId(1) });
        let t = c.tables_for(NodeId(0));
        assert!(!t.is_local(FnId(1)));
        assert_eq!(t.node_of(FnId(1)), None);
        assert!(c.is_empty());
    }

    #[test]
    fn sparse_fn_ids_stay_sparse_in_memory() {
        // Production-scale fn ids scattered across the 16-bit space: the
        // per-node tables must allocate only the touched 256-entry pages
        // (plus the always-present first page per table), not 64 Ki slots.
        let mut c = Coordinator::new();
        for f in [1u16, 300, 9_000, 40_000, 65_535] {
            c.apply(DeployEvent::Created {
                f: FnId(f),
                tenant: TenantId(1),
                node: NodeId(f % 2),
            });
        }
        let t = c.tables_for(NodeId(0));
        // global: pages for ids {1}, {300}, {9000}, {40000}, {65535} → 5
        // pages; local: first page + at most the pages of node-0 ids.
        assert!(
            t.pages_allocated() <= 10,
            "pages {} — sparse ids must not densify",
            t.pages_allocated()
        );
        assert_eq!(t.node_of(FnId(65_535)), Some(NodeId(1)));
        assert_eq!(t.node_of(FnId(9_000)), Some(NodeId(0)));
        assert!(t.is_local(FnId(40_000)));
        assert_eq!(t.node_of(FnId(12_345)), None);
    }

    #[test]
    fn tables_are_deploy_order_invariant() {
        // Regression for the HashMap→BTreeMap conversion: two coordinators
        // fed the same deployments in different orders must materialize
        // identical tables AND identical enumeration order (the old
        // HashMap iterated in per-process-random order; it happened not
        // to matter only because PageTable inserts are keyed).
        let deploys = [
            (FnId(9_000), TenantId(2), NodeId(1)),
            (FnId(1), TenantId(1), NodeId(0)),
            (FnId(40_000), TenantId(3), NodeId(0)),
            (FnId(300), TenantId(1), NodeId(1)),
            (FnId(65_535), TenantId(2), NodeId(0)),
        ];
        let mut fwd = Coordinator::new();
        let mut rev = Coordinator::new();
        for &(f, tenant, node) in &deploys {
            fwd.apply(DeployEvent::Created { f, tenant, node });
        }
        for &(f, tenant, node) in deploys.iter().rev() {
            rev.apply(DeployEvent::Created { f, tenant, node });
        }
        for node in [NodeId(0), NodeId(1)] {
            let a = fwd.tables_for(node);
            let b = rev.tables_for(node);
            assert_eq!(a.local_functions(), b.local_functions());
            for f in 0..=u16::MAX {
                assert_eq!(a.node_of(FnId(f)), b.node_of(FnId(f)), "fn {f}");
                assert_eq!(a.local_tenant(FnId(f)), b.local_tenant(FnId(f)));
            }
        }
        // And the enumeration itself is ascending — pinned, not incidental.
        let local = fwd.tables_for(NodeId(0)).local_functions();
        assert_eq!(local, vec![FnId(1), FnId(40_000), FnId(65_535)]);
    }

    #[test]
    fn redeployment_moves_function() {
        let mut c = Coordinator::new();
        c.apply(DeployEvent::Created {
            f: FnId(1),
            tenant: TenantId(1),
            node: NodeId(0),
        });
        // Auto-scaling moved the function to node 1.
        c.apply(DeployEvent::Created {
            f: FnId(1),
            tenant: TenantId(1),
            node: NodeId(1),
        });
        assert!(!c.tables_for(NodeId(0)).is_local(FnId(1)));
        assert!(c.tables_for(NodeId(1)).is_local(FnId(1)));
        assert_eq!(c.len(), 1);
    }
}
