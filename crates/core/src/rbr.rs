//! The Receive Buffer Registry (RBR) table.
//!
//! Two-sided RDMA requires the receiver to pre-post buffers; Palladium's DNE
//! keeps an RBR table mapping each posted work-request id to the buffer it
//! posted (§3.5.2, Fig 7 red arrows). When a receive completion arrives, the
//! RX stage looks the WR id up to recover the buffer token; the core thread
//! monitors per-tenant consumption counters and re-posts an equal number of
//! fresh buffers so the RNIC never starves (which would trigger RNR NAKs).
//!
//! WR ids are generation-checked [`Slab`] keys: the registry sits on the
//! per-completion hot path, so resolution is an index plus a generation
//! compare instead of a `HashMap` probe, and a stale id (a slot recycled by
//! a newer posting) misses instead of aliasing. The per-tenant counters are
//! dense [`IdTable`]s over the small tenant-id space.

use palladium_membuf::{BufToken, TenantId};
use palladium_rdma::WrId;
use palladium_simnet::{IdTable, Slab};

/// The DNE's receive-buffer registry for one node.
#[derive(Debug, Default)]
pub struct RbrTable {
    entries: Slab<(TenantId, BufToken)>,
    /// CQEs consumed per tenant since the last replenish sweep — the shared
    /// counters the core thread reads (§3.5.2).
    consumed: IdTable<u64>,
    /// Buffers currently posted per tenant.
    posted: IdTable<u64>,
}

impl RbrTable {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a buffer posted to the tenant's shared RQ; returns the WR id
    /// to hand to the RNIC.
    pub fn register(&mut self, tenant: TenantId, token: BufToken) -> WrId {
        let id = self.entries.insert((tenant, token));
        *self.posted.get_or_insert_with(tenant.raw() as usize, || 0) += 1;
        WrId(id)
    }

    /// RX stage: resolve a receive completion back to its buffer. Consumes
    /// the entry and bumps the tenant's consumption counter.
    pub fn consume(&mut self, wr_id: WrId) -> Option<(TenantId, BufToken)> {
        let (tenant, token) = self.entries.remove(wr_id.0)?;
        *self.consumed.get_or_insert_with(tenant.raw() as usize, || 0) += 1;
        if let Some(p) = self.posted.get_mut(tenant.raw() as usize) {
            *p = p.saturating_sub(1);
        }
        Some((tenant, token))
    }

    /// Core thread: read-and-reset a tenant's consumption counter — the
    /// number of fresh buffers to post.
    pub fn take_consumed(&mut self, tenant: TenantId) -> u64 {
        self.consumed.remove(tenant.raw() as usize).unwrap_or(0)
    }

    /// Tenants with outstanding consumption (need replenishment), in
    /// ascending tenant order.
    pub fn tenants_needing_replenish(&self) -> Vec<TenantId> {
        self.consumed
            .iter()
            .filter(|&(_, &n)| n > 0)
            .map(|(t, _)| TenantId(t as u16))
            .collect()
    }

    /// Buffers currently posted for a tenant.
    pub fn posted_depth(&self, tenant: TenantId) -> u64 {
        self.posted
            .get(tenant.raw() as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Total outstanding entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no buffers are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use palladium_membuf::{Owner, PoolId, UnifiedPool};

    fn pool() -> UnifiedPool {
        UnifiedPool::new(PoolId(1), TenantId(1), 8, 256)
    }

    #[test]
    fn register_consume_roundtrip() {
        let mut pool = pool();
        let mut rbr = RbrTable::new();
        let tok = pool.alloc(Owner::Rnic).unwrap();
        let idx = tok.idx();
        let wr = rbr.register(TenantId(1), tok);
        assert_eq!(rbr.posted_depth(TenantId(1)), 1);
        let (tenant, tok) = rbr.consume(wr).expect("registered");
        assert_eq!(tenant, TenantId(1));
        assert_eq!(tok.idx(), idx);
        assert_eq!(rbr.posted_depth(TenantId(1)), 0);
        assert!(rbr.is_empty());
        pool.free(tok).unwrap();
    }

    #[test]
    fn consume_twice_fails() {
        let mut pool = pool();
        let mut rbr = RbrTable::new();
        let wr = rbr.register(TenantId(1), pool.alloc(Owner::Rnic).unwrap());
        assert!(rbr.consume(wr).is_some());
        assert!(rbr.consume(wr).is_none());
    }

    #[test]
    fn stale_wr_id_does_not_alias_recycled_slot() {
        // The registry recycles slab slots; a WR id from a previous
        // occupant must miss, not resolve to the new buffer.
        let mut pool = pool();
        let mut rbr = RbrTable::new();
        let old = rbr.register(TenantId(1), pool.alloc(Owner::Rnic).unwrap());
        let (_, tok) = rbr.consume(old).unwrap();
        pool.free(tok).unwrap();
        let fresh = rbr.register(TenantId(2), pool.alloc(Owner::Rnic).unwrap());
        assert_ne!(old, fresh);
        assert!(rbr.consume(old).is_none(), "stale id must miss");
        assert!(rbr.consume(fresh).is_some());
    }

    #[test]
    fn consumption_counters_drive_replenish() {
        let mut pool = pool();
        let mut rbr = RbrTable::new();
        for _ in 0..3 {
            let wr = rbr.register(TenantId(1), pool.alloc(Owner::Rnic).unwrap());
            let (_, tok) = rbr.consume(wr).unwrap();
            pool.free(tok).unwrap();
        }
        let wr2 = rbr.register(TenantId(2), pool.alloc(Owner::Rnic).unwrap());
        assert_eq!(rbr.tenants_needing_replenish(), vec![TenantId(1)]);
        assert_eq!(rbr.take_consumed(TenantId(1)), 3);
        // Counter resets after the sweep.
        assert_eq!(rbr.take_consumed(TenantId(1)), 0);
        assert!(rbr.tenants_needing_replenish().is_empty());
        let (_, tok) = rbr.consume(wr2).unwrap();
        pool.free(tok).unwrap();
    }

    #[test]
    fn wr_ids_are_unique() {
        let mut pool = pool();
        let mut rbr = RbrTable::new();
        let a = rbr.register(TenantId(1), pool.alloc(Owner::Rnic).unwrap());
        let b = rbr.register(TenantId(1), pool.alloc(Owner::Rnic).unwrap());
        assert_ne!(a, b);
        assert_eq!(rbr.len(), 2);
    }
}
