//! Property tests for the RDMA immediate-word encoding (§3.5.2): the DNE
//! routes every received message from the 64-bit immediate alone, so
//! `pack_imm`/`unpack_imm` must round-trip every `(src, dst, tenant)`
//! triple and keep the fields from bleeding into each other.

use palladium_core::dne::{pack_imm, unpack_imm};
use palladium_membuf::{FnId, TenantId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn imm_round_trips(src in any::<u16>(), dst in any::<u16>(), tenant in any::<u16>()) {
        let imm = pack_imm(FnId(src), FnId(dst), TenantId(tenant));
        prop_assert_eq!(unpack_imm(imm), (FnId(src), FnId(dst), TenantId(tenant)));
    }

    #[test]
    fn imm_fields_are_independent(
        src in any::<u16>(),
        dst in any::<u16>(),
        tenant in any::<u16>(),
        other in any::<u16>(),
    ) {
        // Changing one field never perturbs the others.
        let base = pack_imm(FnId(src), FnId(dst), TenantId(tenant));
        let with_src = pack_imm(FnId(other), FnId(dst), TenantId(tenant));
        let with_dst = pack_imm(FnId(src), FnId(other), TenantId(tenant));
        let with_tenant = pack_imm(FnId(src), FnId(dst), TenantId(other));
        prop_assert_eq!(unpack_imm(with_src).1, unpack_imm(base).1);
        prop_assert_eq!(unpack_imm(with_src).2, unpack_imm(base).2);
        prop_assert_eq!(unpack_imm(with_dst).0, unpack_imm(base).0);
        prop_assert_eq!(unpack_imm(with_dst).2, unpack_imm(base).2);
        prop_assert_eq!(unpack_imm(with_tenant).0, unpack_imm(base).0);
        prop_assert_eq!(unpack_imm(with_tenant).1, unpack_imm(base).1);
    }

    #[test]
    fn imm_is_injective(
        a in (any::<u16>(), any::<u16>(), any::<u16>()),
        b in (any::<u16>(), any::<u16>(), any::<u16>()),
    ) {
        let pa = pack_imm(FnId(a.0), FnId(a.1), TenantId(a.2));
        let pb = pack_imm(FnId(b.0), FnId(b.1), TenantId(b.2));
        prop_assert_eq!(pa == pb, a == b);
    }
}

/// The extremes of every field survive, exhaustively (the corners the
/// random sampler might miss). Together with the properties above this
/// covers the "all 16-bit combinations survive" claim: round-tripping is
/// per-field independent, so corner coverage per field suffices.
#[test]
fn imm_corners_round_trip() {
    const CORNERS: [u16; 6] = [0, 1, 0x7F, 0xFF, 0x8000, 0xFFFF];
    for &src in &CORNERS {
        for &dst in &CORNERS {
            for &tenant in &CORNERS {
                let imm = pack_imm(FnId(src), FnId(dst), TenantId(tenant));
                assert_eq!(unpack_imm(imm), (FnId(src), FnId(dst), TenantId(tenant)));
            }
        }
    }
}
