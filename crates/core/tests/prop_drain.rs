//! Property-based equivalence of the batched CQ drain (`Dne::drain_cq_into`)
//! against the per-CQE `submit_cqe_into` loop.
//!
//! The batched completion pipeline's correctness argument is that handing
//! the DNE an entire CQ window in one call is *observationally identical*
//! to feeding it one CQE at a time: each CQE lands in the engine's RX
//! queue in the same order and only the first kick starts work (the
//! engine is busy afterwards). This test drives two identically
//! constructed engines — random RBR occupancy, random in-flight TX
//! buffers, random engine-busy state, a random CQE window mixing hits,
//! stale ids and every `CqeKind` — through both paths and asserts the
//! full timed effect streams match, at submission time and through every
//! subsequent engine-slot step until both engines go idle.

use bytes::Bytes;
use proptest::prelude::*;

use palladium_core::config::{CostModel, EngineLocation};
use palladium_core::connpool::{ConnPool, ConnPoolConfig};
use palladium_core::dne::{pack_imm, Dne, DneEffect};
use palladium_core::dwrr::SchedPolicy;
use palladium_core::routing::{Coordinator, DeployEvent};
use palladium_membuf::{FnId, NodeId, Owner, PoolId, TenantId, UnifiedPool};
use palladium_rdma::{Cqe, CqeKind, CqeStatus, OpKind, Qpn, WrId};
use palladium_simnet::{Nanos, Timed};

const TENANT: TenantId = TenantId(1);

/// A CQE to feed the engines, in terms of the random setup's handles.
#[derive(Clone, Copy, Debug)]
enum CqeSpec {
    /// Recv resolving the i-th registered RBR buffer (modulo population;
    /// a second hit on the same buffer exercises the stale-consume path).
    Recv(usize),
    /// Recv with a wr_id nothing registered.
    RecvStale,
    /// SendDone for the i-th tracked TX buffer (modulo population).
    SendDone(usize),
    /// SendDone for an untracked (already-released) wr_id.
    SendDoneStale,
    /// SendDone with an error status.
    SendDoneFailed(usize),
    /// ReadData (ignored by the engine; must stay a no-op in both paths).
    ReadData,
}

fn cqe_spec() -> impl Strategy<Value = CqeSpec> {
    prop_oneof![
        4 => (0usize..8).prop_map(CqeSpec::Recv),
        1 => Just(CqeSpec::RecvStale),
        3 => (0usize..8).prop_map(CqeSpec::SendDone),
        1 => Just(CqeSpec::SendDoneStale),
        1 => (0usize..8).prop_map(CqeSpec::SendDoneFailed),
        1 => Just(CqeSpec::ReadData),
    ]
}

/// One engine plus the bookkeeping needed to materialize `CqeSpec`s.
struct Rig {
    dne: Dne,
    pool: UnifiedPool,
    rbr_ids: Vec<WrId>,
    tx_ids: Vec<WrId>,
}

/// Build an engine deterministically from the scenario parameters. Both
/// rigs of a test case go through the exact same call sequence, so their
/// slab/token states are identical.
fn build_rig(loc: EngineLocation, n_rbr: usize, n_tx: usize, busy: bool) -> Rig {
    let mut dne = Dne::new(
        NodeId(0),
        loc,
        CostModel::default(),
        SchedPolicy::Dwrr,
        ConnPool::new(NodeId(0), ConnPoolConfig::default()),
    );
    let mut coord = Coordinator::new();
    coord.apply(DeployEvent::Created { f: FnId(2), tenant: TENANT, node: NodeId(1) });
    coord.apply(DeployEvent::Created { f: FnId(3), tenant: TENANT, node: NodeId(0) });
    dne.routes = coord.tables_for(NodeId(0));
    dne.register_tenant(TENANT, 1);

    let mut pool = UnifiedPool::new(PoolId(0), TENANT, 64, 512);
    let mut rbr_ids = Vec::new();
    for _ in 0..n_rbr {
        let tok = pool.alloc(Owner::Rnic).expect("rbr token");
        rbr_ids.push(dne.rbr.register(TENANT, tok));
    }
    let mut tx_ids = Vec::new();
    for _ in 0..n_tx {
        let tok = pool.alloc(Owner::Engine).expect("tx token");
        tx_ids.push(dne.track_tx_buffer(tok));
    }
    if busy {
        // Occupy the engine core: a TX whose EngineSlot has not fired yet.
        let desc = palladium_membuf::BufDesc {
            tenant: TENANT,
            pool: PoolId(0),
            buf_idx: 60,
            len: 8,
            src_fn: FnId(3),
            dst_fn: FnId(2),
        };
        let fx = dne.submit_tx(Nanos::ZERO, desc, Bytes::from_static(b"occupied"), None);
        assert!(!fx.is_empty(), "first submission must start the engine");
    }
    Rig { dne, pool, rbr_ids, tx_ids }
}

fn materialize(spec: CqeSpec, rig: &Rig) -> Cqe {
    let pick = |ids: &Vec<WrId>, i: usize| {
        if ids.is_empty() {
            WrId(u64::MAX - 7)
        } else {
            ids[i % ids.len()]
        }
    };
    let (wr_id, kind, status, data, imm) = match spec {
        CqeSpec::Recv(i) => (
            pick(&rig.rbr_ids, i),
            CqeKind::Recv,
            CqeStatus::Success,
            Bytes::from_static(b"payload!"),
            pack_imm(FnId(9), FnId(3), TENANT),
        ),
        CqeSpec::RecvStale => (
            WrId(u64::MAX - 1),
            CqeKind::Recv,
            CqeStatus::Success,
            Bytes::from_static(b"ghost"),
            pack_imm(FnId(9), FnId(3), TENANT),
        ),
        CqeSpec::SendDone(i) => (
            pick(&rig.tx_ids, i),
            CqeKind::SendDone(OpKind::Send),
            CqeStatus::Success,
            Bytes::new(),
            0,
        ),
        CqeSpec::SendDoneStale => (
            WrId(u64::MAX - 2),
            CqeKind::SendDone(OpKind::Send),
            CqeStatus::Success,
            Bytes::new(),
            0,
        ),
        CqeSpec::SendDoneFailed(i) => (
            pick(&rig.tx_ids, i),
            CqeKind::SendDone(OpKind::Send),
            CqeStatus::RetryExceeded,
            Bytes::new(),
            0,
        ),
        CqeSpec::ReadData => (
            WrId(u64::MAX - 3),
            CqeKind::ReadData,
            CqeStatus::Success,
            Bytes::from_static(b"readback"),
            0,
        ),
    };
    Cqe { wr_id, kind, status, qpn: Qpn(1), tenant: TENANT, peer: NodeId(1), data, imm }
}

/// Render an effect stream for comparison (DneEffect carries Bytes/tokens,
/// which have faithful Debug impls; the rendered stream captures ordering,
/// timing and every payload field).
fn render(fx: &[Timed<DneEffect>]) -> String {
    format!("{fx:#?}")
}

/// Drive the engine through successive engine-slot firings until idle,
/// appending every effect (tagged with its firing time) to `log`.
fn run_to_idle(dne: &mut Dne, mut now: Nanos, first: Vec<Timed<DneEffect>>, log: &mut String) {
    let mut pending = first;
    for _round in 0..512 {
        log.push_str(&format!("@{now:?}:\n"));
        log.push_str(&render(&pending));
        let next_slot = pending
            .iter()
            .find(|t| matches!(t.value, DneEffect::EngineSlot))
            .map(|t| t.after);
        match next_slot {
            Some(after) => {
                now += after;
                pending = dne.on_engine_slot(now);
            }
            None => return,
        }
    }
    panic!("engine failed to go idle");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn batched_drain_matches_per_cqe_loop(
        loc_dpu in any::<bool>(),
        n_rbr in 0usize..4,
        n_tx in 0usize..4,
        busy in any::<bool>(),
        now_ns in 0u64..1_000_000,
        specs in proptest::collection::vec(cqe_spec(), 1..12),
    ) {
        let loc = if loc_dpu { EngineLocation::Dpu } else { EngineLocation::Cpu };
        let now = Nanos(now_ns);

        // Path A: the reference per-CQE submission loop.
        let mut a = build_rig(loc, n_rbr, n_tx, busy);
        let mut fx_a = Vec::new();
        for &spec in &specs {
            let cqe = materialize(spec, &a);
            a.dne.submit_cqe_into(now, cqe, &mut fx_a);
        }

        // Path B: one batched window drain.
        let mut b = build_rig(loc, n_rbr, n_tx, busy);
        let mut window: Vec<Cqe> = specs.iter().map(|&s| materialize(s, &b)).collect();
        let mut fx_b = Vec::new();
        b.dne.drain_cq_into(now, &mut window, &mut fx_b);
        prop_assert!(window.is_empty(), "drain must consume the caller's scratch");

        // Identical immediate effects, identical engine/backlog state.
        prop_assert_eq!(render(&fx_a), render(&fx_b), "submission effects diverged");
        prop_assert_eq!(a.dne.backlog(), b.dne.backlog());

        // ... and identical behavior through every subsequent engine slot
        // until both engines drain their queued work.
        let mut log_a = String::new();
        let mut log_b = String::new();
        run_to_idle(&mut a.dne, now, fx_a, &mut log_a);
        run_to_idle(&mut b.dne, now, fx_b, &mut log_b);
        prop_assert_eq!(log_a, log_b, "post-drain engine evolution diverged");
        prop_assert_eq!(a.dne.rx_count, b.dne.rx_count);
        prop_assert_eq!(a.dne.tx_count, b.dne.tx_count);
        prop_assert_eq!(a.dne.route_misses, b.dne.route_misses);

        // Keep the pools alive until the end (tokens reference them).
        drop((a.pool, b.pool));
    }

    // Partial-window case: the CQ backlog surfaces in two chunks (e.g. a
    // bounded consumer draining `Rnic::drain_cq_window_into`, or two
    // doorbell wakeups racing a burst). Two successive `drain_cq_into`
    // calls over the split window must behave exactly like the per-CQE
    // loop over the whole window — the second chunk lands behind the
    // first in the RX queue and its kick is a no-op on the busy engine.
    #[test]
    fn split_window_drain_matches_per_cqe_loop(
        loc_dpu in any::<bool>(),
        n_rbr in 0usize..4,
        n_tx in 0usize..4,
        busy in any::<bool>(),
        now_ns in 0u64..1_000_000,
        specs in proptest::collection::vec(cqe_spec(), 2..12),
        split_at in 0usize..12,
    ) {
        let loc = if loc_dpu { EngineLocation::Dpu } else { EngineLocation::Cpu };
        let now = Nanos(now_ns);
        let split = 1 + split_at % (specs.len() - 1); // both chunks non-empty

        // Path A: the reference per-CQE submission loop.
        let mut a = build_rig(loc, n_rbr, n_tx, busy);
        let mut fx_a = Vec::new();
        for &spec in &specs {
            let cqe = materialize(spec, &a);
            a.dne.submit_cqe_into(now, cqe, &mut fx_a);
        }

        // Path B: the same window surfaced as two partial drains.
        let mut b = build_rig(loc, n_rbr, n_tx, busy);
        let mut fx_b = Vec::new();
        let mut first: Vec<Cqe> = specs[..split].iter().map(|&s| materialize(s, &b)).collect();
        let mut second: Vec<Cqe> = specs[split..].iter().map(|&s| materialize(s, &b)).collect();
        b.dne.drain_cq_into(now, &mut first, &mut fx_b);
        b.dne.drain_cq_into(now, &mut second, &mut fx_b);
        prop_assert!(first.is_empty() && second.is_empty());

        prop_assert_eq!(render(&fx_a), render(&fx_b), "split-window effects diverged");
        prop_assert_eq!(a.dne.backlog(), b.dne.backlog());

        let mut log_a = String::new();
        let mut log_b = String::new();
        run_to_idle(&mut a.dne, now, fx_a, &mut log_a);
        run_to_idle(&mut b.dne, now, fx_b, &mut log_b);
        prop_assert_eq!(log_a, log_b, "post-drain engine evolution diverged");
        prop_assert_eq!(a.dne.rx_count, b.dne.rx_count);
        prop_assert_eq!(a.dne.tx_count, b.dne.tx_count);

        drop((a.pool, b.pool));
    }
}
