//! # palladium-baselines — the compared systems, rebuilt on the same
//! # substrates
//!
//! * [`echo`] — the Figs 11–12 microbenchmark drivers: RDMA primitive
//!   selection (two-sided vs OWDL vs OWRC-Best/Worst) and off-path vs
//!   on-path DPU offloading. All variants share the real RC fabric; only
//!   the engine-side protocol differs, so measured gaps are attributable
//!   to the design choice alone.
//!
//! The full-system baselines of Fig 16 (SPRIGHT, NightCore, FUYAO-K/F,
//! Palladium-CNE, FCFS-DNE) are declarative wirings of the chain driver —
//! see [`palladium_core::system::SystemKind`] and
//! [`palladium_core::driver::chain`]; their presets live in core so the
//! driver stays dependency-clean, and this crate re-exports them for
//! discoverability.

// The simulation's memory-safety story is that only the shard mailbox ring
// (simnet) and the bench counting allocator contain `unsafe` at all; this
// crate is compiler-certified to stay out of that set (simlint's
// safety-comments rule covers the two that cannot be).
#![forbid(unsafe_code)]

pub mod echo;

pub use echo::{EchoConfig, EchoSim, PathMode, Primitive};
pub use palladium_core::system::{Capabilities, SystemKind, SystemSpec};
