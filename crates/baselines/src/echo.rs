//! Figs 11–12 drivers: cross-node echo microbenchmarks.
//!
//! * [`EchoSim::run_primitive`] (Fig 12): two DNEs on different worker
//!   nodes act as an echo client/server pair, one core each, exchanging
//!   messages with one of the §2.1 primitive designs:
//!   - **Two-sided** SEND/RECV (Palladium's choice): receiver posts
//!     buffers, no locks, no copies.
//!   - **OWDL** — one-sided WRITE with distributed locks: every transfer
//!     first acquires a remote lock/buffer grant (a full control round
//!     trip), then writes, then the receiver polls for arrival.
//!   - **OWRC** — one-sided WRITE into a dedicated RDMA pool with a
//!     receiver-side copy into the local pool; *Best* hits cache, *Worst*
//!     goes to main memory (the paper's TLB-flushed variant).
//! * [`EchoSim::run_path_mode`] (Fig 11): an echo client/server *function*
//!   pair communicates through DNEs using two-sided RDMA, with the DNE
//!   either **off-path** (cross-processor shared memory; RNIC DMAs straight
//!   to host buffers) or **on-path** (payloads staged through DPU memory,
//!   paying the SoC DMA engine in both directions).
//!
//! All variants run over the real [`RdmaNet`] RC machinery through the
//! shared [`palladium_simnet::Harness`]; only the engine-side protocol
//! differs.

use palladium_core::config::CostModel;
use palladium_core::driver::LoadReport;
use palladium_dpu::{SocDma, SocDmaSpec};
use palladium_membuf::{MmapExporter, NodeId, PayloadCache, PoolId, Region, TenantId};
use palladium_rdma::{
    Cqe, CqeKind, RdmaConfig, RdmaEvent, RdmaNet, RdmaOutput, RemoteAddr, RqEntry, Step,
    WorkRequest, WrId,
};
use palladium_simnet::{Effects, Engine, FifoServer, Harness, Nanos, RunStats};

/// RDMA primitive under test (Fig 12).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Primitive {
    /// Two-sided SEND/RECV — Palladium (§2.1 Design Implication#3).
    TwoSided,
    /// One-sided write with distributed locks (Fig 2 (1)).
    Owdl,
    /// One-sided write + receiver copy, cache-resident (Fig 2 (2), best).
    OwrcBest,
    /// One-sided write + receiver copy, main-memory (TLB-flushed worst).
    OwrcWorst,
}

impl Primitive {
    /// All four variants in paper order.
    pub const ALL: [Primitive; 4] = [
        Primitive::TwoSided,
        Primitive::OwrcBest,
        Primitive::OwrcWorst,
        Primitive::Owdl,
    ];

    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            Primitive::TwoSided => "Two-sided",
            Primitive::Owdl => "OWDL",
            Primitive::OwrcBest => "OWRC (Best)",
            Primitive::OwrcWorst => "OWRC (Worst)",
        }
    }
}

/// DPU offloading mode (Fig 11).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathMode {
    /// Cross-processor shared memory; the DNE stays off the data path
    /// (Palladium, Fig 3 (2)).
    OffPath,
    /// Data staged through DPU-local buffers via the SoC DMA engine
    /// (Fig 3 (1)).
    OnPath,
}

/// Configuration shared by both echo experiments.
#[derive(Clone, Copy, Debug)]
pub struct EchoConfig {
    /// Message payload bytes.
    pub payload: u32,
    /// Concurrent echo connections.
    pub connections: usize,
    /// Measurement window.
    pub duration: Nanos,
    /// Warm-up.
    pub warmup: Nanos,
    /// Fabric seed.
    pub seed: u64,
}

impl EchoConfig {
    /// Paper defaults: single connection, 60 ms window.
    pub fn new(payload: u32) -> Self {
        EchoConfig {
            payload,
            connections: 1,
            duration: Nanos::from_millis(60),
            warmup: Nanos::from_millis(10),
            seed: 7,
        }
    }

    /// Set the concurrency level.
    pub fn connections(mut self, n: usize) -> Self {
        self.connections = n;
        self
    }
}

/// Per-message engine cost in this microbenchmark: the Fig 11/12 DNEs run
/// a bare echo loop (no Comch endpoints, no DWRR), calibrated so the
/// two-sided 64 B echo lands at the paper's 8.4 µs RTT.
const ECHO_ENGINE_OP: Nanos = Nanos::from_nanos(500);

/// Echo-function execution cost for the Fig 11 function pair.
const ECHO_FN_EXEC: Nanos = Nanos::from_micros(1);

const CLIENT: NodeId = NodeId(0);
const SERVER: NodeId = NodeId(1);
const TENANT: TenantId = TenantId(1);

/// Conn-state stages for the OWDL handshake.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum OwdlStage {
    /// Waiting for the lock grant before writing.
    AwaitGrant,
    /// Waiting for the payload write to land.
    AwaitData,
}

#[derive(Debug)]
enum Ev {
    Rdma(RdmaEvent),
    /// An engine finished processing; continue the per-connection FSM.
    Engine {
        node: NodeId,
        conn: usize,
        action: Action,
    },
    /// A one-sided write became visible to the polling receiver.
    PollVisible { node: NodeId, conn: usize },
    /// Fig 11: the host function finished its part.
    FnStep { node: NodeId, conn: usize },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Action {
    /// Post the next message of the protocol (direction depends on node).
    Post,
    /// Finish receive-side processing and either echo or complete.
    Received,
}

/// The echo simulator.
pub struct EchoSim {
    cfg: EchoConfig,
    cost: CostModel,
}

/// Shared per-run state: the fabric, the two engines, the bookkeeping.
struct EchoState {
    net: RdmaNet,
    qpns: Vec<(palladium_rdma::Qpn, palladium_rdma::Qpn)>,
    engines: [FifoServer; 2],
    stats: RunStats,
    issued: Vec<Nanos>,
    owdl_stage: Vec<OwdlStage>,
    next_wr: u64,
    payload: u32,
    /// Reused CQ-drain scratch: each doorbell wakeup drains the node's
    /// whole backlog into this buffer (no per-wakeup allocation).
    cqe_scratch: Vec<Cqe>,
    /// Reused fabric step (cleared between events) so steady-state
    /// stepping of the dominant event source performs no allocation.
    rdma_step: Step,
    /// Separate reused step for posts — `rdma_step` is checked out while
    /// an `Ev::Rdma` event (whose handlers also post) is in flight.
    post_step: Step,
    /// Recycled fabricated payloads (shared cache, see
    /// [`palladium_membuf::PayloadCache`]): the echo loops fabricate one
    /// payload per message forever, so this path must not allocate in
    /// steady state (`alloc_smoke` gates it alongside the chain driver).
    payloads: PayloadCache,
}

impl EchoState {
    fn engine(&mut self, node: NodeId) -> &mut FifoServer {
        &mut self.engines[node.raw() as usize]
    }

    fn post_rq(&mut self, node: NodeId, n: u64) {
        for _ in 0..n {
            let wr_id = WrId(self.next_wr);
            self.next_wr += 1;
            self.net
                .post_recv(node, TENANT, RqEntry { wr_id, pool: PoolId(node.raw()), capacity: 16_384 })
                .expect("registered pool");
        }
    }
}

/// Immediate-word encoding for the primitive protocols: low 32 bits carry
/// the connection, bit 32 flags a lock-grant control message.
const GRANT_FLAG: u64 = 1 << 32;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum MsgKind {
    Send,
    Write,
    LockReq,
    LockGrant,
}

/// Fig 12 engine: bare DNE echo pair speaking one RDMA primitive.
struct PrimitiveEngine {
    prim: Primitive,
    cost: CostModel,
    st: EchoState,
}

impl PrimitiveEngine {
    fn post(
        &mut self,
        fx: &mut Effects<'_, Ev>,
        node: NodeId,
        conn: usize,
        at: Nanos,
        kind: MsgKind,
    ) {
        let st = &mut self.st;
        let (qc, qs) = st.qpns[conn];
        let qpn = if node == CLIENT { qc } else { qs };
        let peer = if node == CLIENT { SERVER } else { CLIENT };
        let wr_id = WrId(st.next_wr);
        st.next_wr += 1;
        let imm = match kind {
            MsgKind::LockGrant => conn as u64 | GRANT_FLAG,
            _ => conn as u64,
        };
        let wr = match kind {
            MsgKind::Send => {
                WorkRequest::send(wr_id, st.payloads.make_exact(wr_id.0, st.payload), imm)
            }
            MsgKind::Write => WorkRequest::write(
                wr_id,
                st.payloads.make_exact(wr_id.0, st.payload),
                RemoteAddr { pool: PoolId(peer.raw()), buf_idx: conn as u32 },
                imm,
            ),
            MsgKind::LockReq | MsgKind::LockGrant => {
                WorkRequest::send(wr_id, st.payloads.make(wr_id.0, 16), imm)
            }
        };
        let mut step = std::mem::take(&mut st.post_step);
        step.clear();
        st.net.post_send_into(at, node, qpn, wr, &mut step).expect("post");
        fx.extend_at_drain(at, &mut step.events, Ev::Rdma);
        st.post_step = step;
    }

    fn on_recv(&mut self, now: Nanos, fx: &mut Effects<'_, Ev>, node: NodeId, imm: u64) {
        let conn = (imm & 0xFFFF_FFFF) as usize;
        let is_grant = imm & GRANT_FLAG != 0;
        match self.prim {
            Primitive::TwoSided => {
                // Plain receive: engine RX then continue the FSM.
                let done = self.st.engine(node).submit(now, ECHO_ENGINE_OP);
                self.st.engine(node).complete();
                fx.at(done, Ev::Engine { node, conn, action: Action::Received });
            }
            Primitive::Owdl => {
                if is_grant {
                    // Lock granted: issue the payload write.
                    debug_assert_eq!(self.st.owdl_stage[conn], OwdlStage::AwaitGrant);
                    self.st.owdl_stage[conn] = OwdlStage::AwaitData;
                    let done = self.st.engine(node).submit(now, ECHO_ENGINE_OP);
                    self.st.engine(node).complete();
                    self.post(fx, node, conn, done, MsgKind::Write);
                } else {
                    // A lock request: the lock manager locks a local buffer
                    // and replies with the grant (§2.1 Fig 2 (1) steps 1–3).
                    let done = self
                        .st
                        .engine(node)
                        .submit(now, self.cost.owdl_lock_proc);
                    self.st.engine(node).complete();
                    self.post(fx, node, conn, done, MsgKind::LockGrant);
                }
            }
            Primitive::OwrcBest | Primitive::OwrcWorst => {
                unreachable!("OWRC uses one-sided writes only")
            }
        }
    }
}

impl Engine for PrimitiveEngine {
    type Ev = Ev;

    fn on_event(&mut self, now: Nanos, ev: Ev, fx: &mut Effects<'_, Ev>) {
        match ev {
            Ev::Engine { node, conn, action: Action::Post } => {
                if node == CLIENT {
                    self.st.issued[conn] = now;
                }
                match self.prim {
                    Primitive::TwoSided => {
                        // Engine builds + posts a SEND.
                        let done = self.st.engine(node).submit(now, ECHO_ENGINE_OP);
                        self.st.engine(node).complete();
                        self.post(fx, node, conn, done, MsgKind::Send);
                    }
                    Primitive::OwrcBest | Primitive::OwrcWorst => {
                        // Engine posts a one-sided WRITE into the peer's
                        // dedicated pool.
                        let done = self.st.engine(node).submit(now, ECHO_ENGINE_OP);
                        self.st.engine(node).complete();
                        self.post(fx, node, conn, done, MsgKind::Write);
                    }
                    Primitive::Owdl => {
                        // Phase 1: request the remote lock/writable buffer.
                        self.st.owdl_stage[conn] = OwdlStage::AwaitGrant;
                        let done = self.st.engine(node).submit(now, ECHO_ENGINE_OP);
                        self.st.engine(node).complete();
                        self.post(fx, node, conn, done, MsgKind::LockReq);
                    }
                }
            }
            Ev::Engine { node, conn, action: Action::Received } => {
                // Receive-side processing finished: server echoes, client
                // completes and immediately re-issues.
                if node == SERVER {
                    fx.now_ev(Ev::Engine { node: SERVER, conn, action: Action::Post });
                } else {
                    self.st.stats.complete(now, self.st.issued[conn]);
                    fx.now_ev(Ev::Engine { node: CLIENT, conn, action: Action::Post });
                }
            }
            Ev::PollVisible { node, conn } => {
                // The polling receiver noticed the one-sided write; OWRC
                // pays the receiver-side copy, OWDL only a pickup op.
                let service = match self.prim {
                    Primitive::OwrcBest => {
                        ECHO_ENGINE_OP + self.cost.owrc_copy(self.st.payload as u64, false)
                    }
                    Primitive::OwrcWorst => {
                        ECHO_ENGINE_OP + self.cost.owrc_copy(self.st.payload as u64, true)
                    }
                    _ => ECHO_ENGINE_OP,
                };
                let done = self.st.engine(node).submit(now, service);
                self.st.engine(node).complete();
                fx.at(done, Ev::Engine { node, conn, action: Action::Received });
            }
            Ev::Rdma(rdma_ev) => {
                // Reuse one Step across the run: the fabric is the
                // dominant event source, so this path must not allocate.
                let mut step = std::mem::take(&mut self.st.rdma_step);
                step.clear();
                self.st.net.handle_into(now, rdma_ev, &mut step);
                fx.extend_drain(&mut step.events, Ev::Rdma);
                for out in step.outputs.drain(..) {
                    match out {
                        RdmaOutput::CqReady { node } => {
                            // One doorbell wakeup retires the whole CQ
                            // window (the doorbell stays down until the CQ
                            // drains empty).
                            let mut cqes = std::mem::take(&mut self.st.cqe_scratch);
                            cqes.clear();
                            self.st.net.drain_cq_into(node, &mut cqes);
                            for cqe in cqes.drain(..) {
                                if let CqeKind::Recv = cqe.kind {
                                    // Keep the RQ replenished (the core-
                                    // thread duty, §3.5.2) so senders never
                                    // hit RNR.
                                    self.st.post_rq(node, 1);
                                    self.on_recv(now, fx, node, cqe.imm);
                                }
                            }
                            self.st.cqe_scratch = cqes;
                        }
                        RdmaOutput::WriteDelivered { node, imm, .. } => {
                            // Receiver is polling: visible after half a
                            // period.
                            let conn = (imm & 0xFFFF_FFFF) as usize;
                            fx.after(
                                self.cost.onesided_poll_interval / 2,
                                Ev::PollVisible { node, conn },
                            );
                        }
                        RdmaOutput::RnrSeen { node, .. } => {
                            self.st.post_rq(node, 32);
                        }
                        _ => {}
                    }
                }
                self.st.rdma_step = step;
            }
            Ev::FnStep { .. } => unreachable!("primitive echo has no functions"),
        }
    }
}

/// Fig 11 engine: function echo pair through DNEs, off-path vs on-path.
struct PathModeEngine {
    mode: PathMode,
    st: EchoState,
    dmas: [SocDma; 2],
    meters: [palladium_membuf::CopyMeter; 2],
    fn_cores: [FifoServer; 2],
    comch_transit: Nanos,
    host_send: Nanos,
    host_recv: Nanos,
}

impl Engine for PathModeEngine {
    type Ev = Ev;

    fn on_event(&mut self, now: Nanos, ev: Ev, fx: &mut Effects<'_, Ev>) {
        let payload = self.st.payload;
        match ev {
            Ev::FnStep { node, conn } => {
                // The function produced a message: host send + (on-path:
                // SoC DMA staging) + engine post.
                let n = node.raw() as usize;
                if node == CLIENT {
                    self.st.issued[conn] = now;
                }
                let send_done = self.fn_cores[n].submit(now, self.host_send + ECHO_FN_EXEC);
                self.fn_cores[n].complete();
                let mut ready = send_done + self.comch_transit;
                if self.mode == PathMode::OnPath {
                    ready = self.dmas[n].transfer(ready, payload as u64, &mut self.meters[n]);
                }
                let engine_done = self.st.engine(node).submit(ready, ECHO_ENGINE_OP);
                self.st.engine(node).complete();
                let (qc, qs) = self.st.qpns[conn];
                let qpn = if node == CLIENT { qc } else { qs };
                let wr_id = WrId(self.st.next_wr);
                self.st.next_wr += 1;
                let wr = WorkRequest::send(wr_id, self.st.payloads.make_exact(wr_id.0, payload), conn as u64);
                let mut step = std::mem::take(&mut self.st.post_step);
                step.clear();
                self.st
                    .net
                    .post_send_into(engine_done, node, qpn, wr, &mut step)
                    .expect("post");
                fx.extend_at_drain(engine_done, &mut step.events, Ev::Rdma);
                self.st.post_step = step;
            }
            Ev::Rdma(rdma_ev) => {
                let mut step = std::mem::take(&mut self.st.rdma_step);
                step.clear();
                self.st.net.handle_into(now, rdma_ev, &mut step);
                fx.extend_drain(&mut step.events, Ev::Rdma);
                for out in step.outputs.drain(..) {
                    match out {
                        RdmaOutput::CqReady { node } => {
                            let mut cqes = std::mem::take(&mut self.st.cqe_scratch);
                            cqes.clear();
                            self.st.net.drain_cq_into(node, &mut cqes);
                            for cqe in cqes.drain(..) {
                                if let CqeKind::Recv = cqe.kind {
                                    self.st.post_rq(node, 1);
                                    let conn = cqe.imm as usize;
                                    // Engine RX + (on-path: SoC DMA to the
                                    // host) + Comch wake.
                                    let n = node.raw() as usize;
                                    let eng_done =
                                        self.st.engine(node).submit(now, ECHO_ENGINE_OP);
                                    self.st.engine(node).complete();
                                    let mut ready = eng_done;
                                    if self.mode == PathMode::OnPath {
                                        // DPU buffer → host: a DMA write.
                                        ready = self.dmas[n].transfer_write(
                                            ready,
                                            payload as u64,
                                            &mut self.meters[n],
                                        );
                                    }
                                    let woke = ready + self.comch_transit + self.host_recv;
                                    if node == SERVER {
                                        fx.at(woke, Ev::FnStep { node: SERVER, conn });
                                    } else {
                                        // Echo complete at the client fn.
                                        self.st.stats.complete(woke, self.st.issued[conn]);
                                        fx.at(woke, Ev::FnStep { node: CLIENT, conn });
                                    }
                                }
                            }
                            self.st.cqe_scratch = cqes;
                        }
                        RdmaOutput::RnrSeen { node, .. } => {
                            self.st.post_rq(node, 32);
                        }
                        _ => {}
                    }
                }
                self.st.rdma_step = step;
            }
            _ => unreachable!("path-mode echo uses Fn/Rdma events only"),
        }
    }
}

impl EchoSim {
    /// Build the simulator.
    pub fn new(cfg: EchoConfig) -> Self {
        EchoSim {
            cfg,
            cost: CostModel::default(),
        }
    }

    fn build_state(&self) -> EchoState {
        let mut net = RdmaNet::new(RdmaConfig::default(), 2, self.cfg.seed);
        for node in [CLIENT, SERVER] {
            let mut e = MmapExporter::new(
                PoolId(node.raw()),
                TENANT,
                Region::hugepages(64 << 20),
            );
            net.register_mr(node, &e.export_rdma()).expect("MR");
        }
        let qpns = (0..self.cfg.connections)
            .map(|_| net.connect_immediate(CLIENT, SERVER, TENANT))
            .collect();
        let mut st = EchoState {
            net,
            qpns,
            engines: [FifoServer::new("dne0"), FifoServer::new("dne1")],
            stats: RunStats::new(self.cfg.warmup),
            issued: vec![Nanos::ZERO; self.cfg.connections],
            owdl_stage: vec![OwdlStage::AwaitGrant; self.cfg.connections],
            next_wr: 1,
            payload: self.cfg.payload,
            cqe_scratch: Vec::new(),
            rdma_step: Step::default(),
            post_step: Step::default(),
            payloads: PayloadCache::new(),
        };
        st.post_rq(CLIENT, 4 * self.cfg.connections as u64 + 64);
        st.post_rq(SERVER, 4 * self.cfg.connections as u64 + 64);
        st
    }

    /// Fig 12: primitive-selection echo between two bare DNEs.
    pub fn run_primitive(&self, prim: Primitive) -> LoadReport {
        self.run_primitive_counted(prim).0
    }

    /// [`EchoSim::run_primitive`], also returning the number of simulation
    /// events processed — the denominator of the `alloc_smoke` zero-alloc
    /// gate on this driver.
    pub fn run_primitive_counted(&self, prim: Primitive) -> (LoadReport, u64) {
        let cfg = self.cfg;
        let mut engine = PrimitiveEngine {
            prim,
            cost: self.cost,
            st: self.build_state(),
        };

        let mut harness: Harness<Ev> = Harness::new();
        // Kick off every connection from the client engine.
        for conn in 0..cfg.connections {
            harness.schedule_at(
                Nanos::ZERO,
                Ev::Engine { node: CLIENT, conn, action: Action::Post },
            );
        }
        harness.run(&mut engine, cfg.warmup + cfg.duration);

        (engine.st.stats.report(cfg.duration), harness.events_fired())
    }

    /// Fig 11: off-path vs on-path function echo through DNEs (two-sided).
    pub fn run_path_mode(&self, mode: PathMode) -> LoadReport {
        let cfg = self.cfg;
        let mut engine = PathModeEngine {
            mode,
            st: self.build_state(),
            dmas: [
                SocDma::new("bf2-0", SocDmaSpec::default()),
                SocDma::new("bf2-1", SocDmaSpec::default()),
            ],
            meters: [
                palladium_membuf::CopyMeter::new(),
                palladium_membuf::CopyMeter::new(),
            ],
            fn_cores: [FifoServer::new("fn0"), FifoServer::new("fn1")],
            comch_transit: Nanos::from_nanos(900),
            host_send: Nanos::from_nanos(500),
            host_recv: Nanos::from_nanos(1_300),
        };

        let mut harness: Harness<Ev> = Harness::new();
        for conn in 0..cfg.connections {
            harness.schedule_at(Nanos::ZERO, Ev::FnStep { node: CLIENT, conn });
        }
        harness.run(&mut engine, cfg.warmup + cfg.duration);

        engine.st.stats.report(cfg.duration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rtt(prim: Primitive, payload: u32) -> Nanos {
        EchoSim::new(EchoConfig::new(payload))
            .run_primitive(prim)
            .mean_latency
    }

    #[test]
    fn two_sided_64b_matches_paper_8_4us() {
        let t = rtt(Primitive::TwoSided, 64);
        assert!(
            t >= Nanos::from_nanos(7_800) && t <= Nanos::from_nanos(9_200),
            "two-sided 64B RTT {t} (paper: 8.4µs)"
        );
    }

    #[test]
    fn two_sided_4k_matches_paper_11_6us() {
        let t = rtt(Primitive::TwoSided, 4096);
        assert!(
            t >= Nanos::from_nanos(10_500) && t <= Nanos::from_nanos(12_800),
            "two-sided 4KB RTT {t} (paper: 11.6µs)"
        );
    }

    #[test]
    fn primitive_ordering_at_4k() {
        // Paper Fig 12 (1) at 4 KB: Two-sided 11.6 < OWRC-Best 15 <
        // OWRC-Worst 16.7 < OWDL 26.1 µs.
        let ts = rtt(Primitive::TwoSided, 4096);
        let best = rtt(Primitive::OwrcBest, 4096);
        let worst = rtt(Primitive::OwrcWorst, 4096);
        let owdl = rtt(Primitive::Owdl, 4096);
        assert!(ts < best, "{ts} < {best}");
        assert!(best < worst, "{best} < {worst}");
        assert!(worst < owdl, "{worst} < {owdl}");
        // Ratios: OWDL ≈ 2.3x two-sided; OWRC-Best ≈ 1.3x.
        let r_owdl = owdl.as_nanos() as f64 / ts.as_nanos() as f64;
        let r_best = best.as_nanos() as f64 / ts.as_nanos() as f64;
        assert!((1.9..2.8).contains(&r_owdl), "OWDL ratio {r_owdl:.2}");
        assert!((1.15..1.6).contains(&r_best), "OWRC-Best ratio {r_best:.2}");
    }

    #[test]
    fn two_sided_throughput_wins() {
        // Fig 12 (2): two-sided sustains the highest byte rate.
        let cfg = EchoConfig::new(8192);
        let ts = EchoSim::new(cfg).run_primitive(Primitive::TwoSided);
        let owdl = EchoSim::new(cfg).run_primitive(Primitive::Owdl);
        assert!(ts.rps > owdl.rps * 2.0, "{} vs {}", ts.rps, owdl.rps);
        // Absolute: ≈600 MB/s at 8 KB (paper Fig 12 (2)).
        let mbps = ts.rps * 8192.0 / 1e6;
        assert!((400.0..800.0).contains(&mbps), "two-sided 8K: {mbps:.0} MB/s");
    }

    #[test]
    fn off_path_close_at_low_concurrency() {
        let cfg = EchoConfig::new(1024);
        let off = EchoSim::new(cfg).run_path_mode(PathMode::OffPath);
        let on = EchoSim::new(cfg).run_path_mode(PathMode::OnPath);
        // Single connection: the paper bounds on-path degradation at
        // 1.33-1.54x (§1, §4.1.1); unloaded it must stay in that band.
        let ratio = on.mean_latency.as_nanos() as f64 / off.mean_latency.as_nanos() as f64;
        assert!((1.05..1.55).contains(&ratio), "latency ratio {ratio:.2}");
    }

    #[test]
    fn off_path_wins_under_concurrency() {
        // Fig 11 (2): ≈30% RPS advantage at high concurrency as the SoC
        // DMA engine saturates.
        let cfg = EchoConfig::new(1024).connections(50);
        let off = EchoSim::new(cfg).run_path_mode(PathMode::OffPath);
        let on = EchoSim::new(cfg).run_path_mode(PathMode::OnPath);
        let gain = off.rps / on.rps;
        assert!(
            gain > 1.15,
            "off-path must win under load: {:.0} vs {:.0} ({gain:.2}x)",
            off.rps,
            on.rps
        );
        assert!(on.mean_latency > off.mean_latency);
    }

    #[test]
    fn deterministic() {
        let a = rtt(Primitive::TwoSided, 1024);
        let b = rtt(Primitive::TwoSided, 1024);
        assert_eq!(a, b);
    }
}
