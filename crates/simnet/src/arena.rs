//! A per-`Sim` slab arena for event payloads.
//!
//! Every event flowing through the DES kernel used to travel *inside* its
//! queue entry: the wheel/heap sifted `(key, M)` pairs, so the payload
//! bytes moved on every sift and every cascade, and large payloads (RDMA
//! frames, work requests) had to be boxed — one recycled heap allocation
//! per frame — to keep entries small. The arena inverts that layout:
//!
//! * payloads live in a stable slab owned by the queue ([`Arena<T>`]);
//! * queue entries are POD `(u128 key, ArenaSlot)` pairs — 8 bytes of
//!   handle instead of the payload — so backend sifts, cascades and
//!   same-instant sorts move constant-size entries no matter how large
//!   the driver's event enum grows;
//! * popping *moves* the payload out of its slot and returns the slot to
//!   an internal LIFO free list, so steady-state scheduling performs zero
//!   heap allocation (the slab grows to the high-water mark of pending
//!   events and is reused forever after).
//!
//! Slots are **generation-checked**: [`Arena::take`] bumps the slot's
//! generation when it vacates it, so a stale [`ArenaSlot`] (double-free,
//! or a handle that outlived its payload) misses instead of aliasing the
//! next occupant — the same discipline as [`crate::table::Slab`], with a
//! `Copy` 8-byte handle sized for queue entries. The LIFO free list also
//! gives the hot path temporal locality: the slot vacated by one pop is
//! the slot filled by the next schedule, so the payload bytes stay
//! cache-resident across the trampoline.

/// A generation-checked handle to a payload stored in an [`Arena`].
///
/// 8 bytes, `Copy`, POD — designed to ride inside event-queue entries.
/// A slot handle is only as alive as its payload: once [`Arena::take`]
/// moves the payload out, the handle is stale and every further access
/// through it returns `None`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ArenaSlot {
    idx: u32,
    generation: u32,
}

impl ArenaSlot {
    /// The slot index (diagnostics; stable for the payload's lifetime).
    #[inline]
    pub fn index(self) -> u32 {
        self.idx
    }
}

struct Slot<T> {
    generation: u32,
    val: Option<T>,
}

/// The payload slab: O(1) insert/take with vacated slots recycled under a
/// bumped generation (see module docs).
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Live payloads currently stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no payload is stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slots ever allocated (the high-water mark; memory diagnostics).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Store `val`, returning its generation-checked slot. Allocates only
    /// when the free list is empty (i.e. when the live population reaches
    /// a new high-water mark).
    #[inline]
    pub fn insert(&mut self, val: T) -> ArenaSlot {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let slot = &mut self.slots[idx as usize];
            debug_assert!(slot.val.is_none(), "free-listed slot still occupied");
            slot.val = Some(val);
            ArenaSlot {
                idx,
                generation: slot.generation,
            }
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                generation: 0,
                val: Some(val),
            });
            ArenaSlot { idx, generation: 0 }
        }
    }

    /// Borrow the payload behind `slot`; `None` if the handle is stale.
    #[inline]
    pub fn get(&self, slot: ArenaSlot) -> Option<&T> {
        match self.slots.get(slot.idx as usize) {
            Some(s) if s.generation == slot.generation => s.val.as_ref(),
            _ => None,
        }
    }

    /// Move the payload out of `slot`, returning the slot to the free list
    /// under a bumped generation. `None` if the handle is stale (already
    /// taken, or from a previous occupant) — a double-take can therefore
    /// never free or alias another payload.
    #[inline]
    pub fn take(&mut self, slot: ArenaSlot) -> Option<T> {
        let s = self.slots.get_mut(slot.idx as usize)?;
        if s.generation != slot.generation {
            return None;
        }
        let val = s.val.take()?;
        s.generation = s.generation.wrapping_add(1);
        self.free.push(slot.idx);
        self.len -= 1;
        Some(val)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_round_trip() {
        let mut a: Arena<String> = Arena::new();
        assert!(a.is_empty());
        let s1 = a.insert("one".into());
        let s2 = a.insert("two".into());
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(s1).map(String::as_str), Some("one"));
        assert_eq!(a.take(s2).as_deref(), Some("two"));
        assert_eq!(a.take(s1).as_deref(), Some("one"));
        assert!(a.is_empty());
    }

    #[test]
    fn double_take_misses() {
        let mut a: Arena<u32> = Arena::new();
        let s = a.insert(7);
        assert_eq!(a.take(s), Some(7));
        assert_eq!(a.take(s), None, "double take must miss");
        assert_eq!(a.len(), 0, "double take must not corrupt accounting");
    }

    #[test]
    fn stale_handle_never_aliases_new_occupant() {
        let mut a: Arena<u32> = Arena::new();
        let old = a.insert(1);
        assert_eq!(a.take(old), Some(1));
        // LIFO free list: the next insert reuses the same slot index...
        let new = a.insert(2);
        assert_eq!(new.index(), old.index(), "slot reused");
        assert_ne!(new, old, "generation differs");
        // ...but the stale handle misses both reads and takes.
        assert_eq!(a.get(old), None);
        assert_eq!(a.take(old), None);
        assert_eq!(a.take(new), Some(2));
    }

    #[test]
    fn free_list_bounds_capacity_at_high_water_mark() {
        let mut a: Arena<u64> = Arena::new();
        // Interleaved churn at a live population of 3 must never grow the
        // slab past 3 slots — the zero-steady-state-allocation property.
        let mut live = Vec::new();
        for i in 0..3u64 {
            live.push(a.insert(i));
        }
        for round in 0..100u64 {
            let s = live.remove(0);
            assert!(a.take(s).is_some());
            live.push(a.insert(round));
        }
        assert_eq!(a.capacity(), 3);
        assert_eq!(a.len(), 3);
    }
}
