//! Dense ID-indexed state tables for the simulation hot path.
//!
//! Every ID in the workspace (`Qpn`, `TenantId`, `FnId`, `NodeId`, WR ids)
//! is a small dense integer, yet the seed kept per-ID state in SipHash
//! `HashMap`s — several hashes per simulated event. These two containers
//! replace them on the hot paths:
//!
//! * [`IdTable`] — a `Vec<Option<V>>` keyed directly by the raw integer ID,
//!   for ID spaces that are dense and never reused (tenants, functions,
//!   nodes, QPNs). Lookup is a bounds-check and an index.
//! * [`Slab`] — a generation-checked free-list slab for ID spaces that
//!   *are* reused (in-flight WR ids, outstanding READ handles). Keys pack
//!   `(generation << 32) | slot`, so a stale key from a previous occupant
//!   of the slot misses instead of aliasing.
//! * [`PageTable`] — a two-level table (256-entry pages) for ID spaces
//!   that are *large but sparse*, e.g. the 16-bit fn-id space of the
//!   routing tables at production scale: a node routing a handful of
//!   functions allocates a page or two instead of a dense 64 Ki-entry
//!   vector, while lookups stay two indexes (no hashing). IDs below 256
//!   take the dense fast path through the always-present first page.
//!
//! Iteration over any of these tables is in index order, which keeps
//! everything downstream deterministic by construction (no hash-order
//! dependence).

/// A dense table keyed by a small integer ID.
///
/// Grows on demand; absent keys read as `None`. Intended for ID spaces
/// whose values are assigned densely from zero (or near it) and never
/// recycled — for recycled IDs use [`Slab`].
#[derive(Clone, Debug)]
pub struct IdTable<V> {
    entries: Vec<Option<V>>,
    len: usize,
}

impl<V> Default for IdTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> IdTable<V> {
    /// An empty table.
    pub fn new() -> Self {
        IdTable {
            entries: Vec::new(),
            len: 0,
        }
    }

    /// An empty table pre-sized for keys `< cap`.
    pub fn with_capacity(cap: usize) -> Self {
        IdTable {
            entries: Vec::with_capacity(cap),
            len: 0,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrow the value at `id`.
    #[inline]
    pub fn get(&self, id: usize) -> Option<&V> {
        self.entries.get(id).and_then(|e| e.as_ref())
    }

    /// Mutably borrow the value at `id`.
    #[inline]
    pub fn get_mut(&mut self, id: usize) -> Option<&mut V> {
        self.entries.get_mut(id).and_then(|e| e.as_mut())
    }

    /// Insert (or replace) the value at `id`; returns the previous value.
    pub fn insert(&mut self, id: usize, v: V) -> Option<V> {
        if id >= self.entries.len() {
            self.entries.resize_with(id + 1, || None);
        }
        let prev = self.entries[id].replace(v);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Remove and return the value at `id`.
    pub fn remove(&mut self, id: usize) -> Option<V> {
        let prev = self.entries.get_mut(id).and_then(|e| e.take());
        if prev.is_some() {
            self.len -= 1;
        }
        prev
    }

    /// True when `id` is occupied.
    #[inline]
    pub fn contains(&self, id: usize) -> bool {
        self.get(id).is_some()
    }

    /// Mutable access to the value at `id`, inserting `default()` first if
    /// the slot is empty (the `HashMap::entry(..).or_default()` idiom).
    pub fn get_or_insert_with(&mut self, id: usize, default: impl FnOnce() -> V) -> &mut V {
        if !self.contains(id) {
            self.insert(id, default());
        }
        self.entries[id].as_mut().expect("just inserted")
    }

    /// Occupied `(id, &value)` pairs in ascending ID order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &V)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.as_ref().map(|v| (i, v)))
    }

    /// Occupied values in ascending ID order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().filter_map(|e| e.as_ref())
    }
}

/// log2 of the [`PageTable`] page size.
const PAGE_BITS: usize = 8;
/// Entries per [`PageTable`] page.
const PAGE_SIZE: usize = 1 << PAGE_BITS;

/// A two-level table keyed by a small integer ID: a directory of lazily
/// allocated 256-entry pages.
///
/// Sparse ID populations over a wide key space (the 16-bit fn-id space at
/// production function counts) pay memory proportional to the number of
/// *touched pages*, not the key-space width — where [`IdTable`] would
/// allocate one dense slot per possible ID. Lookup is two unchecked-width
/// indexes and stays hash-free; page 0 is allocated eagerly so the common
/// small-ID range (`id < 256`) never branches on a missing page.
#[derive(Clone, Debug)]
pub struct PageTable<V> {
    pages: Vec<Option<Box<[Option<V>]>>>,
    len: usize,
}

impl<V> Default for PageTable<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> PageTable<V> {
    fn empty_page() -> Box<[Option<V>]> {
        (0..PAGE_SIZE).map(|_| None).collect()
    }

    /// An empty table with the dense first page pre-allocated.
    pub fn new() -> Self {
        PageTable {
            pages: vec![Some(Self::empty_page())],
            len: 0,
        }
    }

    /// Number of occupied entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entry is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pages currently allocated (memory-footprint diagnostics).
    pub fn pages_allocated(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }

    /// Borrow the value at `id`.
    #[inline]
    pub fn get(&self, id: usize) -> Option<&V> {
        self.pages
            .get(id >> PAGE_BITS)?
            .as_ref()?
            .get(id & (PAGE_SIZE - 1))?
            .as_ref()
    }

    /// Mutably borrow the value at `id`.
    #[inline]
    pub fn get_mut(&mut self, id: usize) -> Option<&mut V> {
        self.pages
            .get_mut(id >> PAGE_BITS)?
            .as_mut()?
            .get_mut(id & (PAGE_SIZE - 1))?
            .as_mut()
    }

    /// True when `id` is occupied.
    #[inline]
    pub fn contains(&self, id: usize) -> bool {
        self.get(id).is_some()
    }

    /// Insert (or replace) the value at `id`; returns the previous value.
    pub fn insert(&mut self, id: usize, v: V) -> Option<V> {
        let pno = id >> PAGE_BITS;
        if pno >= self.pages.len() {
            self.pages.resize_with(pno + 1, || None);
        }
        let page = self.pages[pno].get_or_insert_with(Self::empty_page);
        let prev = page[id & (PAGE_SIZE - 1)].replace(v);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Remove and return the value at `id`. Emptied pages are kept
    /// allocated (route tables churn within a working set; dropping the
    /// page to re-allocate it on the next deploy would thrash).
    pub fn remove(&mut self, id: usize) -> Option<V> {
        let prev = self
            .pages
            .get_mut(id >> PAGE_BITS)
            .and_then(|p| p.as_mut())
            .and_then(|p| p[id & (PAGE_SIZE - 1)].take());
        if prev.is_some() {
            self.len -= 1;
        }
        prev
    }

    /// Occupied `(id, &value)` pairs in ascending ID order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &V)> {
        self.pages.iter().enumerate().flat_map(|(pno, page)| {
            page.iter()
                .flat_map(|p| p.iter())
                .enumerate()
                .filter_map(move |(i, e)| e.as_ref().map(|v| ((pno << PAGE_BITS) | i, v)))
        })
    }
}

const GEN_SHIFT: u32 = 32;
const IDX_MASK: u64 = (1 << GEN_SHIFT) - 1;

/// A generation-checked slab: O(1) insert/remove with freed slots recycled
/// under a new generation, so stale keys never alias a new occupant.
#[derive(Clone, Debug)]
pub struct Slab<V> {
    entries: Vec<(u32, Option<V>)>,
    free: Vec<u32>,
    len: usize,
}

impl<V> Default for Slab<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> Slab<V> {
    /// An empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Store `v`, returning its key (`generation << 32 | slot`).
    pub fn insert(&mut self, v: V) -> u64 {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            let (generation, val) = &mut self.entries[idx as usize];
            debug_assert!(val.is_none());
            *val = Some(v);
            ((*generation as u64) << GEN_SHIFT) | idx as u64
        } else {
            let idx = self.entries.len() as u32;
            self.entries.push((0, Some(v)));
            idx as u64
        }
    }

    #[inline]
    fn slot(&self, key: u64) -> Option<usize> {
        let idx = (key & IDX_MASK) as usize;
        let generation = (key >> GEN_SHIFT) as u32;
        match self.entries.get(idx) {
            Some((g, Some(_))) if *g == generation => Some(idx),
            _ => None,
        }
    }

    /// Borrow the value for `key`; `None` if absent or stale.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.slot(key)
            .and_then(|idx| self.entries[idx].1.as_ref())
    }

    /// Remove and return the value for `key`; `None` if absent or stale.
    /// The slot is recycled under a bumped generation.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let idx = self.slot(key)?;
        let (generation, val) = &mut self.entries[idx];
        let v = val.take();
        *generation = generation.wrapping_add(1);
        self.free.push(idx as u32);
        self.len -= 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_table_basics() {
        let mut t: IdTable<&str> = IdTable::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(3, "a"), None);
        assert_eq!(t.insert(0, "b"), None);
        assert_eq!(t.insert(3, "c"), Some("a"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(3), Some(&"c"));
        assert_eq!(t.get(7), None);
        assert!(t.contains(0));
        let pairs: Vec<(usize, &&str)> = t.iter().collect();
        assert_eq!(pairs, vec![(0, &"b"), (3, &"c")]);
        assert_eq!(t.remove(0), Some("b"));
        assert_eq!(t.remove(0), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn id_table_or_insert_with() {
        let mut t: IdTable<u64> = IdTable::new();
        *t.get_or_insert_with(5, || 0) += 7;
        *t.get_or_insert_with(5, || 0) += 1;
        assert_eq!(t.get(5), Some(&8));
    }

    #[test]
    fn page_table_basics() {
        let mut t: PageTable<&str> = PageTable::new();
        assert!(t.is_empty());
        assert_eq!(t.pages_allocated(), 1, "dense first page pre-allocated");
        assert_eq!(t.insert(3, "a"), None);
        assert_eq!(t.insert(0xFFFF, "z"), None);
        assert_eq!(t.insert(3, "b"), Some("a"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(3), Some(&"b"));
        assert_eq!(t.get(0xFFFF), Some(&"z"));
        assert_eq!(t.get(700), None, "unallocated page misses cleanly");
        assert!(t.contains(3) && !t.contains(4));
        let pairs: Vec<(usize, &&str)> = t.iter().collect();
        assert_eq!(pairs, vec![(3, &"b"), (0xFFFF, &"z")]);
        assert_eq!(t.remove(3), Some("b"));
        assert_eq!(t.remove(3), None);
        assert_eq!(t.len(), 1);
        *t.get_mut(0xFFFF).unwrap() = "y";
        assert_eq!(t.get(0xFFFF), Some(&"y"));
    }

    #[test]
    fn page_table_is_sparse() {
        // A production-scale spread of fn ids across the 16-bit space must
        // allocate only the touched pages, not 64 Ki entries.
        let mut t: PageTable<u32> = PageTable::new();
        for f in [1usize, 42, 300, 5_000, 40_000, 65_535] {
            t.insert(f, f as u32);
        }
        // ids 1+42 share page 0; the rest land on one page each.
        assert_eq!(t.pages_allocated(), 5);
        assert_eq!(t.len(), 6);
        for f in [1usize, 42, 300, 5_000, 40_000, 65_535] {
            assert_eq!(t.get(f), Some(&(f as u32)));
        }
    }

    #[test]
    fn slab_round_trip_and_recycling() {
        let mut s: Slab<String> = Slab::new();
        let a = s.insert("a".into());
        let b = s.insert("b".into());
        assert_ne!(a, b);
        assert_eq!(s.get(a).map(String::as_str), Some("a"));
        assert_eq!(s.remove(a).as_deref(), Some("a"));
        assert_eq!(s.remove(a), None, "double remove misses");
        // The slot is recycled under a new generation: the stale key `a`
        // must not alias the new occupant.
        let c = s.insert("c".into());
        assert_eq!(c & IDX_MASK, a & IDX_MASK, "slot reused");
        assert_ne!(c, a, "generation differs");
        assert_eq!(s.get(a), None, "stale key misses");
        assert_eq!(s.get(c).map(String::as_str), Some("c"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.remove(b).as_deref(), Some("b"));
        assert_eq!(s.remove(c).as_deref(), Some("c"));
        assert!(s.is_empty());
    }
}
