//! The event queue at the heart of the DES kernel.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for the
//! same instant fire in the order they were scheduled. This makes every
//! simulation in the workspace fully deterministic — a property the tests
//! rely on (same seed ⇒ byte-identical reports).

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::Nanos;

/// Identifier of a scheduled event, used to cancel timers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

struct Entry<M> {
    at: Nanos,
    seq: u64,
    msg: M,
}

impl<M> PartialEq for Entry<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Entry<M> {}

impl<M> PartialOrd for Entry<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for Entry<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of events carrying messages of type `M`.
pub struct EventQueue<M> {
    heap: BinaryHeap<Entry<M>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedule `msg` to fire at absolute time `at`. Returns an id that can
    /// later be passed to [`EventQueue::cancel`].
    pub fn schedule_at(&mut self, at: Nanos, msg: M) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, msg });
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Cancelling an event that already
    /// fired (or was already cancelled) is a harmless no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Remove and return the earliest pending event, skipping cancelled
    /// entries. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(Nanos, M)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            return Some((entry.at, entry.msg));
        }
        None
    }

    /// Time of the earliest pending (non-cancelled) event without removing
    /// it.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of pending entries (including not-yet-skipped cancelled ones).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.len() == self.cancelled.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(30), "c");
        q.schedule_at(Nanos(10), "a");
        q.schedule_at(Nanos(20), "b");
        assert_eq!(q.pop(), Some((Nanos(10), "a")));
        assert_eq!(q.pop(), Some((Nanos(20), "b")));
        assert_eq!(q.pop(), Some((Nanos(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Nanos(5), 1);
        q.schedule_at(Nanos(5), 2);
        q.schedule_at(Nanos(5), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(Nanos(1), "a");
        q.schedule_at(Nanos(2), "b");
        q.cancel(a);
        assert_eq!(q.pop(), Some((Nanos(2), "b")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(Nanos(1), "a");
        assert_eq!(q.pop(), Some((Nanos(1), "a")));
        q.cancel(a); // already fired; must not corrupt anything
        q.schedule_at(Nanos(2), "b");
        assert_eq!(q.pop(), Some((Nanos(2), "b")));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule_at(Nanos(1), "a");
        q.schedule_at(Nanos(7), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(Nanos(7)));
        assert_eq!(q.pop(), Some((Nanos(7), "b")));
    }

    #[test]
    fn is_empty_accounts_for_cancelled() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule_at(Nanos(1), 0);
        assert!(!q.is_empty());
        q.cancel(a);
        assert!(q.is_empty());
    }
}
