//! The event queue at the heart of the DES kernel.
//!
//! Events are ordered by `(time, sequence)`: two events scheduled for the
//! same instant fire in the order they were scheduled. This makes every
//! simulation in the workspace fully deterministic — a property the tests
//! rely on (same seed ⇒ byte-identical reports).
//!
//! # Payload arena
//!
//! Message payloads do **not** travel inside queue entries. Every
//! scheduled `M` lives in a per-queue slab arena ([`crate::arena::Arena`])
//! and the backends order POD `(u128 key, ArenaSlot)` pairs — so heap
//! sifts, wheel cascades and same-instant sorts move 32-byte entries no
//! matter how large the driver's event enum is, and popping *moves* the
//! payload out of its generation-checked slot (the slot returns to the
//! arena's free list: zero steady-state heap traffic). This is what lets
//! drivers carry full RDMA frames and work requests in their event enums
//! without boxing them.
//!
//! # Backends
//!
//! The workhorse backend is a **hierarchical timer wheel**, generic over
//! its geometry (`BITS` = log2 slots per level, `LEVELS` wheels) with
//! nanosecond granularity at level 0, occupancy bitmaps and per-slot
//! minima for O(1) next-event scans, and an overflow binary heap for
//! events beyond the wheel horizon (`2^(BITS·LEVELS)` ns ahead of the
//! cursor). Scheduling is O(1); emitting the next same-instant batch
//! costs one cached scan plus at most `LEVELS` redistributions per event
//! over its lifetime — independent of the number of pending events, where
//! the seed's `BinaryHeap` paid an O(log n) sift with full-entry moves on
//! every operation.
//!
//! The wheel is generic over its geometry so alternatives stay one type
//! parameter away. The ROADMAP BITS/LEVELS sweep compared the shipping
//! [`WHEEL_BITS`]`=6`/[`WHEEL_LEVELS`]`=5` geometry (64-slot levels,
//! ≈1.07 s horizon) against 8 bits × 4 levels (256-slot levels, ≈4.3 s
//! horizon): the 6/5 geometry measured ~3.5 % faster on the chain
//! workload (256-slot levels push the per-level working set past L1 and
//! the fewer-redistributions advantage never materializes at these
//! horizons; numbers in ROADMAP.md), so it stays the default. The 8/4
//! geometry remains reachable as [`QueueKind::TimerWheelWide`] so the
//! sweep is reproducible on any machine.
//!
//! The default [`QueueKind::Adaptive`] starts on the seed's binary heap —
//! which stays cache-resident and unbeatable for small simulations — and
//! migrates to the wheel when the pending population crosses the adaptive
//! threshold ([`ADAPTIVE_THRESHOLD`] unless overridden via
//! [`set_adaptive_threshold`], the `--threshold-sweep` hook). The heap
//! implementation is also kept as [`QueueKind::BinaryHeap`]: the property
//! tests dequeue the backends in lockstep to prove the wheels preserve
//! the ordering contract, and the `simcore_throughput` bench runs the
//! drivers on both to measure the swap. [`set_queue_kind`] selects the
//! backend for queues subsequently constructed on the current thread.
//!
//! Every backend implements the same contract:
//! * strict `(time, seq)` pop order, same-instant FIFO;
//! * cancellation by [`EventId`], lazily discarded (the discarded entry's
//!   arena slot is freed at discard time, so cancelled payloads cannot
//!   leak);
//! * scheduling never targets the past — the [`Sim`] driver clamps to
//!   "now" at its layer. The wheel additionally clamps to its cursor
//!   (including during adaptive migration); the heap backend preserves
//!   submitted times verbatim, as the seed did.
//!
//! [`Sim`]: crate::sim::Sim

use std::cell::Cell;
use std::cmp::Ordering;
// simlint: allow(no-unordered-iteration) — cancelled-id set below is membership-only; never iterated
use std::collections::{BinaryHeap, HashSet};

use crate::arena::{Arena, ArenaSlot};
use crate::time::Nanos;

/// Identifier of a scheduled event, used to cancel timers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

/// Which event-queue implementation to use.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueKind {
    /// Start on the binary heap and migrate to the timer wheel once the
    /// pending population crosses the adaptive threshold (default;
    /// [`ADAPTIVE_THRESHOLD`] unless overridden per thread). A
    /// cache-resident heap wins below a few hundred pending events; the
    /// wheel's O(1) operations win beyond, where heap sifts deepen and
    /// spill the cache. Migration is one-way (a simulation that grew once
    /// is expected to grow again) and observationally invisible.
    Adaptive,
    /// The hierarchical timer wheel, unconditionally, in the default
    /// [`WHEEL_BITS`]/[`WHEEL_LEVELS`] geometry.
    TimerWheel,
    /// The timer wheel in the alternative 8-bit/4-level geometry
    /// (256-slot levels, ≈4.3 s horizon) — kept reachable so the
    /// geometry sweep in ROADMAP.md stays reproducible on any machine.
    TimerWheelWide,
    /// The seed's binary heap — kept as the reference for property tests
    /// and before/after benchmarking.
    BinaryHeap,
}

/// Default pending-event population at which an [`QueueKind::Adaptive`]
/// queue migrates from the heap to the timer wheel. Re-measured after the
/// arena-entry layout change via `simcore_throughput --threshold-sweep`
/// (numbers in ROADMAP.md); override per thread with
/// [`set_adaptive_threshold`].
pub const ADAPTIVE_THRESHOLD: usize = 256;

thread_local! {
    static QUEUE_KIND: Cell<QueueKind> = const { Cell::new(QueueKind::Adaptive) };
    static ADAPTIVE_THRESHOLD_TL: Cell<usize> = const { Cell::new(ADAPTIVE_THRESHOLD) };
}

/// Select the backend used by [`EventQueue::new`] on this thread. Both
/// backends are observationally identical; this is a benchmarking/testing
/// hook, not a tuning knob.
pub fn set_queue_kind(kind: QueueKind) {
    QUEUE_KIND.with(|k| k.set(kind));
}

/// The backend currently selected on this thread.
pub fn queue_kind() -> QueueKind {
    QUEUE_KIND.with(|k| k.get())
}

/// Override the adaptive heap→wheel migration threshold for queues
/// subsequently constructed on this thread (the `--threshold-sweep`
/// benchmarking hook; observationally invisible like the backend choice).
pub fn set_adaptive_threshold(threshold: usize) {
    ADAPTIVE_THRESHOLD_TL.with(|t| t.set(threshold));
}

/// The adaptive threshold currently selected on this thread.
pub fn adaptive_threshold() -> usize {
    ADAPTIVE_THRESHOLD_TL.with(|t| t.get())
}

/// A queue entry: the full `(time << 64) | seq` ordering key (one
/// branchless wide compare per sift — pops on the heap-resident drivers
/// are the hottest comparisons in the workspace) plus the arena slot
/// holding the payload. POD and `Copy`: backends move entries freely
/// without touching payload bytes.
#[derive(Clone, Copy)]
struct Entry {
    key: u128,
    slot: ArenaSlot,
}

impl Entry {
    #[inline]
    fn new(at: Nanos, seq: u64, slot: ArenaSlot) -> Self {
        Entry {
            key: ((at.0 as u128) << 64) | seq as u128,
            slot,
        }
    }

    #[inline]
    fn at(&self) -> Nanos {
        Nanos((self.key >> 64) as u64)
    }

    #[inline]
    fn seq(&self) -> u64 {
        self.key as u64
    }

    #[inline]
    fn set_at(&mut self, at: Nanos) {
        self.key = ((at.0 as u128) << 64) | (self.key as u64 as u128);
    }
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for Entry {}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest (time, seq) pops
        // first.
        other.key.cmp(&self.key)
    }
}

/// Default wheel geometry: log2 of the slot count per level. 64-slot
/// levels won the BITS/LEVELS sweep on the chain workload (see
/// ROADMAP.md): the per-level slot array stays L1-resident, which beats
/// the wider geometry's fewer-redistributions advantage.
pub const WHEEL_BITS: u32 = 6;
/// Default wheel levels; level `k` has slot granularity `2^(BITS·k)` ns,
/// so the default horizon is `2^(6·5)` ns ≈ 1.07 s ahead of the cursor.
/// Events beyond it go to the overflow heap.
pub const WHEEL_LEVELS: usize = 5;
/// The alternative wide geometry (256-slot levels, ≈4.3 s horizon),
/// reachable via [`QueueKind::TimerWheelWide`].
pub const WIDE_BITS: u32 = 8;
/// Levels of the wide geometry.
pub const WIDE_LEVELS: usize = 4;

struct Slot {
    entries: Vec<Entry>,
    /// Least entry key among `entries`; only meaningful when non-empty.
    /// Maintained on insert, reset when the slot drains — this is what
    /// makes a non-mutating peek O(levels) instead of a scan over
    /// (possibly thousands of) parked timers.
    min: u128,
}

impl Slot {
    fn push(&mut self, e: Entry) {
        if self.entries.is_empty() || e.key < self.min {
            self.min = e.key;
        }
        self.entries.push(e);
    }

    fn recompute_min(&mut self) {
        self.min = self.entries.iter().map(|e| e.key).min().unwrap_or(0);
    }
}

/// Occupancy bitmap words per level: sized for the largest supported
/// geometry (`BITS ≤ 8` ⇒ ≤ 256 slots ⇒ 4 words); narrower geometries use
/// a prefix and loop bounds stay a compile-time constant per geometry.
const OCC_WORDS: usize = 4;

struct Level {
    /// Bit `s & 63` of word `s >> 6` set ⇔ `slots[s]` non-empty.
    occupied: [u64; OCC_WORDS],
    slots: Box<[Slot]>,
}

impl Level {
    fn new(slots: usize) -> Self {
        Level {
            occupied: [0; OCC_WORDS],
            slots: (0..slots)
                .map(|_| Slot {
                    entries: Vec::new(),
                    min: 0,
                })
                .collect(),
        }
    }
}

/// Cached result of the earliest-instant scan: the instant, the least
/// sequence number at it, the levels whose earliest slot contains it
/// (bitmask + slot index per level) and whether the overflow heap shares
/// it. Kept up to date incrementally across pushes (a push later than the
/// cached instant cannot change the next batch), so steady-state operation
/// performs one full scan per emitted batch rather than one per peek/pop.
#[derive(Clone, Copy)]
struct Scan<const LEVELS: usize> {
    tmin: u64,
    best_seq: u64,
    mask: u8,
    slots: [u8; LEVELS],
    heap: bool,
}

/// The hierarchical timer wheel, generic over its geometry: `BITS` = log2
/// slots per level (≤ 8), `LEVELS` wheels (≤ 8). Entries are POD handles;
/// the payloads stay in the owning [`EventQueue`]'s arena, so the wheel
/// monomorphizes once per geometry rather than once per driver event type.
///
/// Invariants:
/// * `base` ≤ the time of every stored event (the cursor; advances only
///   to the time of the earliest pending event);
/// * an event at level `k` agrees with `base` on all bits above
///   `BITS·(k+1)` (enforced by XOR placement), so per level the occupied
///   slots are never circularly behind the cursor and a slot never mixes
///   windows;
/// * `current` holds the same-instant batch being drained, sorted by
///   sequence number descending (pop takes from the back).
struct Wheel<const BITS: u32, const LEVELS: usize> {
    levels: Vec<Level>,
    overflow: BinaryHeap<Entry>,
    base: u64,
    current: Vec<Entry>,
    /// Cascade scratch, reused so steady-state popping does not allocate.
    scratch: Vec<Entry>,
    scan: Option<Scan<LEVELS>>,
    len: usize,
}

impl<const BITS: u32, const LEVELS: usize> Wheel<BITS, LEVELS> {
    /// Slots per level.
    const SLOTS: usize = 1 << BITS;
    /// Occupancy-bitmap words actually in use for this geometry.
    const WORDS: usize = Self::SLOTS.div_ceil(64);

    fn new() -> Self {
        // `Scan.slots` is `[u8; LEVELS]` and `Scan.mask` one bit per level.
        const { assert!(BITS <= 8 && LEVELS <= 8 && LEVELS >= 1) };
        Wheel {
            levels: (0..LEVELS).map(|_| Level::new(Self::SLOTS)).collect(),
            overflow: BinaryHeap::new(),
            base: 0,
            current: Vec::new(),
            scratch: Vec::new(),
            scan: None,
            len: 0,
        }
    }

    #[inline]
    fn occ_set(occ: &mut [u64; OCC_WORDS], slot: usize) {
        occ[slot >> 6] |= 1 << (slot & 63);
    }

    #[inline]
    fn occ_clear(occ: &mut [u64; OCC_WORDS], slot: usize) {
        occ[slot >> 6] &= !(1 << (slot & 63));
    }

    /// First occupied slot at index ≥ `pos`, or `None`. The XOR-placement
    /// invariant keeps every occupied slot at or after the cursor's
    /// position within its level window, so no circular wrap is needed.
    #[inline]
    fn occ_first_from(occ: &[u64; OCC_WORDS], pos: usize) -> Option<usize> {
        let mut w = pos >> 6;
        let mut word = occ[w] & (!0u64 << (pos & 63));
        loop {
            if word != 0 {
                return Some((w << 6) + word.trailing_zeros() as usize);
            }
            w += 1;
            if w >= Self::WORDS {
                return None;
            }
            word = occ[w];
        }
    }

    fn push(&mut self, at: Nanos, seq: u64, slot: ArenaSlot) {
        // The Sim layer already clamps past scheduling to "now"; the wheel
        // cannot represent times behind its cursor, so enforce the clamp.
        let at = Nanos(at.0.max(self.base));
        self.len += 1;
        let loc = self.place(Entry::new(at, seq, slot));
        // Keep the earliest-instant cache valid: only a push at or before
        // the cached instant can matter for the next batch. (A same-level
        // push at the cached instant always lands in — or before — that
        // level's cached slot: later slots of a level cover strictly later
        // times.)
        if let Some(c) = &mut self.scan {
            let t = at.0;
            if t < c.tmin {
                *c = Scan {
                    tmin: t,
                    best_seq: seq,
                    mask: 0,
                    slots: c.slots,
                    heap: loc.is_none(),
                };
                if let Some((level, slot)) = loc {
                    c.mask = 1 << level;
                    c.slots[level] = slot as u8;
                }
            } else if t == c.tmin {
                c.best_seq = c.best_seq.min(seq);
                match loc {
                    Some((level, slot)) => {
                        c.mask |= 1 << level;
                        c.slots[level] = slot as u8;
                    }
                    None => c.heap = true,
                }
            }
        }
    }

    /// File an entry into the wheel level/slot (or overflow heap) given the
    /// current cursor; returns the `(level, slot)` it landed in (`None` for
    /// the overflow heap). Used by both fresh pushes and redistribution.
    fn place(&mut self, e: Entry) -> Option<(usize, usize)> {
        let t = e.at().0;
        debug_assert!(t >= self.base, "wheel entry behind cursor");
        let x = t ^ self.base;
        let level = if x < Self::SLOTS as u64 {
            0
        } else {
            ((63 - x.leading_zeros()) / BITS) as usize
        };
        if level >= LEVELS {
            self.overflow.push(e);
            return None;
        }
        let slot = ((t >> (BITS * level as u32)) & (Self::SLOTS as u64 - 1)) as usize;
        let lvl = &mut self.levels[level];
        lvl.slots[slot].push(e);
        Self::occ_set(&mut lvl.occupied, slot);
        Some((level, slot))
    }

    /// Earliest occupied slot of `level` at or after the cursor, with its
    /// start time clamped to the cursor. Slot starts lower-bound the times
    /// of the events inside, exactly for level 0.
    fn next_slot(&self, level: usize) -> Option<(usize, u64)> {
        let lvl = &self.levels[level];
        let shift = BITS * level as u32;
        let pos = ((self.base >> shift) & (Self::SLOTS as u64 - 1)) as usize;
        let slot = Self::occ_first_from(&lvl.occupied, pos)?;
        let window_mask = !((1u64 << (shift + BITS)) - 1);
        let slot_start = (self.base & window_mask) | ((slot as u64) << shift);
        Some((slot, slot_start.max(self.base)))
    }

    /// Compute (or reuse) the earliest-instant scan. `None` when empty.
    fn ensure_scan(&mut self) -> Option<Scan<LEVELS>> {
        if let Some(c) = self.scan {
            return Some(c);
        }
        let mut c = Scan {
            tmin: u64::MAX,
            best_seq: u64::MAX,
            mask: 0,
            slots: [0; LEVELS],
            heap: false,
        };
        for level in 0..LEVELS {
            if let Some((slot, _)) = self.next_slot(level) {
                let min = self.levels[level].slots[slot].min;
                let (t, seq) = ((min >> 64) as u64, min as u64);
                if t < c.tmin {
                    c.tmin = t;
                    c.best_seq = seq;
                    c.mask = 1 << level;
                } else if t == c.tmin {
                    c.best_seq = c.best_seq.min(seq);
                    c.mask |= 1 << level;
                }
                c.slots[level] = slot as u8;
            }
        }
        if let Some(e) = self.overflow.peek() {
            if e.at().0 < c.tmin {
                c.tmin = e.at().0;
                c.best_seq = e.seq();
                c.mask = 0;
                c.heap = true;
            } else if e.at().0 == c.tmin {
                c.best_seq = c.best_seq.min(e.seq());
                c.heap = true;
            }
        }
        if c.mask == 0 && !c.heap {
            return None;
        }
        self.scan = Some(c);
        Some(c)
    }

    /// Move the earliest same-instant batch into `current`. Returns
    /// `false` when the wheel and heap are empty.
    ///
    /// This jumps the cursor directly to the earliest instant `tmin` in
    /// one pass instead of cascading level by level. That is sound
    /// because the XOR placement implies: if the earliest entry sits at
    /// level `k`, every level below `k` is empty (an entry at a lower
    /// level agrees with the cursor on the bit where the minimum first
    /// differs, which would make it smaller than the minimum). So
    /// advancing `base` to `tmin` and redistributing only the levels whose
    /// earliest slot contains `tmin` preserves every invariant, and each
    /// redistributed entry lands at a strictly lower level (same slot ⇒
    /// shared high bits ⇒ smaller XOR), bounding total redistribution work
    /// at `LEVELS` placements per event over its lifetime.
    fn refill(&mut self) -> bool {
        debug_assert!(self.current.is_empty());
        let Some(c) = self.ensure_scan() else {
            return false;
        };
        self.scan = None;
        let tmin = c.tmin;
        self.base = tmin;
        // Fast path: the instant lives in a single level-0 slot (no heap
        // ties). Level-0 slots hold exactly one instant, so the whole
        // batch transfers by one O(1) vector swap.
        if c.mask == 1 && !c.heap {
            let slot = c.slots[0] as usize;
            std::mem::swap(&mut self.current, &mut self.levels[0].slots[slot].entries);
            Self::occ_clear(&mut self.levels[0].occupied, slot);
            if self.current.len() > 1 {
                self.current.sort_unstable_by_key(|e| std::cmp::Reverse(e.key));
            }
            return true;
        }
        // Drain every level holding the instant: entries at `tmin` become
        // the batch, later entries re-file under the advanced cursor.
        for level in 0..LEVELS {
            if c.mask & (1 << level) == 0 {
                continue;
            }
            let slot = c.slots[level] as usize;
            let mut batch = std::mem::take(&mut self.scratch);
            std::mem::swap(&mut batch, &mut self.levels[level].slots[slot].entries);
            Self::occ_clear(&mut self.levels[level].occupied, slot);
            for e in batch.drain(..) {
                if e.at().0 == tmin {
                    self.current.push(e);
                } else {
                    self.place(e);
                }
            }
            self.scratch = batch;
        }
        // Overflow entries can share the instant (filed under an older
        // cursor); merge them.
        if c.heap {
            while self.overflow.peek().is_some_and(|e| e.at().0 == tmin) {
                // simlint: allow(no-panic-hot-path) — pop follows a successful peek on the same heap with no intervening mutation
                self.current.push(self.overflow.pop().expect("peeked"));
            }
        }
        // Same-instant FIFO: redistribution can interleave sequence
        // numbers, so restore seq order (descending; pops take the back).
        if self.current.len() > 1 {
            self.current.sort_unstable_by_key(|e| std::cmp::Reverse(e.key));
        }
        true
    }

    fn pop(&mut self) -> Option<Entry> {
        if self.current.is_empty() && !self.refill() {
            return None;
        }
        self.len -= 1;
        self.current.pop()
    }

    /// `(time, seq)` of the earliest entry, *without* mutating the wheel.
    ///
    /// The cursor may only advance when an event is actually removed (the
    /// `Sim` layer guarantees nothing schedules before the last *popped*
    /// time, not the last peeked one), so peeking scans instead of
    /// cascading: per level, the earliest occupied slot's time range
    /// precedes every other slot of that level, so the global minimum is
    /// the least entry across those candidate slots, `current`, and the
    /// overflow root.
    fn peek(&mut self) -> Option<(Nanos, u64)> {
        if let Some(e) = self.current.last() {
            return Some((e.at(), e.seq()));
        }
        self.ensure_scan().map(|c| (Nanos(c.tmin), c.best_seq))
    }

    /// Remove the entry [`Wheel::peek`] would return, without advancing
    /// the cursor, returning its arena slot so the owner can free the
    /// payload. Used to lazily discard cancelled events during peeks —
    /// the cursor must stay at the last popped time so later schedules
    /// before the cancelled instant remain representable.
    fn remove_earliest(&mut self) -> Option<ArenaSlot> {
        let (at, seq) = self.peek()?;
        self.scan = None;
        self.len -= 1;
        if self.current.last().is_some_and(|e| e.seq() == seq) {
            return self.current.pop().map(|e| e.slot);
        }
        if self.overflow.peek().is_some_and(|e| e.seq() == seq) {
            return self.overflow.pop().map(|e| e.slot);
        }
        for level in 0..LEVELS {
            let Some((slot, _)) = self.next_slot(level) else {
                continue;
            };
            let s = &mut self.levels[level].slots[slot];
            let key = ((at.0 as u128) << 64) | seq as u128;
            if let Some(i) = s.entries.iter().position(|e| e.key == key) {
                let removed = s.entries.remove(i);
                if s.entries.is_empty() {
                    Self::occ_clear(&mut self.levels[level].occupied, slot);
                } else {
                    s.recompute_min();
                }
                return Some(removed.slot);
            }
        }
        unreachable!("peeked entry not found in any store");
    }
}

enum Backend {
    Wheel(Wheel<WHEEL_BITS, WHEEL_LEVELS>),
    WideWheel(Wheel<WIDE_BITS, WIDE_LEVELS>),
    Heap(BinaryHeap<Entry>),
}

/// Dispatch a backend operation over both wheel geometries (the `$w` body
/// monomorphizes per concrete wheel type) with a separate heap arm.
macro_rules! by_backend {
    ($backend:expr, $w:ident => $wheel:expr, $h:ident => $heap:expr) => {
        match $backend {
            Backend::Wheel($w) => $wheel,
            Backend::WideWheel($w) => $wheel,
            Backend::Heap($h) => $heap,
        }
    };
}

/// A time-ordered queue of events carrying messages of type `M`.
///
/// Payloads are arena-resident (see the module docs): the backends order
/// POD entries and every pop moves the message out of its slot.
pub struct EventQueue<M> {
    backend: Backend,
    /// The payload slab. Invariant: live arena payloads == backend
    /// entries (cancelled-but-not-yet-discarded entries still own their
    /// payload until the lazy discard frees it).
    arena: Arena<M>,
    // simlint: allow(no-unordered-iteration) — insert/contains/remove only (lazy cancel); never iterated
    cancelled: HashSet<u64>,
    next_seq: u64,
    /// Adaptive mode: still on the heap, watching for the migration
    /// threshold.
    adaptive: bool,
    /// The migration threshold captured at construction (see
    /// [`set_adaptive_threshold`]).
    threshold: usize,
    /// Time of the last popped event — the only lower bound the `Sim`
    /// contract gives for future schedules, and therefore the wheel cursor
    /// a migration must start from.
    last_popped: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> EventQueue<M> {
    /// An empty queue on the thread's selected backend (see
    /// [`set_queue_kind`]; adaptive unless overridden).
    pub fn new() -> Self {
        Self::with_kind(queue_kind())
    }

    /// An empty queue on an explicit backend.
    pub fn with_kind(kind: QueueKind) -> Self {
        let backend = match kind {
            QueueKind::TimerWheel => Backend::Wheel(Wheel::new()),
            QueueKind::TimerWheelWide => Backend::WideWheel(Wheel::new()),
            QueueKind::BinaryHeap | QueueKind::Adaptive => Backend::Heap(BinaryHeap::new()),
        };
        EventQueue {
            backend,
            arena: Arena::new(),
            // simlint: allow(no-unordered-iteration) — construction of the membership-only set above
            cancelled: HashSet::new(),
            next_seq: 0,
            adaptive: kind == QueueKind::Adaptive,
            threshold: adaptive_threshold(),
            last_popped: 0,
        }
    }

    /// Adaptive migration: move every pending entry from the heap into a
    /// wheel whose cursor is the last popped time. Entries are POD handles
    /// (payloads stay put in the arena) and insertion order into slots is
    /// irrelevant (emission sorts each same-instant batch), so the heap is
    /// drained unordered.
    fn migrate_to_wheel(&mut self) {
        let Backend::Heap(heap) = std::mem::replace(&mut self.backend, Backend::Wheel(Wheel::new()))
        else {
            unreachable!("migration starts from the heap");
        };
        let Backend::Wheel(w) = &mut self.backend else {
            unreachable!("just installed");
        };
        w.base = self.last_popped;
        for mut e in heap.into_vec() {
            // The heap backend (like the seed) stores past-scheduled times
            // verbatim; the wheel cannot represent times behind its
            // cursor, so clamp here exactly as `Wheel::push` would.
            e.set_at(Nanos(e.at().0.max(w.base)));
            w.len += 1;
            w.place(e);
        }
    }

    /// Schedule `msg` to fire at absolute time `at`. Returns an id that can
    /// later be passed to [`EventQueue::cancel`]. The payload goes into
    /// the arena; only its POD handle enters the backend.
    pub fn schedule_at(&mut self, at: Nanos, msg: M) -> EventId {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.arena.insert(msg);
        by_backend!(&mut self.backend,
            w => w.push(at, seq, slot),
            h => {
                h.push(Entry::new(at, seq, slot));
                if self.adaptive && h.len() > self.threshold {
                    self.migrate_to_wheel();
                }
            }
        );
        EventId(seq)
    }

    /// Cancel a previously scheduled event. Cancelling an event that already
    /// fired (or was already cancelled) is a harmless no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id.0);
    }

    /// Take the payload out of a popped entry's slot. Every backend entry
    /// owns exactly one live arena slot, so this cannot miss.
    #[inline]
    fn redeem(&mut self, e: Entry) -> (Nanos, u64, M) {
        self.last_popped = e.at().0;
        let msg = self
            .arena
            .take(e.slot)
            // simlint: allow(no-panic-hot-path) — schedule moved the payload into this slot and only redeem/discard free it, exactly once (prop_arena pins the invariant)
            .expect("queue entry owns a live arena slot");
        (e.at(), e.seq(), msg)
    }

    /// Discard the payload of a lazily-removed cancelled entry so it
    /// cannot leak in the arena.
    #[inline]
    fn discard(&mut self, slot: Option<ArenaSlot>) {
        if let Some(slot) = slot {
            self.arena
                .take(slot)
                // simlint: allow(no-panic-hot-path) — a cancelled entry keeps slot ownership until this single lazy discard (prop_arena pins the invariant)
                .expect("cancelled entry owns a live arena slot");
        }
    }

    fn pop_any(&mut self) -> Option<(Nanos, u64, M)> {
        let e = by_backend!(&mut self.backend, w => w.pop(), h => h.pop())?;
        Some(self.redeem(e))
    }

    /// Remove and return the earliest pending event only if it fires at or
    /// before `deadline`; later events stay queued. One backend dispatch
    /// for the peek-compare-pop sequence the driver loop otherwise spells
    /// out as `peek_time()` + `pop()` — which is two dispatches per event
    /// on the hottest loop in the workspace.
    ///
    /// # Boundary contract
    ///
    /// The deadline is **inclusive** on every backend: an event scheduled
    /// exactly at `deadline` is popped, one at `deadline + 1` is not.
    /// The sharded runner's window barriers depend on this being exact —
    /// a window covering `[start, end)` drains via
    /// `pop_until(end - 1)`, and an off-by-one here would fire an event
    /// before the cross-shard arrivals that must precede it. Pinned by
    /// the `pop_until_boundary_is_exact_on_every_backend` property test
    /// across all backends (`tests/prop_queue.rs`).
    pub fn pop_until(&mut self, deadline: Nanos) -> Option<(Nanos, M)> {
        if self.cancelled.is_empty() {
            let e = by_backend!(&mut self.backend,
                w => {
                    if w.peek()?.0 > deadline {
                        return None;
                    }
                    w.pop()
                },
                h => {
                    if h.peek()?.at() > deadline {
                        return None;
                    }
                    h.pop()
                }
            )?;
            let (at, _, msg) = self.redeem(e);
            return Some((at, msg));
        }
        // Cancellations pending: take the slow path, which discards them
        // lazily without advancing the wheel cursor.
        if self.peek_time()? > deadline {
            return None;
        }
        self.pop()
    }

    /// Remove and return the earliest pending event, skipping cancelled
    /// entries. Returns `None` when the queue is exhausted.
    pub fn pop(&mut self) -> Option<(Nanos, M)> {
        // Fast path: no outstanding cancellations (the common case).
        if self.cancelled.is_empty() {
            return self.pop_any().map(|(at, _, msg)| (at, msg));
        }
        // Cancelled entries must be discarded *without* advancing the
        // wheel cursor: a skipped timer fires no event, so the driver's
        // clock does not move and later schedules may still target times
        // before the cancelled instant.
        loop {
            let (_, seq) = by_backend!(&mut self.backend,
                w => w.peek()?,
                h => h.peek().map(|e| (e.at(), e.seq()))?
            );
            if self.cancelled.remove(&seq) {
                let slot = by_backend!(&mut self.backend,
                    w => w.remove_earliest(),
                    h => h.pop().map(|e| e.slot)
                );
                self.discard(slot);
                continue;
            }
            // simlint: allow(no-panic-hot-path) — peek above returned an entry and nothing was removed since; pop_any must yield it
            let (at, popped, msg) = self.pop_any().expect("peeked entry present");
            debug_assert_eq!(popped, seq, "pop must return the peeked head");
            return Some((at, msg));
        }
    }

    /// Time of the earliest pending (non-cancelled) event without removing
    /// it. Cancelled entries encountered at the front are discarded.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        loop {
            let (at, seq) = by_backend!(&mut self.backend,
                w => w.peek()?,
                h => h.peek().map(|e| (e.at(), e.seq()))?
            );
            if self.cancelled.contains(&seq) {
                let slot = by_backend!(&mut self.backend,
                    w => w.remove_earliest(),
                    h => h.pop().map(|e| e.slot)
                );
                self.discard(slot);
                self.cancelled.remove(&seq);
                continue;
            }
            return Some(at);
        }
    }

    /// Number of pending entries (including not-yet-skipped cancelled ones).
    pub fn len(&self) -> usize {
        by_backend!(&self.backend, w => w.len, h => h.len())
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == self.cancelled.len()
    }

    /// Payloads resident in the arena. Always equals [`EventQueue::len`]
    /// — every pending entry (cancelled-but-undiscarded ones included)
    /// owns exactly one live slot. Exposed so the property tests can
    /// assert the no-leak/no-double-free invariant from outside.
    pub fn arena_live(&self) -> usize {
        self.arena.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Run a test closure against every backend.
    fn each_kind(f: impl Fn(QueueKind)) {
        f(QueueKind::Adaptive);
        f(QueueKind::TimerWheel);
        f(QueueKind::TimerWheelWide);
        f(QueueKind::BinaryHeap);
    }

    #[test]
    fn pops_in_time_order() {
        each_kind(|k| {
            let mut q = EventQueue::with_kind(k);
            q.schedule_at(Nanos(30), "c");
            q.schedule_at(Nanos(10), "a");
            q.schedule_at(Nanos(20), "b");
            assert_eq!(q.pop(), Some((Nanos(10), "a")));
            assert_eq!(q.pop(), Some((Nanos(20), "b")));
            assert_eq!(q.pop(), Some((Nanos(30), "c")));
            assert_eq!(q.pop(), None);
        });
    }

    #[test]
    fn ties_break_by_schedule_order() {
        each_kind(|k| {
            let mut q = EventQueue::with_kind(k);
            q.schedule_at(Nanos(5), 1);
            q.schedule_at(Nanos(5), 2);
            q.schedule_at(Nanos(5), 3);
            assert_eq!(q.pop().unwrap().1, 1);
            assert_eq!(q.pop().unwrap().1, 2);
            assert_eq!(q.pop().unwrap().1, 3);
        });
    }

    #[test]
    fn cancel_removes_event() {
        each_kind(|k| {
            let mut q = EventQueue::with_kind(k);
            let a = q.schedule_at(Nanos(1), "a");
            q.schedule_at(Nanos(2), "b");
            q.cancel(a);
            assert_eq!(q.pop(), Some((Nanos(2), "b")));
            assert_eq!(q.pop(), None);
            assert_eq!(q.arena_live(), 0, "cancelled payload must not leak");
        });
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        each_kind(|k| {
            let mut q = EventQueue::with_kind(k);
            let a = q.schedule_at(Nanos(1), "a");
            assert_eq!(q.pop(), Some((Nanos(1), "a")));
            q.cancel(a); // already fired; must not corrupt anything
            q.schedule_at(Nanos(2), "b");
            assert_eq!(q.pop(), Some((Nanos(2), "b")));
        });
    }

    #[test]
    fn peek_time_skips_cancelled() {
        each_kind(|k| {
            let mut q = EventQueue::with_kind(k);
            let a = q.schedule_at(Nanos(1), "a");
            q.schedule_at(Nanos(7), "b");
            q.cancel(a);
            assert_eq!(q.peek_time(), Some(Nanos(7)));
            assert_eq!(q.arena_live(), 1, "discard frees the cancelled slot");
            assert_eq!(q.pop(), Some((Nanos(7), "b")));
        });
    }

    #[test]
    fn is_empty_accounts_for_cancelled() {
        each_kind(|k| {
            let mut q: EventQueue<u8> = EventQueue::with_kind(k);
            assert!(q.is_empty());
            let a = q.schedule_at(Nanos(1), 0);
            assert!(!q.is_empty());
            q.cancel(a);
            assert!(q.is_empty());
        });
    }

    #[test]
    fn arena_tracks_pending_population() {
        each_kind(|k| {
            let mut q = EventQueue::with_kind(k);
            for i in 0..100u64 {
                q.schedule_at(Nanos(i * 3), i);
            }
            assert_eq!(q.arena_live(), q.len());
            for _ in 0..60 {
                q.pop();
            }
            assert_eq!(q.arena_live(), q.len());
            while q.pop().is_some() {}
            assert_eq!(q.arena_live(), 0);
        });
    }

    #[test]
    fn far_future_events_overflow_and_return() {
        // Beyond both wheel horizons (2^30 ns default, 2^32 ns wide):
        // exercised via the overflow heap, including same-instant ties
        // straddling both stores.
        for kind in [QueueKind::TimerWheel, QueueKind::TimerWheelWide] {
            let mut q = EventQueue::with_kind(kind);
            let far = Nanos(6_000_000_000); // 6 s
            q.schedule_at(far, "far1");
            q.schedule_at(Nanos(50), "near");
            q.schedule_at(far, "far2");
            assert_eq!(q.pop(), Some((Nanos(50), "near")));
            assert_eq!(q.pop(), Some((far, "far1")));
            assert_eq!(q.pop(), Some((far, "far2")));
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    fn cascades_preserve_same_instant_fifo() {
        // Schedule an instant far enough out to sit in a high level, pop
        // up to it, and add same-instant events from a nearer cursor: the
        // cascade must not reorder them against the late-scheduled ones.
        let mut q = EventQueue::with_kind(QueueKind::TimerWheel);
        let t = Nanos(70_000);
        q.schedule_at(t, 1); // lands in level 2
        q.schedule_at(Nanos(60_000), 0);
        assert_eq!(q.pop(), Some((Nanos(60_000), 0)));
        q.schedule_at(t, 2); // cursor at 60_000: lands in a lower level
        q.schedule_at(t, 3);
        assert_eq!(q.pop(), Some((t, 1)));
        assert_eq!(q.pop(), Some((t, 2)));
        assert_eq!(q.pop(), Some((t, 3)));
    }

    #[test]
    fn interleaved_schedule_pop_matches_heap() {
        // A dense deterministic workload driven through both backends.
        let run = |kind: QueueKind| {
            let mut q = EventQueue::with_kind(kind);
            let mut order = Vec::new();
            let mut now = 0u64;
            for i in 0..2_000u64 {
                // Pseudo-random but fixed delays spanning all levels.
                let d = (i * 2_654_435_761) % 1_000_003;
                q.schedule_at(Nanos(now + d), i as u32);
                if i % 3 == 0 {
                    if let Some((t, v)) = q.pop() {
                        now = t.0;
                        order.push((t, v));
                    }
                }
            }
            while let Some((t, v)) = q.pop() {
                order.push((t, v));
            }
            order
        };
        assert_eq!(run(QueueKind::TimerWheel), run(QueueKind::BinaryHeap));
        assert_eq!(run(QueueKind::TimerWheelWide), run(QueueKind::BinaryHeap));
    }

    #[test]
    fn thread_kind_override_applies_to_new() {
        set_queue_kind(QueueKind::TimerWheel);
        let q: EventQueue<u8> = EventQueue::new();
        assert!(matches!(q.backend, Backend::Wheel(_)));
        set_queue_kind(QueueKind::Adaptive);
        let q: EventQueue<u8> = EventQueue::new();
        assert!(matches!(q.backend, Backend::Heap(_)) && q.adaptive);
    }

    #[test]
    fn thread_threshold_override_applies_to_new() {
        set_adaptive_threshold(4);
        let mut q: EventQueue<u8> = EventQueue::new();
        for i in 0..6 {
            q.schedule_at(Nanos(i), i as u8);
        }
        assert!(
            matches!(q.backend, Backend::Wheel(_)),
            "threshold 4 must migrate at 5 pending"
        );
        set_adaptive_threshold(ADAPTIVE_THRESHOLD);
        let mut q: EventQueue<u8> = EventQueue::new();
        for i in 0..6 {
            q.schedule_at(Nanos(i), i as u8);
        }
        assert!(matches!(q.backend, Backend::Heap(_)), "default restored");
    }

    #[test]
    fn adaptive_migrates_past_threshold_and_stays_ordered() {
        let mut q = EventQueue::with_kind(QueueKind::Adaptive);
        // Advance the cursor a bit first so migration must anchor the
        // wheel at the last popped time, not zero.
        q.schedule_at(Nanos(100), u32::MAX);
        assert_eq!(q.pop(), Some((Nanos(100), u32::MAX)));
        let n = (ADAPTIVE_THRESHOLD + 64) as u64;
        for i in 0..n {
            // Deterministic scatter incl. past-horizon times.
            let t = 100 + (i * 2_654_435_761) % (1 << 31);
            q.schedule_at(Nanos(t), i as u32);
        }
        assert!(matches!(q.backend, Backend::Wheel(_)), "must have migrated");
        let mut last = (Nanos(0), 0u64);
        let mut popped = 0;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last.0);
            last = (t, 0);
            popped += 1;
        }
        assert_eq!(popped, n);
    }
}
