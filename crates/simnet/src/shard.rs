//! Conservative time-windowed **parallel** DES: shard the simulated nodes
//! across cores without giving up a single bit of determinism.
//!
//! The serial kernel ([`Sim`]/[`Harness`]) is one clock and one event
//! queue; after the hot-path flattening PRs it runs as fast as one core
//! allows. The next order of magnitude comes from the axis this module
//! owns: partition the simulated *nodes* over N worker shards, each with
//! its own full simulation kernel (timer wheel, payload arena, RNG
//! streams), and let the shards run concurrently inside **conservative
//! time windows**.
//!
//! # The lookahead contract
//!
//! Conservative parallel DES is safe exactly when no shard can affect
//! another "faster than light": every cross-shard interaction must take at
//! least some minimum delay `L` — the **lookahead** — between the instant
//! a source shard decides to send and the earliest instant the destination
//! can observe the effect. The substrates expose that bound
//! (`RdmaConfig::lookahead()` = doorbell + TX pipeline + propagation + RX
//! pipeline; `TcpCosts::lookahead()` = the intra-cluster wire floor), and
//! the runner sizes its windows to it: during window `k` covering
//! `[k·L, (k+1)·L)` every shard processes only local events, and any
//! cross-shard message sent inside the window arrives at
//! `t + d ≥ k·L + L = (k+1)·L` — i.e. never earlier than the *next*
//! window. Draining the mailboxes at each window barrier therefore
//! delivers every message before the window that could fire it.
//! [`Outbox::send`] debug-asserts the contract on every send.
//!
//! # Determinism
//!
//! Cross-shard messages travel through fixed-capacity SPSC mailboxes (one
//! ring per shard pair). At each barrier the destination shard drains its
//! inbound rings and merges the batch in **`(time, src, seq)` order**
//! before scheduling, where `src` is a caller-chosen source key and `seq`
//! is the per-channel send counter. Transport order — which thread pushed
//! first, ring vs. overflow spill — is erased by the sort, so reports are
//! bit-reproducible regardless of thread scheduling. If the engine uses a
//! partition-independent `src` key (e.g. the global simulated-node id, as
//! [`palladium_core`'s multi-node driver] does) and routes **all**
//! inter-node traffic through the outbox (same-shard destinations
//! included), the merged schedule is also independent of the shard
//! *count*: the same workload at 1, 2 and 4 shards produces byte-identical
//! reports (`tests/prop_shard.rs` pins this).
//!
//! # Multi-window striding
//!
//! When the *typical* cross-shard delay exceeds the lookahead `L` (e.g.
//! a full RDMA hop is ~3.5 µs against a 3.1 µs lookahead), many barriers
//! deliver nothing: the barrier frequency is set by the worst-case bound,
//! not the common case. [`ShardConfig::stride`] batches `k` consecutive
//! windows per barrier. Because nothing happens at an undrained window
//! boundary — merges are the only barrier-side effect — running `k`
//! windows back-to-back is *identical* to running one `k·L`-wide window,
//! so the runner implements striding as an effective window width of
//! `window × stride` and [`Outbox::send`] keeps asserting the contract
//! against the widened window. Safety therefore requires
//! `window × stride ≤` the true minimum cross-shard delay: the caller
//! picks `window` = lookahead and `stride = ⌊min_delay / L⌋`. The payoff
//! is directly visible as a smaller [`ShardRun::windows`] (barriers per
//! simulated second).
//!
//! # Mailbox auto-sizing
//!
//! Mailboxes start at [`ShardConfig::mailbox_capacity`] and grow: when a
//! window bursts past the ring into the (counted, mutex-guarded) overflow
//! vector, the consumer — during the quiesced drain phase, when the ring
//! is empty and no producer can race — swaps in a ring sized to twice
//! that window's delivery high-water mark. Steady state therefore never
//! touches the overflow mutex: only the first window of a new burst
//! regime spills, and per-channel spill counts plus window high-water
//! marks are reported in [`ShardRun::channels`] so the policy is
//! observable.
//!
//! # Execution modes
//!
//! [`Execution::Threads`] runs one OS thread per shard with two
//! [`SpinBarrier`] waits per window (mailboxes quiesce between the drain
//! and run phases). [`Execution::Sequential`] interleaves the shards on
//! the calling thread — same windows, same merges, same results — which
//! both serves as the reference in the determinism tests and yields exact
//! per-window busy times for the critical-path speedup model reported by
//! `simcore_throughput --shards-sweep`.
//!
//! [`Sim`]: crate::sim::Sim
//! [`palladium_core`'s multi-node driver]: self

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::harness::{Effects, Engine, Harness};
use crate::time::Nanos;

/// A cross-shard message in flight: the absolute arrival time, the
/// sender's ordering key, the per-channel sequence number and the payload.
/// Merged at window barriers in `(at, src, seq)` order (see module docs).
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Absolute virtual arrival time.
    pub at: Nanos,
    /// Source ordering key. Use a partition-independent key (the global
    /// node id) for shard-count-invariant determinism; distinct sources
    /// sharing one instant merge in key order.
    pub src: u32,
    /// Per-`(source shard, destination shard)` send counter: preserves one
    /// source's emission order among same-instant, same-key messages.
    pub seq: u64,
    /// The message.
    pub msg: M,
}

// ---------------------------------------------------------------------------
// SPSC mailbox

/// Cache-line padding so the producer and consumer cursors of a mailbox
/// never false-share.
#[repr(align(64))]
struct Pad<T>(T);

/// The shared state of one auto-sizing SPSC mailbox. The ring starts at
/// the configured capacity; when a window bursts past it the producer
/// spills to the mutex-guarded overflow vector (counted, never dropped) —
/// the barrier merge sorts everything anyway, so the spill is a
/// throughput detail, not a correctness event. The consumer reacts to a
/// spill by swapping in a larger ring during the quiesced drain phase
/// (see [`Consumer::drain_into`]), so a sustained burst regime spills at
/// most once.
struct Channel<M> {
    /// The ring storage. Behind an `UnsafeCell` because the *consumer*
    /// replaces it when auto-sizing; the swap only happens while the ring
    /// is empty and producers are quiesced at the window barrier, whose
    /// AcqRel arrival chain + Release/Acquire generation hand-off
    /// publishes the new buffer to the producer before its next push.
    buf: UnsafeCell<Box<[RingSlot<M>]>>,
    /// Consumer cursor (next slot to pop).
    head: Pad<AtomicUsize>,
    /// Producer cursor (next slot to fill).
    tail: Pad<AtomicUsize>,
    overflow: Mutex<Vec<Envelope<M>>>,
    spilled: AtomicU64,
}

// SAFETY: the ring is a classic single-producer/single-consumer queue —
// the producer only writes slots in `[tail, head + cap)` and publishes
// them with a release store of `tail`; the consumer only reads slots in
// `[head, tail)` after an acquire load of `tail`. `Producer`/`Consumer`
// are constructed exactly once per channel, which enforces the SPSC
// roles. The buffer swap (consumer-only) is confined to the barrier
// phase where the producer provably does not touch the channel.
unsafe impl<M: Send> Send for Channel<M> {}
// SAFETY: same argument as `Send` above — shared access is exactly the
// SPSC protocol: one producer thread pushing, one consumer thread
// draining, buffer swaps confined to the quiesced barrier phase.
unsafe impl<M: Send> Sync for Channel<M> {}

/// One ring slot: interior-mutable so the producer can fill it through a
/// shared reference, uninitialized until the producer's release-store of
/// `tail` covers it.
type RingSlot<M> = UnsafeCell<MaybeUninit<Envelope<M>>>;

fn ring_buf<M>(cap: usize) -> Box<[RingSlot<M>]> {
    (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect()
}

impl<M> Channel<M> {
    /// Build one mailbox, returning its two halves.
    fn pair(cap: usize) -> (Producer<M>, Consumer<M>) {
        assert!(cap > 0, "mailbox capacity must be positive");
        let ch = Arc::new(Channel {
            buf: UnsafeCell::new(ring_buf(cap)),
            head: Pad(AtomicUsize::new(0)),
            tail: Pad(AtomicUsize::new(0)),
            overflow: Mutex::new(Vec::new()),
            spilled: AtomicU64::new(0),
        });
        (
            Producer(Arc::clone(&ch)),
            Consumer { ch, seen_spilled: 0, high_water: 0 },
        )
    }
}

impl<M> Drop for Channel<M> {
    fn drop(&mut self) {
        // Drop any envelopes still parked in the ring (messages sent in
        // the final window, arriving past the deadline).
        let buf = self.buf.get_mut();
        let tail = *self.tail.0.get_mut();
        let mut head = *self.head.0.get_mut();
        while head != tail {
            // SAFETY: slots in [head, tail) were written and not yet read.
            unsafe { (*buf[head % buf.len()].get()).assume_init_drop() };
            head = head.wrapping_add(1);
        }
    }
}

/// Producing half of one SPSC mailbox (held by the source shard's
/// [`Outbox`]).
struct Producer<M>(Arc<Channel<M>>);

/// Consuming half of one SPSC mailbox (held by the destination shard).
struct Consumer<M> {
    ch: Arc<Channel<M>>,
    /// Cumulative spill count at the last drain — a drain only touches
    /// the overflow mutex when the counter moved *since then*, so one
    /// historic spill does not tax every subsequent window.
    seen_spilled: u64,
    /// Largest single-window delivery this channel has seen (the
    /// auto-sizing signal, reported per channel in [`ShardRun`]).
    high_water: u64,
}

impl<M> Producer<M> {
    fn push(&mut self, env: Envelope<M>) {
        let ch = &*self.0;
        // SAFETY: the consumer only replaces the buffer while this
        // producer is quiesced at the window barrier (which also
        // publishes the swap); between barriers the pointer is stable.
        let buf = unsafe { &*ch.buf.get() };
        let tail = ch.tail.0.load(Ordering::Relaxed);
        let head = ch.head.0.load(Ordering::Acquire);
        if tail.wrapping_sub(head) == buf.len() {
            ch.spilled.fetch_add(1, Ordering::Relaxed);
            // simlint: allow(no-panic-hot-path) — the mutex is poisoned only if a sibling shard already panicked; propagating is the correct response
            ch.overflow.lock().expect("mailbox overflow lock").push(env);
            return;
        }
        // SAFETY: SPSC — this thread is the only producer, and the slot at
        // `tail` is outside the consumer's visible `[head, tail)` range.
        unsafe { (*buf[tail % buf.len()].get()).write(env) };
        ch.tail.0.store(tail.wrapping_add(1), Ordering::Release);
    }
}

impl<M> Consumer<M> {
    /// Pop everything currently visible into `out` (ring first, then any
    /// overflow spill), then auto-size: if this window spilled, swap in a
    /// ring holding twice the window's total delivery, so the next window
    /// of the same burst regime stays on the lock-free path. Transport
    /// order is irrelevant — the caller sorts.
    ///
    /// Only called from the barrier's drain phase: the producer is
    /// provably quiescent, which is what makes both the relaxed spill
    /// check and the buffer swap race-free.
    fn drain_into(&mut self, out: &mut Vec<Envelope<M>>) {
        let before = out.len();
        let ch = &*self.ch;
        // SAFETY: only this consumer ever replaces the buffer, and the
        // producer is quiesced for the duration of the drain phase.
        let buf = unsafe { &*ch.buf.get() };
        let tail = ch.tail.0.load(Ordering::Acquire);
        let mut head = ch.head.0.load(Ordering::Relaxed);
        while head != tail {
            // SAFETY: SPSC — slots in `[head, tail)` are initialized and
            // owned by the consumer until `head` advances past them.
            out.push(unsafe { (*buf[head % buf.len()].get()).assume_init_read() });
            head = head.wrapping_add(1);
        }
        ch.head.0.store(head, Ordering::Release);
        let spilled = ch.spilled.load(Ordering::Relaxed);
        if spilled != self.seen_spilled {
            self.seen_spilled = spilled;
            {
                // simlint: allow(no-panic-hot-path) — poisoned only if a sibling shard already panicked; propagating is the correct response
                let mut of = ch.overflow.lock().expect("mailbox overflow lock");
                out.append(&mut of);
            }
            // Auto-size. The ring is empty (fully drained above, producer
            // quiesced), so replacing the storage cannot lose entries or
            // remap live slots; `head == tail` makes the `% len` change
            // harmless.
            let drained = out.len() - before;
            let new_cap = (drained * 2).next_power_of_two();
            if new_cap > buf.len() {
                // SAFETY: consumer-exclusive swap of an empty ring during
                // the quiesced phase (see above); the barrier publishes
                // it to the producer.
                unsafe { *ch.buf.get() = ring_buf(new_cap) };
            }
        }
        self.high_water = self.high_water.max((out.len() - before) as u64);
    }

    fn spilled(&self) -> u64 {
        self.ch.spilled.load(Ordering::Relaxed)
    }

    /// Current ring capacity. Only meaningful once the run has quiesced
    /// (fold phase) — which is the only caller.
    fn capacity(&self) -> usize {
        // SAFETY: called after the run, when no producer is live and this
        // consumer performs no concurrent swap.
        unsafe { (&*self.ch.buf.get()).len() }
    }
}

// ---------------------------------------------------------------------------
// Spin barrier

/// A sense-free spinning barrier: window widths are microseconds of
/// virtual time, so real-time barrier latency is the dominant
/// parallelization overhead — a futex sleep/wake per window would dwarf
/// the per-window work. Spins briefly, then yields (so oversubscribed
/// machines still make progress).
///
/// The barrier **poisons** when a shard panics (via [`PoisonOnUnwind`]):
/// without that, the surviving shards would spin forever on an arrival
/// count that can never complete and the process would hang instead of
/// failing — every waiter instead re-raises, so the original panic
/// surfaces through the thread scope.
struct SpinBarrier {
    n: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
    poisoned: AtomicBool,
}

impl SpinBarrier {
    fn new(n: usize) -> Self {
        SpinBarrier {
            n,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    fn check_poison(&self) {
        assert!(
            !self.poisoned.load(Ordering::Acquire),
            "a sibling shard panicked; abandoning the window barrier"
        );
    }

    fn wait(&self) {
        self.check_poison();
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Reset before releasing the cohort: waiters cannot touch
            // `arrived` until they observe the generation bump below.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                self.check_poison();
                spins += 1;
                if spins < 128 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// Poisons the barrier if the owning shard unwinds, so sibling shards
/// fail fast instead of spinning forever (see [`SpinBarrier`]).
struct PoisonOnUnwind<'a>(&'a SpinBarrier);

impl Drop for PoisonOnUnwind<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

// ---------------------------------------------------------------------------
// Partition

/// A block partition of `nodes` simulated nodes over `shards` shards:
/// shard `s` owns a contiguous index range, earlier shards take the
/// remainder. Block (rather than round-robin) assignment keeps
/// neighbor-heavy traffic intra-shard and makes the shard→node-range map
/// O(1) both ways.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition {
    nodes: usize,
    shards: usize,
    /// `nodes / shards`, precomputed — [`Partition::shard_of`] sits on
    /// per-message hot paths.
    base: usize,
    /// `nodes % shards` (shards owning `base + 1` nodes).
    rem: usize,
    /// First node index owned by a `base`-sized shard (`rem * (base+1)`).
    fat: usize,
}

impl Partition {
    /// Partition `nodes` over `shards`. Every shard owns at least one
    /// node, so `shards` must not exceed `nodes`.
    pub fn new(nodes: usize, shards: usize) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(nodes >= shards, "every shard must own at least one node");
        let base = nodes / shards;
        let rem = nodes % shards;
        Partition { nodes, shards, base, rem, fat: rem * (base + 1) }
    }

    /// Total simulated nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `node`. One variable division; engines routing at
    /// full rate can go divide-free with [`Partition::shard_lookup`].
    #[inline]
    pub fn shard_of(&self, node: usize) -> usize {
        debug_assert!(node < self.nodes);
        if node < self.fat {
            node / (self.base + 1)
        } else {
            self.rem + (node - self.fat) / self.base
        }
    }

    /// A dense node → shard table for divide-free hot-path routing (one
    /// L1 load per send instead of a variable division).
    pub fn shard_lookup(&self) -> Vec<u32> {
        (0..self.nodes).map(|n| self.shard_of(n) as u32).collect()
    }

    /// The contiguous node range shard `s` owns.
    pub fn range(&self, s: usize) -> std::ops::Range<usize> {
        debug_assert!(s < self.shards);
        let lo = s * self.base + s.min(self.rem);
        let hi = lo + self.base + usize::from(s < self.rem);
        lo..hi
    }
}

// ---------------------------------------------------------------------------
// Engine-facing API

/// The source shard's handle for emitting cross-shard messages. One
/// producer per destination shard (self-sends included — routing
/// *everything* inter-node through the outbox is what makes reports
/// independent of the shard count; see the module docs).
pub struct Outbox<M> {
    to: Vec<Producer<M>>,
    seq: Vec<u64>,
    /// Start of the next window: every send must arrive at or after it
    /// (the lookahead contract).
    window_end: Nanos,
    sent: u64,
}

impl<M> Outbox<M> {
    /// Send `msg` to `dst_shard`, arriving at absolute time `at`. `src` is
    /// the deterministic merge key (see [`Envelope::src`]). `at` must
    /// honor the lookahead contract: at least one full window after the
    /// current one (debug-asserted).
    #[inline]
    pub fn send(&mut self, dst_shard: usize, at: Nanos, src: u32, msg: M) {
        debug_assert!(
            at >= self.window_end,
            "cross-shard send at {at} violates the lookahead contract \
             (window ends at {})",
            self.window_end
        );
        let seq = self.seq[dst_shard];
        self.seq[dst_shard] = seq + 1;
        self.to[dst_shard].push(Envelope { at, src, seq, msg });
        self.sent += 1;
    }

    /// Messages sent so far through this outbox.
    pub fn sent(&self) -> u64 {
        self.sent
    }
}

/// A sharded driver: the per-shard state machine plus the message lift.
///
/// Like [`Engine`], but `on_event` additionally receives the [`Outbox`]
/// for cross-shard sends, and `lift` converts an arriving envelope into a
/// local event (scheduled at the envelope's arrival time). For
/// shard-count-invariant determinism, route **all** inter-node
/// interaction through the outbox and keep local events node-local.
pub trait ShardEngine: Send {
    /// The shard-local event alphabet.
    type Ev: Send;
    /// The cross-shard message payload.
    type Msg: Send;

    /// Consume one local event; push follow-up local effects into `fx`
    /// and cross-shard messages into `out`.
    fn on_event(
        &mut self,
        now: Nanos,
        ev: Self::Ev,
        fx: &mut Effects<'_, Self::Ev>,
        out: &mut Outbox<Self::Msg>,
    );

    /// Lift an arriving cross-shard message into a local event. The
    /// runner schedules the result at the envelope's arrival time.
    fn lift(&mut self, at: Nanos, src: u32, msg: Self::Msg) -> Self::Ev;
}

/// How the shards execute.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Execution {
    /// One OS thread per shard, spin barriers between window phases. The
    /// production mode: wall-clock scales with cores.
    Threads,
    /// All shards interleaved on the calling thread — identical results
    /// (the determinism tests pin this), exact per-window busy times for
    /// the critical-path model, no thread spawn.
    Sequential,
}

/// Configuration of one sharded run.
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Number of shards (threads in [`Execution::Threads`] mode).
    pub shards: usize,
    /// Window width — at most the workload's cross-shard lookahead.
    pub window: Nanos,
    /// Windows batched per barrier (see the module docs on striding).
    /// The effective barrier spacing is `window × stride`, which must
    /// still bound the minimum cross-shard delay from below; `Outbox`
    /// asserts the contract against the widened window. Default 1.
    pub stride: u64,
    /// Initial SPSC ring capacity per shard pair; a burst past it spills
    /// to the (counted) overflow vector and grows the ring (see the
    /// module docs on auto-sizing).
    pub mailbox_capacity: usize,
    /// Execution mode.
    pub execution: Execution,
}

impl ShardConfig {
    /// A threaded run of `shards` shards with `window`-wide barriers.
    pub fn new(shards: usize, window: Nanos) -> Self {
        assert!(shards > 0, "at least one shard");
        assert!(!window.is_zero(), "lookahead window must be positive");
        ShardConfig {
            shards,
            window,
            stride: 1,
            mailbox_capacity: 4096,
            execution: Execution::Threads,
        }
    }

    /// Select the execution mode.
    pub fn execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// Batch `stride` windows per barrier. Sound only while
    /// `window × stride` still lower-bounds every cross-shard delay —
    /// the caller owns that proof; the per-send debug assertion enforces
    /// it at run time.
    pub fn stride(mut self, stride: u64) -> Self {
        assert!(stride >= 1, "stride must be at least one window");
        self.stride = stride;
        self
    }
}

/// Per-`(src shard → dst shard)` mailbox statistics, reported so the
/// auto-sizing policy is observable and spill regressions are
/// attributable to a channel rather than an aggregate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelStats {
    /// Source shard of this channel.
    pub src_shard: usize,
    /// Destination shard of this channel.
    pub dst_shard: usize,
    /// Envelopes that overflowed the ring into the spill vector (over the
    /// whole run; steady state after auto-sizing adds zero).
    pub spilled: u64,
    /// Largest single-window delivery (ring + overflow).
    pub high_water: u64,
    /// Final ring capacity after auto-sizing.
    pub capacity: usize,
}

/// The outcome of a sharded run: the engines (for report merging) plus
/// aggregate counters and the wall-clock material for the critical-path
/// model.
pub struct ShardRun<E> {
    /// The shard engines, in shard order.
    pub engines: Vec<E>,
    /// Total simulation events processed across all shards.
    pub events: u64,
    /// Cross-shard messages delivered.
    pub messages: u64,
    /// Messages that overflowed an SPSC ring into the spill vector.
    pub spilled: u64,
    /// Per-channel mailbox statistics (spills, window high-water marks,
    /// final auto-sized capacities), in `(dst shard, src shard)` order.
    pub channels: Vec<ChannelStats>,
    /// Window barriers executed (with striding, one barrier covers
    /// `stride` lookahead windows — this counts barriers).
    pub windows: u64,
    /// Per-shard busy wall time, nanoseconds (merge + run phases; barrier
    /// waits excluded).
    pub busy_ns: Vec<u64>,
    /// `Σ_k max_s busy[s][k]` — the busy wall time of a machine with one
    /// core per shard and free barriers. Exact in
    /// [`Execution::Sequential`] mode; inflated by preemption noise under
    /// [`Execution::Threads`].
    pub critical_path_ns: u64,
}

/// Wraps a [`ShardEngine`] (plus its outbox) as a plain [`Engine`] so the
/// batched [`Harness`] trampoline drives the shard's local loop.
struct Runner<E: ShardEngine> {
    engine: E,
    outbox: Outbox<E::Msg>,
}

impl<E: ShardEngine> Engine for Runner<E> {
    type Ev = E::Ev;

    #[inline]
    fn on_event(&mut self, now: Nanos, ev: Self::Ev, fx: &mut Effects<'_, Self::Ev>) {
        self.engine.on_event(now, ev, fx, &mut self.outbox);
    }
}

/// One shard's full context: kernel, engine+outbox, inbound mailboxes and
/// counters.
struct ShardCtx<E: ShardEngine> {
    idx: usize,
    harness: Harness<E::Ev>,
    runner: Runner<E>,
    inbox: Vec<Consumer<E::Msg>>,
    /// Reused merge buffer.
    inbound: Vec<Envelope<E::Msg>>,
    events: u64,
    delivered: u64,
    /// Per-window busy wall nanoseconds (merge + run phases; barrier
    /// waits excluded) — the critical-path model's raw material.
    busy: Vec<u64>,
    /// Merge-phase nanoseconds of the window in progress.
    merge_ns: u64,
}

impl<E: ShardEngine> ShardCtx<E> {
    /// Window phase 1: drain + deterministically merge last window's
    /// cross-shard arrivals into the local queue.
    fn merge_inbound(&mut self) {
        // simlint: allow(no-ambient-time) — real-time busy accounting for the critical-path model; measures host merge cost, never feeds virtual time
        let t0 = Instant::now();
        for c in &mut self.inbox {
            c.drain_into(&mut self.inbound);
        }
        if !self.inbound.is_empty() {
            self.inbound.sort_unstable_by_key(|e| (e.at, e.src, e.seq));
            self.delivered += self.inbound.len() as u64;
            for env in self.inbound.drain(..) {
                let ev = self.runner.engine.lift(env.at, env.src, env.msg);
                self.harness.schedule_at(env.at, ev);
            }
        }
        self.merge_ns = t0.elapsed().as_nanos() as u64;
    }

    /// Window phase 2: run local events strictly before `end`.
    fn run_window(&mut self, end: Nanos) {
        self.runner.outbox.window_end = end;
        // simlint: allow(no-ambient-time) — real-time busy accounting for the critical-path model; measures host run cost, never feeds virtual time
        let t0 = Instant::now();
        self.events += self.harness.run_window(&mut self.runner, end);
        self.busy.push(self.merge_ns + t0.elapsed().as_nanos() as u64);
    }
}

/// Window `k`'s exclusive end for a run bounded by `deadline` (the final
/// window truncates to `deadline + 1` so events *at* the deadline still
/// fire, matching the serial harness's inclusive deadline).
#[inline]
fn window_end(k: u64, window: u64, deadline: Nanos) -> Nanos {
    Nanos(((k + 1).saturating_mul(window)).min(deadline.0.saturating_add(1)))
}

/// Run `engines` (one per shard) to `deadline` under conservative
/// `cfg.window`-wide barriers. `init` seeds each shard's initial events
/// (called on the caller thread, in shard order, before anything runs).
///
/// Returns the engines for report merging plus the run counters. Results
/// are bit-identical across execution modes and thread schedules; see the
/// module docs for when they are also shard-count-invariant.
pub fn run_sharded<E: ShardEngine>(
    cfg: &ShardConfig,
    engines: Vec<E>,
    mut init: impl FnMut(usize, &mut Harness<E::Ev>),
    deadline: Nanos,
) -> ShardRun<E> {
    assert_eq!(engines.len(), cfg.shards, "one engine per shard");
    assert!(!cfg.window.is_zero(), "lookahead window must be positive");
    assert!(cfg.stride >= 1, "stride must be at least one window");
    let n = cfg.shards;
    // Striding = a wider effective window: nothing but the drain happens
    // at a barrier, so batching `stride` windows per barrier is exactly
    // running `window × stride`-wide windows (see the module docs).
    let w = cfg
        .window
        .as_nanos()
        .checked_mul(cfg.stride)
        // simlint: allow(no-panic-hot-path) — run setup, not steady state: a misconfigured stride must fail loudly before any window runs
        .expect("window × stride overflows");
    let n_windows = deadline.as_nanos() / w + 1;

    // Mailboxes: producers[src][dst] / consumers filed per destination.
    let mut producers: Vec<Vec<Producer<E::Msg>>> = (0..n).map(|_| Vec::new()).collect();
    let mut consumers: Vec<Vec<Consumer<E::Msg>>> = (0..n).map(|_| Vec::new()).collect();
    for producers_of_src in producers.iter_mut() {
        for consumers_of_dst in consumers.iter_mut() {
            let (p, c) = Channel::pair(cfg.mailbox_capacity);
            producers_of_src.push(p);
            consumers_of_dst.push(c);
        }
    }

    // Build every context on the caller thread: `Harness::new` reads the
    // thread-local queue-kind/threshold selection, which must apply to all
    // shards regardless of execution mode.
    let mut ctxs: Vec<ShardCtx<E>> = Vec::with_capacity(n);
    for (idx, engine) in engines.into_iter().enumerate() {
        let mut harness = Harness::new();
        init(idx, &mut harness);
        ctxs.push(ShardCtx {
            idx,
            harness,
            runner: Runner {
                engine,
                outbox: Outbox {
                    to: std::mem::take(&mut producers[idx]),
                    seq: vec![0; n],
                    window_end: Nanos::ZERO,
                    sent: 0,
                },
            },
            inbox: std::mem::take(&mut consumers[idx]),
            inbound: Vec::new(),
            events: 0,
            delivered: 0,
            busy: Vec::with_capacity(n_windows as usize),
            merge_ns: 0,
        });
    }

    match cfg.execution {
        Execution::Sequential => {
            for k in 0..n_windows {
                let end = window_end(k, w, deadline);
                for ctx in &mut ctxs {
                    ctx.merge_inbound();
                }
                for ctx in &mut ctxs {
                    ctx.run_window(end);
                }
            }
        }
        Execution::Threads => {
            let barrier = SpinBarrier::new(n);
            let run_shard = |ctx: &mut ShardCtx<E>| {
                let _poison = PoisonOnUnwind(&barrier);
                for k in 0..n_windows {
                    ctx.merge_inbound();
                    // All mailboxes quiesce before anyone refills them:
                    // a shard ahead in window k+1 must not race a shard
                    // still draining window k's batch.
                    barrier.wait();
                    ctx.run_window(window_end(k, w, deadline));
                    // All of window k's sends are mailboxed before any
                    // shard starts the next drain.
                    barrier.wait();
                }
            };
            let mut rest = ctxs.split_off(1);
            let first = &mut ctxs[0];
            std::thread::scope(|s| {
                let handles: Vec<_> = rest
                    .iter_mut()
                    .map(|ctx| s.spawn(|| run_shard(ctx)))
                    .collect();
                run_shard(first);
                for h in handles {
                    // simlint: allow(no-panic-hot-path) — re-raises a shard panic on the coordinating thread after the barrier poisoned; the run is already dead
                    h.join().expect("shard thread panicked");
                }
            });
            ctxs.append(&mut rest);
        }
    }

    // Fold the run: shard order is construction order in both modes.
    debug_assert!(ctxs.windows(2).all(|p| p[0].idx < p[1].idx));
    let spilled = ctxs
        .iter()
        .flat_map(|c| c.inbox.iter())
        .map(Consumer::spilled)
        .sum();
    let channels = ctxs
        .iter()
        .flat_map(|c| {
            c.inbox.iter().enumerate().map(|(src, consumer)| ChannelStats {
                src_shard: src,
                dst_shard: c.idx,
                spilled: consumer.spilled(),
                high_water: consumer.high_water,
                capacity: consumer.capacity(),
            })
        })
        .collect();
    let critical_path_ns = (0..n_windows as usize)
        .map(|k| ctxs.iter().map(|c| c.busy[k]).max().unwrap_or(0))
        .sum();
    let mut run = ShardRun {
        engines: Vec::with_capacity(n),
        events: 0,
        messages: 0,
        spilled,
        channels,
        windows: n_windows,
        busy_ns: Vec::with_capacity(n),
        critical_path_ns,
    };
    for ctx in ctxs {
        run.events += ctx.events;
        run.messages += ctx.delivered;
        run.busy_ns.push(ctx.busy.iter().sum());
        run.engines.push(ctx.runner.engine);
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_blocks_cover_all_nodes() {
        for (nodes, shards) in [(8, 1), (8, 3), (17, 4), (4, 4), (100, 7)] {
            let p = Partition::new(nodes, shards);
            let mut seen = 0;
            for s in 0..shards {
                let r = p.range(s);
                assert!(!r.is_empty(), "{nodes}/{shards} shard {s} empty");
                for node in r.clone() {
                    assert_eq!(p.shard_of(node), s, "{nodes}/{shards} node {node}");
                    seen += 1;
                }
                if s + 1 < shards {
                    assert_eq!(r.end, p.range(s + 1).start, "contiguous blocks");
                }
            }
            assert_eq!(seen, nodes);
        }
    }

    #[test]
    fn spsc_ring_roundtrips_and_spills() {
        let (mut p, mut c) = Channel::<u64>::pair(4);
        for i in 0..7u64 {
            p.push(Envelope { at: Nanos(i), src: 0, seq: i, msg: i });
        }
        assert_eq!(c.spilled(), 3, "capacity 4: three spills");
        let mut out = Vec::new();
        c.drain_into(&mut out);
        let mut got: Vec<u64> = out.iter().map(|e| e.msg).collect();
        got.sort_unstable();
        assert_eq!(got, (0..7).collect::<Vec<_>>());
        // Ring reusable after drain.
        p.push(Envelope { at: Nanos(9), src: 0, seq: 9, msg: 9 });
        out.clear();
        c.drain_into(&mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn mailbox_auto_sizes_after_a_spill() {
        let (mut p, mut c) = Channel::<u64>::pair(4);
        for i in 0..20u64 {
            p.push(Envelope { at: Nanos(i), src: 0, seq: i, msg: i });
        }
        let mut out = Vec::new();
        c.drain_into(&mut out);
        assert_eq!(out.len(), 20);
        assert_eq!(c.spilled(), 16);
        assert_eq!(c.high_water, 20);
        // Grown to twice the window's delivery, rounded up to a power of
        // two: (20 * 2) → 64.
        assert_eq!(c.capacity(), 64);
        // The same burst regime now stays on the lock-free ring.
        for i in 0..20u64 {
            p.push(Envelope { at: Nanos(i), src: 0, seq: i, msg: i });
        }
        out.clear();
        c.drain_into(&mut out);
        assert_eq!(out.len(), 20);
        assert_eq!(c.spilled(), 16, "no new spills after auto-sizing");
    }

    #[test]
    fn spsc_drop_releases_undrained_entries() {
        // Leak check is structural: Arc payloads would abort under Miri /
        // assert here if double-dropped; we at least exercise the path.
        let (mut p, c) = Channel::<std::sync::Arc<u8>>::pair(8);
        let payload = std::sync::Arc::new(7u8);
        for i in 0..5 {
            p.push(Envelope { at: Nanos(i), src: 0, seq: i, msg: std::sync::Arc::clone(&payload) });
        }
        drop(p);
        drop(c); // drops the channel with 5 parked envelopes
        assert_eq!(std::sync::Arc::strong_count(&payload), 1, "parked envelopes dropped");
    }

    /// A deterministic ping workload: every shard owns one node; node `i`
    /// forwards a counter to `(i + 1) % n` with exactly one window of
    /// delay, logging every event.
    struct Ring {
        node: u32,
        n: u32,
        window: Nanos,
        log: Vec<(u64, u64)>,
    }

    #[derive(Debug)]
    struct Token(u64);

    impl ShardEngine for Ring {
        type Ev = Token;
        type Msg = u64;

        fn on_event(
            &mut self,
            now: Nanos,
            ev: Token,
            _fx: &mut Effects<'_, Token>,
            out: &mut Outbox<u64>,
        ) {
            self.log.push((now.0, ev.0));
            if ev.0 < 40 {
                let dst = (self.node + 1) % self.n;
                out.send(dst as usize, now + self.window, self.node, ev.0 + 1);
            }
        }

        fn lift(&mut self, _at: Nanos, _src: u32, msg: u64) -> Token {
            Token(msg)
        }
    }

    fn run_ring(n: u32, execution: Execution) -> Vec<Vec<(u64, u64)>> {
        let window = Nanos(1_000);
        let engines: Vec<Ring> = (0..n)
            .map(|node| Ring { node, n, window, log: Vec::new() })
            .collect();
        let cfg = ShardConfig::new(n as usize, window).execution(execution);
        let run = run_sharded(
            &cfg,
            engines,
            |s, h| {
                if s == 0 {
                    h.schedule_at(Nanos(0), Token(0));
                }
            },
            Nanos(60_000),
        );
        assert!(run.events > 0);
        run.engines.into_iter().map(|e| e.log).collect()
    }

    #[test]
    fn ring_token_crosses_shards_on_window_boundaries() {
        let logs = run_ring(3, Execution::Sequential);
        // Token v fires at time v * window on node v % 3.
        for (node, log) in logs.iter().enumerate() {
            for &(t, v) in log {
                assert_eq!(v % 3, node as u64);
                assert_eq!(t, v * 1_000);
            }
        }
        let total: usize = logs.iter().map(Vec::len).sum();
        assert_eq!(total, 41);
    }

    #[test]
    fn threads_and_sequential_agree() {
        for n in [1, 2, 4] {
            assert_eq!(
                run_ring(n, Execution::Threads),
                run_ring(n, Execution::Sequential),
                "{n} shards"
            );
        }
    }

    #[test]
    fn striding_halves_barriers_without_changing_results() {
        // Forward delay 2 windows: both stride 1 and stride 2 honor the
        // lookahead contract, and the results must be identical — a
        // strided run IS a run at the effective window width.
        let window = Nanos(1_000);
        let delay = Nanos(2_000);
        let engines = |n: u32| -> Vec<Ring> {
            (0..n).map(|node| Ring { node, n, window: delay, log: Vec::new() }).collect()
        };
        let init = |s: usize, h: &mut Harness<Token>| {
            if s == 0 {
                h.schedule_at(Nanos(0), Token(0));
            }
        };
        let deadline = Nanos(100_000);
        let base = ShardConfig::new(3, window).execution(Execution::Sequential);
        let plain = run_sharded(&base, engines(3), init, deadline);
        let strided = run_sharded(&base.stride(2), engines(3), init, deadline);
        let logs = |r: &ShardRun<Ring>| -> Vec<Vec<(u64, u64)>> {
            r.engines.iter().map(|e| e.log.clone()).collect()
        };
        assert_eq!(logs(&plain), logs(&strided), "striding changed results");
        assert_eq!(plain.windows, 101);
        assert_eq!(strided.windows, 51, "stride 2 halves the barrier count");
        // Identical to natively running at the doubled window width.
        let wide = run_sharded(
            &ShardConfig::new(3, Nanos(2_000)).execution(Execution::Sequential),
            engines(3),
            init,
            deadline,
        );
        assert_eq!(logs(&wide), logs(&strided));
        assert_eq!(wide.windows, strided.windows);
    }

    #[test]
    fn per_channel_stats_attribute_traffic() {
        // The 3-shard ring forwards node s → s+1 only: every (s, s+1)
        // channel sees traffic, every other channel stays silent.
        let window = Nanos(1_000);
        let engines: Vec<Ring> =
            (0..3).map(|node| Ring { node, n: 3, window, log: Vec::new() }).collect();
        let run = run_sharded(
            &ShardConfig::new(3, window).execution(Execution::Sequential),
            engines,
            |s, h| {
                if s == 0 {
                    h.schedule_at(Nanos(0), Token(0));
                }
            },
            Nanos(60_000),
        );
        assert_eq!(run.channels.len(), 9, "one stats row per shard pair");
        for st in &run.channels {
            let active = st.dst_shard == (st.src_shard + 1) % 3;
            assert_eq!(st.high_water > 0, active, "{st:?}");
            assert_eq!(st.spilled, 0, "{st:?}");
            assert!(st.capacity >= 4096);
        }
        let delivered: u64 = run.channels.iter().map(|c| c.high_water).sum();
        assert!(delivered > 0);
    }

    #[test]
    fn merge_orders_by_time_then_src_then_seq() {
        /// Two source shards fire same-instant messages at a sink; the
        /// sink must observe them in (src, seq) order however the threads
        /// interleave.
        struct Src {
            shard: u32,
            window: Nanos,
        }
        struct Sink {
            log: Vec<(u32, u64)>,
        }
        enum Node {
            Src(Src),
            Sink(Sink),
        }
        impl ShardEngine for Node {
            type Ev = (u32, u64);
            type Msg = (u32, u64);
            fn on_event(
                &mut self,
                now: Nanos,
                ev: (u32, u64),
                _fx: &mut Effects<'_, (u32, u64)>,
                out: &mut Outbox<(u32, u64)>,
            ) {
                match self {
                    Node::Src(s) => {
                        // Both sources target the same arrival instant.
                        for k in 0..3 {
                            out.send(2, now + s.window, s.shard, (s.shard, k));
                        }
                    }
                    Node::Sink(s) => {
                        let _ = now;
                        s.log.push(ev);
                    }
                }
            }
            fn lift(&mut self, _at: Nanos, _src: u32, msg: (u32, u64)) -> (u32, u64) {
                msg
            }
        }
        let window = Nanos(500);
        let engines = vec![
            Node::Src(Src { shard: 0, window }),
            Node::Src(Src { shard: 1, window }),
            Node::Sink(Sink { log: Vec::new() }),
        ];
        let run = run_sharded(
            &ShardConfig::new(3, window),
            engines,
            |s, h| {
                if s < 2 {
                    h.schedule_at(Nanos(0), (s as u32, 0));
                }
            },
            Nanos(2_000),
        );
        let Node::Sink(sink) = &run.engines[2] else {
            panic!("sink is shard 2")
        };
        assert_eq!(
            sink.log,
            vec![(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)],
            "same-instant merge must order by (src, seq)"
        );
    }

    #[test]
    #[should_panic(expected = "every shard must own at least one node")]
    fn partition_rejects_more_shards_than_nodes() {
        let _ = Partition::new(2, 3);
    }

    #[test]
    fn shard_panic_poisons_the_barrier_instead_of_hanging() {
        /// Shard 1 panics on its first event; shard 0 keeps forwarding
        /// tokens and would otherwise spin at the window barrier forever.
        struct Bomb {
            shard: u32,
            window: Nanos,
        }
        impl ShardEngine for Bomb {
            type Ev = u64;
            type Msg = u64;
            fn on_event(
                &mut self,
                now: Nanos,
                ev: u64,
                _fx: &mut Effects<'_, u64>,
                out: &mut Outbox<u64>,
            ) {
                assert!(self.shard != 1, "bomb shard detonated");
                out.send(1, now + self.window, self.shard, ev + 1);
            }
            fn lift(&mut self, _at: Nanos, _src: u32, msg: u64) -> u64 {
                msg
            }
        }
        let window = Nanos(1_000);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let engines = vec![Bomb { shard: 0, window }, Bomb { shard: 1, window }];
            run_sharded(
                &ShardConfig::new(2, window),
                engines,
                |s, h| {
                    if s == 0 {
                        h.schedule_at(Nanos(0), 0u64);
                    }
                },
                Nanos(1_000_000), // 1000 windows: a hang here would time out
            )
        }));
        assert!(result.is_err(), "the shard panic must propagate, not hang");
    }
}
