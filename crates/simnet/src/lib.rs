//! # palladium-simnet — deterministic discrete-event simulation kernel
//!
//! The Palladium paper evaluates on hardware this repository cannot assume
//! (Bluefield-2 DPUs, ConnectX-6 RNICs, a 200 Gbps switched fabric). Every
//! experiment is therefore reproduced on a *deterministic discrete-event
//! simulation*: substrate crates implement the real protocol and data-path
//! logic as passive state machines, and this crate provides the clock, the
//! event queue, the queueing primitives and the measurement machinery that
//! drive them.
//!
//! Design notes (following the smoltcp/tokio guides this workspace builds
//! against):
//!
//! * **Passive state machines, explicit polling.** Nothing in this kernel
//!   spawns threads or hides control flow; drivers pop events and poke
//!   components, which return [`Timed`] effects.
//! * **Determinism.** Ties in the event queue break by insertion order and
//!   all randomness flows from a seeded [`SimRng`]; identical configurations
//!   produce identical traces, which the test suite asserts.
//! * **Queueing first.** Every latency/throughput curve in the paper is a
//!   queueing phenomenon; [`FifoServer`]/[`ServerBank`] model each core, DMA
//!   engine and NIC port so saturation emerges instead of being scripted.

pub mod arena;
pub mod chaos;
pub mod fault;
pub mod harness;
pub mod openloop;
pub mod queue;
pub mod rate;
pub mod rng;
pub mod server;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod table;
pub mod time;

pub use arena::{Arena, ArenaSlot};
pub use chaos::{
    CompiledScenario, HealthMonitor, ScenarioOp, ScenarioScript, StragglerWindow, Suspicion,
    WorkerState,
};
pub use fault::{FaultPlan, FaultTimeline, Verdict};
pub use harness::{Effects, Engine, Harness, LoadReport, RunStats};
pub use openloop::{tenant_stream, Arrival, ArrivalProcess, OpenLoop, OpenLoopConfig, ZipfSampler};
pub use queue::{
    adaptive_threshold, queue_kind, set_adaptive_threshold, set_queue_kind, EventId, EventQueue,
    QueueKind, ADAPTIVE_THRESHOLD,
};
pub use shard::{
    run_sharded, ChannelStats, Envelope, Execution, Outbox, Partition, ShardConfig, ShardEngine,
    ShardRun,
};
pub use table::{IdTable, PageTable, Slab};
pub use rate::TokenBucket;
pub use rng::SimRng;
pub use server::{FifoServer, ServerBank};
pub use sim::{Sim, Timed};
pub use stats::{Counters, Histogram, Samples, UtilizationBins, WindowedRate};
pub use time::{cycles_time, wire_time, ByteCost, Nanos};
