//! Open-loop traffic generation: arrival processes over a Zipf population.
//!
//! Every driver before this module was closed-loop — each client issues its
//! next request only when the previous one completes — so the cluster could
//! never be *overloaded*: offered load self-throttles to whatever the system
//! can serve. The paper's multi-tenant claims only bite when load arrives
//! whether or not the system keeps up. [`OpenLoop`] decouples arrivals from
//! completions: an [`ArrivalProcess`] fixes the instantaneous offered rate,
//! requests target a [`ZipfSampler`]-skewed function population, and the
//! driver must shed, queue or scale — overload becomes a measured regime
//! instead of an impossibility.
//!
//! Determinism discipline: arrival `i` draws *everything* it needs
//! (interarrival gap, population rank) from the stateless named stream
//! `SimRng::stream(seed, ARRIVAL_STREAM ^ i)`. No generator state beyond the
//! running clock and sequence number exists, so the first `k` arrivals are
//! byte-identical no matter how the consuming simulation is partitioned
//! (1/2/4/8 shards) or executed (sequential/threads) — the same invariance
//! contract the per-node fault streams obey.

use crate::rng::SimRng;
use crate::time::Nanos;

/// Stream-id salt for per-arrival draws (`stream = ARRIVAL_STREAM ^ seq`).
const ARRIVAL_STREAM: u64 = 0x6F70_656E_6C6F_6F70; // "openloop"

/// Floor on the instantaneous rate so interarrival means stay finite.
const MIN_RPS: f64 = 1.0;

/// A time-varying offered-load profile, in requests per second.
///
/// All four shapes are *open*: the rate is a pure function of simulated
/// time, never of completions.
#[derive(Debug, Clone, Copy)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at a constant rate.
    Poisson { rps: f64 },
    /// Square-wave bursts: `burst_rps` for the first `duty` fraction of each
    /// `period`, `base_rps` for the rest — the periodic-spike shape.
    Bursty {
        base_rps: f64,
        burst_rps: f64,
        period: Nanos,
        duty: f64,
    },
    /// Sinusoidal day/night swing between `min_rps` and `max_rps` with the
    /// given period, starting at the trough.
    Diurnal {
        min_rps: f64,
        max_rps: f64,
        period: Nanos,
    },
    /// A flash crowd: `base_rps` until `start`, linear ramp to `peak_rps`
    /// over `ramp`, hold at peak for `hold`, linear decay back to base over
    /// `decay`. The canonical autoscaler trigger.
    FlashCrowd {
        base_rps: f64,
        peak_rps: f64,
        start: Nanos,
        ramp: Nanos,
        hold: Nanos,
        decay: Nanos,
    },
}

impl ArrivalProcess {
    /// Instantaneous offered rate at `now`, in requests per second.
    pub fn rate_at(&self, now: Nanos) -> f64 {
        let rate = match *self {
            ArrivalProcess::Poisson { rps } => rps,
            ArrivalProcess::Bursty {
                base_rps,
                burst_rps,
                period,
                duty,
            } => {
                if period.is_zero() {
                    base_rps
                } else {
                    let phase = (now.as_nanos() % period.as_nanos()) as f64
                        / period.as_nanos() as f64;
                    if phase < duty {
                        burst_rps
                    } else {
                        base_rps
                    }
                }
            }
            ArrivalProcess::Diurnal {
                min_rps,
                max_rps,
                period,
            } => {
                if period.is_zero() {
                    min_rps
                } else {
                    let phase = (now.as_nanos() % period.as_nanos()) as f64
                        / period.as_nanos() as f64;
                    let swing = 0.5 * (1.0 - (std::f64::consts::TAU * phase).cos());
                    min_rps + (max_rps - min_rps) * swing
                }
            }
            ArrivalProcess::FlashCrowd {
                base_rps,
                peak_rps,
                start,
                ramp,
                hold,
                decay,
            } => {
                if now < start {
                    base_rps
                } else {
                    let t = now.as_nanos() - start.as_nanos();
                    let (r, h, d) = (ramp.as_nanos(), hold.as_nanos(), decay.as_nanos());
                    if t < r {
                        base_rps + (peak_rps - base_rps) * t as f64 / r as f64
                    } else if t < r + h {
                        peak_rps
                    } else if t < r + h + d {
                        let dt = t - r - h;
                        peak_rps - (peak_rps - base_rps) * dt as f64 / d as f64
                    } else {
                        base_rps
                    }
                }
            }
        };
        rate.max(MIN_RPS)
    }

    /// The window over which the profile deviates from its baseline —
    /// `[start, start+ramp+hold+decay]` for a flash crowd, the whole run
    /// (`None`) otherwise. Drivers use it to scope ramp-tail measurements.
    pub fn surge_window(&self) -> Option<(Nanos, Nanos)> {
        match *self {
            ArrivalProcess::FlashCrowd {
                start,
                ramp,
                hold,
                decay,
                ..
            } => {
                let end = start.as_nanos() + ramp.as_nanos() + hold.as_nanos() + decay.as_nanos();
                Some((start, Nanos(end)))
            }
            _ => None,
        }
    }
}

/// Inverse-CDF sampler over a Zipf(s) rank distribution on `n` ranks.
///
/// Rank `r` (0-based) carries weight `1/(r+1)^s`; the cumulative table is
/// precomputed once (the only allocation) and each sample is a
/// `partition_point` binary search — no per-draw heap traffic, which the
/// alloc gate depends on.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Build the cumulative table for `n` ranks with exponent `s`
    /// (`s = 0` is uniform; the serverless literature uses `s ≈ 1`).
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n > 0, "zipf population must be non-empty");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for r in 1..=n {
            acc += 1.0 / (r as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfSampler { cdf }
    }

    /// Population size.
    pub fn len(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// True when the population is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Map a uniform `u ∈ [0,1)` to a 0-based rank (rank 0 hottest).
    pub fn sample(&self, u: f64) -> u64 {
        let r = self.cdf.partition_point(|&c| c < u);
        (r as u64).min(self.len() - 1)
    }

    /// The probability mass of a 0-based rank.
    pub fn weight(&self, rank: u64) -> f64 {
        let i = rank as usize;
        let hi = self.cdf[i];
        let lo = if i == 0 { 0.0 } else { self.cdf[i - 1] };
        hi - lo
    }
}

/// Static description of an open-loop workload.
#[derive(Debug, Clone, Copy)]
pub struct OpenLoopConfig {
    /// The offered-rate profile.
    pub process: ArrivalProcess,
    /// Number of distinct function ids in the population (10k–100k in the
    /// overload scenarios; stresses the two-level `PageTable`).
    pub population: u64,
    /// Zipf skew exponent over that population.
    pub zipf_s: f64,
}

impl OpenLoopConfig {
    /// Constant-rate Poisson over a canonically skewed (s = 1) population.
    pub fn poisson(rps: f64, population: u64) -> Self {
        OpenLoopConfig {
            process: ArrivalProcess::Poisson { rps },
            population,
            zipf_s: 1.0,
        }
    }
}

/// One generated arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Absolute arrival time.
    pub at: Nanos,
    /// Arrival sequence number (0-based).
    pub seq: u64,
    /// Zipf-ranked function id in `[0, population)`; 0 is the hottest.
    pub fn_id: u64,
}

/// The open-loop arrival generator.
///
/// A non-homogeneous Poisson process by thinning-free rate stepping: the
/// gap after arrival `i` is exponential with mean `1/rate_at(t_i)` — exact
/// for piecewise-constant profiles and a standard fine-grained approximation
/// for the ramps, whose rates change negligibly within one interarrival gap
/// at the rates the overload scenarios run.
#[derive(Debug, Clone)]
pub struct OpenLoop {
    process: ArrivalProcess,
    zipf: ZipfSampler,
    seed: u64,
    seq: u64,
    clock: Nanos,
}

impl OpenLoop {
    /// Build a generator; `seed` scopes every stateless per-arrival stream.
    pub fn new(cfg: &OpenLoopConfig, seed: u64) -> Self {
        OpenLoop {
            process: cfg.process,
            zipf: ZipfSampler::new(cfg.population, cfg.zipf_s),
            seed,
            seq: 0,
            clock: Nanos::ZERO,
        }
    }

    /// The profile this generator is driving.
    pub fn process(&self) -> &ArrivalProcess {
        &self.process
    }

    /// Generate the next arrival. Draws come from the stateless stream for
    /// this sequence number, so the sequence of arrivals depends only on
    /// `(config, seed)` — not on sharding, execution mode, or who else
    /// holds `SimRng` streams. Gaps are clamped to ≥ 1 ns so simulated time
    /// always advances.
    pub fn next_arrival(&mut self) -> Arrival {
        let seq = self.seq;
        let mut rng = SimRng::stream(self.seed, ARRIVAL_STREAM ^ seq);
        let rate = self.process.rate_at(self.clock);
        let mean = Nanos::from_f64_saturating(1e9 / rate);
        let gap = rng.exponential(mean).max(Nanos(1));
        self.clock = Nanos(self.clock.as_nanos().saturating_add(gap.as_nanos()));
        let fn_id = self.zipf.sample(rng.unit());
        self.seq = seq + 1;
        Arrival {
            at: self.clock,
            seq,
            fn_id,
        }
    }
}

/// Stateless per-tenant stream: draw `draw` for tenant (function id)
/// `tenant` under `seed` is the same value no matter who asks, when, or on
/// which shard — the per-entity invariance primitive the retry-jitter and
/// arrival machinery build on.
pub fn tenant_stream(seed: u64, tenant: u64, draw: u64) -> SimRng {
    SimRng::stream(seed ^ 0x7465_6E61_6E74, tenant.wrapping_mul(1 << 20).wrapping_add(draw))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_is_flat() {
        let p = ArrivalProcess::Poisson { rps: 50_000.0 };
        assert_eq!(p.rate_at(Nanos::ZERO), 50_000.0);
        assert_eq!(p.rate_at(Nanos::from_millis(100)), 50_000.0);
    }

    #[test]
    fn flash_crowd_ramps_and_decays() {
        let p = ArrivalProcess::FlashCrowd {
            base_rps: 10_000.0,
            peak_rps: 90_000.0,
            start: Nanos::from_millis(10),
            ramp: Nanos::from_millis(4),
            hold: Nanos::from_millis(6),
            decay: Nanos::from_millis(4),
        };
        assert_eq!(p.rate_at(Nanos::from_millis(5)), 10_000.0);
        let mid = p.rate_at(Nanos::from_millis(12));
        assert!((mid - 50_000.0).abs() < 1.0, "{mid}");
        assert_eq!(p.rate_at(Nanos::from_millis(16)), 90_000.0);
        let dec = p.rate_at(Nanos::from_millis(22));
        assert!((dec - 50_000.0).abs() < 1.0, "{dec}");
        assert_eq!(p.rate_at(Nanos::from_millis(30)), 10_000.0);
        let (lo, hi) = p.surge_window().unwrap();
        assert_eq!(lo, Nanos::from_millis(10));
        assert_eq!(hi, Nanos::from_millis(24));
    }

    #[test]
    fn bursty_duty_cycle() {
        let p = ArrivalProcess::Bursty {
            base_rps: 1_000.0,
            burst_rps: 80_000.0,
            period: Nanos::from_millis(10),
            duty: 0.2,
        };
        assert_eq!(p.rate_at(Nanos::from_millis(1)), 80_000.0);
        assert_eq!(p.rate_at(Nanos::from_millis(5)), 1_000.0);
        assert_eq!(p.rate_at(Nanos::from_millis(11)), 80_000.0);
    }

    #[test]
    fn diurnal_swings_between_bounds() {
        let p = ArrivalProcess::Diurnal {
            min_rps: 5_000.0,
            max_rps: 45_000.0,
            period: Nanos::from_millis(20),
        };
        assert!((p.rate_at(Nanos::ZERO) - 5_000.0).abs() < 1.0);
        assert!((p.rate_at(Nanos::from_millis(10)) - 45_000.0).abs() < 1.0);
        for t in 0..40 {
            let r = p.rate_at(Nanos::from_millis(t));
            assert!((5_000.0..=45_000.0).contains(&r), "{r}");
        }
    }

    #[test]
    fn zipf_is_a_distribution_and_skewed() {
        let z = ZipfSampler::new(10_000, 1.0);
        let total: f64 = (0..z.len()).map(|r| z.weight(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(z.weight(0) > 100.0 * z.weight(9_999));
        // Inverse CDF hits the extremes.
        assert_eq!(z.sample(0.0), 0);
        assert_eq!(z.sample(0.999_999_999), z.len() - 1);
    }

    #[test]
    fn arrivals_are_stateless_in_sequence() {
        let cfg = OpenLoopConfig::poisson(40_000.0, 10_000);
        let mut a = OpenLoop::new(&cfg, 42);
        let mut b = OpenLoop::new(&cfg, 42);
        // Interleave unrelated stream constructions; `a`'s draws must not move.
        for _ in 0..256 {
            let _noise = SimRng::stream(42, 0xDEAD);
            assert_eq!(a.next_arrival(), b.next_arrival());
        }
        let mut c = OpenLoop::new(&cfg, 43);
        assert_ne!(a.next_arrival().at, {
            for _ in 0..256 {
                c.next_arrival();
            }
            c.next_arrival().at
        });
    }

    #[test]
    fn arrival_clock_is_monotone() {
        let cfg = OpenLoopConfig::poisson(1_000_000.0, 100);
        let mut g = OpenLoop::new(&cfg, 7);
        let mut last = Nanos::ZERO;
        for _ in 0..10_000 {
            let a = g.next_arrival();
            assert!(a.at > last);
            last = a.at;
        }
    }

    #[test]
    fn tenant_streams_are_stateless() {
        let mut a = tenant_stream(42, 17, 3);
        let _noise = tenant_stream(42, 18, 3);
        let mut b = tenant_stream(42, 17, 3);
        for _ in 0..64 {
            assert_eq!(a.range(0, 1 << 30), b.range(0, 1 << 30));
        }
    }
}
