//! Measurement machinery: counters, latency samples, windowed time series
//! and utilization bins — everything the figure harnesses print.

use crate::time::Nanos;

/// A latency (or any scalar) sample set with mean / percentile queries.
///
/// Samples are stored raw; the experiment scales here are small enough
/// (≤ a few million samples) that exact percentiles beat sketch error bars.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<u64>,
    sorted: bool,
}

impl Samples {
    /// An empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: Nanos) {
        self.values.push(v.as_nanos());
        self.sorted = false;
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or zero when empty.
    pub fn mean(&self) -> Nanos {
        if self.values.is_empty() {
            return Nanos::ZERO;
        }
        let sum: u128 = self.values.iter().map(|&v| v as u128).sum();
        Nanos((sum / self.values.len() as u128) as u64)
    }

    /// Exact percentile (0.0 ..= 100.0) by nearest-rank, or zero when empty.
    pub fn percentile(&mut self, p: f64) -> Nanos {
        if self.values.is_empty() {
            return Nanos::ZERO;
        }
        if !self.sorted {
            self.values.sort_unstable();
            self.sorted = true;
        }
        let rank = ((p / 100.0) * (self.values.len() as f64 - 1.0)).round() as usize;
        Nanos(self.values[rank.min(self.values.len() - 1)])
    }

    /// Median.
    pub fn p50(&mut self) -> Nanos {
        self.percentile(50.0)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> Nanos {
        self.percentile(99.0)
    }

    /// Largest sample.
    pub fn max(&self) -> Nanos {
        Nanos(self.values.iter().copied().max().unwrap_or(0))
    }

    /// Smallest sample.
    pub fn min(&self) -> Nanos {
        Nanos(self.values.iter().copied().min().unwrap_or(0))
    }

    /// Absorb another sample set. Percentiles re-sort on the next query
    /// and the mean is an integer fold, so the merged statistics are
    /// independent of merge order — the sharded runner relies on this to
    /// produce identical reports for every shard count.
    pub fn merge(&mut self, mut other: Samples) {
        self.values.append(&mut other.values);
        self.sorted = false;
    }

    /// Discard all samples (end of warm-up).
    pub fn clear(&mut self) {
        self.values.clear();
        self.sorted = false;
    }
}

/// Number of sub-buckets per power-of-two range: 2^5 = 32 sub-buckets,
/// giving a relative error of at most `1/32 ≈ 3.125%` on every query.
const SUB_BITS: u32 = 5;
const SUB_BUCKETS: usize = 1 << SUB_BITS;
/// Values below `2^(SUB_BITS + 1)` get one exact bucket each.
const EXACT_LIMIT: u64 = (SUB_BUCKETS as u64) * 2;
/// Power-of-two ranges above the exact region: msb in `6 ..= 63`.
const RANGES: usize = 64 - (SUB_BITS as usize + 1);
const BUCKETS: usize = EXACT_LIMIT as usize + RANGES * SUB_BUCKETS;

/// A streaming log-bucketed latency histogram (HDR-style) with bounded
/// memory: ~15 KiB of counts regardless of sample count, preallocated at
/// construction so the steady state is allocation-free.
///
/// Layout: values `0..64` land in one exact bucket each; a value with
/// most-significant bit `m ≥ 6` lands in one of 32 sub-buckets of the
/// range `[2^m, 2^(m+1))`, so every query is exact below 64 ns and within
/// `2^-5 = 3.125%` relative error above. Percentiles use the same
/// nearest-rank rule as [`Samples::percentile`] and report the bucket's
/// lower edge, which keeps the bound one-sided (never over-reports).
///
/// [`Histogram::merge`] adds counts element-wise, so merged tails are
/// exactly independent of merge order and split — the sharded runner
/// relies on this to report identical p99/p99.9 at every shard count.
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64; BUCKETS]>,
    total: u64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("total", &self.total)
            .finish_non_exhaustive()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram with all buckets preallocated.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0u64; BUCKETS].into_boxed_slice().try_into().unwrap(),
            total: 0,
        }
    }

    /// The documented worst-case relative error of any percentile query.
    pub const RELATIVE_ERROR: f64 = 1.0 / SUB_BUCKETS as f64;

    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v < EXACT_LIMIT {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros();
            let shift = msb - SUB_BITS;
            let range = (msb - (SUB_BITS + 1)) as usize;
            EXACT_LIMIT as usize
                + range * SUB_BUCKETS
                + ((v >> shift) as usize - SUB_BUCKETS)
        }
    }

    /// Lower edge of bucket `b` — the value a percentile query reports.
    #[inline]
    fn bucket_floor(b: usize) -> u64 {
        if b < EXACT_LIMIT as usize {
            b as u64
        } else {
            let rel = b - EXACT_LIMIT as usize;
            let range = rel / SUB_BUCKETS;
            let sub = rel % SUB_BUCKETS;
            let msb = range as u32 + SUB_BITS + 1;
            ((SUB_BUCKETS + sub) as u64) << (msb - SUB_BITS)
        }
    }

    /// Record one sample. Allocation-free.
    #[inline]
    pub fn record(&mut self, v: Nanos) {
        self.counts[Self::bucket_of(v.as_nanos())] += 1;
        self.total += 1;
    }

    /// Number of recorded samples.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Percentile (0.0 ..= 100.0) by nearest-rank over buckets, reporting
    /// the containing bucket's lower edge; zero when empty.
    pub fn percentile(&self, p: f64) -> Nanos {
        if self.total == 0 {
            return Nanos::ZERO;
        }
        let rank = ((p / 100.0) * (self.total as f64 - 1.0)).round() as u64;
        let rank = rank.min(self.total - 1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen > rank {
                return Nanos(Self::bucket_floor(b));
            }
        }
        Nanos(Self::bucket_floor(BUCKETS - 1))
    }

    /// Median.
    pub fn p50(&self) -> Nanos {
        self.percentile(50.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> Nanos {
        self.percentile(99.0)
    }

    /// 99.9th percentile.
    pub fn p999(&self) -> Nanos {
        self.percentile(99.9)
    }

    /// Absorb another histogram. Element-wise, so exactly order- and
    /// split-invariant.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Reset all buckets without releasing memory (end of warm-up).
    pub fn clear(&mut self) {
        self.counts.fill(0);
        self.total = 0;
    }
}

/// Counts events in fixed windows of virtual time — the raw material for the
/// paper's time-series plots (Figs 14 & 15) and for RPS reporting.
#[derive(Debug, Clone)]
pub struct WindowedRate {
    window: Nanos,
    /// Completed windows, as event counts.
    bins: Vec<u64>,
    /// Events recorded before `start` are ignored (warm-up).
    start: Nanos,
}

impl WindowedRate {
    /// A rate tracker with the given window size, starting at `start`.
    pub fn new(window: Nanos, start: Nanos) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        WindowedRate {
            window,
            bins: Vec::new(),
            start,
        }
    }

    /// Record one event at time `t` (ignored if before `start`).
    pub fn record(&mut self, t: Nanos) {
        self.record_n(t, 1);
    }

    /// Record `n` events at time `t`.
    pub fn record_n(&mut self, t: Nanos, n: u64) {
        if t < self.start {
            return;
        }
        let bin = ((t - self.start).as_nanos() / self.window.as_nanos()) as usize;
        if self.bins.len() <= bin {
            self.bins.resize(bin + 1, 0);
        }
        self.bins[bin] += n;
    }

    /// Events per second in each completed window, as `(window_end, rate)`
    /// pairs. `horizon` truncates trailing empty windows.
    pub fn series(&self, horizon: Nanos) -> Vec<(Nanos, f64)> {
        let secs = self.window.as_secs_f64();
        let n_windows = if horizon <= self.start {
            0
        } else {
            ((horizon - self.start).as_nanos() / self.window.as_nanos()) as usize
        };
        (0..n_windows)
            .map(|i| {
                let end = self.start + self.window * (i as u64 + 1);
                let count = self.bins.get(i).copied().unwrap_or(0);
                (end, count as f64 / secs)
            })
            .collect()
    }

    /// Total events recorded (after `start`).
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }

    /// Mean rate (events/sec) over `[start, horizon]`.
    pub fn mean_rate(&self, horizon: Nanos) -> f64 {
        if horizon <= self.start {
            return 0.0;
        }
        let span = (horizon - self.start).as_secs_f64();
        if span <= 0.0 {
            0.0
        } else {
            self.total() as f64 / span
        }
    }
}

/// Bins busy time of a resource into fixed windows, for utilization
/// time-series plots (Fig 14 (1): "# CPU cores" over time).
#[derive(Debug, Clone)]
pub struct UtilizationBins {
    window: Nanos,
    bins: Vec<Nanos>,
}

impl UtilizationBins {
    /// A tracker with the given window size.
    pub fn new(window: Nanos) -> Self {
        assert!(!window.is_zero(), "window must be positive");
        UtilizationBins {
            window,
            bins: Vec::new(),
        }
    }

    /// Record that a resource was busy over `[from, to)`, splitting the
    /// interval across window bins.
    pub fn record_busy(&mut self, from: Nanos, to: Nanos) {
        if to <= from {
            return;
        }
        let w = self.window.as_nanos();
        let mut cur = from.as_nanos();
        let end = to.as_nanos();
        while cur < end {
            let bin = (cur / w) as usize;
            let bin_end = (bin as u64 + 1) * w;
            let chunk = end.min(bin_end) - cur;
            if self.bins.len() <= bin {
                self.bins.resize(bin + 1, Nanos::ZERO);
            }
            self.bins[bin] += Nanos(chunk);
            cur += chunk;
        }
    }

    /// Busy fraction per window as `(window_end, fraction)`; values can
    /// exceed 1.0 when several resources feed one tracker (i.e. "cores
    /// used").
    pub fn series(&self, horizon: Nanos) -> Vec<(Nanos, f64)> {
        let w = self.window.as_nanos();
        let n_windows = (horizon.as_nanos() / w) as usize;
        (0..n_windows)
            .map(|i| {
                let end = Nanos((i as u64 + 1) * w);
                let busy = self.bins.get(i).copied().unwrap_or(Nanos::ZERO);
                (end, busy.as_nanos() as f64 / w as f64)
            })
            .collect()
    }
}

/// A monotonically increasing named counter set, used for copy accounting
/// and protocol statistics.
///
/// Counters fire several times per simulated frame, so keys are `'static`
/// literals compared by pointer+length first — the common case (the same
/// literal from the same call site) resolves without touching the bytes.
#[derive(Debug, Clone, Default)]
pub struct Counters {
    entries: Vec<(&'static str, u64)>,
}

/// Fast path: the same string literal is deduplicated by the compiler, so
/// a pointer/length match almost always decides; fall back to a byte
/// compare for distinct-but-equal literals across crates.
#[inline]
fn key_eq(a: &'static str, b: &str) -> bool {
    std::ptr::eq(a.as_ptr(), b.as_ptr()) && a.len() == b.len() || a == b
}

impl Counters {
    /// Empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &'static str, n: u64) {
        if let Some(e) = self.entries.iter_mut().find(|(k, _)| key_eq(k, name)) {
            e.1 += n;
        } else {
            self.entries.push((name, n));
        }
    }

    /// Increment counter `name` by one.
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Current value of `name` (zero if never touched).
    pub fn get(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .find(|(k, _)| key_eq(k, name))
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Iterate over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_mean_and_percentiles() {
        let mut s = Samples::new();
        for v in [10, 20, 30, 40, 50] {
            s.record(Nanos(v));
        }
        assert_eq!(s.mean(), Nanos(30));
        assert_eq!(s.p50(), Nanos(30));
        assert_eq!(s.percentile(0.0), Nanos(10));
        assert_eq!(s.percentile(100.0), Nanos(50));
        assert_eq!(s.min(), Nanos(10));
        assert_eq!(s.max(), Nanos(50));
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn samples_empty_is_zero() {
        let mut s = Samples::new();
        assert_eq!(s.mean(), Nanos::ZERO);
        assert_eq!(s.p99(), Nanos::ZERO);
        assert!(s.is_empty());
    }

    #[test]
    fn samples_clear_resets() {
        let mut s = Samples::new();
        s.record(Nanos(5));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn windowed_rate_bins_and_series() {
        let mut r = WindowedRate::new(Nanos::from_secs(1), Nanos::ZERO);
        for i in 0..10 {
            r.record(Nanos::from_millis(i * 100)); // all within first second
        }
        r.record(Nanos::from_millis(1_500)); // second window
        let series = r.series(Nanos::from_secs(2));
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].1, 10.0);
        assert_eq!(series[1].1, 1.0);
        assert_eq!(r.total(), 11);
        assert!((r.mean_rate(Nanos::from_secs(2)) - 5.5).abs() < 1e-9);
    }

    #[test]
    fn windowed_rate_ignores_warmup() {
        let mut r = WindowedRate::new(Nanos::from_secs(1), Nanos::from_secs(1));
        r.record(Nanos::from_millis(500)); // warm-up, dropped
        r.record(Nanos::from_millis(1_500));
        assert_eq!(r.total(), 1);
    }

    #[test]
    fn utilization_bins_split_across_windows() {
        let mut u = UtilizationBins::new(Nanos(100));
        u.record_busy(Nanos(50), Nanos(250)); // 50 in w0, 100 in w1, 50 in w2
        let s = u.series(Nanos(300));
        assert_eq!(s.len(), 3);
        assert!((s[0].1 - 0.5).abs() < 1e-9);
        assert!((s[1].1 - 1.0).abs() < 1e-9);
        assert!((s[2].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn utilization_bins_ignore_empty_interval() {
        let mut u = UtilizationBins::new(Nanos(100));
        u.record_busy(Nanos(50), Nanos(50));
        assert!(u.series(Nanos(100)).iter().all(|&(_, f)| f == 0.0));
    }

    #[test]
    fn histogram_exact_below_limit() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 7, 63] {
            h.record(Nanos(v));
        }
        assert_eq!(h.len(), 4);
        assert_eq!(h.percentile(0.0), Nanos(0));
        assert_eq!(h.percentile(100.0), Nanos(63));
        // Nearest-rank over 4 samples: rank round(0.5 * 3) = 2 → third value.
        assert_eq!(h.p50(), Nanos(7));
    }

    #[test]
    fn histogram_bucket_roundtrip_error_bound() {
        // Every bucket floor maps back to its own bucket, floors are
        // monotone, and any value's reported floor is within the
        // documented relative error below it.
        let mut prev = None;
        for b in 0..BUCKETS {
            let floor = Histogram::bucket_floor(b);
            assert_eq!(Histogram::bucket_of(floor), b, "bucket {b}");
            if let Some(p) = prev {
                assert!(floor > p, "floors must be strictly increasing");
            }
            prev = Some(floor);
        }
        for &v in &[64u64, 100, 1_000, 12_345, 1 << 20, u64::MAX / 3, u64::MAX] {
            let floor = Histogram::bucket_floor(Histogram::bucket_of(v));
            assert!(floor <= v);
            let err = (v - floor) as f64 / v as f64;
            assert!(err < Histogram::RELATIVE_ERROR + 1e-12, "v={v} err={err}");
        }
    }

    #[test]
    fn histogram_merge_is_elementwise() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..1_000u64 {
            if v % 2 == 0 {
                a.record(Nanos(v * 17));
            } else {
                b.record(Nanos(v * 17));
            }
        }
        let mut whole = Histogram::new();
        for v in 0..1_000u64 {
            whole.record(Nanos(v * 17));
        }
        a.merge(&b);
        assert_eq!(a.len(), whole.len());
        for p in [0.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(a.percentile(p), whole.percentile(p), "p={p}");
        }
    }

    #[test]
    fn histogram_empty_and_clear() {
        let mut h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p99(), Nanos::ZERO);
        h.record(Nanos(123));
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.len(), 0);
    }

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.inc("sw_copy");
        c.add("sw_copy", 4);
        c.add("dma", 2);
        assert_eq!(c.get("sw_copy"), 5);
        assert_eq!(c.get("dma"), 2);
        assert_eq!(c.get("missing"), 0);
        let all: Vec<_> = c.iter().collect();
        assert_eq!(all, vec![("sw_copy", 5), ("dma", 2)]);
    }
}
