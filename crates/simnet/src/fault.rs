//! Fault injection for the simulated fabric and devices.
//!
//! Mirrors the knobs smoltcp exposes for its examples (`--drop-chance`,
//! `--corrupt-chance`, rate limits): the reproduction's RC transport must
//! keep delivering exactly-once, in-order under any of these faults, and the
//! integration tests exercise exactly that.

use crate::rng::SimRng;
use crate::time::Nanos;

/// What the fault injector decided to do with one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver untouched.
    Pass,
    /// Silently drop.
    Drop,
    /// Deliver but flip bits (the receiver's integrity check must catch it).
    Corrupt,
}

/// A declarative fault plan applied to a link or device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a packet is dropped, `0.0 ..= 1.0`.
    pub drop_chance: f64,
    /// Probability a surviving packet is corrupted.
    pub corrupt_chance: f64,
    /// Additional uniformly distributed delay applied per packet, `0` to
    /// `max_extra_delay` — models cross-traffic induced queueing.
    pub max_extra_delay: Nanos,
    /// Faults apply only after this instant (lets tests warm up cleanly).
    pub active_after: Nanos,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

impl FaultPlan {
    /// The fault-free plan.
    pub const NONE: FaultPlan = FaultPlan {
        drop_chance: 0.0,
        corrupt_chance: 0.0,
        max_extra_delay: Nanos::ZERO,
        active_after: Nanos::ZERO,
    };

    /// A plan that only drops packets.
    pub fn dropping(p: f64) -> Self {
        FaultPlan {
            drop_chance: p,
            ..FaultPlan::NONE
        }
    }

    /// A plan that only corrupts packets.
    pub fn corrupting(p: f64) -> Self {
        FaultPlan {
            corrupt_chance: p,
            ..FaultPlan::NONE
        }
    }

    /// True when this plan can never touch a packet.
    pub fn is_none(&self) -> bool {
        self.drop_chance <= 0.0
            && self.corrupt_chance <= 0.0
            && self.max_extra_delay.is_zero()
    }

    /// Decide the fate of one packet at time `now`.
    pub fn judge(&self, now: Nanos, rng: &mut SimRng) -> Verdict {
        if now < self.active_after || self.is_none() {
            return Verdict::Pass;
        }
        if rng.chance(self.drop_chance) {
            return Verdict::Drop;
        }
        if rng.chance(self.corrupt_chance) {
            return Verdict::Corrupt;
        }
        Verdict::Pass
    }

    /// Extra queueing delay for one (surviving) packet.
    pub fn extra_delay(&self, now: Nanos, rng: &mut SimRng) -> Nanos {
        if now < self.active_after || self.max_extra_delay.is_zero() {
            return Nanos::ZERO;
        }
        Nanos(rng.range(0, self.max_extra_delay.as_nanos() + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_always_passes() {
        let mut rng = SimRng::seed_from(1);
        let plan = FaultPlan::NONE;
        for _ in 0..100 {
            assert_eq!(plan.judge(Nanos(0), &mut rng), Verdict::Pass);
        }
        assert!(plan.is_none());
    }

    #[test]
    fn drop_rate_is_calibrated() {
        let mut rng = SimRng::seed_from(2);
        let plan = FaultPlan::dropping(0.15);
        let drops = (0..10_000)
            .filter(|_| plan.judge(Nanos(0), &mut rng) == Verdict::Drop)
            .count();
        assert!((1_300..1_700).contains(&drops), "got {drops}");
    }

    #[test]
    fn corrupt_applies_to_survivors() {
        let mut rng = SimRng::seed_from(3);
        let plan = FaultPlan {
            drop_chance: 0.5,
            corrupt_chance: 1.0,
            ..FaultPlan::NONE
        };
        for _ in 0..100 {
            let v = plan.judge(Nanos(0), &mut rng);
            assert!(v == Verdict::Drop || v == Verdict::Corrupt);
        }
    }

    #[test]
    fn inactive_before_activation_time() {
        let mut rng = SimRng::seed_from(4);
        let plan = FaultPlan {
            drop_chance: 1.0,
            active_after: Nanos(1_000),
            ..FaultPlan::NONE
        };
        assert_eq!(plan.judge(Nanos(999), &mut rng), Verdict::Pass);
        assert_eq!(plan.judge(Nanos(1_000), &mut rng), Verdict::Drop);
    }

    #[test]
    fn extra_delay_bounded() {
        let mut rng = SimRng::seed_from(5);
        let plan = FaultPlan {
            max_extra_delay: Nanos(500),
            ..FaultPlan::NONE
        };
        for _ in 0..1_000 {
            assert!(plan.extra_delay(Nanos(0), &mut rng) <= Nanos(500));
        }
        assert_eq!(FaultPlan::NONE.extra_delay(Nanos(0), &mut rng), Nanos::ZERO);
    }
}
