//! Fault injection for the simulated fabric and devices.
//!
//! Mirrors the knobs smoltcp exposes for its examples (`--drop-chance`,
//! `--corrupt-chance`, rate limits): the reproduction's RC transport must
//! keep delivering exactly-once, in-order under any of these faults, and the
//! integration tests exercise exactly that.
//!
//! A [`FaultPlan`] is one bounded window of misbehavior
//! (`active_after ..= active_until`); a [`FaultTimeline`] composes several
//! plans into a schedule — link flaps and burst-loss storms are just
//! sequences of bounded windows (`simnet::chaos` builds them from scenario
//! scripts).

use crate::rng::SimRng;
use crate::time::Nanos;

/// What the fault injector decided to do with one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Deliver untouched.
    Pass,
    /// Silently drop.
    Drop,
    /// Deliver but flip bits (the receiver's integrity check must catch it).
    Corrupt,
}

/// A declarative fault plan applied to a link or device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a packet is dropped, `0.0 ..= 1.0`.
    pub drop_chance: f64,
    /// Probability a surviving packet is corrupted.
    pub corrupt_chance: f64,
    /// Additional uniformly distributed delay applied per packet, `0` to
    /// `max_extra_delay` — models cross-traffic induced queueing.
    pub max_extra_delay: Nanos,
    /// Faults apply only after this instant (lets tests warm up cleanly).
    pub active_after: Nanos,
    /// Faults apply only *before* this instant — a bounded fault window.
    /// [`Nanos::MAX`] (the default) means "forever", preserving the
    /// original open-ended semantics; link flaps and burst storms set a
    /// finite bound and compose windows via [`FaultTimeline`].
    pub active_until: Nanos,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

impl FaultPlan {
    /// The fault-free plan.
    pub const NONE: FaultPlan = FaultPlan {
        drop_chance: 0.0,
        corrupt_chance: 0.0,
        max_extra_delay: Nanos::ZERO,
        active_after: Nanos::ZERO,
        active_until: Nanos::MAX,
    };

    /// A plan that only drops packets.
    pub fn dropping(p: f64) -> Self {
        FaultPlan {
            drop_chance: p,
            ..FaultPlan::NONE
        }
    }

    /// A plan that only corrupts packets.
    pub fn corrupting(p: f64) -> Self {
        FaultPlan {
            corrupt_chance: p,
            ..FaultPlan::NONE
        }
    }

    /// Restrict this plan to the window `[from, until)`.
    pub fn window(mut self, from: Nanos, until: Nanos) -> Self {
        self.active_after = from;
        self.active_until = until;
        self
    }

    /// True when this plan can never touch a packet.
    pub fn is_none(&self) -> bool {
        self.drop_chance <= 0.0
            && self.corrupt_chance <= 0.0
            && self.max_extra_delay.is_zero()
    }

    /// True when the plan's window covers `now`.
    #[inline]
    pub fn active_at(&self, now: Nanos) -> bool {
        now >= self.active_after && now < self.active_until
    }

    /// Decide the fate of one packet at time `now`.
    pub fn judge(&self, now: Nanos, rng: &mut SimRng) -> Verdict {
        if !self.active_at(now) || self.is_none() {
            return Verdict::Pass;
        }
        if rng.chance(self.drop_chance) {
            return Verdict::Drop;
        }
        if rng.chance(self.corrupt_chance) {
            return Verdict::Corrupt;
        }
        Verdict::Pass
    }

    /// Extra queueing delay for one (surviving) packet.
    pub fn extra_delay(&self, now: Nanos, rng: &mut SimRng) -> Nanos {
        if !self.active_at(now) || self.max_extra_delay.is_zero() {
            return Nanos::ZERO;
        }
        Nanos(rng.range(0, self.max_extra_delay.as_nanos() + 1))
    }
}

/// A schedule of bounded fault windows for one node or link: link flaps,
/// burst-loss storms and similar compose as segments. Segments may
/// overlap; the *first* (in insertion order) whose window covers `now`
/// wins, so later segments act as fallbacks.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultTimeline {
    segments: Vec<FaultPlan>,
}

impl FaultTimeline {
    /// An empty (fault-free) timeline.
    pub const fn new() -> Self {
        FaultTimeline { segments: Vec::new() }
    }

    /// A timeline with one segment.
    pub fn from_plan(plan: FaultPlan) -> Self {
        let mut tl = FaultTimeline::new();
        tl.push(plan);
        tl
    }

    /// Append a fault window.
    pub fn push(&mut self, plan: FaultPlan) {
        if !plan.is_none() {
            self.segments.push(plan);
        }
    }

    /// True when no segment can ever fire.
    pub fn is_none(&self) -> bool {
        self.segments.is_empty()
    }

    /// The plan in force at `now` ([`FaultPlan::NONE`] between windows).
    #[inline]
    pub fn plan_at(&self, now: Nanos) -> FaultPlan {
        for seg in &self.segments {
            if seg.active_at(now) {
                return *seg;
            }
        }
        FaultPlan::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_always_passes() {
        let mut rng = SimRng::seed_from(1);
        let plan = FaultPlan::NONE;
        for _ in 0..100 {
            assert_eq!(plan.judge(Nanos(0), &mut rng), Verdict::Pass);
        }
        assert!(plan.is_none());
    }

    #[test]
    fn drop_rate_is_calibrated() {
        let mut rng = SimRng::seed_from(2);
        let plan = FaultPlan::dropping(0.15);
        let drops = (0..10_000)
            .filter(|_| plan.judge(Nanos(0), &mut rng) == Verdict::Drop)
            .count();
        assert!((1_300..1_700).contains(&drops), "got {drops}");
    }

    #[test]
    fn corrupt_applies_to_survivors() {
        let mut rng = SimRng::seed_from(3);
        let plan = FaultPlan {
            drop_chance: 0.5,
            corrupt_chance: 1.0,
            ..FaultPlan::NONE
        };
        for _ in 0..100 {
            let v = plan.judge(Nanos(0), &mut rng);
            assert!(v == Verdict::Drop || v == Verdict::Corrupt);
        }
    }

    #[test]
    fn inactive_before_activation_time() {
        let mut rng = SimRng::seed_from(4);
        let plan = FaultPlan {
            drop_chance: 1.0,
            active_after: Nanos(1_000),
            ..FaultPlan::NONE
        };
        assert_eq!(plan.judge(Nanos(999), &mut rng), Verdict::Pass);
        assert_eq!(plan.judge(Nanos(1_000), &mut rng), Verdict::Drop);
    }

    #[test]
    fn inactive_after_window_end() {
        let mut rng = SimRng::seed_from(6);
        let plan = FaultPlan::dropping(1.0).window(Nanos(1_000), Nanos(2_000));
        assert_eq!(plan.judge(Nanos(999), &mut rng), Verdict::Pass);
        assert_eq!(plan.judge(Nanos(1_000), &mut rng), Verdict::Drop);
        assert_eq!(plan.judge(Nanos(1_999), &mut rng), Verdict::Drop);
        assert_eq!(plan.judge(Nanos(2_000), &mut rng), Verdict::Pass);
        assert_eq!(plan.extra_delay(Nanos(2_000), &mut rng), Nanos::ZERO);
    }

    #[test]
    fn extra_delay_bounded() {
        let mut rng = SimRng::seed_from(5);
        let plan = FaultPlan {
            max_extra_delay: Nanos(500),
            ..FaultPlan::NONE
        };
        for _ in 0..1_000 {
            assert!(plan.extra_delay(Nanos(0), &mut rng) <= Nanos(500));
        }
        assert_eq!(FaultPlan::NONE.extra_delay(Nanos(0), &mut rng), Nanos::ZERO);
    }

    #[test]
    fn timeline_selects_the_covering_segment() {
        let mut tl = FaultTimeline::new();
        tl.push(FaultPlan::dropping(1.0).window(Nanos(100), Nanos(200)));
        tl.push(FaultPlan::corrupting(1.0).window(Nanos(300), Nanos(400)));
        assert!(tl.plan_at(Nanos(50)).is_none());
        assert_eq!(tl.plan_at(Nanos(150)).drop_chance, 1.0);
        assert!(tl.plan_at(Nanos(250)).is_none());
        assert_eq!(tl.plan_at(Nanos(350)).corrupt_chance, 1.0);
        assert!(tl.plan_at(Nanos(400)).is_none());
        assert!(!tl.is_none());
        // NONE segments are not stored: the timeline stays cheap to scan.
        let mut empty = FaultTimeline::new();
        empty.push(FaultPlan::NONE);
        assert!(empty.is_none());
    }
}
