//! The simulation driver: a virtual clock plus the event queue.
//!
//! `Sim<M>` is intentionally minimal — substrate crates expose *passive*
//! state machines (smoltcp-style: poke them, get timed effects back) and the
//! composing driver owns a `Sim` and converts effects into scheduled
//! messages. This keeps every component unit-testable without a running
//! simulation.

use crate::queue::{EventId, EventQueue};
use crate::time::Nanos;

/// A value paired with the *relative* delay after which it takes effect.
/// Substrate state machines return `Timed<Effect>` lists; drivers add the
/// current time and schedule them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Timed<T> {
    /// Delay relative to "now" at the point the effect was produced.
    pub after: Nanos,
    /// The effect itself.
    pub value: T,
}

impl<T> Timed<T> {
    /// An effect taking place after `after`.
    pub fn new(after: Nanos, value: T) -> Self {
        Timed { after, value }
    }

    /// An effect taking place immediately.
    pub fn now(value: T) -> Self {
        Timed {
            after: Nanos::ZERO,
            value,
        }
    }

    /// Map the payload, keeping the delay. Drivers use this to lift substrate
    /// effects into their own event enum.
    pub fn map<U>(self, f: impl FnOnce(T) -> U) -> Timed<U> {
        Timed {
            after: self.after,
            value: f(self.value),
        }
    }
}

/// The discrete-event simulation core: current time plus pending events.
///
/// Pending payloads are arena-resident: [`Sim::schedule`] moves `msg` into
/// a generation-checked slot of the queue's per-`Sim` slab arena and the
/// backends order POD handles; [`Sim::next`] moves the payload back out
/// (the slot returns to the free list). Drivers can therefore carry large
/// event variants — full RDMA frames, work requests — without boxing
/// them: steady-state scheduling performs zero heap allocation however
/// big `M` is.
pub struct Sim<M> {
    now: Nanos,
    queue: EventQueue<M>,
    fired: u64,
}

impl<M> Default for Sim<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M> Sim<M> {
    /// A simulation at time zero with no pending events.
    pub fn new() -> Self {
        Sim {
            now: Nanos::ZERO,
            queue: EventQueue::new(),
            fired: 0,
        }
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Total number of events fired so far (for run-away detection and
    /// reporting).
    #[inline]
    pub fn events_fired(&self) -> u64 {
        self.fired
    }

    /// Schedule `msg` to fire `delay` after the current time.
    pub fn schedule(&mut self, delay: Nanos, msg: M) -> EventId {
        self.queue.schedule_at(self.now.saturating_add(delay), msg)
    }

    /// Schedule `msg` at an absolute virtual time. Scheduling in the past is
    /// a logic error and panics in debug builds; in release it clamps to
    /// "now" to remain deterministic.
    pub fn schedule_at(&mut self, at: Nanos, msg: M) -> EventId {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.queue.schedule_at(at.max(self.now), msg)
    }

    /// Schedule a list of timed effects produced by a substrate state
    /// machine, lifting each into the driver's event type.
    pub fn schedule_all<T>(&mut self, effects: Vec<Timed<T>>, lift: impl Fn(T) -> M) {
        for eff in effects {
            self.schedule(eff.after, lift(eff.value));
        }
    }

    /// Cancel a scheduled event (timer). No-op if it already fired.
    pub fn cancel(&mut self, id: EventId) {
        self.queue.cancel(id);
    }

    /// Advance the clock to the next event and return it, or `None` when the
    /// simulation has run dry.
    // Not an Iterator: advancing mutates the clock, and `for` loops over a
    // simulation would hide that.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(Nanos, M)> {
        let (at, msg) = self.queue.pop()?;
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        self.fired += 1;
        Some((at, msg))
    }

    /// [`Sim::next`], but only consuming the event when it fires at or
    /// before `deadline` (later events stay queued and the clock does not
    /// move). One queue access instead of the `peek_time()` + `next()`
    /// pair on the driver loop.
    ///
    /// The deadline is **inclusive**, exactly as
    /// [`EventQueue::pop_until`]'s boundary contract specifies — window-
    /// based callers wanting "strictly before `end`" pass `end - 1` (see
    /// [`crate::harness::Harness::run_window`]).
    pub fn next_until(&mut self, deadline: Nanos) -> Option<(Nanos, M)> {
        let (at, msg) = self.queue.pop_until(deadline)?;
        debug_assert!(at >= self.now, "event queue went backwards");
        self.now = at;
        self.fired += 1;
        Some((at, msg))
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<Nanos> {
        self.queue.peek_time()
    }

    /// Drive the simulation until `deadline`, invoking `handler` for every
    /// event. The handler receives `(sim, msg)` so it can schedule follow-up
    /// events. Events scheduled beyond the deadline remain queued. Returns
    /// the number of events processed.
    ///
    /// The clock is left at `deadline` (or at the last event if the queue ran
    /// dry earlier).
    pub fn run_until(&mut self, deadline: Nanos, mut handler: impl FnMut(&mut Sim<M>, M)) -> u64 {
        let mut processed = 0;
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    let (at, msg) = self.queue.pop().expect("peeked entry vanished");
                    self.now = at;
                    self.fired += 1;
                    processed += 1;
                    handler(self, msg);
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
        processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Pong(u32),
    }

    #[test]
    fn clock_advances_with_events() {
        let mut sim: Sim<Ev> = Sim::new();
        sim.schedule(Nanos(100), Ev::Ping(1));
        sim.schedule(Nanos(50), Ev::Ping(0));
        let (t, e) = sim.next().unwrap();
        assert_eq!((t, e), (Nanos(50), Ev::Ping(0)));
        assert_eq!(sim.now(), Nanos(50));
        let (t, _) = sim.next().unwrap();
        assert_eq!(t, Nanos(100));
        assert!(sim.next().is_none());
        assert_eq!(sim.events_fired(), 2);
    }

    #[test]
    fn run_until_processes_and_reschedules() {
        let mut sim: Sim<Ev> = Sim::new();
        sim.schedule(Nanos(10), Ev::Ping(0));
        let mut log = Vec::new();
        sim.run_until(Nanos(100), |sim, ev| match ev {
            Ev::Ping(n) => {
                log.push(format!("ping{n}"));
                sim.schedule(Nanos(10), Ev::Pong(n));
            }
            Ev::Pong(n) => {
                log.push(format!("pong{n}"));
                if n < 2 {
                    sim.schedule(Nanos(10), Ev::Ping(n + 1));
                }
            }
        });
        assert_eq!(log, ["ping0", "pong0", "ping1", "pong1", "ping2", "pong2"]);
        assert_eq!(sim.now(), Nanos(100)); // clock parked at deadline
    }

    #[test]
    fn run_until_leaves_future_events_queued() {
        let mut sim: Sim<Ev> = Sim::new();
        sim.schedule(Nanos(10), Ev::Ping(0));
        sim.schedule(Nanos(500), Ev::Ping(1));
        let n = sim.run_until(Nanos(100), |_, _| {});
        assert_eq!(n, 1);
        assert_eq!(sim.pending(), 1);
        let (t, _) = sim.next().unwrap();
        assert_eq!(t, Nanos(500));
    }

    #[test]
    fn timed_map_lifts_payload() {
        let t = Timed::new(Nanos(5), 7u32).map(|v| v * 2);
        assert_eq!(t, Timed::new(Nanos(5), 14u32));
        assert_eq!(Timed::now(1u8).after, Nanos::ZERO);
    }

    #[test]
    fn schedule_all_lifts_into_event_enum() {
        let mut sim: Sim<Ev> = Sim::new();
        sim.schedule_all(
            vec![Timed::new(Nanos(1), 4u32), Timed::new(Nanos(2), 5u32)],
            Ev::Ping,
        );
        assert_eq!(sim.next().unwrap().1, Ev::Ping(4));
        assert_eq!(sim.next().unwrap().1, Ev::Ping(5));
    }

    #[test]
    fn cancel_timer() {
        let mut sim: Sim<Ev> = Sim::new();
        let id = sim.schedule(Nanos(10), Ev::Ping(0));
        sim.cancel(id);
        assert!(sim.next().is_none());
    }
}
