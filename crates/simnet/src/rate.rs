//! Rate limiting: a token bucket used by per-tenant shaping and by the
//! fault-injection knobs, mirroring smoltcp's `--tx-rate-limit` shaping.

use crate::time::Nanos;

/// A classic token bucket with deterministic, integer refill arithmetic.
///
/// Tokens are abstract units (packets or bytes — the caller decides). The
/// bucket refills continuously at `rate_per_sec`, capped at `burst`.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: u64,
    burst: u64,
    /// Tokens available at `updated`.
    tokens: u64,
    /// Fractional token remainder in nanoToken units (tokens * ns accrued).
    remainder_ns: u64,
    updated: Nanos,
}

impl TokenBucket {
    /// A bucket refilling at `rate_per_sec` with capacity `burst`, starting
    /// full.
    pub fn new(rate_per_sec: u64, burst: u64) -> Self {
        assert!(rate_per_sec > 0, "rate must be positive");
        assert!(burst > 0, "burst must be positive");
        TokenBucket {
            rate_per_sec,
            burst,
            tokens: burst,
            remainder_ns: 0,
            updated: Nanos::ZERO,
        }
    }

    fn refill(&mut self, now: Nanos) {
        if now <= self.updated {
            return;
        }
        let elapsed = (now - self.updated).as_nanos();
        // accrued = elapsed * rate / 1e9, carried exactly via remainder.
        let accrued_ns = self.remainder_ns + elapsed.saturating_mul(self.rate_per_sec);
        let whole = accrued_ns / 1_000_000_000;
        self.remainder_ns = accrued_ns % 1_000_000_000;
        self.tokens = (self.tokens + whole).min(self.burst);
        if self.tokens == self.burst {
            self.remainder_ns = 0;
        }
        self.updated = now;
    }

    /// Try to take `n` tokens at `now`. Returns true on success.
    pub fn try_take(&mut self, now: Nanos, n: u64) -> bool {
        self.refill(now);
        if self.tokens >= n {
            self.tokens -= n;
            true
        } else {
            false
        }
    }

    /// Earliest time at which `n` tokens will be available (may be `now`).
    pub fn next_available(&mut self, now: Nanos, n: u64) -> Nanos {
        self.refill(now);
        if self.tokens >= n {
            return now;
        }
        let needed = n - self.tokens;
        // needed tokens need needed*1e9 - remainder_ns nanoToken units.
        let needed_ns = needed
            .saturating_mul(1_000_000_000)
            .saturating_sub(self.remainder_ns);
        let wait = needed_ns.div_ceil(self.rate_per_sec);
        now + Nanos(wait)
    }

    /// Tokens currently available (after refill to `now`).
    pub fn available(&mut self, now: Nanos) -> u64 {
        self.refill(now);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_drains() {
        let mut tb = TokenBucket::new(1_000, 10);
        assert!(tb.try_take(Nanos(0), 10));
        assert!(!tb.try_take(Nanos(0), 1));
    }

    #[test]
    fn refills_at_rate() {
        let mut tb = TokenBucket::new(1_000, 10); // 1 token per ms
        assert!(tb.try_take(Nanos(0), 10));
        // After 5 ms, 5 tokens.
        assert_eq!(tb.available(Nanos::from_millis(5)), 5);
        assert!(tb.try_take(Nanos::from_millis(5), 5));
        assert!(!tb.try_take(Nanos::from_millis(5), 1));
    }

    #[test]
    fn cap_at_burst() {
        let mut tb = TokenBucket::new(1_000_000, 4);
        assert!(tb.try_take(Nanos(0), 4));
        assert_eq!(tb.available(Nanos::from_secs(10)), 4);
    }

    #[test]
    fn next_available_is_exact() {
        let mut tb = TokenBucket::new(1_000, 10); // 1 token / ms
        assert!(tb.try_take(Nanos(0), 10));
        let t = tb.next_available(Nanos(0), 3);
        assert_eq!(t, Nanos::from_millis(3));
        assert!(tb.try_take(t, 3));
    }

    #[test]
    fn fractional_accrual_is_exact() {
        // 3 tokens/sec: after 1/3 s we must have exactly 1 token.
        let mut tb = TokenBucket::new(3, 3);
        assert!(tb.try_take(Nanos(0), 3));
        let third = Nanos(333_333_334); // ceil(1e9/3)
        assert_eq!(tb.available(third), 1);
    }
}
