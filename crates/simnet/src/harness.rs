//! The shared driver harness: one batched event-loop trampoline for every
//! simulation driver in the workspace.
//!
//! Before this module each driver (channel echo, ingress sweep, fairness,
//! the full cluster, the baselines' cross-node echo) hand-rolled the same
//! three pieces: a `Sim` + closure trampoline, an ad-hoc way to turn
//! substrate effects back into scheduled events, and a private copy of the
//! latency/throughput bookkeeping. They now share:
//!
//! * [`Engine`] — the driver's state machine: consumes one event, emits
//!   [`Timed`] follow-up effects into an [`Effects`] sink.
//! * [`Harness`] — owns the virtual clock and runs the trampoline with
//!   **batched effect draining**: effects due *now* are executed inline
//!   from a FIFO scratch buffer (up to a per-wakeup budget) instead of
//!   taking a round-trip through the binary heap, while everything else is
//!   bulk-scheduled. Ordering is exactly the heap's insertion-order
//!   tie-break, so results are identical to the unbatched loop — just with
//!   far fewer heap operations on effect-chattery workloads.
//! * [`RunStats`] / [`LoadReport`] — the one latency/throughput sink,
//!   warm-up handling included, replacing the per-driver copies.

use std::collections::VecDeque;

use crate::sim::{Sim, Timed};
use crate::stats::{Histogram, Samples};
use crate::time::Nanos;

/// A latency/throughput report shared by all drivers.
#[derive(Clone, Debug, Default)]
pub struct LoadReport {
    /// Completed requests per second over the measurement window.
    pub rps: f64,
    /// Mean end-to-end latency.
    pub mean_latency: Nanos,
    /// 99th percentile latency.
    pub p99_latency: Nanos,
    /// Requests completed in the window.
    pub completed: u64,
}

/// Warm-up-aware completion bookkeeping every load-driven simulation
/// shares. Record completions as they happen; [`RunStats::report`] folds
/// them into a [`LoadReport`] at the end.
#[derive(Clone, Debug)]
pub struct RunStats {
    latency: Samples,
    hist: Histogram,
    completed: u64,
    warmup: Nanos,
}

impl RunStats {
    /// Stats discarding everything finishing before `warmup`.
    pub fn new(warmup: Nanos) -> Self {
        RunStats {
            latency: Samples::new(),
            hist: Histogram::new(),
            completed: 0,
            warmup,
        }
    }

    /// The configured warm-up horizon.
    pub fn warmup(&self) -> Nanos {
        self.warmup
    }

    /// Record a request issued at `issued` and finished at `finished`.
    /// Completions inside the warm-up window are dropped.
    pub fn complete(&mut self, finished: Nanos, issued: Nanos) {
        if finished >= self.warmup {
            self.latency.record(finished - issued);
            self.hist.record(finished - issued);
            self.completed += 1;
        }
    }

    /// Completions recorded after warm-up so far.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// The raw latency samples (mutable: percentile queries sort).
    pub fn latency(&mut self) -> &mut Samples {
        &mut self.latency
    }

    /// The streaming latency histogram — bounded-memory p50/p99/p99.9
    /// with order-invariant merging; its percentiles track
    /// [`Samples::percentile`] within [`Histogram::RELATIVE_ERROR`].
    pub fn histogram(&self) -> &Histogram {
        &self.hist
    }

    /// Absorb another shard's/node's stats (same warm-up horizon). Used
    /// by the sharded runner to fold per-node bookkeeping into one report;
    /// merging in a fixed (node) order keeps the folded report identical
    /// across shard counts.
    pub fn merge(&mut self, other: RunStats) {
        debug_assert_eq!(self.warmup, other.warmup, "merging mismatched warm-ups");
        self.completed += other.completed;
        self.latency.merge(other.latency);
        self.hist.merge(&other.hist);
    }

    /// Fold into the standard [`LoadReport`] over a measurement `duration`.
    pub fn report(mut self, duration: Nanos) -> LoadReport {
        LoadReport {
            rps: self.completed as f64 / duration.as_secs_f64(),
            mean_latency: self.latency.mean(),
            p99_latency: self.latency.p99(),
            completed: self.completed,
        }
    }
}

/// The sink an [`Engine`] emits follow-up effects into. Effects are either
/// relative (`after`) or absolute (`at`); the harness decides whether each
/// runs inline in the current batch or goes through the event queue.
///
/// Delayed effects are scheduled into the event queue *eagerly* at
/// emission; only zero-delay effects are buffered (they are candidates for
/// the inline batch drain). This is observationally identical to buffering
/// everything and bulk-scheduling at the end of the wakeup — a delayed
/// effect can never tie with a same-wakeup zero-delay effect (its
/// timestamp is strictly later), and relative sequence order within each
/// group is preserved — but it saves two queue-entry moves per event on
/// the hot path.
pub struct Effects<'a, Ev> {
    now: Nanos,
    sim: &'a mut Sim<Ev>,
    zero: &'a mut VecDeque<Ev>,
}

impl<'a, Ev> Effects<'a, Ev> {
    /// Current virtual time (same value the engine was invoked with).
    #[inline]
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Emit `ev` after a relative delay.
    #[inline]
    pub fn after(&mut self, delay: Nanos, ev: Ev) {
        if delay.is_zero() {
            self.zero.push_back(ev);
        } else {
            self.sim.schedule(delay, ev);
        }
    }

    /// Emit `ev` immediately (still ordered after already-emitted effects).
    #[inline]
    pub fn now_ev(&mut self, ev: Ev) {
        self.after(Nanos::ZERO, ev);
    }

    /// Emit `ev` at an absolute virtual time. Times in the past clamp to
    /// "now", mirroring [`Sim::schedule_at`].
    #[inline]
    pub fn at(&mut self, at: Nanos, ev: Ev) {
        debug_assert!(at >= self.now, "cannot schedule into the past");
        self.after(at.saturating_sub(self.now), ev);
    }

    /// Lift a batch of substrate effects into the driver's event type.
    pub fn extend<T>(&mut self, effects: Vec<Timed<T>>, lift: impl Fn(T) -> Ev) {
        for t in effects {
            self.after(t.after, lift(t.value));
        }
    }

    /// Like [`Effects::extend`], but draining a reusable buffer in place —
    /// the driver keeps the `Vec` (and its capacity) across steps, so
    /// steady-state stepping performs no allocation for effect lifting.
    pub fn extend_drain<T>(&mut self, effects: &mut Vec<Timed<T>>, lift: impl Fn(T) -> Ev) {
        for t in effects.drain(..) {
            self.after(t.after, lift(t.value));
        }
    }

    /// Like [`Effects::extend`], but measuring delays from an absolute
    /// `base` instead of "now" (e.g. effects produced by a server that
    /// finishes in the future).
    pub fn extend_at<T>(&mut self, base: Nanos, effects: Vec<Timed<T>>, lift: impl Fn(T) -> Ev) {
        let mut effects = effects;
        self.extend_at_drain(base, &mut effects, lift);
    }

    /// [`Effects::extend_at`] draining a reusable buffer in place, the
    /// absolute-base counterpart of [`Effects::extend_drain`].
    pub fn extend_at_drain<T>(
        &mut self,
        base: Nanos,
        effects: &mut Vec<Timed<T>>,
        lift: impl Fn(T) -> Ev,
    ) {
        for t in effects.drain(..) {
            self.at(base.saturating_add(t.after), lift(t.value));
        }
    }
}

/// A driver's state machine: everything that isn't clock/queue/stats.
///
/// Implementations receive one event plus the current time and push
/// follow-up effects into the sink; they never touch the event queue
/// directly, which is what lets the harness batch.
pub trait Engine {
    /// The driver's event alphabet.
    type Ev;

    /// Consume one event.
    fn on_event(&mut self, now: Nanos, ev: Self::Ev, fx: &mut Effects<'_, Self::Ev>);
}

/// Default per-wakeup budget of inline-drained immediate effects.
pub const DEFAULT_BATCH: usize = 64;

/// The shared trampoline: a [`Sim`] clock/queue plus the batched drain.
pub struct Harness<Ev> {
    sim: Sim<Ev>,
    /// Zero-delay effects awaiting inline drain (delayed effects go
    /// straight to the queue; see [`Effects`]). Inline-drained effects
    /// never touch the queue at all, so they also skip the payload
    /// arena's insert/take pair — the scratch is the cheapest path
    /// through the kernel and stays a plain by-value ring.
    scratch: VecDeque<Ev>,
    batch: usize,
    drained_inline: u64,
}

impl<Ev> Default for Harness<Ev> {
    fn default() -> Self {
        Self::new()
    }
}

impl<Ev> Harness<Ev> {
    /// A harness at time zero with the default batch budget. The
    /// batch-drain scratch buffer is pre-sized and reused across every
    /// step, so the trampoline itself never allocates in steady state.
    pub fn new() -> Self {
        Harness {
            sim: Sim::new(),
            scratch: VecDeque::with_capacity(2 * DEFAULT_BATCH),
            batch: DEFAULT_BATCH,
            drained_inline: 0,
        }
    }

    /// Override the per-wakeup inline-drain budget. A budget of zero
    /// degenerates to the classic one-pop-per-event loop.
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch;
        self
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Nanos {
        self.sim.now()
    }

    /// Events processed so far (heap pops + inline-drained effects).
    pub fn events_fired(&self) -> u64 {
        self.sim.events_fired() + self.drained_inline
    }

    /// Effects executed inline without a heap round-trip (batching win).
    pub fn drained_inline(&self) -> u64 {
        self.drained_inline
    }

    /// Pending events in the queue.
    pub fn pending(&self) -> usize {
        self.sim.pending()
    }

    /// Seed an event `delay` after the current time.
    pub fn schedule(&mut self, delay: Nanos, ev: Ev) {
        self.sim.schedule(delay, ev);
    }

    /// Seed an event at an absolute time.
    pub fn schedule_at(&mut self, at: Nanos, ev: Ev) {
        self.sim.schedule_at(at, ev);
    }

    /// Run `engine` until `deadline`. Events scheduled beyond the deadline
    /// stay queued; the clock parks at the deadline (or the last event if
    /// the queue ran dry). Returns the number of events processed.
    pub fn run<E: Engine<Ev = Ev>>(&mut self, engine: &mut E, deadline: Nanos) -> u64 {
        let mut processed = 0u64;
        loop {
            let Some((now, ev)) = self.sim.next_until(deadline) else {
                break;
            };
            processed += 1;
            let mut fx = Effects {
                now,
                sim: &mut self.sim,
                zero: &mut self.scratch,
            };
            engine.on_event(now, ev, &mut fx);

            // Batched drain: execute effects due *now* inline, in emission
            // order, as long as no queued event shares this timestamp (that
            // would change the heap's insertion-order tie-break) and the
            // per-wakeup budget holds.
            let mut drained = 0;
            while drained < self.batch {
                if self.scratch.is_empty() {
                    break;
                }
                if self.sim.peek_time().is_some_and(|t| t <= now) {
                    break;
                }
                let Some(ev) = self.scratch.pop_front() else {
                    break;
                };
                drained += 1;
                processed += 1;
                let mut fx = Effects {
                    now,
                    sim: &mut self.sim,
                    zero: &mut self.scratch,
                };
                engine.on_event(now, ev, &mut fx);
            }
            self.drained_inline += drained as u64;

            // Queue whatever zero-delay work remains (budget exhausted or
            // a same-timestamp queued event took precedence).
            for ev in self.scratch.drain(..) {
                self.sim.schedule(Nanos::ZERO, ev);
            }
        }
        self.sim.run_until(deadline, |_, _| unreachable!("queue drained"));
        processed
    }

    /// Run `engine` over one conservative time window: every event firing
    /// **strictly before** `end` is processed; events at or after `end`
    /// stay queued and the clock parks just short of it. The sharded
    /// runner ([`crate::shard`]) calls this once per window, so the
    /// boundary must be exact: an event scheduled *at* `end` belongs to
    /// the next window (it may be preceded by a cross-shard arrival at
    /// `end` merged at the barrier). Built on the inclusive
    /// [`crate::queue::EventQueue::pop_until`] boundary contract —
    /// `end - 1` is the last instant inside the window.
    pub fn run_window<E: Engine<Ev = Ev>>(&mut self, engine: &mut E, end: Nanos) -> u64 {
        // Nothing fires strictly before time zero: an empty window, not a
        // wrap to `u64::MAX`.
        let Some(last) = end.0.checked_sub(1) else {
            return 0;
        };
        self.run(engine, Nanos(last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Pong(u32),
    }

    struct PingPong {
        log: Vec<String>,
        limit: u32,
    }

    impl Engine for PingPong {
        type Ev = Ev;
        fn on_event(&mut self, _now: Nanos, ev: Ev, fx: &mut Effects<'_, Ev>) {
            match ev {
                Ev::Ping(n) => {
                    self.log.push(format!("ping{n}"));
                    fx.after(Nanos(10), Ev::Pong(n));
                }
                Ev::Pong(n) => {
                    self.log.push(format!("pong{n}"));
                    if n < self.limit {
                        fx.after(Nanos(10), Ev::Ping(n + 1));
                    }
                }
            }
        }
    }

    #[test]
    fn trampoline_matches_classic_loop() {
        let mut h: Harness<Ev> = Harness::new();
        let mut e = PingPong { log: Vec::new(), limit: 2 };
        h.schedule(Nanos(10), Ev::Ping(0));
        let n = h.run(&mut e, Nanos(100));
        assert_eq!(e.log, ["ping0", "pong0", "ping1", "pong1", "ping2", "pong2"]);
        assert_eq!(n, 6);
        assert_eq!(h.now(), Nanos(100)); // parked at deadline
    }

    #[test]
    fn future_events_stay_queued() {
        let mut h: Harness<Ev> = Harness::new();
        let mut e = PingPong { log: Vec::new(), limit: 0 };
        h.schedule(Nanos(10), Ev::Ping(0));
        h.schedule(Nanos(500), Ev::Ping(9));
        h.run(&mut e, Nanos(100));
        assert_eq!(h.pending(), 1);
    }

    /// An engine that fans out immediate effects, to exercise the batch
    /// path: each Ping(n) spawns n immediate Pongs.
    struct FanOut {
        seen: Vec<(Nanos, Ev)>,
    }

    impl Engine for FanOut {
        type Ev = Ev;
        fn on_event(&mut self, now: Nanos, ev: Ev, fx: &mut Effects<'_, Ev>) {
            if let Ev::Ping(n) = ev {
                for k in 0..n {
                    fx.now_ev(Ev::Pong(k));
                }
            }
            self.seen.push((now, ev));
        }
    }

    #[test]
    fn immediate_effects_drain_inline_in_order() {
        let mut h: Harness<Ev> = Harness::new();
        let mut e = FanOut { seen: Vec::new() };
        h.schedule(Nanos(5), Ev::Ping(3));
        h.run(&mut e, Nanos(10));
        let evs: Vec<&Ev> = e.seen.iter().map(|(_, e)| e).collect();
        assert_eq!(
            evs,
            [&Ev::Ping(3), &Ev::Pong(0), &Ev::Pong(1), &Ev::Pong(2)]
        );
        assert!(e.seen.iter().all(|&(t, _)| t == Nanos(5)));
        assert_eq!(h.drained_inline(), 3);
    }

    #[test]
    fn inline_drain_defers_to_same_time_queue_events() {
        // A queued event at the same timestamp must run before any
        // inline-drained effect emitted earlier in the wakeup, exactly as
        // the heap's insertion-order tie-break would order them.
        let mut h: Harness<Ev> = Harness::new();
        let mut e = FanOut { seen: Vec::new() };
        h.schedule(Nanos(5), Ev::Ping(1));
        h.schedule(Nanos(5), Ev::Ping(2));
        h.run(&mut e, Nanos(10));
        let evs: Vec<&Ev> = e.seen.iter().map(|(_, e)| e).collect();
        assert_eq!(
            evs,
            [
                &Ev::Ping(1),
                &Ev::Ping(2),
                &Ev::Pong(0), // from Ping(1)
                &Ev::Pong(0), // from Ping(2)
                &Ev::Pong(1),
            ]
        );
        assert_eq!(h.drained_inline(), 0, "tie at t=5 forces the heap path");
    }

    #[test]
    fn zero_batch_degenerates_to_classic_loop() {
        let mut h: Harness<Ev> = Harness::new().with_batch(0);
        let mut e = FanOut { seen: Vec::new() };
        h.schedule(Nanos(5), Ev::Ping(3));
        h.run(&mut e, Nanos(10));
        assert_eq!(e.seen.len(), 4);
        assert_eq!(h.drained_inline(), 0);
    }

    #[test]
    fn batched_and_unbatched_runs_agree() {
        // Same workload through batch=64 and batch=0 must produce the
        // identical event trace — batching is an optimization, not a
        // semantics change.
        let run = |batch| {
            let mut h: Harness<Ev> = Harness::new().with_batch(batch);
            let mut e = PingPong { log: Vec::new(), limit: 30 };
            h.schedule(Nanos(1), Ev::Ping(0));
            h.run(&mut e, Nanos(10_000));
            e.log
        };
        assert_eq!(run(64), run(0));
    }

    #[test]
    fn run_stats_respects_warmup() {
        let mut s = RunStats::new(Nanos(100));
        s.complete(Nanos(50), Nanos(10)); // warm-up: dropped
        s.complete(Nanos(150), Nanos(100));
        s.complete(Nanos(250), Nanos(100));
        assert_eq!(s.completed(), 2);
        let r = s.report(Nanos::from_secs(1));
        assert_eq!(r.completed, 2);
        assert!((r.rps - 2.0).abs() < 1e-9);
        assert_eq!(r.mean_latency, Nanos(100));
        assert!(r.p99_latency >= r.mean_latency);
    }

    #[test]
    fn effects_absolute_and_relative_agree() {
        let mut h: Harness<Ev> = Harness::new();
        struct AbsRel;
        impl Engine for AbsRel {
            type Ev = Ev;
            fn on_event(&mut self, now: Nanos, ev: Ev, fx: &mut Effects<'_, Ev>) {
                if let Ev::Ping(0) = ev {
                    fx.at(now + Nanos(7), Ev::Pong(1));
                    fx.after(Nanos(7), Ev::Pong(2));
                }
            }
        }
        h.schedule(Nanos(3), Ev::Ping(0));
        let n = h.run(&mut AbsRel, Nanos(100));
        assert_eq!(n, 3);
    }
}
