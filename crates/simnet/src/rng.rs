//! Seeded randomness for deterministic simulations.
//!
//! Every stochastic decision in the workspace (fault injection, payload
//! jitter, client think times) draws from a [`SimRng`] seeded by the
//! experiment configuration — never from global or OS entropy — so each run
//! is exactly reproducible.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::Nanos;

/// A deterministic random source for one simulation run.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Construct from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream, e.g. one per fabric link, so that
    /// adding consumers does not perturb other components' draws.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// A *stateless* named sub-stream of `seed`: the stream for
    /// `(seed, stream)` is the same no matter who constructs it, when, or
    /// how many sibling streams exist. This is what makes per-entity
    /// randomness partition-invariant — e.g. one fault stream per fabric
    /// node, keyed by the **global** node id, draws the same verdict
    /// sequence whether one simulation shard owns all nodes or each node
    /// lives on its own shard. (Contrast [`SimRng::fork`], which consumes
    /// a draw from the parent and therefore depends on construction
    /// order.) The seed mix is splitmix64, whose avalanche keeps
    /// consecutive stream ids decorrelated.
    pub fn stream(seed: u64, stream: u64) -> SimRng {
        let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seed_from(z ^ (z >> 31))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Uniform integer in `[lo, hi)`. Panics if the range is empty.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// A span jittered uniformly within `±frac` of `base` — models service
    /// time variation without losing determinism.
    pub fn jitter(&mut self, base: Nanos, frac: f64) -> Nanos {
        if frac <= 0.0 || base.is_zero() {
            return base;
        }
        let f = 1.0 + (self.unit() * 2.0 - 1.0) * frac;
        base.scale(f.max(0.0))
    }

    /// Exponentially distributed span with the given mean — used for open
    /// Poisson arrivals where the paper's workloads need them.
    pub fn exponential(&mut self, mean: Nanos) -> Nanos {
        if mean.is_zero() {
            return Nanos::ZERO;
        }
        let u: f64 = self.unit().max(1e-12);
        mean.scale(-u.ln())
    }

    /// Pick a uniformly random index below `n`. Panics when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty set");
        self.inner.gen_range(0..n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.range(0, 1_000_000), b.range(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.range(0, 1 << 30) == b.range(0, 1 << 30)).count();
        assert!(same < 4, "streams should diverge");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(7);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SimRng::seed_from(123);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn jitter_bounds() {
        let mut r = SimRng::seed_from(5);
        let base = Nanos(1_000);
        for _ in 0..1_000 {
            let v = r.jitter(base, 0.1);
            assert!(v >= Nanos(900) && v <= Nanos(1_100), "{v:?}");
        }
        // No jitter requested -> exact.
        assert_eq!(r.jitter(base, 0.0), base);
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::seed_from(99);
        let mean = Nanos(10_000);
        let n = 20_000u64;
        let total: u64 = (0..n).map(|_| r.exponential(mean).as_nanos()).sum();
        let m = total as f64 / n as f64;
        assert!((m - 10_000.0).abs() < 500.0, "empirical mean {m}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = SimRng::seed_from(42);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..64).filter(|_| a.range(0, 1 << 30) == b.range(0, 1 << 30)).count();
        assert!(same < 4);
    }

    #[test]
    fn named_streams_are_stateless_and_independent() {
        // Same (seed, stream) → identical draws, regardless of what other
        // streams were constructed in between.
        let mut a = SimRng::stream(42, 7);
        let _noise = SimRng::stream(42, 3);
        let mut b = SimRng::stream(42, 7);
        for _ in 0..100 {
            assert_eq!(a.range(0, 1 << 30), b.range(0, 1 << 30));
        }
        // Adjacent stream ids decorrelate.
        let mut c = SimRng::stream(42, 8);
        let mut d = SimRng::stream(42, 7);
        let same = (0..64).filter(|_| c.range(0, 1 << 30) == d.range(0, 1 << 30)).count();
        assert!(same < 4, "adjacent streams should diverge");
    }
}
