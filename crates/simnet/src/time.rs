//! Virtual time for the discrete-event simulation.
//!
//! All simulated clocks in the workspace are expressed in [`Nanos`] — an
//! integer count of nanoseconds since simulation start. Integer nanoseconds
//! keep the simulation exactly deterministic (no floating-point drift) while
//! being fine-grained enough to express sub-microsecond RDMA costs from the
//! paper (e.g. the 2.6 µs SoC DMA read, §4.1.1).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `Nanos` is deliberately a thin newtype: it is `Copy`, ordered, and
/// supports saturating arithmetic so cost-model code can never wrap.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Nanos(pub u64);

impl Nanos {
    /// The zero instant (simulation start).
    pub const ZERO: Nanos = Nanos(0);
    /// The far future; used as an "inactive timer" sentinel.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Nanos(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * 1_000_000_000)
    }

    /// Raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Value in microseconds (lossy).
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in milliseconds (lossy).
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Value in seconds (lossy).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating addition; `MAX` is absorbing so timer sentinels stay put.
    #[inline]
    pub fn saturating_add(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub fn saturating_sub(self, rhs: Nanos) -> Nanos {
        Nanos(self.0.saturating_sub(rhs.0))
    }

    /// Scale a span by an integer factor.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> Nanos {
        Nanos(self.0.saturating_mul(factor))
    }

    /// Convert a floating-point nanosecond count to [`Nanos`] with
    /// explicit, platform-independent semantics: NaN and negative values
    /// (time cannot run backwards) clamp to [`Nanos::ZERO`]; values at or
    /// beyond the `u64` range saturate to [`Nanos::MAX`]. Every f64→ns
    /// conversion in the workspace funnels through here, so cost models
    /// fed degenerate parameters degrade to a deterministic clamp instead
    /// of whatever the platform's float-to-int cast produces.
    #[inline]
    pub fn from_f64_saturating(ns: f64) -> Nanos {
        // Ordered comparisons are false for NaN, so NaN falls through both
        // guards into the zero arm.
        if ns >= u64::MAX as f64 {
            Nanos::MAX
        } else if ns > 0.0 {
            // simlint: allow(saturating-cost-casts) — this IS the saturating funnel: the cast is guarded by the range checks above
            Nanos(ns as u64)
        } else {
            Nanos::ZERO
        }
    }

    /// Scale a span by a floating-point factor, rounding to the nearest
    /// nanosecond. Used by cost models (e.g. the DPU wimpy-core
    /// multiplier). NaN/negative factors clamp to zero and oversized
    /// products saturate, per [`Nanos::from_f64_saturating`].
    #[inline]
    pub fn scale(self, factor: f64) -> Nanos {
        Nanos::from_f64_saturating((self.0 as f64 * factor).round())
    }

    /// `max(self, other)`.
    #[inline]
    pub fn max(self, other: Nanos) -> Nanos {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// `min(self, other)`.
    #[inline]
    pub fn min(self, other: Nanos) -> Nanos {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// True if this is the zero span.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Nanos {
    type Output = Nanos;
    #[inline]
    fn add(self, rhs: Nanos) -> Nanos {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Nanos {
    #[inline]
    fn add_assign(&mut self, rhs: Nanos) {
        *self = *self + rhs;
    }
}

impl Sub for Nanos {
    type Output = Nanos;
    #[inline]
    fn sub(self, rhs: Nanos) -> Nanos {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Nanos {
    #[inline]
    fn sub_assign(&mut self, rhs: Nanos) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn mul(self, rhs: u64) -> Nanos {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for Nanos {
    type Output = Nanos;
    #[inline]
    fn div(self, rhs: u64) -> Nanos {
        Nanos(self.0 / rhs)
    }
}

impl Sum for Nanos {
    fn sum<I: Iterator<Item = Nanos>>(iter: I) -> Nanos {
        iter.fold(Nanos::ZERO, Add::add)
    }
}

impl fmt::Debug for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns == u64::MAX {
            write!(f, "∞")
        } else if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if ns >= 1_000 {
            write!(f, "{:.3}µs", self.as_micros_f64())
        } else {
            write!(f, "{}ns", ns)
        }
    }
}

/// A per-byte cost slope in fixed-point Q32.32 nanoseconds per byte.
///
/// The cost models charge `per_msg + bytes × slope` on every simulated
/// packet/message; doing that multiply in `f64` (as the seed did) put an
/// int→float→round→int round trip on the hottest paths (`TcpCosts::rx/tx`,
/// the RNIC per-byte DMA charge). `ByteCost` precomputes the slope once as
/// a Q32.32 integer so the per-call work is one widening multiply, an add
/// and a shift — no floating point, same round-half-up convention as
/// `f64::round` for non-negative values.
///
/// Quantization: slopes that are dyadic rationals (0.25, 0.5, 0.0625…) are
/// represented *exactly* and reproduce the f64 math bit-for-bit. Other
/// slopes (0.06, 0.35) are quantized to the nearest 2⁻³² ns/byte —
/// a relative error under 10⁻⁹, which can flip a result only when the true
/// product sits within that distance of a .5 boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ByteCost {
    /// ns/byte in Q32.32.
    mul: u64,
}

impl ByteCost {
    /// A zero slope (per-byte cost disabled).
    pub const ZERO: ByteCost = ByteCost { mul: 0 };

    /// Build from a floating-point ns/byte slope (done once, at cost-table
    /// construction). NaN/negative slopes clamp to [`ByteCost::ZERO`] and
    /// slopes too large for Q32.32 saturate, mirroring
    /// [`Nanos::from_f64_saturating`]'s conversion contract.
    pub fn per_byte_ns(ns: f64) -> ByteCost {
        let q = (ns * (1u64 << 32) as f64).round();
        ByteCost {
            mul: Nanos::from_f64_saturating(q).0,
        }
    }

    /// Integer-ns cost of `bytes`: `round(bytes × slope)`, computed with a
    /// widening multiply. The `u128` product cannot overflow for any
    /// `bytes` × any Q32.32 slope; the final narrowing to integer
    /// nanoseconds *saturates* — a byte count large enough to exceed
    /// `u64::MAX` ns charges [`Nanos::MAX`] instead of silently wrapping
    /// to a near-zero cost (which would let an absurd transfer finish in
    /// no simulated time).
    #[inline]
    pub fn cost(self, bytes: u64) -> Nanos {
        let q = ((bytes as u128 * self.mul as u128) + (1u128 << 31)) >> 32;
        // simlint: allow(saturating-cost-casts) — narrowing is explicitly clamped by the min() on the same expression
        Nanos(q.min(u64::MAX as u128) as u64)
    }

    /// The slope back as f64 ns/byte (reporting/diagnostics).
    pub fn ns_per_byte(self) -> f64 {
        self.mul as f64 / (1u64 << 32) as f64
    }
}

/// Transmission (serialization) time of `bytes` over a link of `gbps`
/// gigabits per second, rounded up to a whole nanosecond.
///
/// `wire_time(1_000_000, 200.0)` ≈ 40 µs: the time 1 MB occupies a 200 Gbps
/// port (the paper's testbed fabric speed). A non-positive/NaN rate is a
/// configuration error (asserted in debug builds); the conversion itself
/// is total — huge byte counts over slow links saturate to [`Nanos::MAX`]
/// instead of wrapping (see [`Nanos::from_f64_saturating`]).
#[inline]
pub fn wire_time(bytes: u64, gbps: f64) -> Nanos {
    debug_assert!(gbps > 0.0, "link rate must be positive");
    // bits / (gigabits/s) = nanoseconds.
    let ns = (bytes as f64 * 8.0) / gbps;
    Nanos::from_f64_saturating(ns.ceil())
}

/// Service time of a task costing `cycles` CPU cycles on a core clocked at
/// `ghz` GHz. This is how the cost model translates "instructions of work"
/// into virtual time for both beefy x86 cores (3.7 GHz in the paper's
/// testbed) and wimpy DPU ARM cores (2.0 GHz). Same conversion contract
/// as [`wire_time`]: rates are asserted positive in debug builds and the
/// f64→ns cast saturates explicitly.
#[inline]
pub fn cycles_time(cycles: u64, ghz: f64) -> Nanos {
    debug_assert!(ghz > 0.0, "clock rate must be positive");
    Nanos::from_f64_saturating((cycles as f64 / ghz).ceil())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_conversions() {
        assert_eq!(Nanos::from_micros(3).as_nanos(), 3_000);
        assert_eq!(Nanos::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(Nanos::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(Nanos::from_secs(1).as_millis_f64(), 1_000.0);
        assert_eq!(Nanos::from_micros(1500).as_millis_f64(), 1.5);
    }

    #[test]
    fn arithmetic_saturates() {
        assert_eq!(Nanos::MAX + Nanos(1), Nanos::MAX);
        assert_eq!(Nanos(5) - Nanos(10), Nanos::ZERO);
        assert_eq!(Nanos::MAX.saturating_mul(2), Nanos::MAX);
    }

    #[test]
    fn scaling() {
        // Wimpy-core multiplier: 1 µs of x86 work takes 2.2 µs on the DPU.
        assert_eq!(Nanos::from_micros(1).scale(2.2), Nanos(2_200));
        assert_eq!(Nanos(1000).scale(0.5), Nanos(500));
        assert_eq!(Nanos(3).scale(0.4), Nanos(1)); // rounds to nearest
    }

    #[test]
    fn min_max() {
        assert_eq!(Nanos(3).max(Nanos(7)), Nanos(7));
        assert_eq!(Nanos(3).min(Nanos(7)), Nanos(3));
    }

    #[test]
    fn wire_time_200gbps() {
        // 8 KB over 200 Gbps = 8192*8/200 = 327.68 ns -> 328 ns.
        assert_eq!(wire_time(8192, 200.0), Nanos(328));
        // 64 B over 200 Gbps = 2.56 ns -> 3 ns.
        assert_eq!(wire_time(64, 200.0), Nanos(3));
        // Zero bytes cost nothing.
        assert_eq!(wire_time(0, 200.0), Nanos(0));
    }

    #[test]
    fn cycles_time_examples() {
        // 3700 cycles at 3.7 GHz = 1 µs.
        assert_eq!(cycles_time(3_700, 3.7), Nanos::from_micros(1));
        // Same work on a 2.0 GHz wimpy core takes 1.85 µs.
        assert_eq!(cycles_time(3_700, 2.0), Nanos(1_850));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Nanos(12)), "12ns");
        assert_eq!(format!("{}", Nanos(12_345)), "12.345µs");
        assert_eq!(format!("{}", Nanos(12_345_678)), "12.346ms");
        assert_eq!(format!("{}", Nanos::from_secs(2)), "2.000s");
        assert_eq!(format!("{}", Nanos::MAX), "∞");
    }

    #[test]
    fn sum_of_spans() {
        let total: Nanos = [Nanos(1), Nanos(2), Nanos(3)].into_iter().sum();
        assert_eq!(total, Nanos(6));
    }

    #[test]
    fn byte_cost_matches_f64_for_dyadic_slopes() {
        // 0.25 ns/B is exactly representable in both f64 and Q32.32: the
        // fixed-point path must be bit-identical to the seed's f64 math
        // over the whole byte range the stacks see.
        let c = ByteCost::per_byte_ns(0.25);
        for bytes in (0u64..=100_000).step_by(7) {
            assert_eq!(
                c.cost(bytes),
                Nanos((bytes as f64 * 0.25).round() as u64),
                "bytes={bytes}"
            );
        }
        assert_eq!(ByteCost::per_byte_ns(0.25).ns_per_byte(), 0.25);
    }

    #[test]
    fn byte_cost_tracks_f64_for_decimal_slopes() {
        // 0.06 / 0.35 are not dyadic; fixed-point quantizes the slope to
        // the nearest 2^-32. Any divergence from the f64 product is at
        // most 1 ns and only at a .5 rounding boundary.
        for slope in [0.06f64, 0.35] {
            let c = ByteCost::per_byte_ns(slope);
            for bytes in 0u64..=65_536 {
                let f = (bytes as f64 * slope).round() as u64;
                let q = c.cost(bytes).as_nanos();
                assert!(
                    q.abs_diff(f) <= 1,
                    "slope {slope} bytes {bytes}: fixed {q} vs f64 {f}"
                );
            }
        }
    }

    #[test]
    fn byte_cost_zero() {
        assert_eq!(ByteCost::ZERO.cost(1_000_000), Nanos::ZERO);
        assert_eq!(ByteCost::per_byte_ns(0.0).cost(64), Nanos::ZERO);
    }

    #[test]
    fn byte_cost_saturates_at_the_overflow_boundary() {
        // Slope 2 ns/B (mul = 2^33): the charged nanoseconds are 2×bytes,
        // which exceeds u64 exactly at bytes = 2^63. Below the boundary
        // the exact product must come back; at and above it the cost must
        // saturate to Nanos::MAX — the pre-fix `as u64` truncation charged
        // ~0 ns here, letting enormous transfers finish instantly.
        let c = ByteCost::per_byte_ns(2.0);
        assert_eq!(c.cost((1 << 62) - 1), Nanos((1 << 63) - 2));
        assert_eq!(c.cost((1u64 << 63) - 1), Nanos(u64::MAX - 1));
        assert_eq!(c.cost(1u64 << 63), Nanos::MAX, "first overflowing input");
        assert_eq!(c.cost(u64::MAX), Nanos::MAX);
        // Slope 1: u64::MAX bytes lands exactly on u64::MAX ns (no wrap).
        assert_eq!(ByteCost::per_byte_ns(1.0).cost(u64::MAX), Nanos::MAX);
    }

    #[test]
    fn byte_cost_slope_construction_is_total() {
        assert_eq!(ByteCost::per_byte_ns(f64::NAN), ByteCost::ZERO);
        assert_eq!(ByteCost::per_byte_ns(-3.5), ByteCost::ZERO);
        let sat = ByteCost::per_byte_ns(f64::INFINITY);
        assert_eq!(sat.cost(0), Nanos::ZERO);
        assert_eq!(sat.cost(u64::MAX), Nanos::MAX);
    }

    #[test]
    fn f64_conversion_is_explicit_about_degenerate_inputs() {
        assert_eq!(Nanos::from_f64_saturating(f64::NAN), Nanos::ZERO);
        assert_eq!(Nanos::from_f64_saturating(-1.0), Nanos::ZERO);
        assert_eq!(Nanos::from_f64_saturating(-0.0), Nanos::ZERO);
        assert_eq!(Nanos::from_f64_saturating(f64::NEG_INFINITY), Nanos::ZERO);
        assert_eq!(Nanos::from_f64_saturating(f64::INFINITY), Nanos::MAX);
        assert_eq!(Nanos::from_f64_saturating(1e300), Nanos::MAX);
        // u64::MAX as f64 rounds up to 2^64, which does not fit: saturate.
        assert_eq!(Nanos::from_f64_saturating(u64::MAX as f64), Nanos::MAX);
        assert_eq!(Nanos::from_f64_saturating(42.0), Nanos(42));
    }

    #[test]
    fn scale_and_rate_conversions_saturate() {
        // scale: NaN/negative factors clamp, oversized products saturate.
        assert_eq!(Nanos(100).scale(f64::NAN), Nanos::ZERO);
        assert_eq!(Nanos(100).scale(-2.0), Nanos::ZERO);
        assert_eq!(Nanos::MAX.scale(2.0), Nanos::MAX);
        // A year of nanoseconds over a 1 bit/s-ish link must clamp, not
        // wrap.
        assert_eq!(wire_time(u64::MAX, 1e-9), Nanos::MAX);
        assert_eq!(cycles_time(u64::MAX, 1e-9), Nanos::MAX);
    }
}
